// Wire-protocol unit + fuzz tests, and transport-backend smoke tests.
//
// The protocol tests need no processes: encode/decode round-trips, torn
// reads reassembled by FrameParser at every (randomized) chunking, and
// corrupt headers (bad magic / version / oversize length) rejected cleanly
// — never a hang, never a giant allocation.  The backend smoke tests drive
// each Transport through the launcher: point-to-point ordering, barrier,
// zero-length and ring-wrapping messages, and child-failure propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/topology.hpp"
#include "comm/transport.hpp"
#include "comm/wire.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::comm {
namespace {

using testsupport::backend_name;
using testsupport::kAllTransports;

// ---------------------------------------------------------------------------
// Header encode/decode
// ---------------------------------------------------------------------------

TEST(WireHeader, RoundTripsAllFields) {
  wire::FrameHeader header;
  header.tag = wire::kBarrierTag;
  header.src = 7;
  header.plan_task = 123;
  header.elements = 99;
  header.codec = 2;  // comm::Codec::kInt8 payload

  unsigned char raw[wire::kHeaderBytes];
  wire::encode_header(header, raw);
  wire::FrameHeader decoded;
  ASSERT_EQ(wire::decode_header(raw, decoded), wire::DecodeStatus::kOk);
  EXPECT_EQ(decoded, header);
}

TEST(WireHeader, RoundTripsRandomCorpus) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<std::uint32_t> tag_dist(0, 0xFFFF);
  std::uniform_int_distribution<std::int32_t> src_dist(-1, 1 << 20);
  std::uniform_int_distribution<std::int32_t> task_dist(-1, 1 << 24);
  std::uniform_int_distribution<std::uint64_t> len_dist(0, wire::kMaxElements);
  std::uniform_int_distribution<std::uint32_t> codec_dist(0, 0xFFFF);

  for (int i = 0; i < 500; ++i) {
    wire::FrameHeader header;
    header.tag = static_cast<std::uint16_t>(tag_dist(rng));
    header.src = src_dist(rng);
    header.plan_task = task_dist(rng);
    header.elements = len_dist(rng);
    header.codec = static_cast<std::uint16_t>(codec_dist(rng));

    unsigned char raw[wire::kHeaderBytes];
    wire::encode_header(header, raw);
    wire::FrameHeader decoded;
    ASSERT_EQ(wire::decode_header(raw, decoded), wire::DecodeStatus::kOk);
    ASSERT_EQ(decoded, header);
  }
}

TEST(WireHeader, LayoutIsLittleEndian) {
  wire::FrameHeader header;
  header.elements = 2;
  header.codec = 3;  // comm::Codec::kTopK
  unsigned char raw[wire::kHeaderBytes];
  wire::encode_header(header, raw);
  // magic "SPDK" = 0x5350444B little-endian: 4B 44 50 53.
  EXPECT_EQ(raw[0], 0x4B);
  EXPECT_EQ(raw[1], 0x44);
  EXPECT_EQ(raw[2], 0x50);
  EXPECT_EQ(raw[3], 0x53);
  EXPECT_EQ(raw[4], wire::kVersion);
  EXPECT_EQ(raw[16], 2);   // elements, low byte first
  EXPECT_EQ(raw[23], 0);
  EXPECT_EQ(raw[24], 3);   // codec id
  EXPECT_EQ(raw[25], 0);
  for (int i = 26; i < 32; ++i) EXPECT_EQ(raw[i], 0);  // reserved
}

TEST(WireHeader, RejectsBadMagic) {
  wire::FrameHeader header;
  unsigned char raw[wire::kHeaderBytes];
  wire::encode_header(header, raw);
  raw[0] ^= 0xFF;
  wire::FrameHeader decoded;
  EXPECT_EQ(wire::decode_header(raw, decoded), wire::DecodeStatus::kBadMagic);
}

TEST(WireHeader, RejectsBadVersion) {
  wire::FrameHeader header;
  header.version = wire::kVersion + 1;
  unsigned char raw[wire::kHeaderBytes];
  wire::encode_header(header, raw);
  wire::FrameHeader decoded;
  EXPECT_EQ(wire::decode_header(raw, decoded),
            wire::DecodeStatus::kBadVersion);
}

TEST(WireHeader, RejectsOversizeLength) {
  wire::FrameHeader header;
  header.elements = wire::kMaxElements + 1;
  unsigned char raw[wire::kHeaderBytes];
  wire::encode_header(header, raw);
  wire::FrameHeader decoded;
  EXPECT_EQ(wire::decode_header(raw, decoded), wire::DecodeStatus::kOversize);
}

// ---------------------------------------------------------------------------
// FrameParser reassembly
// ---------------------------------------------------------------------------

std::vector<unsigned char> frame_bytes(int src, int plan_task,
                                       const std::vector<double>& payload) {
  wire::FrameHeader header;
  header.src = src;
  header.plan_task = plan_task;
  header.elements = payload.size();
  return wire::encode_frame(header, payload);
}

TEST(FrameParser, SingleFeedYieldsFrame) {
  wire::FrameParser parser;
  const std::vector<double> payload = {1.5, -2.25, 3.0};
  ASSERT_TRUE(parser.feed(frame_bytes(3, 42, payload)));
  ASSERT_TRUE(parser.has_frame());
  const wire::Frame frame = parser.pop_frame();
  EXPECT_EQ(frame.header.src, 3);
  EXPECT_EQ(frame.header.plan_task, 42);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(parser.has_frame());
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FrameParser, ByteAtATimeReassembles) {
  const std::vector<double> payload = {1.0, 2.0};
  const auto bytes = frame_bytes(0, -1, payload);
  wire::FrameParser parser;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_FALSE(parser.has_frame()) << "frame complete too early at " << i;
    ASSERT_TRUE(parser.feed({&bytes[i], 1}));
  }
  ASSERT_TRUE(parser.has_frame());
  EXPECT_EQ(parser.pop_frame().payload, payload);
}

TEST(FrameParser, RandomChunkingReassemblesManyFrames) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> len_dist(0, 40);
  std::uniform_real_distribution<double> val_dist(-10.0, 10.0);

  // Concatenate a stream of frames, then feed it in random-size chunks.
  std::vector<std::vector<double>> payloads;
  std::vector<unsigned char> stream;
  for (int f = 0; f < 50; ++f) {
    std::vector<double> payload(len_dist(rng));
    for (double& v : payload) v = val_dist(rng);
    const auto bytes = frame_bytes(f % 4, f, payload);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    payloads.push_back(std::move(payload));
  }

  wire::FrameParser parser;
  std::uniform_int_distribution<std::size_t> chunk_dist(1, 37);
  std::size_t offset = 0;
  std::size_t popped = 0;
  while (offset < stream.size()) {
    const std::size_t n = std::min(chunk_dist(rng), stream.size() - offset);
    ASSERT_TRUE(parser.feed({stream.data() + offset, n}));
    offset += n;
    while (parser.has_frame()) {
      const wire::Frame frame = parser.pop_frame();
      ASSERT_LT(popped, payloads.size());
      EXPECT_EQ(frame.payload, payloads[popped]);
      EXPECT_EQ(frame.header.plan_task, static_cast<int>(popped));
      ++popped;
    }
  }
  EXPECT_EQ(popped, payloads.size());
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FrameParser, CorruptHeaderIsTerminal) {
  auto bytes = frame_bytes(0, -1, {1.0});
  bytes[0] ^= 0xFF;  // break the magic
  wire::FrameParser parser;
  EXPECT_FALSE(parser.feed(bytes));
  EXPECT_TRUE(parser.corrupt());
  EXPECT_EQ(parser.error(), wire::DecodeStatus::kBadMagic);
  // Further feeds (even valid frames) are ignored.
  EXPECT_FALSE(parser.feed(frame_bytes(0, -1, {2.0})));
  EXPECT_FALSE(parser.has_frame());
}

TEST(FrameParser, FuzzCorruptedStreamsNeverHangOrYieldGarbage) {
  // Seeded corpus: random valid streams with one random byte flipped.  The
  // parser must either still produce only frames with intact headers
  // (flip hit a payload byte) or go terminally corrupt — and never crash,
  // hang, or over-allocate (oversize lengths are rejected by decode).
  std::mt19937 rng(20210713);
  std::uniform_real_distribution<double> val_dist(-1.0, 1.0);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<unsigned char> stream;
    std::uniform_int_distribution<std::size_t> len_dist(0, 12);
    const int frames = 1 + static_cast<int>(rng() % 5);
    for (int f = 0; f < frames; ++f) {
      std::vector<double> payload(len_dist(rng));
      for (double& v : payload) v = val_dist(rng);
      const auto bytes = frame_bytes(f, f, payload);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    const std::size_t flip = rng() % stream.size();
    stream[flip] ^= static_cast<unsigned char>(1 + rng() % 255);

    wire::FrameParser parser;
    std::size_t offset = 0;
    std::uniform_int_distribution<std::size_t> chunk_dist(1, 64);
    bool alive = true;
    while (alive && offset < stream.size()) {
      const std::size_t n = std::min(chunk_dist(rng), stream.size() - offset);
      alive = parser.feed({stream.data() + offset, n});
      offset += n;
      while (parser.has_frame()) {
        const wire::Frame frame = parser.pop_frame();
        ASSERT_LE(frame.payload.size(), wire::kMaxElements);
      }
    }
    if (!alive) {
      EXPECT_TRUE(parser.corrupt());
      EXPECT_NE(parser.error(), wire::DecodeStatus::kOk);
    }
  }
}

// ---------------------------------------------------------------------------
// Backend smoke tests (all three transports through the launcher)
// ---------------------------------------------------------------------------

class TransportBackend : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(GetParam());
  }
};

TEST_P(TransportBackend, PointToPointPreservesOrderAndBits) {
  const Topology topo = Topology::flat(2);
  const auto results = Cluster::launch_collect(
      GetParam(), topo, [](Communicator& comm) -> std::vector<double> {
        std::vector<double> got;
        if (comm.rank() == 0) {
          comm.send(1, std::vector<double>{1.0, -0.0, 1e-308});
          comm.send(1, std::vector<double>{});  // zero-length frame
          comm.send(1, std::vector<double>{42.5});
        } else {
          std::vector<double> first(3), empty, third(1);
          comm.recv(0, first);
          comm.recv(0, empty);
          comm.recv(0, third);
          got.insert(got.end(), first.begin(), first.end());
          got.insert(got.end(), third.begin(), third.end());
        }
        return got;
      });
  ASSERT_EQ(results.size(), 2u);
  const std::vector<double> expected = {1.0, -0.0, 1e-308, 42.5};
  ASSERT_EQ(results[1].size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Bitwise, not value, comparison: -0.0 and denormals must survive.
    EXPECT_EQ(std::memcmp(&results[1][i], &expected[i], sizeof(double)), 0);
  }
}

TEST_P(TransportBackend, BarrierSeparatesPhases) {
  const Topology topo = Topology::flat(4);
  const auto results = Cluster::launch_collect(
      GetParam(), topo, [](Communicator& comm) -> std::vector<double> {
        // Neighbour exchange, barrier, reversed exchange: without a real
        // barrier the second phase's messages could be consumed by the
        // first phase's pending recv (lengths differ, recv would throw).
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        std::vector<double> one(1, comm.rank());
        comm.send(next, one);
        comm.recv(prev, one);
        comm.barrier();
        std::vector<double> two(2, comm.rank());
        comm.send(prev, two);
        comm.recv(next, two);
        comm.barrier();
        return {one[0], two[0]};
      });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)][0], (r + 3) % 4);
    EXPECT_EQ(results[static_cast<std::size_t>(r)][1], (r + 1) % 4);
  }
}

TEST_P(TransportBackend, LargeMessagesStreamThrough) {
  // Bigger than the shm ring (forced small below), so the message must
  // stream through in chunks; also exercises socket short reads.
  const Topology topo = Topology::flat(2);
  LaunchOptions opts;
  opts.shm_ring_bytes = 1024;
  constexpr std::size_t kBig = 40000;  // 320 KB of doubles vs 1 KB ring
  const auto results = Cluster::launch_collect(
      GetParam(), topo,
      [](Communicator& comm) -> std::vector<double> {
        if (comm.rank() == 0) {
          std::vector<double> big(kBig);
          std::iota(big.begin(), big.end(), 0.0);
          comm.send(1, big);
          return {};
        }
        std::vector<double> big(kBig);
        comm.recv(0, big);
        // Spot-check, and return a checksum instead of 320 KB per rank.
        double checksum = 0.0;
        for (std::size_t i = 0; i < big.size(); ++i) {
          if (big[i] != static_cast<double>(i)) return {-1.0};
          checksum += big[i];
        }
        return {checksum};
      },
      opts);
  const double expected = static_cast<double>(kBig) * (kBig - 1) / 2.0;
  ASSERT_EQ(results[1].size(), 1u);
  EXPECT_EQ(results[1][0], expected);
}

TEST_P(TransportBackend, WorkerFailurePropagates) {
  const Topology topo = Topology::flat(2);
  EXPECT_THROW(
      Cluster::launch_collect(GetParam(), topo,
                              [](Communicator& comm) -> std::vector<double> {
                                if (comm.rank() == 1) {
                                  throw std::runtime_error("rank 1 died");
                                }
                                return {};
                              }),
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TransportBackend, ::testing::ValuesIn(kAllTransports),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return backend_name(info.param);
    });

// ---------------------------------------------------------------------------
// Factory validation
// ---------------------------------------------------------------------------

TEST(TransportFactories, RejectBadArguments) {
  EXPECT_THROW(make_in_process_group(0), std::invalid_argument);
  EXPECT_THROW(make_in_process_transport(make_in_process_group(2), 2),
               std::invalid_argument);
  EXPECT_THROW(make_shm_arena(0), std::invalid_argument);
  EXPECT_THROW(make_shm_arena(2, 100), std::invalid_argument);  // not pow2
  EXPECT_THROW(make_shm_arena(2, 512), std::invalid_argument);  // too small
  EXPECT_THROW(make_shm_transport(make_shm_arena(2), -1),
               std::invalid_argument);
  EXPECT_THROW(make_socket_transport({"/tmp/x", 0}, 0), std::invalid_argument);
  EXPECT_THROW(make_socket_transport({"/tmp/x", 2}, 5), std::invalid_argument);
}

TEST(TransportNames, RoundTrip) {
  for (const TransportKind kind : kAllTransports) {
    EXPECT_EQ(transport_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(transport_from_string("carrier-pigeon"), std::invalid_argument);
}

}  // namespace
}  // namespace spdkfac::comm
