// Conformance suite for the collective payload codecs (comm/codec.hpp).
//
// Three layers of guarantees, matching the codec header's contract:
//
//   1. kernel primitives (absmax / int8 quantize / fp16 pack) are bitwise
//      identical across ISA levels — the foundation of cross-rank bitwise
//      results when ranks dispatch to different levels;
//   2. encode/decode round-trips stay within the documented analytic error
//      bounds, and the kTopK selection is deterministic (canonical wire
//      bytes, smallest-index tie-break);
//   3. the compressed collectives are bitwise identical across ranks on
//      every backend and world size, equal to the replayed-codec reference
//      (decode(encode(x_r)) reduced in rank order), and within the analytic
//      bound of the exact reduction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "comm/codec.hpp"
#include "comm/collectives.hpp"
#include "tensor/kernels/kernels.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::comm {
namespace {

namespace kernels = spdkfac::tensor::kernels;

std::vector<double> random_values(std::size_t n, std::uint64_t seed,
                                  double lo = -10.0, double hi = 10.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

std::vector<double> round_trip(Codec codec, const std::vector<double>& src,
                               double ratio = 0.0) {
  std::vector<double> wire(wire_elements(codec, src.size(), ratio));
  std::vector<double> out(src.size());
  encode(codec, src, wire, ratio);
  decode(codec, wire, out, ratio);
  return out;
}

// -------------------------------------------------------------------------
// Kernel primitives: bitwise identical across ISA levels.
// -------------------------------------------------------------------------

class CodecKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernels::supported(kernels::Isa::kAvx2)) {
      GTEST_SKIP() << "single ISA level on this machine";
    }
  }
};

TEST_F(CodecKernels, PrimitivesBitwiseAcrossIsaLevels) {
  const kernels::KernelTable& scalar = kernels::table(kernels::Isa::kScalar);
  const kernels::KernelTable& avx2 = kernels::table(kernels::Isa::kAvx2);
  // Sizes straddling every vector width and remainder case.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{7}, std::size_t{8},
                        std::size_t{255}, std::size_t{256}, std::size_t{257},
                        std::size_t{1023}}) {
    std::vector<double> src = random_values(n, 0xC0DEC + n, -1e4, 1e4);
    // Seed in values that stress rounding: halfway cases, tiny, huge.
    if (n >= 4) {
      src[0] = 0.0;
      src[1] = 2049.0;      // fp16 RNE halfway case (between 2048 and 2050)
      src[2] = 6.1e-5;      // just above the half subnormal threshold
      src[3] = -65519.0;    // rounds to -inf in half? (max half is 65504)
    }

    EXPECT_EQ(scalar.absmax(src.data(), n), avx2.absmax(src.data(), n));

    const double amax = scalar.absmax(src.data(), n);
    const double inv = amax > 0.0 ? 127.0 / amax : 0.0;
    std::vector<signed char> q_s(n), q_v(n);
    scalar.int8_quantize(src.data(), n, inv, q_s.data());
    avx2.int8_quantize(src.data(), n, inv, q_v.data());
    EXPECT_EQ(q_s, q_v) << "int8 quantize diverges at n=" << n;

    std::vector<double> dq_s(n), dq_v(n);
    const double scale = amax / 127.0;
    scalar.int8_dequantize(q_s.data(), n, scale, dq_s.data());
    avx2.int8_dequantize(q_s.data(), n, scale, dq_v.data());
    EXPECT_EQ(dq_s, dq_v) << "int8 dequantize diverges at n=" << n;

    std::vector<std::uint16_t> h_s(n), h_v(n);
    scalar.fp16_pack(src.data(), n, h_s.data());
    avx2.fp16_pack(src.data(), n, h_v.data());
    EXPECT_EQ(h_s, h_v) << "fp16 pack diverges at n=" << n;

    std::vector<double> u_s(n), u_v(n);
    scalar.fp16_unpack(h_s.data(), n, u_s.data());
    avx2.fp16_unpack(h_s.data(), n, u_v.data());
    EXPECT_EQ(u_s, u_v) << "fp16 unpack diverges at n=" << n;
  }
}

TEST_F(CodecKernels, EncodeDecodeBitwiseAcrossIsaLevels) {
  const kernels::Isa before = kernels::active();
  const std::vector<double> src = random_values(1333, 0xB17);
  for (Codec codec : {Codec::kFp16, Codec::kInt8, Codec::kTopK}) {
    const double ratio = 0.05;
    std::vector<double> wire_scalar(wire_elements(codec, src.size(), ratio));
    std::vector<double> wire_avx2(wire_scalar.size());
    kernels::force(kernels::Isa::kScalar);
    encode(codec, src, wire_scalar, ratio);
    kernels::force(kernels::Isa::kAvx2);
    encode(codec, src, wire_avx2, ratio);
    EXPECT_EQ(wire_scalar, wire_avx2)
        << to_string(codec) << " wire bytes differ across ISA levels";

    std::vector<double> out_scalar(src.size()), out_avx2(src.size());
    kernels::force(kernels::Isa::kScalar);
    decode(codec, wire_scalar, out_scalar, ratio);
    kernels::force(kernels::Isa::kAvx2);
    decode(codec, wire_scalar, out_avx2, ratio);
    EXPECT_EQ(out_scalar, out_avx2)
        << to_string(codec) << " decode differs across ISA levels";
  }
  kernels::force(before);
}

// -------------------------------------------------------------------------
// Encode / decode round-trips and format invariants.
// -------------------------------------------------------------------------

TEST(CodecFormat, WireElementCounts) {
  EXPECT_EQ(wire_elements(Codec::kNone, 1000), 1000u);
  EXPECT_EQ(wire_elements(Codec::kFp16, 1000), 250u);
  EXPECT_EQ(wire_elements(Codec::kFp16, 1001), 251u);  // partial lane
  // int8: ceil(1000/256) = 4 scales + ceil(1000/8) = 125 byte-doubles.
  EXPECT_EQ(wire_elements(Codec::kInt8, 1000), 129u);
  EXPECT_EQ(wire_elements(Codec::kTopK, 1000, 0.01), 10u);
  EXPECT_EQ(wire_elements(Codec::kTopK, 1000, 0.0001), 1u);  // k >= 1
  EXPECT_EQ(wire_elements(Codec::kFp16, 0), 0u);
  EXPECT_EQ(wire_elements(Codec::kTopK, 0, 0.01), 0u);
}

TEST(CodecFormat, ResolveCodecHonoursCrossover) {
  const std::size_t big = kAutoCodecCrossoverElements;
  EXPECT_EQ(resolve_codec(Codec::kAuto, big - 1, false), Codec::kNone);
  EXPECT_EQ(resolve_codec(Codec::kAuto, big, false), Codec::kInt8);
  EXPECT_EQ(resolve_codec(Codec::kAuto, big, true), Codec::kFp16);
  // Concrete codecs pass through regardless of size.
  EXPECT_EQ(resolve_codec(Codec::kInt8, 1, false), Codec::kInt8);
  EXPECT_EQ(resolve_codec(Codec::kNone, big, true), Codec::kNone);
}

TEST(CodecFormat, FromStringRoundTrips) {
  for (Codec codec : {Codec::kNone, Codec::kFp16, Codec::kInt8, Codec::kTopK,
                      Codec::kAuto}) {
    EXPECT_EQ(codec_from_string(to_string(codec)), codec);
  }
  EXPECT_THROW(codec_from_string("zstd"), std::invalid_argument);
}

TEST(CodecRoundTrip, Fp16WithinHalfUlp) {
  const std::vector<double> src = random_values(1001, 0xF16);
  const std::vector<double> out = round_trip(Codec::kFp16, src);
  for (std::size_t i = 0; i < src.size(); ++i) {
    // binary16 has 10 mantissa bits: RNE error <= |x| * 2^-11 * (1 + eps);
    // 2^-10 absorbs the double->float pre-rounding comfortably.
    EXPECT_NEAR(out[i], src[i], std::abs(src[i]) * 0x1p-10 + 1e-12)
        << "at i=" << i;
  }
}

TEST(CodecRoundTrip, Int8WithinHalfStepPerChunk) {
  const std::vector<double> src = random_values(1000, 0x138);
  const std::vector<double> out = round_trip(Codec::kInt8, src);
  for (std::size_t c = 0; c * kInt8ChunkElements < src.size(); ++c) {
    const std::size_t lo = c * kInt8ChunkElements;
    const std::size_t hi = std::min(src.size(), lo + kInt8ChunkElements);
    double amax = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      amax = std::max(amax, std::abs(src[i]));
    }
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_NEAR(out[i], src[i], amax / 254.0 + 1e-12)
          << "chunk " << c << " element " << i;
    }
  }
}

TEST(CodecRoundTrip, Int8AllZeroChunkStaysZero) {
  const std::vector<double> src(600, 0.0);
  for (double v : round_trip(Codec::kInt8, src)) EXPECT_EQ(v, 0.0);
}

TEST(CodecRoundTrip, TopKSelectsLargestAndResidualCoversRest) {
  const double ratio = 0.01;  // k = 10 of 1000
  const std::vector<double> src = random_values(1000, 0x709C);
  std::vector<double> wire(wire_elements(Codec::kTopK, src.size(), ratio));
  encode(Codec::kTopK, src, wire, ratio);
  ASSERT_EQ(wire.size(), 10u);

  // Slots arrive in ascending index order, values are the f32 rounding of
  // the source, and every unselected |value| is <= every selected one.
  double selection_floor = 1e300;
  std::vector<bool> selected(src.size(), false);
  std::uint32_t prev_index = 0;
  for (std::size_t s = 0; s < wire.size(); ++s) {
    const TopKSlot slot = unpack_topk_slot(wire[s]);
    if (s > 0) {
      EXPECT_GT(slot.index, prev_index) << "non-canonical order";
    }
    prev_index = slot.index;
    ASSERT_LT(slot.index, src.size());
    EXPECT_EQ(slot.value, static_cast<float>(src[slot.index]));
    selected[slot.index] = true;
    selection_floor = std::min(selection_floor, std::abs(src[slot.index]));
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (!selected[i]) {
      EXPECT_LE(std::abs(src[i]), selection_floor);
    }
  }

  // decode + residual reconstructs: decoded slots are f32 roundings,
  // residual carries the unselected values exactly (and 0 where shipped).
  std::vector<double> decoded(src.size());
  decode(Codec::kTopK, wire, decoded, ratio);
  std::vector<double> residual(src.size());
  topk_residual(src, wire, residual);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (selected[i]) {
      EXPECT_EQ(decoded[i], static_cast<double>(static_cast<float>(src[i])));
      EXPECT_EQ(residual[i], 0.0);
    } else {
      EXPECT_EQ(decoded[i], 0.0);
      EXPECT_EQ(residual[i], src[i]);
    }
  }

  // In-place residual (the error-feedback path aliases u) agrees.
  std::vector<double> aliased = src;
  topk_residual(aliased, wire, aliased);
  EXPECT_EQ(aliased, residual);
}

TEST(CodecRoundTrip, TopKTieBreaksOnSmallestIndex) {
  // Four equal-magnitude candidates; k = 2 must take indices 1 and 3 (the
  // first two in index order), never a permutation-dependent pair.
  std::vector<double> src = {0.0, 5.0, 0.0, -5.0, 5.0, 0.0, -5.0, 0.0};
  std::vector<double> wire(2);
  encode(Codec::kTopK, src, wire, 0.25);
  EXPECT_EQ(unpack_topk_slot(wire[0]).index, 1u);
  EXPECT_EQ(unpack_topk_slot(wire[1]).index, 3u);
}

TEST(CodecRoundTrip, CanonicalWireBytesAreReproducible) {
  const std::vector<double> src = random_values(777, 0xCAFE);
  for (Codec codec : {Codec::kNone, Codec::kFp16, Codec::kInt8, Codec::kTopK}) {
    const double ratio = 0.03;
    std::vector<double> a(wire_elements(codec, src.size(), ratio));
    std::vector<double> b(a.size());
    encode(codec, src, a, ratio);
    encode(codec, src, b, ratio);
    EXPECT_EQ(a, b) << to_string(codec) << " wire bytes not reproducible";
  }
}

// -------------------------------------------------------------------------
// Compressed collectives: codec x backend x world size.
// -------------------------------------------------------------------------

struct CompressedCase {
  Codec codec;
  int world;
  TransportKind kind = TransportKind::kInProcess;
};

std::string compressed_case_name(
    const ::testing::TestParamInfo<CompressedCase>& info) {
  return std::string(to_string(info.param.codec)) + "_P" +
         std::to_string(info.param.world) + "_" +
         testsupport::backend_name(info.param.kind);
}

class CompressedAllReduce : public ::testing::TestWithParam<CompressedCase> {};

TEST_P(CompressedAllReduce, BitwiseAcrossRanksAndWithinAnalyticBounds) {
  const auto [codec, world, kind] = GetParam();
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(kind);
  const double ratio = 0.05;
  const Topology topo = Topology::flat(world);
  std::uint64_t seed = 0xAC0DEC + 977 * static_cast<std::uint64_t>(world) +
                       31 * static_cast<std::uint64_t>(codec);
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                          std::size_t{256}, std::size_t{257},
                          std::size_t{1000}}) {
      ++seed;
      std::vector<std::vector<double>> inputs(world);
      for (int r = 0; r < world; ++r) {
        inputs[r] = random_values(n, seed + static_cast<std::uint64_t>(r));
      }

      const auto results =
          Cluster::launch_collect(kind, topo, [&](Communicator& comm) {
            std::vector<double> data = inputs[comm.rank()];
            std::vector<double> scratch(
                all_reduce_scratch_elements(codec, n, world, ratio));
            compressed_all_reduce(comm, data, codec, op, ratio, scratch);
            return data;
          });

      for (int r = 1; r < world; ++r) {
        EXPECT_EQ(results[r], results[0])
            << to_string(codec) << " diverges on rank " << r << " n=" << n;
      }

      // The collective is *defined* as reducing the per-rank round-trips in
      // rank order — replay that serially and demand bitwise equality.
      std::vector<double> replay = round_trip(codec, inputs[0], ratio);
      for (int r = 1; r < world; ++r) {
        const std::vector<double> d = round_trip(codec, inputs[r], ratio);
        detail::accumulate(replay, d, op);
      }
      detail::finalize(replay, op, world);
      EXPECT_EQ(results[0], replay)
          << to_string(codec) << " != replayed-codec reference, n=" << n;

      // Analytic loss bound vs the exact reduction (kTopK excluded: its
      // loss is unbounded by design and accounted by error feedback).
      if (codec == Codec::kTopK) continue;
      std::vector<double> exact = inputs[0];
      for (int r = 1; r < world; ++r) {
        detail::accumulate(exact, inputs[r], op);
      }
      detail::finalize(exact, op, world);
      double per_rank_err = 0.0;  // max element error of one rank's codec
      switch (codec) {
        case Codec::kNone:
          per_rank_err = 0.0;
          break;
        case Codec::kFp16:
          per_rank_err = 10.0 * 0x1p-10;  // |x| <= 10, half ulp bound
          break;
        case Codec::kInt8:
          per_rank_err = 10.0 / 254.0;  // absmax <= 10, half-step bound
          break;
        default:
          break;
      }
      double tol = per_rank_err * world + 1e-12;
      if (op == ReduceOp::kAverage) tol = per_rank_err + 1e-12;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(results[0][i], exact[i], tol)
            << to_string(codec) << " exceeds analytic bound at i=" << i;
      }
    }
  }
}

std::vector<CompressedCase> compressed_cases() {
  std::vector<CompressedCase> cases;
  for (Codec codec : {Codec::kNone, Codec::kFp16, Codec::kInt8, Codec::kTopK}) {
    for (int world : {1, 2, 3, 4, 8}) cases.push_back({codec, world});
    for (TransportKind kind :
         {TransportKind::kSharedMemory, TransportKind::kSocket}) {
      for (int world : {2, 3}) cases.push_back({codec, world, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CodecByWorld, CompressedAllReduce,
                         ::testing::ValuesIn(compressed_cases()),
                         compressed_case_name);

class CompressedBroadcast : public ::testing::TestWithParam<CompressedCase> {};

TEST_P(CompressedBroadcast, EveryRankDecodesTheRootsWire) {
  const auto [codec, world, kind] = GetParam();
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(kind);
  const Topology topo = Topology::flat(world);
  std::uint64_t seed = 0xBCA57 + 13 * static_cast<std::uint64_t>(codec);
  for (int root = 0; root < world; ++root) {
    for (std::size_t n : {std::size_t{1}, std::size_t{257},
                          std::size_t{1000}}) {
      ++seed;
      const std::vector<double> payload = random_values(n, seed);
      const auto results =
          Cluster::launch_collect(kind, topo, [&](Communicator& comm) {
            // Non-roots start from garbage the broadcast must overwrite.
            std::vector<double> data(n, -1e99);
            if (comm.rank() == root) data = payload;
            std::vector<double> scratch(
                broadcast_scratch_elements(codec, n));
            compressed_broadcast(comm, data, codec, root, scratch);
            return data;
          });

      // The contract: every rank — root included — holds the decoded wire.
      const std::vector<double> expected = round_trip(codec, payload);
      for (int r = 0; r < world; ++r) {
        EXPECT_EQ(results[r], expected)
            << to_string(codec) << " root=" << root << " rank=" << r
            << " n=" << n;
      }
    }
  }
}

std::vector<CompressedCase> broadcast_cases() {
  std::vector<CompressedCase> cases;
  for (Codec codec : {Codec::kNone, Codec::kFp16, Codec::kInt8}) {
    for (int world : {1, 2, 3, 4, 8}) cases.push_back({codec, world});
    cases.push_back({codec, 3, TransportKind::kSharedMemory});
    cases.push_back({codec, 3, TransportKind::kSocket});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CodecByWorld, CompressedBroadcast,
                         ::testing::ValuesIn(broadcast_cases()),
                         compressed_case_name);

}  // namespace
}  // namespace spdkfac::comm
