#include "comm/async_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "comm/cluster.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::comm {
namespace {

TEST(CommHandle, DefaultIsInvalidAndWaitIsNoop) {
  CommHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.done());
  handle.wait();  // must not hang or crash
}

TEST(AsyncEngine, AllReduceMatchesSyncResult) {
  Cluster::launch(4, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::vector<double> data(100, comm.rank() + 1.0);
    auto handle = engine.all_reduce_async(data, ReduceOp::kSum);
    handle.wait();
    EXPECT_TRUE(handle.done());
    for (double v : data) EXPECT_NEAR(v, 10.0, 1e-12);
  });
}

TEST(AsyncEngine, BroadcastDeliversRootBuffer) {
  Cluster::launch(3, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::vector<double> data(8, comm.rank() == 2 ? 3.25 : 0.0);
    engine.broadcast_async(data, 2).wait();
    for (double v : data) EXPECT_EQ(v, 3.25);
  });
}

TEST(AsyncEngine, OpsExecuteInSubmissionOrder) {
  Cluster::launch(2, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    // Two all-reduces on the same buffer: if order were violated the
    // intermediate expectation would fail.
    std::vector<double> data(16, 1.0);
    auto h1 = engine.all_reduce_async(data, ReduceOp::kSum);  // -> 2
    auto h2 = engine.all_reduce_async(data, ReduceOp::kSum);  // -> 4
    h2.wait();
    EXPECT_TRUE(h1.done());  // FIFO: op1 finished before op2
    for (double v : data) EXPECT_EQ(v, 4.0);
  });
}

TEST(AsyncEngine, WaitAllDrainsQueue) {
  Cluster::launch(3, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::vector<std::vector<double>> buffers(10);
    for (int i = 0; i < 10; ++i) {
      buffers[i].assign(32, 1.0);
      engine.all_reduce_async(buffers[i], ReduceOp::kSum,
                              "op" + std::to_string(i));
    }
    engine.wait_all();
    EXPECT_EQ(engine.completed(), 10u);
    for (const auto& b : buffers) {
      for (double v : b) EXPECT_EQ(v, 3.0);
    }
  });
}

TEST(AsyncEngine, RecordsCaptureEveryOp) {
  Cluster::launch(2, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::vector<double> a(4, 1.0), b(6, 2.0);
    engine.all_reduce_async(a, ReduceOp::kSum, "first");
    engine.broadcast_async(b, 0, "second");
    engine.wait_all();
    const auto records = engine.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "first");
    EXPECT_EQ(records[0].elements, 4u);
    EXPECT_EQ(records[1].name, "second");
    EXPECT_LE(records[0].end_s, records[1].end_s + 1e-12);
    EXPECT_GE(records[0].end_s, records[0].start_s);
    EXPECT_GE(records[0].start_s, records[0].submit_s - 1e-9);
  });
}

TEST(AsyncEngine, SubmitRunsArbitraryFunction) {
  Cluster::launch(2, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::atomic<int> ran{0};
    auto h = engine.submit(
        [&ran](Communicator& c) {
          ran.fetch_add(1 + c.rank() * 0);  // touches the communicator
        },
        "custom");
    h.wait();
    EXPECT_EQ(ran.load(), 1);
  });
}

TEST(AsyncEngine, OverlapsCallerComputation) {
  // The main thread keeps working while a large all-reduce runs in the
  // background; the handle must not be required for progress.
  Cluster::launch(2, [](Communicator& comm) {
    AsyncCommEngine engine(comm);
    std::vector<double> data(1 << 18, 1.0);
    auto handle = engine.all_reduce_async(data, ReduceOp::kSum);
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += std::sqrt(static_cast<double>(i));
    EXPECT_GT(acc, 0.0);
    handle.wait();
    EXPECT_EQ(data[0], 2.0);
  });
}

TEST(AsyncEngine, DestructorJoinsCleanly) {
  // Engines constructed and destroyed repeatedly must not leak or hang.
  Cluster::launch(2, [](Communicator& comm) {
    for (int i = 0; i < 5; ++i) {
      AsyncCommEngine engine(comm);
      std::vector<double> data(8, 1.0);
      engine.all_reduce_async(data, ReduceOp::kSum).wait();
    }
  });
}

TEST(AsyncEngine, ManySmallOpsAcrossWorldSizes) {
  for (int world : {2, 3, 5}) {
    Cluster::launch(world, [world](Communicator& comm) {
      AsyncCommEngine engine(comm);
      std::vector<std::vector<double>> bufs(50);
      std::vector<CommHandle> handles(50);
      for (int i = 0; i < 50; ++i) {
        bufs[i].assign(i + 1, 1.0);
        handles[i] = engine.all_reduce_async(bufs[i], ReduceOp::kSum);
      }
      for (auto& h : handles) h.wait();
      for (int i = 0; i < 50; ++i) {
        for (double v : bufs[i]) EXPECT_EQ(v, static_cast<double>(world));
      }
    });
  }
}

// ---------------------------------------------------------------------------
// The engine over every transport backend: the Communicator it pumps is
// backend-agnostic, so the async semantics (results, FIFO order, wait_all)
// must hold identically when the ranks are real processes on a real wire.
// ---------------------------------------------------------------------------

class AsyncEngineBackend : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(GetParam());
  }
};

TEST_P(AsyncEngineBackend, AllReduceMatchesSyncResult) {
  const auto results = Cluster::launch_collect(
      GetParam(), Topology::flat(4), [](Communicator& comm) {
        AsyncCommEngine engine(comm);
        std::vector<double> data(100, comm.rank() + 1.0);
        auto handle = engine.all_reduce_async(data, ReduceOp::kSum);
        handle.wait();
        return data;
      });
  for (const auto& rank_result : results) {
    ASSERT_EQ(rank_result.size(), 100u);
    for (double v : rank_result) EXPECT_NEAR(v, 10.0, 1e-12);
  }
}

TEST_P(AsyncEngineBackend, BroadcastDeliversRootBuffer) {
  const auto results = Cluster::launch_collect(
      GetParam(), Topology::flat(3), [](Communicator& comm) {
        AsyncCommEngine engine(comm);
        std::vector<double> data(8, comm.rank() == 2 ? 3.25 : 0.0);
        engine.broadcast_async(data, 2).wait();
        return data;
      });
  for (const auto& rank_result : results) {
    for (double v : rank_result) EXPECT_EQ(v, 3.25);
  }
}

TEST_P(AsyncEngineBackend, OpsExecuteInSubmissionOrderAndDrain) {
  const auto results = Cluster::launch_collect(
      GetParam(), Topology::flat(2), [](Communicator& comm) {
        AsyncCommEngine engine(comm);
        std::vector<double> data(16, 1.0);
        auto h1 = engine.all_reduce_async(data, ReduceOp::kSum);  // -> 2
        auto h2 = engine.all_reduce_async(data, ReduceOp::kSum);  // -> 4
        h2.wait();
        const double fifo = h1.done() ? 1.0 : 0.0;  // op1 before op2
        engine.wait_all();
        return std::vector<double>{fifo,
                                   static_cast<double>(engine.completed()),
                                   data[0]};
      });
  for (const auto& rank_result : results) {
    ASSERT_EQ(rank_result.size(), 3u);
    EXPECT_EQ(rank_result[0], 1.0);  // FIFO held
    EXPECT_EQ(rank_result[1], 2.0);  // both ops completed
    EXPECT_EQ(rank_result[2], 4.0);  // second reduce saw the first's result
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, AsyncEngineBackend,
    ::testing::ValuesIn(testsupport::kAllTransports),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return testsupport::backend_name(info.param);
    });

}  // namespace
}  // namespace spdkfac::comm
