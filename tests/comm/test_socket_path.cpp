// Unix-socket path handling: the sun_path capacity validation, the
// $TMPDIR-honoring scratch-directory helper, and the launcher actually
// placing its socket rendezvous under $TMPDIR (the historical bug was a
// hardcoded /tmp template and a silent bind-time truncation of long paths).
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/transport.hpp"

namespace spdkfac::comm {
namespace {

/// Scoped $TMPDIR override (restores the previous value, set or unset).
class TmpdirGuard {
 public:
  explicit TmpdirGuard(const std::string& value) {
    const char* old = std::getenv("TMPDIR");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("TMPDIR", value.c_str(), 1);
  }
  ~TmpdirGuard() {
    if (had_old_) {
      ::setenv("TMPDIR", old_.c_str(), 1);
    } else {
      ::unsetenv("TMPDIR");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(SocketPath, ValidatesExactlyAtTheSunPathBoundary) {
  const std::size_t max = max_socket_path_bytes();
  ASSERT_GT(max, 5u);
  const std::string at_limit = "/tmp/" + std::string(max - 5, 'x');
  ASSERT_EQ(at_limit.size(), max);
  EXPECT_NO_THROW(validate_socket_path(at_limit));

  const std::string over = at_limit + "y";
  try {
    validate_socket_path(over);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sun_path"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(max)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(max + 1)), std::string::npos) << what;
    EXPECT_NE(what.find(over), std::string::npos) << what;
    EXPECT_NE(what.find("TMPDIR"), std::string::npos) << what;
  }
}

TEST(SocketPath, RejectsEmptyPath) {
  EXPECT_THROW(validate_socket_path(""), std::invalid_argument);
}

TEST(DefaultTmpDir, HonorsTmpdirAndStripsTrailingSlashes) {
  {
    TmpdirGuard guard("/var/tmp");
    EXPECT_EQ(default_tmp_dir(), "/var/tmp");
  }
  {
    TmpdirGuard guard("/var/tmp///");
    EXPECT_EQ(default_tmp_dir(), "/var/tmp");
  }
  {
    TmpdirGuard guard("");
    EXPECT_EQ(default_tmp_dir(), "/tmp");  // empty TMPDIR falls back
  }
}

TEST(DefaultTmpDir, FallsBackToTmpWhenUnset) {
  const char* old = std::getenv("TMPDIR");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  ::unsetenv("TMPDIR");
  EXPECT_EQ(default_tmp_dir(), "/tmp");
  if (had) ::setenv("TMPDIR", saved.c_str(), 1);
}

TEST(Launcher, SocketRendezvousLivesUnderTmpdir) {
  // A private scratch dir: anything named spdkfac* appearing inside it
  // during the run can only be the launcher's rendezvous.
  const std::string scratch =
      "/tmp/spdkfac-tmpdir-test-" + std::to_string(::getpid());
  ASSERT_EQ(::mkdir(scratch.c_str(), 0700), 0);
  TmpdirGuard guard(scratch);

  const auto results = Cluster::launch_collect(
      TransportKind::kSocket, Topology::flat(2), [&](Communicator& comm) {
        // Each forked rank scans $TMPDIR for the rendezvous directory; it
        // exists for the whole launch, so this is race-free.
        double found = 0.0;
        if (DIR* dir = ::opendir(default_tmp_dir().c_str())) {
          while (const dirent* entry = ::readdir(dir)) {
            if (std::string(entry->d_name).rfind("spdkfac", 0) == 0) {
              found = 1.0;
            }
          }
          ::closedir(dir);
        }
        std::vector<double> sum{found};
        comm.all_reduce(sum, ReduceOp::kSum);
        return sum;
      });
  for (const auto& per_rank : results) {
    ASSERT_EQ(per_rank.size(), 1u);
    EXPECT_EQ(per_rank[0], 2.0)
        << "a rank did not see the rendezvous under $TMPDIR";
  }

  // The launcher cleaned its rendezvous up; only our empty scratch remains.
  EXPECT_EQ(::rmdir(scratch.c_str()), 0)
      << "rendezvous leaked into " << scratch;
}

TEST(Launcher, OverlongTmpdirFailsWithClearErrorNotTruncation) {
  const std::string deep = "/tmp/" + std::string(150, 'd');
  TmpdirGuard guard(deep);
  try {
    Cluster::launch_collect(TransportKind::kSocket, Topology::flat(2),
                            [](Communicator&) { return std::vector<double>{}; });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sun_path"), std::string::npos) << what;
    EXPECT_NE(what.find(deep), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace spdkfac::comm
