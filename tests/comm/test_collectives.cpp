#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <random>

#include "comm/cluster.hpp"

namespace spdkfac::comm {
namespace {

TEST(Cluster, RejectsNonPositiveSize) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  EXPECT_THROW(Cluster(-3), std::invalid_argument);
}

TEST(Cluster, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::array<std::atomic<int>, 5> seen{};
  Cluster::launch(5, [&](Communicator& comm) {
    count.fetch_add(1);
    seen[comm.rank()].fetch_add(1);
    EXPECT_EQ(comm.size(), 5);
  });
  EXPECT_EQ(count.load(), 5);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Cluster, PropagatesWorkerException) {
  EXPECT_THROW(Cluster::launch(3,
                               [](Communicator& comm) {
                                 if (comm.rank() == 1) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
               std::runtime_error);
}

TEST(PointToPoint, SendRecvDeliversPayload) {
  Cluster::launch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> msg{1.0, 2.0, 3.0};
      comm.send(1, msg);
    } else {
      std::vector<double> out(3);
      comm.recv(0, out);
      EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(PointToPoint, MessagesFromOneSenderStayOrdered) {
  Cluster::launch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<double> msg{static_cast<double>(i)};
        comm.send(1, msg);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        std::vector<double> out(1);
        comm.recv(0, out);
        EXPECT_EQ(out[0], static_cast<double>(i));
      }
    }
  });
}

TEST(PointToPoint, LengthMismatchThrows) {
  EXPECT_THROW(Cluster::launch(2,
                               [](Communicator& comm) {
                                 if (comm.rank() == 0) {
                                   std::vector<double> msg{1.0, 2.0};
                                   comm.send(1, msg);
                                 } else {
                                   std::vector<double> out(3);
                                   comm.recv(0, out);  // wrong size
                                 }
                               }),
               std::runtime_error);
}

TEST(PointToPoint, BadRankThrows) {
  Cluster::launch(1, [](Communicator& comm) {
    std::vector<double> v(1);
    EXPECT_THROW(comm.send(5, v), std::invalid_argument);
    EXPECT_THROW(comm.recv(-1, v), std::invalid_argument);
  });
}

class AllReduceWorldSize : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceWorldSize, SumMatchesSerialReduction) {
  const int world = GetParam();
  const std::size_t n = 257;  // not divisible by world: uneven segments
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<double>(comm.rank() + 1) * (i + 1);
    }
    comm.all_reduce(data, ReduceOp::kSum);
    const double rank_sum = world * (world + 1) / 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i], rank_sum * (i + 1), 1e-9) << "i=" << i;
    }
  });
}

TEST_P(AllReduceWorldSize, AverageDividesByWorld) {
  const int world = GetParam();
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(64, static_cast<double>(comm.rank()));
    comm.all_reduce(data, ReduceOp::kAverage);
    const double expect = (world - 1) / 2.0;
    for (double v : data) EXPECT_NEAR(v, expect, 1e-12);
  });
}

TEST_P(AllReduceWorldSize, MaxSelectsMaximum) {
  const int world = GetParam();
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()),
                             static_cast<double>(-comm.rank())};
    comm.all_reduce(data, ReduceOp::kMax);
    EXPECT_EQ(data[0], static_cast<double>(world - 1));
    EXPECT_EQ(data[1], 0.0);
  });
}

TEST_P(AllReduceWorldSize, ResultBitwiseIdenticalAcrossRanks) {
  const int world = GetParam();
  const std::size_t n = 101;
  std::vector<std::vector<double>> results(world);
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(n);
    // Values whose sum order matters in floating point.
    std::mt19937_64 rng(1234 + comm.rank());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (double& v : data) v = dist(rng);
    comm.all_reduce(data, ReduceOp::kAverage);
    results[comm.rank()] = data;
  });
  for (int r = 1; r < world; ++r) {
    EXPECT_EQ(results[r], results[0]) << "rank " << r;
  }
}

TEST_P(AllReduceWorldSize, EmptyVectorIsNoop) {
  Cluster::launch(GetParam(), [](Communicator& comm) {
    std::vector<double> data;
    comm.all_reduce(data, ReduceOp::kSum);
    EXPECT_TRUE(data.empty());
  });
}

TEST_P(AllReduceWorldSize, VectorSmallerThanWorldStillReduces) {
  const int world = GetParam();
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data{1.0};
    comm.all_reduce(data, ReduceOp::kSum);
    EXPECT_NEAR(data[0], static_cast<double>(world), 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, AllReduceWorldSize,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

class BroadcastWorldSize : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastWorldSize, EveryRankReceivesRootData) {
  const int world = GetParam();
  for (int root = 0; root < world; ++root) {
    Cluster::launch(world, [&](Communicator& comm) {
      std::vector<double> data(33, comm.rank() == root ? 42.0 : -1.0);
      comm.broadcast(data, root);
      for (double v : data) EXPECT_EQ(v, 42.0);
    });
  }
}

TEST_P(BroadcastWorldSize, BadRootThrows) {
  Cluster::launch(GetParam(), [](Communicator& comm) {
    std::vector<double> data(1);
    EXPECT_THROW(comm.broadcast(data, comm.size()), std::invalid_argument);
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, BroadcastWorldSize,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(ReduceScatterV, OwnSegmentHoldsReducedValues) {
  const int world = 4;
  const std::vector<std::size_t> counts{3, 0, 5, 2};
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(10);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = (comm.rank() + 1) * 100.0 + i;
    }
    comm.reduce_scatter_v(data, counts, ReduceOp::kSum);
    // Sum over ranks of (r+1)*100 + i = 1000 + 4i.
    std::size_t offset = 0;
    for (int p = 0; p < comm.rank(); ++p) offset += counts[p];
    for (std::size_t i = 0; i < counts[comm.rank()]; ++i) {
      EXPECT_NEAR(data[offset + i], 1000.0 + 4.0 * (offset + i), 1e-9);
    }
  });
}

// Regression: every ReduceOp must flow through the _v collectives exactly
// as it does through all_reduce (shared detail::accumulate/finalize path) —
// kMax and kAverage must not be special cases of the scalar entry point.
TEST(ReduceScatterV, MaxReducesElementwiseThroughUnevenSegments) {
  const int world = 4;
  const std::vector<std::size_t> counts{3, 0, 5, 2};
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(10);
    for (std::size_t i = 0; i < data.size(); ++i) {
      // Rank holding the max alternates with i; max over ranks of
      // (r+1)*s is 4*s for s > 0.
      const double sign = (i % 2 == 0) ? 1.0 : -1.0;
      data[i] = sign * (comm.rank() + 1) * (static_cast<double>(i) + 1.0);
    }
    comm.reduce_scatter_v(data, counts, ReduceOp::kMax);
    std::size_t offset = 0;
    for (int p = 0; p < comm.rank(); ++p) offset += counts[p];
    for (std::size_t i = 0; i < counts[comm.rank()]; ++i) {
      const std::size_t j = offset + i;
      const double expect = (j % 2 == 0)
                                ? 4.0 * (static_cast<double>(j) + 1.0)
                                : -1.0 * (static_cast<double>(j) + 1.0);
      EXPECT_EQ(data[j], expect) << "j=" << j;
    }
  });
}

TEST(ReduceScatterV, MaxThenAllGatherMatchesAllReduceMax) {
  const int world = 3;
  const std::size_t n = 10;  // not divisible by world
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> via_v(n), via_allreduce(n);
    for (std::size_t i = 0; i < n; ++i) {
      via_v[i] = via_allreduce[i] =
          std::cos(static_cast<double>(i) * (comm.rank() + 1));
    }
    std::vector<std::size_t> counts(world, n / world);
    for (std::size_t r = 0; r < n % world; ++r) ++counts[r];
    comm.reduce_scatter_v(via_v, counts, ReduceOp::kMax);
    comm.all_gather_v(via_v, counts);
    comm.all_reduce(via_allreduce, ReduceOp::kMax);
    EXPECT_EQ(via_v, via_allreduce);  // identical path => bitwise equal
  });
}

TEST(ReduceScatterV, AverageDividesOwnSegmentOnce) {
  const int world = 4;
  const std::vector<std::size_t> counts{1, 3, 2, 1};
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(7, static_cast<double>(comm.rank()));
    comm.reduce_scatter_v(data, counts, ReduceOp::kAverage);
    std::size_t offset = 0;
    for (int p = 0; p < comm.rank(); ++p) offset += counts[p];
    for (std::size_t i = 0; i < counts[comm.rank()]; ++i) {
      EXPECT_NEAR(data[offset + i], 1.5, 1e-12);  // mean of 0..3
    }
  });
}

TEST(ReduceScatterV, CountMismatchThrows) {
  Cluster::launch(2, [](Communicator& comm) {
    std::vector<double> data(4);
    std::vector<std::size_t> bad_counts{1, 2};  // sums to 3, not 4
    EXPECT_THROW(comm.reduce_scatter_v(data, bad_counts),
                 std::invalid_argument);
  });
}

TEST(AllGatherV, DistributesEverySegment) {
  const int world = 3;
  const std::vector<std::size_t> counts{2, 3, 1};
  Cluster::launch(world, [&](Communicator& comm) {
    std::vector<double> data(6, -7.0);
    std::size_t offset = 0;
    for (int p = 0; p < comm.rank(); ++p) offset += counts[p];
    for (std::size_t i = 0; i < counts[comm.rank()]; ++i) {
      data[offset + i] = comm.rank() * 10.0 + i;
    }
    comm.all_gather_v(data, counts);
    EXPECT_EQ(data, (std::vector<double>{0, 1, 10, 11, 12, 20}));
  });
}

TEST(AllGatherScalar, CollectsOnePerRank) {
  Cluster::launch(4, [](Communicator& comm) {
    std::vector<double> out(4);
    comm.all_gather_scalar(comm.rank() * 2.0, out);
    EXPECT_EQ(out, (std::vector<double>{0, 2, 4, 6}));
  });
}

TEST(Barrier, OrdersSideEffects) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  Cluster::launch(6, [&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 6) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

// Randomized collective stress: interleave all-reduce / broadcast /
// reduce-scatter / all-gather rounds with random (but rank-agreed) sizes
// and verify against serially computed expectations.
class CollectiveStress : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveStress, MixedOpSequencesStayCorrect) {
  const int world = 3 + GetParam() % 3;  // 3..5 workers
  std::mt19937_64 plan_rng(GetParam() * 131 + 7);
  struct Op {
    int kind;  // 0 allreduce, 1 broadcast, 2 rs+ag
    std::size_t size;
    int root;
  };
  std::vector<Op> ops;
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<std::size_t> size(1, 300);
  std::uniform_int_distribution<int> root(0, world - 1);
  for (int i = 0; i < 25; ++i) {
    ops.push_back({kind(plan_rng), size(plan_rng), root(plan_rng)});
  }

  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      std::vector<double> data(op.size);
      for (std::size_t j = 0; j < op.size; ++j) {
        data[j] = (comm.rank() + 1) * 1000.0 + i * 10.0 + j;
      }
      switch (op.kind) {
        case 0: {
          comm.all_reduce(data, ReduceOp::kSum);
          const double rank_sum = world * (world + 1) / 2.0;
          for (std::size_t j = 0; j < op.size; ++j) {
            EXPECT_NEAR(data[j], rank_sum * 1000.0 + world * (i * 10.0 + j),
                        1e-9);
          }
          break;
        }
        case 1: {
          comm.broadcast(data, op.root);
          for (std::size_t j = 0; j < op.size; ++j) {
            EXPECT_EQ(data[j], (op.root + 1) * 1000.0 + i * 10.0 + j);
          }
          break;
        }
        case 2: {
          // Even reduce-scatter followed by all-gather == all-reduce.
          std::vector<std::size_t> counts(world, op.size / world);
          for (std::size_t r = 0; r < op.size % world; ++r) ++counts[r];
          comm.reduce_scatter_v(data, counts, ReduceOp::kSum);
          comm.all_gather_v(data, counts);
          const double rank_sum = world * (world + 1) / 2.0;
          for (std::size_t j = 0; j < op.size; ++j) {
            EXPECT_NEAR(data[j], rank_sum * 1000.0 + world * (i * 10.0 + j),
                        1e-9);
          }
          break;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveStress, ::testing::Range(0, 6));

TEST(Collectives, LargeWorldSixteenWorkers) {
  Cluster::launch(16, [](Communicator& comm) {
    std::vector<double> data(1000, comm.rank() + 1.0);
    comm.all_reduce(data, ReduceOp::kSum);
    for (double v : data) EXPECT_NEAR(v, 136.0, 1e-9);  // 1+..+16
    std::vector<double> b(64, comm.rank() == 13 ? 3.5 : 0.0);
    comm.broadcast(b, 13);
    for (double v : b) EXPECT_EQ(v, 3.5);
  });
}

TEST(Collectives, RepeatedRoundsStayConsistent) {
  // Regression guard: channel reuse across many collective rounds must not
  // interleave messages between operations.
  Cluster::launch(3, [](Communicator& comm) {
    for (int round = 0; round < 50; ++round) {
      std::vector<double> data(17, comm.rank() + round);
      comm.all_reduce(data, ReduceOp::kSum);
      const double expect = 3.0 * round + 3.0;  // 0+1+2 + 3*round
      for (double v : data) EXPECT_NEAR(v, expect, 1e-12);
      std::vector<double> b(5, comm.rank() == round % 3 ? round : -1);
      comm.broadcast(b, round % 3);
      for (double v : b) EXPECT_EQ(v, round);
    }
  });
}

}  // namespace
}  // namespace spdkfac::comm
