// Fault-injection conformance matrix: every transport backend must survive
// a rank that drops an operation, hangs, or dies outright — at a send, at a
// barrier, and inside a fused all-reduce — by surfacing a structured
// comm::RankFailure on the blocked survivors within the armed deadline,
// never by hanging the launcher.
//
// Each cell launches 4 ranks with rank 1 armed as the victim
// (LaunchOptions::fault) and a short comm_timeout_s on everyone.  Worker
// ranks catch RankFailure and return an encoding {1, failed_rank, cause};
// an undisturbed rank returns {0}.  A killed/hung victim makes
// launch_collect throw LaunchFailure, whose partial_results() still carry
// the survivors' encodings — that is exactly the post-mortem path the
// launcher satellite added, so these tests pin it down too.
//
// Who a survivor *names* depends on where it was blocked: the rank whose
// recv timed out names the victim directly; ranks blocked behind it learn
// the root rank from the gossiped failure notice, but barrier waiters name
// the lowest non-arrived rank, which after a cascade can be an already-dead
// observer rather than the victim.  The matrix therefore asserts the strong
// property where the protocol guarantees it (every survivor detects *a*
// failure in bounded time; the union of named ranks includes the victim)
// rather than over-promising attribution in cascades.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <csignal>
#include <cstddef>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/collectives.hpp"
#include "comm/fault.hpp"
#include "comm/topology.hpp"
#include "comm/transport.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::comm {
namespace {

using testsupport::backend_name;
using testsupport::kAllTransports;

constexpr int kWorld = 4;
constexpr int kVictim = 1;
constexpr double kTimeout = 0.4;
constexpr double kHang = 1.5;  // > kTimeout: detection fires mid-hang

enum class Scenario { kSend, kBarrier, kAllReduce };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kSend: return "send";
    case Scenario::kBarrier: return "barrier";
    case Scenario::kAllReduce: return "allreduce";
  }
  return "?";
}

const char* action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kDrop: return "drop";
    case FaultAction::kHang: return "hang";
    case FaultAction::kKill: return "kill";
    default: return "?";
  }
}

/// The communication pattern under test.  Every rank catches RankFailure
/// and reports it, so the launcher never waits on a survivor.
std::vector<double> probe(Communicator& comm, Scenario scenario) {
  try {
    switch (scenario) {
      case Scenario::kSend: {
        // Ring exchange, then a barrier so ranks whose own exchange was
        // undisturbed still observe the stall.
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        std::vector<double> payload(4, comm.rank());
        comm.send(next, payload);
        comm.recv(prev, payload);
        comm.barrier();
        break;
      }
      case Scenario::kBarrier:
        comm.barrier();
        comm.barrier();
        break;
      case Scenario::kAllReduce: {
        std::vector<double> data(256);
        std::iota(data.begin(), data.end(), static_cast<double>(comm.rank()));
        all_reduce_ring(comm, data, ReduceOp::kSum);
        // A dropped chunk only starves the victim's downstream neighbour;
        // the barrier is what propagates the failure to ranks whose own
        // ring segments completed.
        comm.barrier();
        break;
      }
    }
  } catch (const RankFailure& failure) {
    return {1.0, static_cast<double>(failure.failed_rank()),
            static_cast<double>(failure.cause())};
  }
  return {0.0};
}

struct Encoded {
  bool detected = false;
  int dead = -1;
};

Encoded decode(const std::vector<double>& result) {
  Encoded e;
  if (!result.empty() && result[0] == 1.0) {
    e.detected = true;
    e.dead = static_cast<int>(result[1]);
  }
  return e;
}

/// Survivors must all have detected a failure, and at least one must have
/// named the victim (the direct observer always does; downstream ranks may
/// name an intermediate after a cascade).
void check_survivors(const std::vector<std::vector<double>>& results) {
  bool victim_named = false;
  for (int r = 0; r < kWorld; ++r) {
    if (r == kVictim) continue;
    const Encoded e = decode(results[static_cast<std::size_t>(r)]);
    EXPECT_TRUE(e.detected) << "rank " << r << " never observed the failure";
    victim_named = victim_named || e.dead == kVictim;
  }
  EXPECT_TRUE(victim_named) << "no survivor named the victim rank";
}

using Cell = std::tuple<TransportKind, FaultAction, Scenario>;

class FaultMatrix : public ::testing::TestWithParam<Cell> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(std::get<0>(GetParam()));
  }

  LaunchOptions options(FaultAction action, Scenario scenario) const {
    LaunchOptions opts;
    opts.comm_timeout_s = kTimeout;
    opts.collect_timeout_s = 30.0;  // backstop: a wedged cell fails, not hangs
    opts.fault.rank = kVictim;
    opts.fault.action = action;
    opts.fault.op =
        scenario == Scenario::kBarrier ? FaultOp::kBarrier : FaultOp::kSend;
    opts.fault.hang_s = kHang;
    return opts;
  }
};

TEST_P(FaultMatrix, SurvivorsDetectTheFailureWithinDeadline) {
  const auto [kind, action, scenario] = GetParam();
  const Topology topo = Topology::flat(kWorld);
  const LaunchOptions opts = options(action, scenario);
  const auto fn = [scenario](Communicator& comm) {
    return probe(comm, scenario);
  };

  if (action == FaultAction::kDrop) {
    // The victim survives a dropped operation: every rank returns an
    // encoding (the victim itself may time out on peers that already bailed
    // out), so the launch completes without a LaunchFailure.
    check_survivors(Cluster::launch_collect(kind, topo, fn, opts));
    return;
  }

  // Hang and kill destroy the victim (the hang victim dies once its nap
  // outlives every peer's deadline), so the launcher reports a failure.
  try {
    Cluster::launch_collect(kind, topo, fn, opts);
    FAIL() << "expected LaunchFailure for action="
           << action_name(action);
  } catch (const LaunchFailure& failure) {
    const auto failed = failure.failed_ranks();
    EXPECT_NE(std::find(failed.begin(), failed.end(), kVictim), failed.end())
        << "victim missing from failed_ranks()";
    ASSERT_EQ(failure.partial_results().size(),
              static_cast<std::size_t>(kWorld));
    check_survivors(failure.partial_results());
    if (action == FaultAction::kKill && kind != TransportKind::kInProcess) {
      // Process backends: the post-mortem must show death by SIGKILL.
      const RankExit& exit = failure.exits()[kVictim];
      EXPECT_TRUE(exit.signaled) << exit.describe();
      EXPECT_EQ(exit.term_signal, SIGKILL) << exit.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, FaultMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllTransports),
                       ::testing::Values(FaultAction::kDrop,
                                         FaultAction::kHang,
                                         FaultAction::kKill),
                       ::testing::Values(Scenario::kSend, Scenario::kBarrier,
                                         Scenario::kAllReduce)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return backend_name(std::get<0>(info.param)) + "_" +
             action_name(std::get<1>(info.param)) + "_" +
             scenario_name(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Deterministic trigger resolution
// ---------------------------------------------------------------------------

TEST(FaultInjector, SeededTriggerIsDeterministic) {
  FaultSpec spec;
  spec.rank = 0;
  spec.action = FaultAction::kDrop;
  spec.seed = 1234;
  spec.seed_range = 8;
  const FaultInjector a(spec), b(spec);
  EXPECT_EQ(a.trigger_op(), b.trigger_op());
  EXPECT_LT(a.trigger_op(), spec.after_ops + spec.seed_range);

  spec.seed = 1235;
  const FaultInjector c(spec);
  // Different seeds *may* collide in an 8-wide window; the spec field is
  // deterministic either way, which is the property under test.
  EXPECT_LT(c.trigger_op(), spec.after_ops + spec.seed_range);
}

TEST(FaultInjector, FiresExactlyOnceAtTheResolvedOp) {
  FaultSpec spec;
  spec.rank = 0;
  spec.action = FaultAction::kDrop;
  spec.after_ops = 3;
  FaultInjector injector(spec);
  int fired = 0;
  for (int op = 0; op < 10; ++op) {
    if (injector.decide(FaultOp::kSend) == FaultAction::kDrop) {
      EXPECT_EQ(op, 3);
      ++fired;
    }
  }
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------------
// Launcher fd hygiene (the handshake-leak satellite): a socket launch —
// clean or killed mid-mesh — must leave the parent's fd table exactly as it
// found it (listener sockets, result pipes and rendezvous dirs all cleaned).
// ---------------------------------------------------------------------------

int open_fd_count() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TEST(LauncherFdHygiene, SocketLaunchLeaksNoDescriptors) {
#if SPDKFAC_TSAN
  GTEST_SKIP() << "multi-process backends unsupported under TSan";
#endif
  const Topology topo = Topology::flat(2);
  const auto fn = [](Communicator& comm) -> std::vector<double> {
    std::vector<double> v{static_cast<double>(comm.rank())};
    all_reduce_ring(comm, v, ReduceOp::kSum);
    return v;
  };
  // Warm-up launch absorbs lazy one-time allocations (locale, getpwuid...).
  Cluster::launch_collect(TransportKind::kSocket, topo, fn);

  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 3; ++i) {
    Cluster::launch_collect(TransportKind::kSocket, topo, fn);
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST(LauncherFdHygiene, KilledRankLeaksNoDescriptors) {
#if SPDKFAC_TSAN
  GTEST_SKIP() << "multi-process backends unsupported under TSan";
#endif
  const Topology topo = Topology::flat(2);
  LaunchOptions opts;
  opts.comm_timeout_s = kTimeout;
  opts.collect_timeout_s = 30.0;
  opts.fault.rank = 1;
  opts.fault.action = FaultAction::kKill;
  const auto fn = [](Communicator& comm) -> std::vector<double> {
    return probe(comm, Scenario::kSend);
  };
  Cluster::launch_collect(TransportKind::kSocket, topo, fn);  // warm-up, clean

  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(
        Cluster::launch_collect(TransportKind::kSocket, topo, fn, opts),
        LaunchFailure);
  }
  EXPECT_EQ(open_fd_count(), before);
}

}  // namespace
}  // namespace spdkfac::comm
