// Randomized conformance suite for the collective algorithm library.
//
// Every all-reduce algorithm must satisfy the same contract the seed's ring
// established, for every ReduceOp, world size, and vector size (including
// 0, 1, and sizes not divisible by P):
//
//   1. results are bitwise identical on every rank;
//   2. results match a sequential reference reduction (exactly for kMax,
//      whose combine is associative without rounding; within floating-point
//      reassociation tolerance for kSum/kAverage).
//
// The suite sweeps algorithm x op x P in {1,2,3,4,8} with deterministic
// pseudo-random sizes/values, plus hierarchical shapes (2x2, 2x4, 4x2) and
// the kAuto selector path.
//
// The compressed collectives (comm/codec.hpp) are held to the same contract
// on the same grid — codec x op x backend x P over the randomized sizes:
// cross-rank bitwise identity, bitwise equality with the replayed-codec
// reference (decode(encode(x_r)) reduced in rank order), and for the lossy
// codecs an analytic error bound against the exact reduction.  The plan's
// algorithm annotation is deliberately absent from the codec cells: the
// compressed path always ships via the fixed all-gather + rank-order decode,
// so the annotation shapes cost modeling only and cannot change the bytes
// (that invariance is the documented contract, not an omission).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "comm/codec.hpp"
#include "comm/collectives.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::comm {
namespace {

std::vector<std::vector<double>> random_inputs(int world, std::size_t n,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<std::vector<double>> inputs(world);
  for (auto& v : inputs) {
    v.resize(n);
    for (double& x : v) x = dist(rng);
  }
  return inputs;
}

std::vector<double> sequential_reference(
    const std::vector<std::vector<double>>& inputs, ReduceOp op) {
  std::vector<double> out = inputs[0];
  for (std::size_t r = 1; r < inputs.size(); ++r) {
    detail::accumulate(out, inputs[r], op);
  }
  detail::finalize(out, op, static_cast<int>(inputs.size()));
  return out;
}

/// Vector sizes exercised for world size P: the degenerate 0 and 1, sizes
/// straddling P (so segments go empty / uneven), and random sizes.
std::vector<std::size_t> sizes_for(int world, std::uint64_t seed) {
  std::vector<std::size_t> sizes{0, 1};
  if (world > 1) {
    sizes.push_back(static_cast<std::size_t>(world) - 1);
    sizes.push_back(static_cast<std::size_t>(world) + 1);  // not divisible
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> dist(2, 257);
  for (int i = 0; i < 4; ++i) {
    std::size_t n = dist(rng);
    if (world > 1 && n % world == 0) ++n;  // force uneven partitions
    sizes.push_back(n);
  }
  return sizes;
}

void expect_conformant(TransportKind kind, const Topology& topo,
                       AllReduceAlgo algo, ReduceOp op, std::size_t n,
                       std::uint64_t seed) {
  const int world = topo.world_size();
  const auto inputs = random_inputs(world, n, seed);
  const auto expected = sequential_reference(inputs, op);

  // launch_collect runs the ranks as threads (kInProcess) or forked
  // processes (kSharedMemory / kSocket) and ships each rank's result back —
  // the same conformance contract is held on every backend.
  const auto results =
      Cluster::launch_collect(kind, topo, [&](Communicator& comm) {
        std::vector<double> data = inputs[comm.rank()];
        comm.all_reduce(data, op, algo);
        return data;
      });

  const char* ctx_algo = to_string(algo);
  for (int r = 0; r < world; ++r) {
    // Bitwise identity across ranks: vector operator== compares exactly.
    EXPECT_EQ(results[r], results[0])
        << ctx_algo << " diverges on rank " << r << " (n=" << n << ")";
  }
  ASSERT_EQ(results[0].size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (op == ReduceOp::kMax) {
      // max is rounding-free: any association gives the exact same value.
      EXPECT_EQ(results[0][i], expected[i])
          << ctx_algo << " kMax mismatch at i=" << i << " (n=" << n << ")";
    } else {
      EXPECT_NEAR(results[0][i], expected[i], 1e-9)
          << ctx_algo << " mismatch at i=" << i << " (n=" << n << ")";
    }
  }
}

struct Case {
  AllReduceAlgo algo;
  int world;
  TransportKind kind = TransportKind::kInProcess;
};

class ConformanceFlat : public ::testing::TestWithParam<Case> {};

TEST_P(ConformanceFlat, RandomSizesAllOps) {
  const Case c = GetParam();
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(c.kind);
  const Topology topo = Topology::flat(c.world);
  std::uint64_t seed = 0xC0FFEE + 977 * c.world +
                       31 * static_cast<std::uint64_t>(c.algo);
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage, ReduceOp::kMax}) {
    for (std::size_t n : sizes_for(c.world, ++seed)) {
      expect_conformant(c.kind, topo, c.algo, op, n, ++seed);
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string algo = to_string(info.param.algo);
  for (char& ch : algo) {
    if (ch == '-') ch = '_';
  }
  return algo + "_P" + std::to_string(info.param.world) + "_" +
         testsupport::backend_name(info.param.kind);
}

/// Every concrete algorithm plus the kAuto dispatch path.
std::vector<AllReduceAlgo> algos_under_test() {
  std::vector<AllReduceAlgo> algos(kAllReduceAlgos.begin(),
                                   kAllReduceAlgos.end());
  algos.push_back(AllReduceAlgo::kAuto);
  return algos;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (AllReduceAlgo algo : algos_under_test()) {
    // Full world sweep in-process; the process-per-rank backends cover
    // P in {2, 3, 4} (the same algorithms over a real wire — forking 8
    // ranks per cell buys no additional coverage).
    for (int world : {1, 2, 3, 4, 8}) cases.push_back({algo, world});
    for (TransportKind kind :
         {TransportKind::kSharedMemory, TransportKind::kSocket}) {
      for (int world : {2, 3, 4}) cases.push_back({algo, world, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AlgoByWorld, ConformanceFlat,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---------------------------------------------------------------------------
// Compressed-collective conformance (codec x op x backend x P)
// ---------------------------------------------------------------------------

constexpr double kTopKRatio = 0.05;

double chunk_absmax(const std::vector<double>& v, std::size_t chunk) {
  const std::size_t begin = chunk * kInt8ChunkElements;
  const std::size_t end = std::min(v.size(), begin + kInt8ChunkElements);
  double m = 0.0;
  for (std::size_t i = begin; i < end; ++i) m = std::max(m, std::abs(v[i]));
  return m;
}

void expect_codec_conformant(TransportKind kind, const Topology& topo,
                             Codec codec, ReduceOp op, std::size_t n,
                             std::uint64_t seed) {
  const int world = topo.world_size();
  const auto inputs = random_inputs(world, n, seed);
  const auto exact = sequential_reference(inputs, op);

  // Replayed-codec reference: what the collective must equal *bitwise* —
  // each rank's contribution round-tripped through the codec, reduced in
  // rank order 0..P-1 (kNone degenerates to the sequential reference).
  std::vector<double> replayed;
  for (int r = 0; r < world; ++r) {
    std::vector<double> wire(wire_elements(codec, n, kTopKRatio));
    std::vector<double> rt(n);
    encode(codec, inputs[r], wire, kTopKRatio);
    decode(codec, wire, rt, kTopKRatio);
    if (r == 0) {
      replayed = std::move(rt);
    } else {
      detail::accumulate(replayed, rt, op);
    }
  }
  detail::finalize(replayed, op, world);

  const auto results =
      Cluster::launch_collect(kind, topo, [&](Communicator& comm) {
        std::vector<double> data = inputs[comm.rank()];
        std::vector<double> scratch(
            all_reduce_scratch_elements(codec, n, world, kTopKRatio));
        compressed_all_reduce(comm, data, codec, op, kTopKRatio, scratch);
        return data;
      });

  const char* ctx = to_string(codec);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(results[r], results[0])
        << ctx << " diverges on rank " << r << " (n=" << n << ")";
  }
  EXPECT_EQ(results[0], replayed)
      << ctx << " differs from the replayed-codec reference (n=" << n << ")";

  // Lossy codecs must stay within the analytic bound of the exact
  // reduction (file comment of comm/codec.hpp); top-k loss is unbounded
  // here by design — error feedback accounts for it upstream.
  const double scale = op == ReduceOp::kAverage ? 1.0 / world : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double tol = -1.0;
    if (codec == Codec::kNone) {
      tol = 0.0;
    } else if (codec == Codec::kFp16) {
      double amax = 0.0;
      for (const auto& v : inputs) amax = std::max(amax, std::abs(v[i]));
      tol = world * amax * 0x1p-10 + 1e-12;
    } else if (codec == Codec::kInt8) {
      double amax = 0.0;
      for (const auto& v : inputs) {
        amax = std::max(amax, chunk_absmax(v, i / kInt8ChunkElements));
      }
      tol = world * amax / 254.0 + 1e-12;
    }
    if (tol == 0.0) {
      EXPECT_EQ(results[0][i], exact[i]) << ctx << " at i=" << i;
    } else if (tol > 0.0) {
      EXPECT_NEAR(results[0][i], exact[i], tol * scale)
          << ctx << " at i=" << i << " (n=" << n << ")";
    }
  }
}

struct CodecCase {
  Codec codec;
  int world;
  TransportKind kind = TransportKind::kInProcess;
};

class CodecConformance : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecConformance, RandomSizesSumAndAverage) {
  const CodecCase c = GetParam();
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(c.kind);
  const Topology topo = Topology::flat(c.world);
  std::uint64_t seed = 0xC0DEC + 977 * static_cast<std::uint64_t>(c.world) +
                       31 * static_cast<std::uint64_t>(c.codec);
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage}) {
    for (std::size_t n : sizes_for(c.world, ++seed)) {
      expect_codec_conformant(c.kind, topo, c.codec, op, n, ++seed);
    }
  }
}

std::vector<CodecCase> codec_cases() {
  std::vector<CodecCase> cases;
  for (Codec codec :
       {Codec::kNone, Codec::kFp16, Codec::kInt8, Codec::kTopK}) {
    for (int world : {1, 2, 4, 8}) cases.push_back({codec, world});
    for (TransportKind kind :
         {TransportKind::kSharedMemory, TransportKind::kSocket}) {
      for (int world : {2, 3}) cases.push_back({codec, world, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    CodecByWorld, CodecConformance, ::testing::ValuesIn(codec_cases()),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return std::string(to_string(info.param.codec)) + "_P" +
             std::to_string(info.param.world) + "_" +
             testsupport::backend_name(info.param.kind);
    });

// The hierarchical algorithm on genuinely hierarchical shapes (and the
// other algorithms, which must ignore the shape and still be correct).
struct HierCase {
  int nodes;
  int gpus;
  TransportKind kind = TransportKind::kInProcess;
};

class ConformanceHierarchical : public ::testing::TestWithParam<HierCase> {};

TEST_P(ConformanceHierarchical, NodesByGpusAllAlgorithms) {
  const auto [nodes, gpus, kind] = GetParam();
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(kind);
  const Topology topo = Topology::multi_node(nodes, gpus);
  std::uint64_t seed = 0xBEEF + 101 * nodes + 7 * gpus;
  for (AllReduceAlgo algo : algos_under_test()) {
    for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage, ReduceOp::kMax}) {
      for (std::size_t n : sizes_for(topo.world_size(), ++seed)) {
        expect_conformant(kind, topo, algo, op, n, ++seed);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConformanceHierarchical,
    ::testing::Values(HierCase{2, 2}, HierCase{2, 4}, HierCase{4, 2},
                      HierCase{2, 2, TransportKind::kSharedMemory},
                      HierCase{2, 2, TransportKind::kSocket}),
    [](const auto& info) {
      return std::to_string(info.param.nodes) + "x" +
             std::to_string(info.param.gpus) + "_" +
             testsupport::backend_name(info.param.kind);
    });

// A topology whose world size disagrees with the cluster must degrade to
// flat inside the hierarchical algorithm, not crash or corrupt.
TEST(ConformanceEdge, HierarchicalWithMismatchedTopologyFallsBackToFlat) {
  const auto inputs = random_inputs(3, 17, 42);
  const auto expected = sequential_reference(inputs, ReduceOp::kSum);
  Cluster::launch(3, [&](Communicator& comm) {
    std::vector<double> data = inputs[comm.rank()];
    all_reduce_hierarchical(comm, data, ReduceOp::kSum,
                            Topology::multi_node(2, 4));  // world 8 != 3
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-9);
    }
  });
}

// Interleaving different algorithms in one session must not cross messages
// between operations (each algorithm drains everything it sends).
TEST(ConformanceEdge, MixedAlgorithmSequenceStaysCorrect) {
  const Topology topo = Topology::multi_node(2, 2);
  constexpr AllReduceAlgo kSequence[] = {
      AllReduceAlgo::kHalvingDoubling, AllReduceAlgo::kRing,
      AllReduceAlgo::kHierarchical,    AllReduceAlgo::kFlatTree,
      AllReduceAlgo::kAuto,            AllReduceAlgo::kHierarchical,
      AllReduceAlgo::kHalvingDoubling};
  Cluster::launch(topo, [&](Communicator& comm) {
    int round = 0;
    for (AllReduceAlgo algo : kSequence) {
      std::vector<double> data(13 + round, comm.rank() + round + 1.0);
      comm.all_reduce(data, ReduceOp::kSum, algo);
      const double expect = 4.0 * (round + 1.0) + 6.0;  // sum of rank+round+1
      for (double v : data) EXPECT_NEAR(v, expect, 1e-12);
      ++round;
    }
  });
}

// The selector itself: never worse than ring, latency-bound small messages
// avoid the ring, hierarchical shapes route large messages through the
// two-level algorithm.
TEST(AlgorithmSelector, ChosenCostNeverExceedsRing) {
  for (const Topology& topo :
       {Topology::flat(4), Topology::flat(6), Topology::flat(64),
        Topology::multi_node(2, 2), Topology::multi_node(8, 4)}) {
    const AlgorithmSelector sel(topo);
    for (std::size_t m = 1; m <= 100'000'000; m *= 10) {
      EXPECT_LE(sel.best_cost(m), sel.cost(AllReduceAlgo::kRing, m))
          << "topology " << topo.nodes << "x" << topo.gpus_per_node
          << " at m=" << m;
    }
  }
}

TEST(AlgorithmSelector, SwitchesAlgorithmsAcrossMessageSizes) {
  // Flat non-power-of-two: halving/doubling's fold penalty makes the ring
  // win at large m while log-depth wins at small m — a real crossover.
  const AlgorithmSelector flat(Topology::flat(12));
  EXPECT_EQ(flat.choose(1), AllReduceAlgo::kHalvingDoubling);
  EXPECT_EQ(flat.choose(100'000'000), AllReduceAlgo::kRing);

  // Hierarchical shape: small/medium messages keep their latencies on the
  // cheap intra-node links (two-level), huge messages fall back to a
  // bandwidth-optimal flat algorithm over the network.
  const AlgorithmSelector hier(Topology::multi_node(4, 8));
  EXPECT_EQ(hier.choose(1), AllReduceAlgo::kHierarchical);
  EXPECT_EQ(hier.choose(100'000), AllReduceAlgo::kHierarchical);
  const AllReduceAlgo huge = hier.choose(100'000'000);
  EXPECT_NE(huge, AllReduceAlgo::kHierarchical);
  EXPECT_LE(hier.cost(huge, 100'000'000),
            hier.cost(AllReduceAlgo::kRing, 100'000'000));
}

TEST(AlgorithmSelector, SingleRankIsFreeAndRing) {
  const AlgorithmSelector sel{AlgorithmSelector(Topology::flat(1))};
  EXPECT_EQ(sel.choose(1 << 20), AllReduceAlgo::kRing);
  EXPECT_EQ(sel.best_cost(1 << 20), 0.0);
}

TEST(AlgorithmSelector, FittedTermOverrideChangesChoice) {
  AlgorithmSelector sel(Topology::flat(8));
  // Pretend a fitted model found flat-tree to be free on this machine.
  sel.set_term(AllReduceAlgo::kFlatTree, LinkModel{0.0, 0.0});
  EXPECT_EQ(sel.choose(1 << 20), AllReduceAlgo::kFlatTree);
  EXPECT_EQ(sel.cost(AllReduceAlgo::kFlatTree, 123), 0.0);
}

}  // namespace
}  // namespace spdkfac::comm
