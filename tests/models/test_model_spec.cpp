// Validates the shape-level model specs against the paper's Table II and the
// factor statistics quoted in Sections III-A and IV-A.
#include "models/model_spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace spdkfac::models {
namespace {

double mega(double x) { return x / 1e6; }

TEST(LayerSpec, ConvDerivedQuantities) {
  LayerSpec l;
  l.kind = LayerKind::kConv2d;
  l.in_channels = 512;
  l.out_channels = 512;
  l.kernel_h = l.kernel_w = 3;
  l.out_h = l.out_w = 7;
  EXPECT_EQ(l.dim_a(), 4608u);
  EXPECT_EQ(l.dim_g(), 512u);
  EXPECT_EQ(l.params(), 512u * 4608u);
  // The paper's largest ResNet-50 factor: 4608*(4608+1)/2 = 10,619,136.
  EXPECT_EQ(l.a_elements(), 10'619'136u);
  EXPECT_DOUBLE_EQ(l.fwd_flops(1), 2.0 * 49 * 512 * 4608);
  EXPECT_DOUBLE_EQ(l.bwd_flops(1), 2.0 * l.fwd_flops(1));
  EXPECT_DOUBLE_EQ(l.factor_a_flops(2), 2.0 * 49 * 4608.0 * 4608.0);
}

TEST(LayerSpec, LinearWithBiasAugmentsA) {
  LayerSpec l;
  l.kind = LayerKind::kLinear;
  l.in_channels = 2048;
  l.out_channels = 1000;
  l.has_bias = true;
  EXPECT_EQ(l.dim_a(), 2049u);
  EXPECT_EQ(l.dim_g(), 1000u);
  EXPECT_EQ(l.params(), 2048u * 1000 + 1000);
}

struct TableIIRow {
  const char* name;
  double params_m;     // millions
  std::size_t layers;  // KFAC-preconditioned layers
  std::size_t batch;
  double a_m;  // millions of upper-triangle elements
  double g_m;
};

class TableII : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(TableII, MatchesPaperWithinTolerance) {
  const TableIIRow row = GetParam();
  const ModelSpec spec = model_by_name(row.name);

  // Layer count must match exactly — the paper's "# Layers" column.
  EXPECT_EQ(spec.num_layers(), row.layers) << spec.name;
  EXPECT_EQ(spec.default_batch, row.batch);

  // Parameter and factor-element totals within 3% (the paper rounds to one
  // decimal and counts only preconditioned parameters).
  EXPECT_NEAR(mega(spec.total_params()), row.params_m, row.params_m * 0.03)
      << spec.name;
  EXPECT_NEAR(mega(spec.total_a_elements()), row.a_m, row.a_m * 0.03)
      << spec.name;
  EXPECT_NEAR(mega(spec.total_g_elements()), row.g_m, row.g_m * 0.03)
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableII,
    ::testing::Values(TableIIRow{"ResNet-50", 25.6, 54, 32, 62.3, 14.6},
                      TableIIRow{"ResNet-152", 60.2, 156, 8, 162.0, 32.9},
                      // The paper prints sum(G) = 18.0M for DenseNet-201;
                      // the architecture's G dims (bottleneck 128 / growth 32
                      // outputs) yield 1.81M — an exact 10x gap alongside a
                      // matching sum(A), strongly suggesting a decimal typo
                      // in Table II.  We assert the computed value; see
                      // EXPERIMENTS.md.
                      TableIIRow{"DenseNet-201", 20.0, 201, 16, 131.0, 1.81},
                      TableIIRow{"Inception-v4", 42.7, 150, 16, 116.4, 4.7}),
    [](const auto& info) {
      std::string n = info.param.name;
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(ResNet50, FactorSizeExtremesMatchSectionIVA) {
  // Section IV-A: "in ResNet-50, the smallest number of communicated
  // elements of the Kronecker factor is 2,080 while the largest is
  // 10,619,136".
  const ModelSpec spec = resnet50();
  const auto sizes = spec.factor_packed_sizes();
  EXPECT_EQ(*std::min_element(sizes.begin(), sizes.end()), 2080u);
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 10'619'136u);
}

TEST(ResNet50, StructureSanity) {
  const ModelSpec spec = resnet50();
  // conv1 is 7x7 stride 2 on 3 channels.
  EXPECT_EQ(spec.layers.front().kernel_h, 7u);
  EXPECT_EQ(spec.layers.front().in_channels, 3u);
  EXPECT_EQ(spec.layers.front().out_h, 112u);
  // Classifier is a biased linear 2048 -> 1000.
  const LayerSpec& fc = spec.layers.back();
  EXPECT_EQ(fc.kind, LayerKind::kLinear);
  EXPECT_EQ(fc.in_channels, 2048u);
  EXPECT_EQ(fc.out_channels, 1000u);
  EXPECT_TRUE(fc.has_bias);
  // Final conv stage operates on 7x7 maps.
  const auto& last_conv = spec.layers[spec.layers.size() - 2];
  EXPECT_EQ(last_conv.out_h, 7u);
}

TEST(ResNet152, SharesStemAndHeadWithResNet50) {
  const ModelSpec r50 = resnet50(), r152 = resnet152();
  EXPECT_EQ(r50.layers.front().dim_a(), r152.layers.front().dim_a());
  EXPECT_EQ(r50.layers.back().dim_a(), r152.layers.back().dim_a());
  EXPECT_GT(r152.total_params(), 2 * r50.total_params());
}

TEST(DenseNet201, GrowthPattern) {
  const ModelSpec spec = densenet201();
  // Dense layers alternate 1x1 bottlenecks (out 128) and 3x3 growth convs
  // (out 32).
  std::size_t growth_convs = 0;
  for (const auto& l : spec.layers) {
    if (l.kernel_h == 3 && l.out_channels == 32) ++growth_convs;
  }
  EXPECT_EQ(growth_convs, 6u + 12 + 48 + 32);
  EXPECT_EQ(spec.layers.back().in_channels, 1920u);
}

TEST(InceptionV4, HasRectangularKernels) {
  const ModelSpec spec = inceptionv4();
  bool has_1x7 = false, has_7x1 = false;
  for (const auto& l : spec.layers) {
    if (l.kernel_h == 1 && l.kernel_w == 7) has_1x7 = true;
    if (l.kernel_h == 7 && l.kernel_w == 1) has_7x1 = true;
  }
  EXPECT_TRUE(has_1x7);
  EXPECT_TRUE(has_7x1);
  EXPECT_EQ(spec.layers.back().in_channels, 1536u);
}

TEST(InceptionV4, SmallGFactorsExplainTableII) {
  // Table II: Inception-v4 has the smallest sum(G) (4.7M) because its
  // branches have narrow outputs; no G dim should exceed 1536 except none.
  const ModelSpec spec = inceptionv4();
  for (const auto& l : spec.layers) {
    EXPECT_LE(l.dim_g(), 1536u) << l.name;
  }
}

TEST(ModelByName, NormalizesNames) {
  EXPECT_EQ(model_by_name("resnet50").name, "ResNet-50");
  EXPECT_EQ(model_by_name("ResNet-152").name, "ResNet-152");
  EXPECT_EQ(model_by_name("DENSENET_201").name, "DenseNet-201");
  EXPECT_EQ(model_by_name("inception v4").name, "Inception-v4");
  EXPECT_THROW(model_by_name("alexnet"), std::invalid_argument);
}

TEST(PaperModels, ReturnsAllFourInOrder) {
  const auto all = paper_models();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "ResNet-50");
  EXPECT_EQ(all[3].name, "Inception-v4");
}

TEST(FactorDims, OrderedAThenG) {
  const ModelSpec spec = resnet50();
  const auto dims = spec.factor_dims();
  ASSERT_EQ(dims.size(), 2 * spec.num_layers());
  EXPECT_EQ(dims[0], spec.layers[0].dim_a());
  EXPECT_EQ(dims[spec.num_layers()], spec.layers[0].dim_g());
}

TEST(FactorPackedSizes, Fig3DistributionSpansDecades) {
  // Fig. 3: factor sizes span ~1e3 to ~1e7 communicated elements.
  for (const auto& spec : paper_models()) {
    const auto sizes = spec.factor_packed_sizes();
    ASSERT_EQ(sizes.size(), 2 * spec.num_layers());
    EXPECT_LT(*std::min_element(sizes.begin(), sizes.end()), 10'000u)
        << spec.name;
    EXPECT_GT(*std::max_element(sizes.begin(), sizes.end()), 1'000'000u)
        << spec.name;
  }
}

TEST(Flops, ResNet50ForwardIsRoughly4GFlopPerImage) {
  // Well-known figure: ResNet-50 forward ~4.1 GFLOP (MAC-doubled) at 224².
  const ModelSpec spec = resnet50();
  const double gflop = spec.total_fwd_flops(1) / 1e9;
  EXPECT_GT(gflop, 3.0);
  EXPECT_LT(gflop, 9.0);
}

TEST(Flops, ScaleLinearlyWithBatch) {
  const ModelSpec spec = densenet201();
  EXPECT_DOUBLE_EQ(spec.total_fwd_flops(16), 16.0 * spec.total_fwd_flops(1));
  EXPECT_DOUBLE_EQ(spec.total_bwd_flops(4), 2.0 * spec.total_fwd_flops(4));
}

TEST(Vgg16, KnownParameterCountAndStructure) {
  // Classic figure: VGG-16 has 138.36M parameters (conv 14.7M + fc 123.6M).
  const ModelSpec spec = vgg16();
  EXPECT_EQ(spec.num_layers(), 16u);
  EXPECT_NEAR(mega(spec.total_params()), 138.4, 138.4 * 0.01);
  // fc6's A factor (25088+1) is the largest factor in any common CNN.
  const LayerSpec& fc6 = spec.layers[13];
  EXPECT_EQ(fc6.kind, LayerKind::kLinear);
  EXPECT_EQ(fc6.dim_a(), 25089u);
  // VGG convs carry biases (no BatchNorm) -> bias-augmented A factors.
  EXPECT_EQ(spec.layers[0].dim_a(), 3u * 9 + 1);
}

TEST(Vgg19, DeeperThanVgg16) {
  const ModelSpec v16 = vgg16(), v19 = vgg19();
  EXPECT_EQ(v19.num_layers(), 19u);
  EXPECT_GT(v19.total_params(), v16.total_params());
  EXPECT_NEAR(mega(v19.total_params()), 143.7, 143.7 * 0.01);
}

TEST(ModelByName, ResolvesVggExtensions) {
  EXPECT_EQ(model_by_name("vgg16").name, "VGG-16");
  EXPECT_EQ(model_by_name("VGG-19").name, "VGG-19");
}

TEST(Flops, FactorFlopsPositiveForAllLayers) {
  for (const auto& spec : paper_models()) {
    for (const auto& l : spec.layers) {
      EXPECT_GT(l.factor_a_flops(1), 0.0) << spec.name << ":" << l.name;
      EXPECT_GT(l.factor_g_flops(1), 0.0) << spec.name << ":" << l.name;
    }
  }
}

TEST(ConvSpec, MirrorsSmallCnnShapes) {
  // conv_spec(1, 12, 8, 16, 5) must describe exactly the preconditioned
  // layers of nn::make_small_cnn(1, 12, 8, 16, 5): biased 3x3 'same' convs
  // around 2x2 pools, biased linear classifier.
  const ModelSpec spec = conv_spec(1, 12, 8, 16, 5);
  ASSERT_EQ(spec.layers.size(), 3u);

  EXPECT_EQ(spec.layers[0].kind, LayerKind::kConv2d);
  EXPECT_EQ(spec.layers[0].dim_a(), 1u * 9u + 1u);
  EXPECT_EQ(spec.layers[0].dim_g(), 8u);
  EXPECT_EQ(spec.layers[0].params(), 9u * 8u + 8u);
  EXPECT_EQ(spec.layers[0].spatial_positions(), 12u * 12u);

  EXPECT_EQ(spec.layers[1].dim_a(), 8u * 9u + 1u);
  EXPECT_EQ(spec.layers[1].dim_g(), 16u);
  EXPECT_EQ(spec.layers[1].spatial_positions(), 6u * 6u);  // after one pool

  EXPECT_EQ(spec.layers[2].kind, LayerKind::kLinear);
  EXPECT_EQ(spec.layers[2].dim_a(), 16u * 3u * 3u + 1u);  // after two pools
  EXPECT_EQ(spec.layers[2].dim_g(), 5u);

  // Mixed heterogeneous dims is the point of the spec: the linear factor
  // dwarfs the first conv factor.
  EXPECT_GT(spec.layers[2].a_elements(), spec.layers[0].a_elements());
}

TEST(ConvSpec, RejectsDegenerateShapes) {
  EXPECT_THROW(conv_spec(1, 0, 4, 6, 3), std::invalid_argument);
  EXPECT_THROW(conv_spec(1, 10, 4, 6, 3), std::invalid_argument);  // not %4
  EXPECT_THROW(conv_spec(0, 8, 4, 6, 3), std::invalid_argument);
  EXPECT_THROW(conv_spec(1, 8, 4, 6, 0), std::invalid_argument);
}

}  // namespace
}  // namespace spdkfac::models
