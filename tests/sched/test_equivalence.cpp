// Cross-layer schedule equivalence — the acceptance test of the unified
// iteration task-graph: for every strategy × factor-comm mode × world size,
// the simulator's collective task sequence must be byte-identical to the
// collective submissions the runtime optimizer actually records on the
// async engine — same op kinds, same fused group membership, same element
// counts, same chosen all-reduce algorithm, same inverse placement and
// broadcast roots, in the same order.
//
// Both layers consume one sched::IterationPlan; this suite proves neither
// consumer drifts from it.  The runtime is given the model-derived pass
// timing as its planning profile (the paper's offline-profiling workflow),
// so its plan is built from exactly the inputs the simulator uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "models/model_spec.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"
#include "sim/iteration.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac {
namespace {

using nn::Tensor4D;
using tensor::Rng;

constexpr std::size_t kWidths[] = {6, 10, 8, 3};
constexpr std::size_t kIn = 6, kClasses = 3, kBatch = 8;
// Small threshold so the models split into several WFBP gradient groups.
constexpr std::size_t kGradThreshold = 80;
// Conv harness (mirrors models::conv_spec / nn::make_small_cnn).
constexpr std::size_t kConvChannels = 1, kConvHw = 8;
constexpr std::size_t kConvC1 = 4, kConvC2 = 6;

/// Which runtime network (and matching ModelSpec) a cell runs on —
/// exercises the plans on non-MLP shapes (mixed Conv2d/Linear factors).
enum class ModelKind { kMlp, kConv };

struct Config {
  core::DistStrategy strategy;
  sched::FactorCommMode factor_comm;  // SPD only; bulk strategies ignore it
  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing;
  ModelKind model = ModelKind::kMlp;
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  double topk_ratio = 0.01;
};

/// CI's forced-codec sweep: SPDKFAC_TEST_FACTOR_CODEC / _GRAD_CODEC /
/// _TOPK_RATIO overlay every cell (runtime options *and* simulator config
/// — that is the point: the whole suite must hold under compression too).
Config with_env_codecs(Config c) {
  if (const char* env = std::getenv("SPDKFAC_TEST_FACTOR_CODEC")) {
    c.factor_codec = comm::codec_from_string(env);
  }
  if (const char* env = std::getenv("SPDKFAC_TEST_GRAD_CODEC")) {
    c.grad_codec = comm::codec_from_string(env);
  }
  if (const char* env = std::getenv("SPDKFAC_TEST_TOPK_RATIO")) {
    c.topk_ratio = std::stod(env);
  }
  return c;
}

std::string config_name(const Config& c) {
  std::string n = std::string(to_string(c.strategy)) + "/" +
                  sched::to_string(c.factor_comm) + "@" +
                  comm::to_string(c.algo) +
                  (c.model == ModelKind::kConv ? " conv" : " mlp");
  if (c.factor_codec != comm::Codec::kNone ||
      c.grad_codec != comm::Codec::kNone) {
    n += std::string(" codec=") + comm::to_string(c.factor_codec) + "/" +
         comm::to_string(c.grad_codec);
  }
  return n;
}

models::ModelSpec spec_for(ModelKind kind) {
  if (kind == ModelKind::kConv) {
    return models::conv_spec(kConvChannels, kConvHw, kConvC1, kConvC2,
                             kClasses);
  }
  return models::mlp_spec(kWidths);
}

nn::Sequential model_for(ModelKind kind, Rng& rng) {
  if (kind == ModelKind::kConv) {
    return nn::make_small_cnn(kConvChannels, kConvHw, kConvC1, kConvC2,
                              kClasses, rng);
  }
  return nn::make_mlp(kWidths, rng);
}

nn::Batch sample_for(ModelKind kind, std::size_t batch, Rng& rng) {
  if (kind == ModelKind::kConv) {
    nn::SyntheticClassification data(kClasses, kConvChannels, kConvHw, 77);
    return data.sample(batch, rng);
  }
  nn::SyntheticClassification data(kClasses, kIn, 1, 77);
  return data.sample(batch, rng);
}

Tensor4D input_for(ModelKind kind, const nn::Batch& batch) {
  if (kind == ModelKind::kConv) return batch.inputs;
  Tensor4D flat(batch.inputs.n, kIn, 1, 1);
  flat.data = batch.inputs.data;
  return flat;
}

sim::AlgorithmConfig sim_config(const Config& c) {
  sim::AlgorithmConfig cfg;
  switch (c.strategy) {
    case core::DistStrategy::kDKfac:
      cfg = sim::AlgorithmConfig::dkfac();
      break;
    case core::DistStrategy::kMpdKfac:
      cfg = sim::AlgorithmConfig::mpd_kfac();
      break;
    case core::DistStrategy::kSpdKfac:
      cfg = sim::AlgorithmConfig::spd_kfac();
      cfg.factor_comm = c.factor_comm;
      break;
  }
  cfg.grad_fusion_threshold = kGradThreshold;
  cfg.collective_algo = c.algo;
  cfg.factor_codec = c.factor_codec;
  cfg.grad_codec = c.grad_codec;
  cfg.topk_ratio = c.topk_ratio;
  return cfg;
}

struct RuntimeCapture {
  std::vector<comm::OpRecord> records;  // rank 0, engine execution order
  sched::IterationPlan plan;
  sched::Placement placement;
};

/// The per-rank side of one distributed K-FAC step (hooked or post-hoc)
/// with the model-derived planning profile; calls `inspect(optimizer)`
/// after the step so the caller can capture its observable schedule.
template <typename Inspect>
void train_one_step(const Config& c, const models::ModelSpec& spec,
                    const perf::ClusterCalibration& cal, bool hooked,
                    comm::Communicator& comm, Inspect&& inspect) {
  Rng init(4242);
  nn::Sequential model = model_for(c.model, init);
  auto layers = model.preconditioned_layers();

  core::DistKfacOptions opts;
  opts.strategy = c.strategy;
  opts.factor_comm = c.factor_comm;
  opts.collective_algo = c.algo;
  opts.factor_codec = c.factor_codec;
  opts.grad_codec = c.grad_codec;
  opts.topk_ratio = c.topk_ratio;
  opts.grad_fusion_threshold = kGradThreshold;
  opts.lr = 0.1;
  opts.damping = 0.1;
  // Plan with the calibration's cost models and pass timing — the exact
  // inputs simulate_iteration hands the planner.
  opts.allreduce_model = cal.allreduce;
  opts.broadcast_model = cal.bcast_fabric;
  opts.inverse_model = cal.inverse;
  opts.profile = sched::timing_from_model(spec, kBatch, cal.compute,
                                          /*second_order=*/true);
  core::DistKfacOptimizer optimizer(layers, comm, opts);

  Rng shard(100 + comm.rank());
  nn::SoftmaxCrossEntropy loss;
  const nn::Batch batch = sample_for(c.model, kBatch, shard);
  const Tensor4D input = input_for(c.model, batch);
  if (hooked) {
    const nn::PassHooks hooks = optimizer.pass_hooks();
    loss.forward(model.forward(input, hooks), batch.labels);
    model.backward(loss.backward(), hooks);
  } else {
    loss.forward(model.forward(input), batch.labels);
    model.backward(loss.backward());
  }
  optimizer.step();
  inspect(optimizer);
}

/// One step across `world` in-process ranks; returns rank 0's observable
/// schedule.
RuntimeCapture run_runtime(int world, const Config& c,
                           const models::ModelSpec& spec,
                           const perf::ClusterCalibration& cal, bool hooked) {
  RuntimeCapture capture;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    train_one_step(c, spec, cal, hooked, comm, [&](auto& optimizer) {
      if (comm.rank() == 0) {
        capture.records = optimizer.comm_records();
        capture.plan = optimizer.plan();
        capture.placement = optimizer.placement();
      }
    });
  });
  return capture;
}

void expect_tasks_equal(const sched::Task& a, const sched::Task& b,
                        const std::string& context) {
  EXPECT_EQ(a.id, b.id) << context;
  EXPECT_EQ(a.kind, b.kind) << context;
  EXPECT_EQ(a.family, b.family) << context;
  EXPECT_EQ(a.layer, b.layer) << context;
  EXPECT_EQ(a.first, b.first) << context;
  EXPECT_EQ(a.last, b.last) << context;
  EXPECT_EQ(a.member_layers, b.member_layers) << context;
  EXPECT_EQ(a.tensor, b.tensor) << context;
  EXPECT_EQ(a.dim, b.dim) << context;
  EXPECT_EQ(a.elements, b.elements) << context;
  EXPECT_EQ(a.rank, b.rank) << context;
  EXPECT_EQ(a.algo, b.algo) << context;
  EXPECT_EQ(a.codec, b.codec) << context;
  EXPECT_EQ(a.wire_elements, b.wire_elements) << context;
  EXPECT_EQ(a.deferred, b.deferred) << context;
  EXPECT_EQ(a.deps, b.deps) << context;
  EXPECT_EQ(a.label, b.label) << context;
}

void check_equivalence(int world, const Config& cell, bool hooked) {
  const Config c = with_env_codecs(cell);
  const std::string context =
      config_name(c) + " P=" + std::to_string(world) +
      (hooked ? " hooked" : " post-hoc");
  const models::ModelSpec spec = spec_for(c.model);
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(world));

  const sim::IterationResult sim_res =
      sim::simulate_iteration(spec, kBatch, cal, sim_config(c));
  const RuntimeCapture runtime = run_runtime(world, c, spec, cal, hooked);

  // 1. The plans themselves are byte-identical, task by task.
  ASSERT_EQ(runtime.plan.tasks.size(), sim_res.plan.tasks.size()) << context;
  for (std::size_t i = 0; i < sim_res.plan.tasks.size(); ++i) {
    expect_tasks_equal(runtime.plan.tasks[i], sim_res.plan.tasks[i],
                       context + " task " + std::to_string(i));
  }
  ASSERT_EQ(runtime.plan.collective_order(), sim_res.plan.collective_order())
      << context;

  // 2. The runtime's recorded submissions are exactly the simulator's
  //    collective sequence — which is exactly the plan's canonical order:
  //    kind, grouping (via label + plan task), element count, algorithm,
  //    broadcast root, all in the same order.
  const std::vector<int> canonical = sim_res.plan.collective_order();
  ASSERT_EQ(runtime.records.size(), sim_res.collectives.size()) << context;
  ASSERT_EQ(canonical.size(), sim_res.collectives.size()) << context;
  for (std::size_t i = 0; i < runtime.records.size(); ++i) {
    const comm::OpRecord& rec = runtime.records[i];
    const sim::CollectiveChoice& col = sim_res.collectives[i];
    const std::string at = context + " collective " + std::to_string(i);
    ASSERT_GE(rec.plan_task, 0) << at << ": out-of-plan submission";
    EXPECT_EQ(rec.plan_task, canonical[i]) << at;
    EXPECT_EQ(rec.plan_task, col.plan_task) << at;
    EXPECT_EQ(rec.name, col.label) << at;
    EXPECT_EQ(rec.elements, col.elements) << at;
    const sched::Task& task = sim_res.plan.task(col.plan_task);
    EXPECT_EQ(task.elements, rec.elements) << at;
    if (task.kind != sched::TaskKind::kBroadcast) {
      EXPECT_EQ(task.algo, col.algo) << at;
    } else {
      EXPECT_EQ(task.rank, col.root) << at;
    }
  }

  // 3. Inverse placement (owners, CT/NCT typing) matches rank for rank.
  ASSERT_EQ(runtime.placement.assignments.size(),
            sim_res.placement.assignments.size())
      << context;
  for (std::size_t t = 0; t < sim_res.placement.assignments.size(); ++t) {
    const auto& rt = runtime.placement.assignments[t];
    const auto& sm = sim_res.placement.assignments[t];
    EXPECT_EQ(rt.nct, sm.nct) << context << " T" << t;
    EXPECT_EQ(rt.owner, sm.owner) << context << " T" << t;
    EXPECT_EQ(rt.dim, sm.dim) << context << " T" << t;
  }
}

class Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(Equivalence, BulkStrategiesMatchSimulator) {
  for (const core::DistStrategy strategy :
       {core::DistStrategy::kDKfac, core::DistStrategy::kMpdKfac}) {
    check_equivalence(GetParam(),
                      {strategy, sched::FactorCommMode::kBulk}, false);
    check_equivalence(GetParam(),
                      {strategy, sched::FactorCommMode::kBulk}, true);
  }
}

TEST_P(Equivalence, SpdKfacMatchesSimulatorUnderEveryFactorCommMode) {
  for (const sched::FactorCommMode mode :
       {sched::FactorCommMode::kBulk, sched::FactorCommMode::kNaive,
        sched::FactorCommMode::kLayerWise,
        sched::FactorCommMode::kThresholdFuse,
        sched::FactorCommMode::kOptimalFuse}) {
    check_equivalence(GetParam(), {core::DistStrategy::kSpdKfac, mode},
                      false);
    check_equivalence(GetParam(), {core::DistStrategy::kSpdKfac, mode},
                      true);
  }
}

TEST_P(Equivalence, ConvModelMatchesSimulator) {
  // Non-MLP shapes: Conv2d factors (Cin*KH*KW + 1) mixed with a Linear
  // classifier, exercising the planner on heterogeneous dims.
  for (const sched::FactorCommMode mode :
       {sched::FactorCommMode::kLayerWise,
        sched::FactorCommMode::kOptimalFuse}) {
    check_equivalence(GetParam(),
                      {core::DistStrategy::kSpdKfac, mode,
                       comm::AllReduceAlgo::kRing, ModelKind::kConv},
                      false);
    check_equivalence(GetParam(),
                      {core::DistStrategy::kSpdKfac, mode,
                       comm::AllReduceAlgo::kRing, ModelKind::kConv},
                      true);
  }
  check_equivalence(GetParam(),
                    {core::DistStrategy::kMpdKfac,
                     sched::FactorCommMode::kBulk,
                     comm::AllReduceAlgo::kRing, ModelKind::kConv},
                    true);
}

TEST_P(Equivalence, AutoSelectedAlgorithmsMatchSimulator) {
  check_equivalence(GetParam(),
                    {core::DistStrategy::kSpdKfac,
                     sched::FactorCommMode::kOptimalFuse,
                     comm::AllReduceAlgo::kAuto},
                    true);
  check_equivalence(GetParam(),
                    {core::DistStrategy::kMpdKfac,
                     sched::FactorCommMode::kBulk,
                     comm::AllReduceAlgo::kHalvingDoubling},
                    false);
}

TEST_P(Equivalence, CompressedCollectivesMatchSimulator) {
  // Codec-annotated plans: the planner's compressed decisions (codec, wire
  // sizes, re-derived grouping/placement) must reach the runtime and the
  // simulator identically, and the runtime's compressed submissions must
  // still follow the canonical order record for record.
  const Config cells[] = {
      {core::DistStrategy::kSpdKfac, sched::FactorCommMode::kOptimalFuse,
       comm::AllReduceAlgo::kRing, ModelKind::kMlp, comm::Codec::kInt8,
       comm::Codec::kTopK},
      {core::DistStrategy::kSpdKfac, sched::FactorCommMode::kOptimalFuse,
       comm::AllReduceAlgo::kAuto, ModelKind::kConv, comm::Codec::kFp16,
       comm::Codec::kFp16},
      {core::DistStrategy::kMpdKfac, sched::FactorCommMode::kBulk,
       comm::AllReduceAlgo::kRing, ModelKind::kMlp, comm::Codec::kAuto,
       comm::Codec::kAuto},
  };
  for (const Config& c : cells) {
    check_equivalence(GetParam(), c, false);
    check_equivalence(GetParam(), c, true);
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, Equivalence,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           // Two steps: `"P" + std::to_string(...)` trips
                           // GCC 12's bogus -Wrestrict (GCC PR 105329).
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// ---------------------------------------------------------------------------
// Equivalence on a real wire: the same strategy cells over the socket
// transport, with the ranks as separate processes.  Rank 0 ships its
// recorded submissions and serialized plan back through the launcher pipe
// (encoded as doubles — integers and character codes are exact), and the
// parent holds them against the simulator byte for byte.  Moving the
// collectives onto a length-prefixed socket protocol must not change one
// submission, element count, or plan byte.
// ---------------------------------------------------------------------------

TEST(EquivalenceOverTheWire, SocketRuntimeMatchesSimulator) {
  SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(comm::TransportKind::kSocket);
  const Config cells[] = {
      {core::DistStrategy::kSpdKfac, sched::FactorCommMode::kOptimalFuse},
      {core::DistStrategy::kMpdKfac, sched::FactorCommMode::kBulk},
  };
  for (const int world : {2, 4}) {
    for (const Config& cell : cells) {
      const Config c = with_env_codecs(cell);
      const std::string context =
          config_name(c) + " P=" + std::to_string(world) + " socket";
      const models::ModelSpec spec = spec_for(c.model);
      const auto cal =
          perf::ClusterCalibration::for_topology(comm::Topology::flat(world));
      const sim::IterationResult sim_res =
          sim::simulate_iteration(spec, kBatch, cal, sim_config(c));

      const auto results = comm::Cluster::launch_collect(
          comm::TransportKind::kSocket, comm::Topology::flat(world),
          [&](comm::Communicator& comm) {
            std::vector<double> out;
            train_one_step(c, spec, cal, /*hooked=*/true, comm,
                           [&](auto& optimizer) {
                             if (comm.rank() != 0) return;
                             const auto records = optimizer.comm_records();
                             out.push_back(
                                 static_cast<double>(records.size()));
                             for (const comm::OpRecord& rec : records) {
                               out.push_back(rec.plan_task);
                               out.push_back(
                                   static_cast<double>(rec.elements));
                               out.push_back(
                                   static_cast<double>(rec.name.size()));
                               for (const char ch : rec.name) {
                                 out.push_back(ch);
                               }
                             }
                             const std::string plan_text =
                                 sched::plan_to_text(optimizer.plan());
                             out.push_back(
                                 static_cast<double>(plan_text.size()));
                             for (const char ch : plan_text) {
                               out.push_back(ch);
                             }
                           });
            return out;
          });

      // Decode rank 0's capture and hold it against the simulator.
      const std::vector<double>& enc = results[0];
      std::size_t pos = 0;
      auto next = [&]() { return enc.at(pos++); };
      const auto n_records = static_cast<std::size_t>(next());
      const std::vector<int> canonical = sim_res.plan.collective_order();
      ASSERT_EQ(n_records, sim_res.collectives.size()) << context;
      for (std::size_t i = 0; i < n_records; ++i) {
        const int plan_task = static_cast<int>(next());
        const auto elements = static_cast<std::size_t>(next());
        std::string name(static_cast<std::size_t>(next()), '\0');
        for (char& ch : name) ch = static_cast<char>(next());
        const sim::CollectiveChoice& col = sim_res.collectives[i];
        const std::string at = context + " collective " + std::to_string(i);
        EXPECT_EQ(plan_task, canonical[i]) << at;
        EXPECT_EQ(plan_task, col.plan_task) << at;
        EXPECT_EQ(elements, col.elements) << at;
        EXPECT_EQ(name, col.label) << at;
      }
      std::string plan_text(static_cast<std::size_t>(next()), '\0');
      for (char& ch : plan_text) ch = static_cast<char>(next());
      EXPECT_EQ(pos, enc.size()) << context;
      EXPECT_EQ(plan_text, sched::plan_to_text(sim_res.plan)) << context;
    }
  }
}

}  // namespace
}  // namespace spdkfac
