// Property/fuzz coverage of the schedule planner: seeded random layer
// shapes × schedule options × world sizes, with structural invariants that
// every legal plan must satisfy regardless of the sampled inputs:
//
//   * the task graph is acyclic (deps strictly precede their task — the
//     builder appends in topological order, so this is id-ordering);
//   * every planned phase covers its domain exactly once (each layer has
//     one A/G compute, appears in exactly one fused group per family and
//     exactly one WFBP gradient group; each tensor has one inverse);
//   * gradient fusion honors the threshold (Eq. (15)'s Horovod-side
//     counterpart): groups flush at >= threshold, are minimal (dropping
//     the flush member would leave them under it), and only the layer-0
//     group may close under threshold;
//   * the canonical collective order is total — a permutation of all
//     all-reduce tasks, non-decreasing in planner readiness, with the
//     broadcasts trailing;
//   * inverse placement is complete and well-typed (owners in range, CT
//     broadcasts rooted at their owner, NCTs replicated);
//   * planning is deterministic: two builds from equal inputs serialize
//     byte-identically — which is exactly why distributed ranks (which
//     feed the planner the same synced profile) always agree on the
//     schedule.
//
// The RNG is seeded, so a failure reproduces by case index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "comm/topology.hpp"
#include "perf/models.hpp"
#include "sched/plan_cache.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"
#include "tensor/symmetric.hpp"

namespace spdkfac::sched {
namespace {

constexpr std::uint64_t kSeed = 0x5bdf0c1ull;

struct FuzzCase {
  ScheduleInputs inputs;
  ScheduleOptions options;
  int world = 1;
};

FuzzCase sample_case(std::mt19937_64& rng) {
  FuzzCase fc;
  std::uniform_int_distribution<std::size_t> layer_count(1, 9);
  std::uniform_int_distribution<std::size_t> dim(1, 64);
  const std::size_t L = layer_count(rng);
  for (std::size_t l = 0; l < L; ++l) {
    LayerShape shape;
    shape.dim_a = dim(rng);
    shape.dim_g = dim(rng);
    shape.a_elements = tensor::packed_size(shape.dim_a);
    shape.g_elements = tensor::packed_size(shape.dim_g);
    shape.grad_elements = shape.dim_a * shape.dim_g;
    fc.inputs.layers.push_back(shape);
  }

  const int worlds[] = {1, 2, 3, 4, 8};
  fc.world = worlds[std::uniform_int_distribution<int>(0, 4)(rng)];
  fc.inputs.world_size = fc.world;

  // Random monotone pass walk (the planner's only timing requirement).
  std::uniform_real_distribution<double> gap(1e-6, 5e-3);
  PassTiming& t = fc.inputs.timing;
  t.a_ready.resize(L);
  t.g_ready.resize(L);
  t.grad_ready.resize(L);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    clock += gap(rng);
    t.a_ready[l] = clock;
    clock += gap(rng);
  }
  for (std::size_t i = 0; i < L; ++i) {
    clock += gap(rng);
    t.grad_ready[L - 1 - i] = clock;
    clock += gap(rng);
    t.g_ready[i] = clock;
  }
  t.backward_end = clock;

  ScheduleOptions& opt = fc.options;
  opt.second_order = std::uniform_int_distribution<int>(0, 9)(rng) > 0;
  opt.factor_update = std::uniform_int_distribution<int>(0, 3)(rng) > 0;
  opt.inverse_update = std::uniform_int_distribution<int>(0, 3)(rng) > 0;
  const FactorCommMode modes[] = {
      FactorCommMode::kBulk, FactorCommMode::kNaive,
      FactorCommMode::kLayerWise, FactorCommMode::kThresholdFuse,
      FactorCommMode::kOptimalFuse};
  opt.factor_comm = modes[std::uniform_int_distribution<int>(0, 4)(rng)];
  const InverseMode inv[] = {InverseMode::kLocalAll, InverseMode::kSeqDist,
                             InverseMode::kLBP};
  opt.inverse = inv[std::uniform_int_distribution<int>(0, 2)(rng)];
  const comm::AllReduceAlgo algos[] = {comm::AllReduceAlgo::kRing,
                                       comm::AllReduceAlgo::kAuto,
                                       comm::AllReduceAlgo::kHalvingDoubling};
  opt.collective_algo = algos[std::uniform_int_distribution<int>(0, 2)(rng)];
  const std::size_t thresholds[] = {0, 50, 500, 1u << 24};
  opt.grad_fusion_threshold =
      thresholds[std::uniform_int_distribution<int>(0, 3)(rng)];
  return fc;
}

ScheduleCosts costs_for(int world) {
  return costs_from(
      perf::ClusterCalibration::for_topology(comm::Topology::flat(world)));
}

/// Asserts every structural invariant on one plan.
void check_invariants(const IterationPlan& plan, const FuzzCase& fc,
                      const std::string& ctx) {
  const std::size_t L = fc.inputs.layers.size();

  // --- Graph shape: ids are indices, deps strictly precede (acyclic). ---
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const Task& task = plan.tasks[i];
    ASSERT_EQ(task.id, static_cast<int>(i)) << ctx;
    for (int d : task.deps) {
      ASSERT_GE(d, 0) << ctx;
      ASSERT_LT(d, task.id) << ctx << ": dep must precede its task";
    }
  }

  // --- Factor-compute coverage: each layer exactly once per family. ---
  if (plan.factor_update) {
    ASSERT_EQ(plan.a_compute.size(), L) << ctx;
    ASSERT_EQ(plan.g_compute.size(), L) << ctx;
    for (std::size_t l = 0; l < L; ++l) {
      const Task& a = plan.task(plan.a_compute[l]);
      EXPECT_EQ(a.kind, TaskKind::kFactorCompute) << ctx;
      EXPECT_EQ(a.family, Family::kA) << ctx;
      EXPECT_EQ(a.layer, l) << ctx;
      const Task& g = plan.task(plan.g_compute[l]);
      EXPECT_EQ(g.family, Family::kG) << ctx;
      EXPECT_EQ(g.layer, L - 1 - l) << ctx << ": G pass is deepest-first";
    }
  } else {
    EXPECT_TRUE(plan.a_compute.empty()) << ctx;
    EXPECT_TRUE(plan.g_compute.empty()) << ctx;
  }

  // --- Fused factor groups partition the pass (each member once). ---
  const auto check_family = [&](const std::vector<int>& comm_tasks,
                                Family family) {
    std::multiset<std::size_t> members;
    std::size_t elements = 0;
    for (int id : comm_tasks) {
      const Task& task = plan.task(id);
      EXPECT_EQ(task.kind, TaskKind::kFusedAllReduce) << ctx;
      EXPECT_EQ(task.family, family) << ctx;
      EXPECT_EQ(task.member_layers.size(), task.last - task.first + 1) << ctx;
      members.insert(task.member_layers.begin(), task.member_layers.end());
      elements += task.elements;
      std::size_t expect = 0;
      for (std::size_t l : task.member_layers) {
        expect += family == Family::kA ? fc.inputs.layers[l].a_elements
                                       : fc.inputs.layers[l].g_elements;
      }
      EXPECT_EQ(task.elements, expect) << ctx << ": group payload mismatch";
    }
    if (plan.factor_update && fc.world > 1) {
      ASSERT_EQ(members.size(), L) << ctx;
      for (std::size_t l = 0; l < L; ++l) {
        EXPECT_EQ(members.count(l), 1u) << ctx << " layer " << l;
      }
      EXPECT_GT(elements, 0u) << ctx;
    } else {
      EXPECT_TRUE(comm_tasks.empty()) << ctx;
    }
  };
  check_family(plan.a_comm, Family::kA);
  check_family(plan.g_comm, Family::kG);

  // --- WFBP gradient groups: full cover, threshold-honoring, minimal. ---
  if (fc.world > 1) {
    std::multiset<std::size_t> covered;
    ASSERT_EQ(plan.grad_comm.size(), plan.grad_groups.size()) << ctx;
    for (std::size_t gi = 0; gi < plan.grad_comm.size(); ++gi) {
      const Task& task = plan.task(plan.grad_comm[gi]);
      EXPECT_EQ(task.kind, TaskKind::kGradAllReduce) << ctx;
      EXPECT_EQ(task.member_layers, plan.grad_groups[gi]) << ctx;
      covered.insert(task.member_layers.begin(), task.member_layers.end());
      std::size_t acc = 0;
      for (std::size_t l : task.member_layers) {
        acc += fc.inputs.layers[l].grad_elements;
      }
      EXPECT_EQ(task.elements, acc) << ctx;
      // Pack order is deepest-first; the flush member is the shallowest.
      EXPECT_EQ(task.member_layers.back(), task.first) << ctx;
      EXPECT_EQ(task.member_layers.front(), task.last) << ctx;
      const bool contains_layer0 = task.first == 0;
      if (!contains_layer0) {
        EXPECT_GE(acc, fc.options.grad_fusion_threshold)
            << ctx << ": only the layer-0 group may flush under threshold";
      }
      if (task.member_layers.size() > 1 && acc >= fc.options.grad_fusion_threshold) {
        const std::size_t without_flush =
            acc - fc.inputs.layers[task.first].grad_elements;
        EXPECT_LT(without_flush, fc.options.grad_fusion_threshold)
            << ctx << ": group must flush the moment it crosses the "
                      "threshold (minimality)";
      }
    }
    ASSERT_EQ(covered.size(), L) << ctx;
    for (std::size_t l = 0; l < L; ++l) {
      EXPECT_EQ(covered.count(l), 1u) << ctx << " grad layer " << l;
    }
  } else {
    EXPECT_TRUE(plan.grad_comm.empty()) << ctx;
  }

  // --- Canonical collective order: total, readiness-sorted, broadcasts
  // trailing. ---
  std::vector<int> all_reduces = plan.grad_comm;
  all_reduces.insert(all_reduces.end(), plan.a_comm.begin(),
                     plan.a_comm.end());
  all_reduces.insert(all_reduces.end(), plan.g_comm.begin(),
                     plan.g_comm.end());
  std::vector<int> sorted_order = plan.comm_order;
  std::sort(sorted_order.begin(), sorted_order.end());
  std::sort(all_reduces.begin(), all_reduces.end());
  EXPECT_EQ(sorted_order, all_reduces)
      << ctx << ": comm_order must be a permutation of every all-reduce";
  for (std::size_t i = 1; i < plan.comm_order.size(); ++i) {
    EXPECT_LE(plan.task(plan.comm_order[i - 1]).ready,
              plan.task(plan.comm_order[i]).ready)
        << ctx << ": submission order must follow readiness";
  }
  std::vector<int> canonical = plan.comm_order;
  canonical.insert(canonical.end(), plan.broadcast_tasks.begin(),
                   plan.broadcast_tasks.end());
  EXPECT_EQ(plan.collective_order(), canonical) << ctx;
  EXPECT_EQ(plan.num_collectives(), canonical.size()) << ctx;

  // --- Inverse phase: every tensor exactly once, well-typed placement. ---
  if (plan.inverse_update) {
    std::multiset<std::size_t> tensors;
    std::size_t ct_count = 0;
    for (int id : plan.inverse_tasks) {
      const Task& task = plan.task(id);
      EXPECT_EQ(task.kind, TaskKind::kInverse) << ctx;
      tensors.insert(task.tensor);
      if (task.rank >= 0) {
        EXPECT_LT(task.rank, fc.world) << ctx;
        ++ct_count;
      }
      EXPECT_EQ(task.rank, plan.placement.assignments[task.tensor].owner)
          << ctx;
      EXPECT_EQ(task.rank < 0,
                plan.placement.assignments[task.tensor].nct)
          << ctx;
    }
    ASSERT_EQ(tensors.size(), 2 * L) << ctx;
    for (std::size_t t = 0; t < 2 * L; ++t) {
      EXPECT_EQ(tensors.count(t), 1u) << ctx << " tensor " << t;
    }
    // One broadcast per CT, rooted at the owner (multi-worker only).
    if (fc.world > 1) {
      ASSERT_EQ(plan.broadcast_tasks.size(), ct_count) << ctx;
      for (int id : plan.broadcast_tasks) {
        const Task& bc = plan.task(id);
        EXPECT_EQ(bc.kind, TaskKind::kBroadcast) << ctx;
        EXPECT_EQ(bc.rank, plan.placement.assignments[bc.tensor].owner)
            << ctx << ": broadcast must be rooted at the inverse owner";
        ASSERT_EQ(bc.deps.size(), 1u) << ctx;
        EXPECT_EQ(plan.task(bc.deps[0]).tensor, bc.tensor) << ctx;
      }
    } else {
      EXPECT_TRUE(plan.broadcast_tasks.empty()) << ctx;
    }
  } else {
    EXPECT_TRUE(plan.inverse_tasks.empty()) << ctx;
    EXPECT_TRUE(plan.broadcast_tasks.empty()) << ctx;
  }

  // --- Update task: present iff second-order, last, gated on everything. ---
  if (fc.options.second_order) {
    ASSERT_EQ(plan.update_task,
              static_cast<int>(plan.tasks.size()) - 1)
        << ctx;
    const Task& up = plan.task(plan.update_task);
    std::set<int> deps(up.deps.begin(), up.deps.end());
    for (int id : plan.inverse_tasks) EXPECT_TRUE(deps.count(id)) << ctx;
    for (int id : plan.broadcast_tasks) EXPECT_TRUE(deps.count(id)) << ctx;
    for (int id : plan.grad_comm) EXPECT_TRUE(deps.count(id)) << ctx;
  } else {
    EXPECT_EQ(plan.update_task, -1) << ctx;
  }
}

TEST(PlannerFuzz, RandomPlansSatisfyEveryInvariant) {
  std::mt19937_64 rng(kSeed);
  for (int c = 0; c < 60; ++c) {
    const FuzzCase fc = sample_case(rng);
    const ScheduleCosts costs = costs_for(fc.world);
    const std::string ctx =
        "case " + std::to_string(c) + " (L=" +
        std::to_string(fc.inputs.layers.size()) + " P=" +
        std::to_string(fc.world) + " " + to_string(fc.options.factor_comm) +
        "/" + to_string(fc.options.inverse) + ")";
    IterationPlan plan;
    ASSERT_NO_THROW(plan = plan_iteration(fc.inputs, fc.options, costs))
        << ctx;
    check_invariants(plan, fc, ctx);
  }
}

TEST(PlannerFuzz, PlanningIsDeterministicAcrossRebuildsAndRanks) {
  // The planner has no notion of rank: every rank feeds it the same synced
  // inputs and must get the byte-identical schedule.  Serializing two
  // independent builds is the strongest cheap witness of that.
  std::mt19937_64 rng(kSeed ^ 0xfeedull);
  for (int c = 0; c < 20; ++c) {
    const FuzzCase fc = sample_case(rng);
    const ScheduleCosts costs = costs_for(fc.world);
    const IterationPlan first = plan_iteration(fc.inputs, fc.options, costs);
    const IterationPlan second = plan_iteration(fc.inputs, fc.options, costs);
    EXPECT_EQ(plan_to_text(first), plan_to_text(second))
        << "case " << c << ": rebuild produced a different schedule";
  }
}

TEST(PlannerFuzz, SignatureIsStableAndScaleSensitive) {
  std::mt19937_64 rng(kSeed ^ 0x51811ull);
  for (int c = 0; c < 20; ++c) {
    const FuzzCase fc = sample_case(rng);
    const ProfileSignature sig = ProfileSignature::of(fc.inputs.timing);
    EXPECT_EQ(sig, ProfileSignature::of(fc.inputs.timing))
        << "case " << c << ": signature not a pure function";

    // Doubling every entry keeps the shape but moves the absolute scale —
    // fusion decisions compare gaps against absolute alpha, so the
    // signature must change.
    PassTiming scaled = fc.inputs.timing;
    for (auto* v : {&scaled.a_ready, &scaled.g_ready, &scaled.grad_ready}) {
      for (double& t : *v) t *= 2.0;
    }
    scaled.backward_end *= 2.0;
    EXPECT_NE(sig, ProfileSignature::of(scaled))
        << "case " << c << ": scale change must move the signature";
  }
}

TEST(PlannerFuzz, PlanCacheRoundTripsAndEvicts) {
  std::mt19937_64 rng(kSeed ^ 0xcac4eull);
  PlanCache cache(4);
  std::vector<std::pair<PlanCache::Key, std::string>> stored;
  for (int c = 0; c < 8; ++c) {
    const FuzzCase fc = sample_case(rng);
    const ScheduleCosts costs = costs_for(fc.world);
    IterationPlan plan = plan_iteration(fc.inputs, fc.options, costs);
    PlanCache::Key key{fc.options.factor_update, fc.options.inverse_update,
                       fc.options.factor_comm,
                       ProfileSignature::of(fc.inputs.timing)};
    const std::string text = plan_to_text(plan);
    cache.insert(key, std::move(plan));
    stored.emplace_back(std::move(key), text);
    EXPECT_LE(cache.size(), cache.capacity());
  }
  // The four newest survive FIFO eviction and round-trip byte-identically.
  for (std::size_t i = stored.size() - 4; i < stored.size(); ++i) {
    const std::shared_ptr<const IterationPlan> hit =
        cache.find(stored[i].first);
    ASSERT_NE(hit, nullptr) << "entry " << i << " evicted too early";
    EXPECT_EQ(plan_to_text(*hit), stored[i].second);
  }
  EXPECT_GE(cache.hits(), 4u);
}

}  // namespace
}  // namespace spdkfac::sched
