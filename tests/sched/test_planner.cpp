// SchedulePlanner unit coverage: plan structure, canonical collective
// ordering, fusion edge cases (single layer, zero-element factor, skipped
// factor steps), and input validation.
#include "sched/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "comm/topology.hpp"
#include "models/model_spec.hpp"

namespace spdkfac::sched {
namespace {

ScheduleCosts flat_costs(int world) {
  ScheduleCosts costs;
  costs.allreduce = perf::AllReduceModel{{2.0e-5, 1.0e-9}};
  costs.broadcast = perf::BroadcastModel{{1.0e-5, 5.0e-10}};
  costs.inverse = perf::InverseModel::cubic(2.0e-6, 5.0e-10);
  costs.selector = comm::AlgorithmSelector(comm::Topology::flat(world));
  return costs;
}

/// A small MLP-shaped input with strictly increasing pass timing.
ScheduleInputs mlp_inputs(int world) {
  const std::size_t widths[] = {6, 10, 8, 3};
  const models::ModelSpec spec = models::mlp_spec(widths);
  return inputs_from_model(spec, 8, perf::ComputeModel{}, world);
}

TEST(Planner, SpdPlanCoversEveryLayerAndTensor) {
  const ScheduleInputs in = mlp_inputs(4);
  ScheduleOptions opt;  // defaults: SPD (optimal fuse + LBP)
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(4));
  const std::size_t L = in.layers.size();

  ASSERT_EQ(plan.a_compute.size(), L);
  ASSERT_EQ(plan.g_compute.size(), L);
  // Fusion groups partition [0, L-1] in both passes.
  ASSERT_FALSE(plan.a_groups.empty());
  EXPECT_EQ(plan.a_groups.front().first, 0u);
  EXPECT_EQ(plan.a_groups.back().last, L - 1);
  for (std::size_t i = 1; i < plan.a_groups.size(); ++i) {
    EXPECT_EQ(plan.a_groups[i].first, plan.a_groups[i - 1].last + 1);
  }
  // Gradient groups cover every layer exactly once.
  std::vector<std::size_t> grad_layers;
  for (const auto& group : plan.grad_groups) {
    grad_layers.insert(grad_layers.end(), group.begin(), group.end());
  }
  std::sort(grad_layers.begin(), grad_layers.end());
  std::vector<std::size_t> all(L);
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_EQ(grad_layers, all);
  // 2L inverse tasks, every tensor exactly once; every CT has a broadcast.
  EXPECT_EQ(plan.inverse_tasks.size(), 2 * L);
  EXPECT_TRUE(plan.placement.valid(2 * L));
  EXPECT_EQ(plan.broadcast_tasks.size(), plan.placement.num_cts());
  EXPECT_GE(plan.update_task, 0);
}

TEST(Planner, CommOrderIsSortedByReadinessGradsBeforeFactorsOnTies) {
  const ScheduleInputs in = mlp_inputs(4);
  ScheduleOptions opt;
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(4));
  ASSERT_FALSE(plan.comm_order.empty());
  for (std::size_t i = 1; i < plan.comm_order.size(); ++i) {
    EXPECT_LE(plan.task(plan.comm_order[i - 1]).ready,
              plan.task(plan.comm_order[i]).ready);
  }
  // Every collective is either in comm_order or a broadcast.
  std::size_t collectives = 0;
  for (const Task& t : plan.tasks) collectives += t.is_collective() ? 1 : 0;
  EXPECT_EQ(collectives, plan.num_collectives());
}

TEST(Planner, BulkModeDefersBothFamiliesAfterEveryGradientGroup) {
  const ScheduleInputs in = mlp_inputs(2);
  ScheduleOptions opt;
  opt.factor_comm = FactorCommMode::kBulk;
  opt.inverse = InverseMode::kLocalAll;
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(2));
  ASSERT_EQ(plan.a_comm.size(), 1u);
  ASSERT_EQ(plan.g_comm.size(), 1u);
  EXPECT_TRUE(plan.task(plan.a_comm[0]).deferred);
  EXPECT_TRUE(plan.task(plan.g_comm[0]).deferred);
  EXPECT_EQ(plan.task(plan.a_comm[0]).label, "A-bulk");
  EXPECT_EQ(plan.task(plan.g_comm[0]).label, "G-bulk");
  // Canonical order: every gradient group strictly before the bulk ops,
  // A-bulk before G-bulk.
  const auto& order = plan.comm_order;
  const auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (int g : plan.grad_comm) {
    EXPECT_LT(pos(g), pos(plan.a_comm[0]));
  }
  EXPECT_LT(pos(plan.a_comm[0]), pos(plan.g_comm[0]));
  // Non-Dist: everything replicated, nothing broadcast.
  EXPECT_EQ(plan.broadcast_tasks.size(), 0u);
  EXPECT_EQ(plan.placement.num_ncts(), 2 * in.layers.size());
}

TEST(Planner, NaiveModeShipsAFamilyAtEndOfForward) {
  const ScheduleInputs in = mlp_inputs(2);
  ScheduleOptions opt;
  opt.factor_comm = FactorCommMode::kNaive;
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(2));
  ASSERT_EQ(plan.a_comm.size(), 1u);
  const Task& a_bulk = plan.task(plan.a_comm[0]);
  EXPECT_FALSE(a_bulk.deferred);  // submitted the moment A_{L-1} is packed
  EXPECT_EQ(a_bulk.ready, in.timing.a_ready.back());
  EXPECT_TRUE(plan.task(plan.g_comm[0]).deferred);
  // A-bulk precedes every gradient group (forward pass vs backward pass).
  EXPECT_EQ(plan.comm_order.front(), plan.a_comm[0]);
}

TEST(Planner, SingleWorkerPlansNoCollectives) {
  const ScheduleInputs in = mlp_inputs(1);
  ScheduleOptions opt;
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(1));
  EXPECT_EQ(plan.num_collectives(), 0u);
  EXPECT_TRUE(plan.a_groups.empty());
  EXPECT_TRUE(plan.grad_groups.empty());
  // Inverses still planned (all replicated — nothing to broadcast).
  EXPECT_EQ(plan.inverse_tasks.size(), 2 * in.layers.size());
  for (int id : plan.inverse_tasks) {
    EXPECT_EQ(plan.task(id).rank, -1);
  }
}

TEST(Planner, SingleLayerModelFusesToOneGroupPerPass) {
  ScheduleInputs in;
  LayerShape layer;
  layer.dim_a = 5;
  layer.dim_g = 3;
  layer.a_elements = 15;
  layer.g_elements = 6;
  layer.grad_elements = 15;
  in.layers = {layer};
  in.world_size = 4;
  in.timing.a_ready = {1.0};
  in.timing.g_ready = {3.0};
  in.timing.grad_ready = {2.0};
  in.timing.backward_end = 3.5;
  for (FactorCommMode mode :
       {FactorCommMode::kBulk, FactorCommMode::kNaive,
        FactorCommMode::kLayerWise, FactorCommMode::kThresholdFuse,
        FactorCommMode::kOptimalFuse}) {
    ScheduleOptions opt;
    opt.factor_comm = mode;
    const IterationPlan plan = plan_iteration(in, opt, flat_costs(4));
    ASSERT_EQ(plan.a_comm.size(), 1u) << to_string(mode);
    ASSERT_EQ(plan.g_comm.size(), 1u) << to_string(mode);
    EXPECT_EQ(plan.task(plan.a_comm[0]).elements, 15u) << to_string(mode);
    EXPECT_EQ(plan.task(plan.g_comm[0]).elements, 6u) << to_string(mode);
    ASSERT_EQ(plan.grad_comm.size(), 1u) << to_string(mode);
    // grad[0..0] flushes at layer 0 (the only layer).
    EXPECT_EQ(plan.task(plan.grad_comm[0]).first, 0u);
    EXPECT_EQ(plan.task(plan.grad_comm[0]).last, 0u);
  }
}

TEST(Planner, ZeroElementFactorFlowsThroughEveryMode) {
  // A degenerate 0-dim G factor (e.g. a masked-out head): packed size 0.
  ScheduleInputs in;
  LayerShape a, b;
  a.dim_a = 4;
  a.dim_g = 2;
  a.a_elements = 10;
  a.g_elements = 3;
  a.grad_elements = 8;
  b.dim_a = 3;
  b.dim_g = 0;
  b.a_elements = 6;
  b.g_elements = 0;
  b.grad_elements = 1;
  in.layers = {a, b};
  in.world_size = 2;
  in.timing.a_ready = {1.0, 2.0};
  in.timing.g_ready = {4.0, 5.0};
  in.timing.grad_ready = {4.5, 3.5};
  in.timing.backward_end = 6.0;
  for (FactorCommMode mode :
       {FactorCommMode::kBulk, FactorCommMode::kLayerWise,
        FactorCommMode::kOptimalFuse}) {
    ScheduleOptions opt;
    opt.factor_comm = mode;
    const IterationPlan plan = plan_iteration(in, opt, flat_costs(2));
    // Every G element count is preserved, including the empty factor.
    std::size_t g_total = 0;
    for (int id : plan.g_comm) g_total += plan.task(id).elements;
    EXPECT_EQ(g_total, 3u) << to_string(mode);
    // The 0-dim tensor still gets an inverse task (free to replicate).
    const auto zero_dim = std::count_if(
        plan.inverse_tasks.begin(), plan.inverse_tasks.end(),
        [&](int id) { return plan.task(id).dim == 0; });
    EXPECT_EQ(zero_dim, 1) << to_string(mode);
  }
}

TEST(Planner, SkippedFactorStepPlansNoFactorWork) {
  const ScheduleInputs in = mlp_inputs(4);
  ScheduleOptions opt;
  opt.factor_update = false;  // factor_update_freq > 1 off-step
  const IterationPlan plan = plan_iteration(in, opt, flat_costs(4));
  EXPECT_TRUE(plan.a_compute.empty());
  EXPECT_TRUE(plan.g_compute.empty());
  EXPECT_TRUE(plan.a_comm.empty());
  EXPECT_TRUE(plan.g_comm.empty());
  EXPECT_FALSE(plan.grad_comm.empty());  // WFBP still flows
  // Inverses may still be refreshed from the stale running averages; they
  // depend on nothing scheduled this step.
  ASSERT_FALSE(plan.inverse_tasks.empty());
  EXPECT_TRUE(plan.task(plan.inverse_tasks.front()).deps.empty());

  opt.inverse_update = false;
  const IterationPlan none = plan_iteration(in, opt, flat_costs(4));
  EXPECT_TRUE(none.inverse_tasks.empty());
  EXPECT_TRUE(none.broadcast_tasks.empty());
  EXPECT_TRUE(none.placement.assignments.empty());
}

TEST(Planner, AutoPolicyResolvesAlgorithmsThroughSelector) {
  const ScheduleInputs in = mlp_inputs(4);
  ScheduleOptions opt;
  opt.collective_algo = comm::AllReduceAlgo::kAuto;
  const ScheduleCosts costs = flat_costs(4);
  const IterationPlan plan = plan_iteration(in, opt, costs);
  for (int id : plan.comm_order) {
    const Task& t = plan.task(id);
    EXPECT_EQ(t.algo, costs.selector.choose(t.elements)) << t.label;
    EXPECT_NE(t.label.find('@'), std::string::npos) << t.label;
  }
}

TEST(Planner, RejectsInconsistentInputs) {
  ScheduleInputs in = mlp_inputs(2);
  const ScheduleCosts costs = flat_costs(2);
  ScheduleOptions opt;

  ScheduleInputs empty = in;
  empty.layers.clear();
  EXPECT_THROW(plan_iteration(empty, opt, costs), std::invalid_argument);

  ScheduleInputs bad_world = in;
  bad_world.world_size = 0;
  EXPECT_THROW(plan_iteration(bad_world, opt, costs), std::invalid_argument);

  ScheduleInputs bad_timing = in;
  bad_timing.timing.a_ready.pop_back();
  EXPECT_THROW(plan_iteration(bad_timing, opt, costs), std::invalid_argument);

  ScheduleInputs bad_grads = in;
  bad_grads.timing.grad_ready.clear();
  EXPECT_THROW(plan_iteration(bad_grads, opt, costs), std::invalid_argument);
}

TEST(Planner, TaskKindNamesAreStable) {
  EXPECT_STREQ(to_string(TaskKind::kFactorCompute), "FactorCompute");
  EXPECT_STREQ(to_string(TaskKind::kFusedAllReduce), "FusedAllReduce");
  EXPECT_STREQ(to_string(TaskKind::kGradAllReduce), "GradAllReduce");
  EXPECT_STREQ(to_string(TaskKind::kInverse), "Inverse");
  EXPECT_STREQ(to_string(TaskKind::kBroadcast), "Broadcast");
  EXPECT_STREQ(to_string(TaskKind::kUpdate), "Update");
}

}  // namespace
}  // namespace spdkfac::sched
