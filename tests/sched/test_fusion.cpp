#include "sched/fusion.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <random>

namespace spdkfac::sched {
namespace {

perf::AllReduceModel model_with(double alpha, double beta) {
  return perf::AllReduceModel{perf::LinearModel{alpha, beta}};
}

FusionPlanInput uniform_input(std::size_t n, double gap, std::size_t size) {
  FusionPlanInput input;
  input.ready_times.resize(n);
  input.sizes.assign(n, size);
  for (std::size_t i = 0; i < n; ++i) input.ready_times[i] = (i + 1) * gap;
  return input;
}

void check_cover(const std::vector<FusionGroup>& groups, std::size_t n,
                 const FusionPlanInput& input) {
  ASSERT_FALSE(groups.empty());
  EXPECT_EQ(groups.front().first, 0u);
  EXPECT_EQ(groups.back().last, n - 1);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].first, groups[i - 1].last + 1);
  }
  std::size_t total = 0;
  for (const auto& g : groups) {
    std::size_t expect = 0;
    for (std::size_t j = g.first; j <= g.last; ++j) expect += input.sizes[j];
    EXPECT_EQ(g.elements, expect);
    total += g.elements;
  }
  EXPECT_EQ(total,
            std::accumulate(input.sizes.begin(), input.sizes.end(),
                            std::size_t{0}));
}

TEST(PlanFusion, EmptyInputGivesNoGroups) {
  FusionPlanInput input;
  EXPECT_TRUE(plan_fusion(input, model_with(1e-2, 1e-9),
                          FusionPolicy::kOptimal)
                  .empty());
}

TEST(PlanFusion, NoFusionEmitsOneGroupPerFactor) {
  const auto input = uniform_input(7, 0.01, 100);
  const auto groups =
      plan_fusion(input, model_with(1e-2, 1e-9), FusionPolicy::kNoFusion);
  EXPECT_EQ(groups.size(), 7u);
  check_cover(groups, 7, input);
}

TEST(PlanFusion, SingleBulkEmitsOneGroup) {
  const auto input = uniform_input(7, 0.01, 100);
  const auto groups =
      plan_fusion(input, model_with(1e-2, 1e-9), FusionPolicy::kSingleBulk);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].count(), 7u);
  check_cover(groups, 7, input);
}

TEST(PlanFusion, ThresholdFlushesAtBoundary) {
  FusionPlanInput input = uniform_input(6, 0.01, 100);
  // Threshold of 250 elements: groups of 3 (100+100+100 >= 250? no:
  // 100+100=200 <250, +100=300 >= 250 -> flush after 3rd).
  const auto groups = plan_fusion(input, model_with(1e-2, 1e-9),
                                  FusionPolicy::kThreshold, 250);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].count(), 3u);
  EXPECT_EQ(groups[1].count(), 3u);
}

TEST(PlanFusion, ThresholdFlushesRemainderAtEnd) {
  FusionPlanInput input = uniform_input(5, 0.01, 100);
  const auto groups = plan_fusion(input, model_with(1e-2, 1e-9),
                                  FusionPolicy::kThreshold, 250);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1].count(), 2u);  // partial tail still communicated
  check_cover(groups, 5, input);
}

TEST(PlanFusion, OptimalMergesWhenFactorsArriveWithinStartup) {
  // Factors arrive every 1 ms; startup is 10 ms: Eq. (15) says merge all.
  const auto input = uniform_input(10, 1e-3, 1000);
  const auto groups =
      plan_fusion(input, model_with(1e-2, 1e-12), FusionPolicy::kOptimal);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].count(), 10u);
}

TEST(PlanFusion, OptimalKeepsSlowArrivalsSeparate) {
  // Factors arrive every 100 ms; startup is 1 ms: no merging pays off.
  const auto input = uniform_input(5, 0.1, 1000);
  const auto groups =
      plan_fusion(input, model_with(1e-3, 1e-12), FusionPolicy::kOptimal);
  EXPECT_EQ(groups.size(), 5u);
}

TEST(PlanFusion, OptimalAccountsForBusyStream) {
  // Two factors: the second arrives after the first *could* start, but a
  // huge in-flight communication keeps the stream busy, so Eq. (15)'s
  // comm_begin = max(ready, stream_free) forces a merge.
  FusionPlanInput input;
  input.ready_times = {0.0, 0.05};
  input.sizes = {10, 10};
  input.stream_free_at = 10.0;  // stream busy for a long time
  const auto groups =
      plan_fusion(input, model_with(1e-3, 1e-9), FusionPolicy::kOptimal);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].count(), 2u);
}

TEST(PlanFusion, PredictedWindowsAreSequentialOnTheStream) {
  const auto input = uniform_input(8, 0.02, 5000);
  for (auto policy : {FusionPolicy::kNoFusion, FusionPolicy::kThreshold,
                      FusionPolicy::kOptimal}) {
    const auto groups = plan_fusion(input, model_with(5e-3, 1e-8), policy);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      EXPECT_GE(groups[i].comm_start, groups[i].ready_time);
      EXPECT_GT(groups[i].comm_end, groups[i].comm_start);
      if (i > 0) {
        EXPECT_GE(groups[i].comm_start, groups[i - 1].comm_end - 1e-12);
      }
    }
  }
}

TEST(PlanFusion, DecreasingReadyTimesThrow) {
  FusionPlanInput input;
  input.ready_times = {1.0, 0.5};
  input.sizes = {1, 1};
  EXPECT_THROW(
      plan_fusion(input, model_with(1e-3, 1e-9), FusionPolicy::kOptimal),
      std::invalid_argument);
}

TEST(PlanFusion, MismatchedInputsThrow) {
  FusionPlanInput input;
  input.ready_times = {1.0};
  input.sizes = {1, 2};
  EXPECT_THROW(
      plan_fusion(input, model_with(1e-3, 1e-9), FusionPolicy::kNoFusion),
      std::invalid_argument);
}

TEST(NonOverlappedTail, MeasuresExposure) {
  FusionGroup g;
  g.comm_end = 5.0;
  std::vector<FusionGroup> groups{g};
  EXPECT_DOUBLE_EQ(non_overlapped_tail(groups, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(non_overlapped_tail(groups, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(non_overlapped_tail({}, 1.0), 0.0);
}

// Property: under any policy the plan covers the factors exactly once, in
// order, and optimal never produces a worse predicted finish than no-fusion.
class FusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionProperty, CoverageAndOptimalityAcrossRandomWorkloads) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> count(1, 60);
  std::uniform_real_distribution<double> gap(1e-5, 5e-3);
  std::uniform_int_distribution<std::size_t> size(100, 5'000'000);

  FusionPlanInput input;
  const std::size_t n = count(rng);
  double clock = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    clock += gap(rng);
    input.ready_times.push_back(clock);
    input.sizes.push_back(size(rng));
  }
  const auto model = model_with(1.22e-2, 1.45e-9);

  for (auto policy : {FusionPolicy::kNoFusion, FusionPolicy::kThreshold,
                      FusionPolicy::kOptimal, FusionPolicy::kSingleBulk}) {
    check_cover(plan_fusion(input, model, policy), n, input);
  }

  const auto optimal = plan_fusion(input, model, FusionPolicy::kOptimal);
  const auto layerwise = plan_fusion(input, model, FusionPolicy::kNoFusion);
  EXPECT_LE(optimal.back().comm_end, layerwise.back().comm_end + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionProperty, ::testing::Range(0, 20));

// Exhaustive optimality: for small factor counts, enumerate every possible
// consecutive grouping (2^(n-1) boundary masks) and verify the DP finds the
// minimum drain time.
class FusionOptimality : public ::testing::TestWithParam<int> {};

TEST_P(FusionOptimality, DpMatchesBruteForceMinimum) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<std::size_t> count(1, 10);
  std::uniform_real_distribution<double> gap(1e-4, 3e-2);
  std::uniform_int_distribution<std::size_t> size(1000, 20'000'000);
  std::uniform_real_distribution<double> alpha(1e-4, 2e-2);

  FusionPlanInput input;
  const std::size_t n = count(rng);
  double clock = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    clock += gap(rng);
    input.ready_times.push_back(clock);
    input.sizes.push_back(size(rng));
  }
  input.stream_free_at = gap(rng);
  const auto model = model_with(alpha(rng), 1.45e-9);

  // Brute force over boundary masks: bit b set => cut between b and b+1.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
    double stream_free = input.stream_free_at;
    std::size_t first = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool cut = i + 1 == n || (mask >> i) & 1;
      if (!cut) continue;
      std::size_t elements = 0;
      for (std::size_t j = first; j <= i; ++j) elements += input.sizes[j];
      stream_free = std::max(input.ready_times[i], stream_free) +
                    model.time(elements);
      first = i + 1;
    }
    best = std::min(best, stream_free);
  }

  const auto plan = plan_fusion(input, model, FusionPolicy::kOptimal);
  EXPECT_NEAR(plan.back().comm_end, best, best * 1e-12)
      << "n=" << n << " alpha=" << model.startup();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionOptimality, ::testing::Range(0, 30));

}  // namespace
}  // namespace spdkfac::sched
