#include "sched/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "models/model_spec.hpp"

namespace spdkfac::sched {
namespace {

// The calibrated task-pricing models of the paper preset (cubic inverse law
// and fabric broadcast cost) — what Algorithm 1 consumes in the simulator.
perf::InverseModel paper_inverse() {
  return perf::ClusterCalibration::paper_rtx2080ti_64gpu().inverse;
}

perf::BroadcastModel paper_broadcast() {
  return perf::ClusterCalibration::paper_rtx2080ti_64gpu().bcast_fabric;
}

TEST(SeqPlace, RoundRobinAllCT) {
  const std::vector<std::size_t> dims{10, 20, 30, 40, 50};
  const Placement p = seq_place(dims, 2);
  EXPECT_TRUE(p.valid(5));
  EXPECT_EQ(p.num_ncts(), 0u);
  EXPECT_EQ(p.per_gpu[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(p.per_gpu[1], (std::vector<std::size_t>{1, 3}));
}

TEST(SeqPlace, MoreGpusThanTensorsLeavesIdleGpus) {
  const std::vector<std::size_t> dims{10, 20};
  const Placement p = seq_place(dims, 4);
  EXPECT_TRUE(p.valid(2));
  EXPECT_TRUE(p.per_gpu[2].empty());
  EXPECT_TRUE(p.per_gpu[3].empty());
}

TEST(NonDistPlace, EverythingNct) {
  const std::vector<std::size_t> dims{10, 20, 30};
  const Placement p = nondist_place(dims, 8);
  EXPECT_TRUE(p.valid(3));
  EXPECT_EQ(p.num_ncts(), 3u);
  EXPECT_EQ(p.num_cts(), 0u);
  for (const auto& per_gpu : p.per_gpu) EXPECT_TRUE(per_gpu.empty());
}

TEST(LbpPlace, SmallTensorsBecomeNct) {
  // With the paper's models, small dims satisfy t_comp < t_comm (Fig. 11)
  // and must be replicated; huge dims must be CT.
  const std::vector<std::size_t> dims{64, 128, 8192, 7000};
  const Placement p =
      lbp_place(dims, 4, paper_inverse(), paper_broadcast());
  EXPECT_TRUE(p.valid(4));
  EXPECT_TRUE(p.assignments[0].nct);   // dim 64
  EXPECT_TRUE(p.assignments[1].nct);   // dim 128
  EXPECT_FALSE(p.assignments[2].nct);  // dim 8192
  EXPECT_FALSE(p.assignments[3].nct);  // dim 7000
}

TEST(LbpPlace, CtOwnersAreSpread) {
  // Four equally-huge tensors on four GPUs: each GPU gets exactly one.
  const std::vector<std::size_t> dims{8192, 8192, 8192, 8192};
  const Placement p =
      lbp_place(dims, 4, paper_inverse(), paper_broadcast());
  EXPECT_EQ(p.num_cts(), 4u);
  for (const auto& per_gpu : p.per_gpu) EXPECT_EQ(per_gpu.size(), 1u);
}

TEST(LbpPlace, SingleGpuMakesEverythingNct) {
  const std::vector<std::size_t> dims{64, 8192};
  const Placement p =
      lbp_place(dims, 1, paper_inverse(), paper_broadcast());
  EXPECT_EQ(p.num_ncts(), 2u);
}

TEST(LbpPlace, WorldSizeValidation) {
  const std::vector<std::size_t> dims{1};
  EXPECT_THROW(lbp_place(dims, 0, paper_inverse(), paper_broadcast()),
               std::invalid_argument);
  EXPECT_THROW(seq_place(dims, 0), std::invalid_argument);
}

TEST(PredictCost, NonDistHasNoCommAndFullComp) {
  const std::vector<std::size_t> dims{1000, 2000};
  const Placement p = nondist_place(dims, 4);
  const PlacementCost cost =
      predict_cost(p, dims, paper_inverse(), paper_broadcast());
  const double expect = paper_inverse().time(1000) + paper_inverse().time(2000);
  for (double t : cost.per_gpu_seconds) EXPECT_NEAR(t, expect, 1e-12);
  EXPECT_NEAR(cost.bottleneck_comm, 0.0, 1e-15);
}

TEST(PredictCost, SeqDistChargesOwnerCompAndComm) {
  const std::vector<std::size_t> dims{4000, 5000};
  const Placement p = seq_place(dims, 2);
  const PlacementCost cost =
      predict_cost(p, dims, paper_inverse(), paper_broadcast());
  EXPECT_NEAR(cost.per_gpu_seconds[0],
              paper_inverse().time(4000) + paper_broadcast().time_dim(4000),
              1e-12);
  EXPECT_NEAR(cost.per_gpu_seconds[1],
              paper_inverse().time(5000) + paper_broadcast().time_dim(5000),
              1e-12);
  EXPECT_EQ(cost.max_seconds,
            *std::max_element(cost.per_gpu_seconds.begin(),
                              cost.per_gpu_seconds.end()));
}

TEST(PredictCost, LbpBeatsNonDistOnPaperModels) {
  // Under the paper's per-GPU objective (Eq. 21), LBP strictly improves on
  // computing every inverse locally for all four CNNs: the distributed CTs
  // remove more compute than their broadcasts cost.  (Seq-Dist comparisons
  // live at the simulator level — Eq. 21 ignores the fabric contention that
  // makes 2L concurrent broadcasts expensive in the paper's measurements;
  // see tests/sim/test_iteration.cpp.)
  for (const auto& spec : models::paper_models()) {
    const auto dims = spec.factor_dims();
    const auto inv = paper_inverse();
    const auto bc = paper_broadcast();
    const double lbp =
        predict_cost(lbp_place(dims, 64, inv, bc), dims, inv, bc).max_seconds;
    const double nondist =
        predict_cost(nondist_place(dims, 64), dims, inv, bc).max_seconds;
    EXPECT_LT(lbp, nondist) << spec.name;
  }
}

TEST(PredictCost, SeqDistComputeGainVisibleWithoutContention) {
  // Eq. (24) captures only the compute distribution gain of Seq-Dist; with
  // contention ignored it must look no worse than Non-Dist on every model.
  // The DenseNet-201 reversal of Fig. 12 is a contention effect and is
  // asserted in the simulator tests instead.
  for (const auto& spec : models::paper_models()) {
    const auto dims = spec.factor_dims();
    const auto inv = paper_inverse();
    const auto bc = paper_broadcast();
    const double seq =
        predict_cost(seq_place(dims, 64), dims, inv, bc).max_seconds;
    const double nondist =
        predict_cost(nondist_place(dims, 64), dims, inv, bc).max_seconds;
    EXPECT_LE(seq, nondist) << spec.name;
  }
}

TEST(LbpPlace, BalanceMetricsAllProduceValidPlacements) {
  const auto dims = models::resnet50().factor_dims();
  for (auto metric : {BalanceMetric::kDim, BalanceMetric::kDimSquared,
                      BalanceMetric::kEstimatedTime}) {
    const Placement p =
        lbp_place(dims, 16, paper_inverse(), paper_broadcast(), metric);
    EXPECT_TRUE(p.valid(dims.size()));
  }
}

TEST(LbpPlace, EstimatedTimeBalanceBeatsRawDimBalance) {
  // The d^2-vs-d ambiguity in Algorithm 1: balancing by estimated time must
  // not be worse than balancing by raw dimension under the paper's own
  // objective.
  const auto dims = models::resnet152().factor_dims();
  const auto inv = paper_inverse();
  const auto bc = paper_broadcast();
  const double by_time =
      predict_cost(lbp_place(dims, 64, inv, bc, BalanceMetric::kEstimatedTime),
                   dims, inv, bc)
          .max_seconds;
  const double by_dim =
      predict_cost(lbp_place(dims, 64, inv, bc, BalanceMetric::kDim), dims,
                   inv, bc)
          .max_seconds;
  EXPECT_LE(by_time, by_dim * 1.001);
}

TEST(PlacementValid, DetectsCorruption) {
  const std::vector<std::size_t> dims{10, 20};
  Placement p = seq_place(dims, 2);
  EXPECT_TRUE(p.valid(2));
  p.assignments[0].owner = 5;  // out of range
  EXPECT_FALSE(p.valid(2));
  p = seq_place(dims, 2);
  p.per_gpu[0].push_back(1);  // tensor listed on a non-owner GPU
  EXPECT_FALSE(p.valid(2));
}

// Property sweep over random workloads: structural invariants of
// Algorithm 1.  (Global optimality claims are NOT properties of the greedy
// algorithm — e.g. a workload of many mid-size all-NCT tensors replicates
// work on every GPU, which is exactly why the figures use real DNN dimension
// distributions — so the sweep checks the rule-level guarantees instead.)
class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlacementProperty, StructureNctRuleAndGreedyBalance) {
  const auto [seed, world] = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> count(1, 400);
  std::uniform_int_distribution<std::size_t> dim(16, 8192);
  std::vector<std::size_t> dims(count(rng));
  for (auto& d : dims) d = dim(rng);

  const auto inv = paper_inverse();
  const auto bc = paper_broadcast();
  const Placement lbp = lbp_place(dims, world, inv, bc);
  EXPECT_TRUE(lbp.valid(dims.size()));
  EXPECT_TRUE(seq_place(dims, world).valid(dims.size()));
  EXPECT_TRUE(nondist_place(dims, world).valid(dims.size()));

  // CT/NCT typing is exactly the t_comp < t_comm rule (lines 8-13).
  for (const auto& a : lbp.assignments) {
    const bool should_be_nct =
        world == 1 || inv.time(a.dim) < bc.time_dim(a.dim);
    EXPECT_EQ(a.nct, should_be_nct) << "dim=" << a.dim;
  }

  // Greedy balance: no GPU's CT load exceeds the lightest GPU's load by
  // more than one largest-item weight (classic greedy-scheduling bound).
  std::vector<double> load(world, 0.0);
  double max_item = 0.0;
  for (int p = 0; p < world; ++p) {
    for (std::size_t t : lbp.per_gpu[p]) {
      const double w = inv.time(dims[t]) + bc.time_dim(dims[t]);
      load[p] += w;
      max_item = std::max(max_item, w);
    }
  }
  const double hi = *std::max_element(load.begin(), load.end());
  const double lo = *std::min_element(load.begin(), load.end());
  EXPECT_LE(hi - lo, max_item + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementProperty,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1, 2, 4, 8, 64)));

}  // namespace
}  // namespace spdkfac::sched
