// Adaptive re-planning equivalence — the acceptance suite of the online
// profiling → sync → re-plan → cache loop:
//
//   1. Trajectory equivalence: a runtime driven by a deterministic profile
//      trajectory re-plans every `replan_interval` steps, and each epoch's
//      schedule must be byte-identical to what sim::simulate_trajectory
//      produces from the same trajectory — the adaptive extension of the
//      PR 3 runtime/sim equivalence contract.  The recorded collective
//      submissions of every step must be exactly that epoch's canonical
//      collective sequence, with no out-of-plan traffic (trajectory mode
//      needs no profile sync).
//   2. Cache equivalence: with the same trajectory, training through the
//      plan cache must produce *bitwise-identical* parameters to the
//      always-replan path (capacity 0), and the steady-state steps must
//      actually hit the cache.
//   3. Live mode: measured-profile adaptivity completes, syncs the profile
//      across ranks (the out-of-plan "profile-sync" all-reduce), and feeds
//      the profiler from the executor/engine taps.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "models/model_spec.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"
#include "sim/iteration.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

constexpr std::size_t kWidths[] = {6, 10, 8, 3};
constexpr std::size_t kIn = 6, kClasses = 3, kBatch = 8;
constexpr std::size_t kGradThreshold = 80;
constexpr std::size_t kReplanInterval = 2;

sched::PassTiming scale_timing(sched::PassTiming timing, double factor) {
  for (auto* v : {&timing.a_ready, &timing.g_ready, &timing.grad_ready}) {
    for (double& t : *v) t *= factor;
  }
  timing.backward_end *= factor;
  return timing;
}

/// Three re-plan epochs spanning two decades of absolute scale: the
/// Eq. (15) fusion decision compares pass gaps against the absolute
/// all-reduce startup cost, so the same shape at different scales fuses
/// differently — which is what makes the trajectory a real adaptivity
/// probe rather than three copies of one schedule.
std::vector<sched::PassTiming> trajectory_for(
    const models::ModelSpec& spec, const perf::ClusterCalibration& cal) {
  const sched::PassTiming base =
      sched::timing_from_model(spec, kBatch, cal.compute,
                               /*second_order=*/true);
  return {base, scale_timing(base, 12.0), scale_timing(base, 150.0)};
}

struct StepCapture {
  std::string plan_text;
  std::vector<std::string> submissions;  // op names, this step only
};

/// Runs `steps` adaptive steps (post-hoc) and captures rank 0's per-step
/// plan + submissions.
std::vector<StepCapture> run_adaptive_runtime(
    int world, const std::vector<sched::PassTiming>& trajectory, int steps,
    const perf::ClusterCalibration& cal) {
  std::vector<StepCapture> captures;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    Rng init(4242);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();

    core::DistKfacOptions opts;
    opts.strategy = core::DistStrategy::kSpdKfac;
    opts.factor_comm = sched::FactorCommMode::kOptimalFuse;
    opts.grad_fusion_threshold = kGradThreshold;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.allreduce_model = cal.allreduce;
    opts.broadcast_model = cal.bcast_fabric;
    opts.inverse_model = cal.inverse;
    opts.profile_trajectory = trajectory;
    opts.replan_interval = kReplanInterval;
    core::DistKfacOptimizer optimizer(layers, comm, opts);

    Rng shard(100 + comm.rank());
    nn::SyntheticClassification data(kClasses, kIn, 1, 77);
    nn::SoftmaxCrossEntropy loss;
    std::size_t seen_records = 0;
    for (int s = 0; s < steps; ++s) {
      const nn::Batch batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
      if (comm.rank() == 0) {
        StepCapture cap;
        cap.plan_text = sched::plan_to_text(optimizer.plan());
        const auto records = optimizer.comm_records();
        for (std::size_t i = seen_records; i < records.size(); ++i) {
          cap.submissions.push_back(records[i].name);
        }
        seen_records = records.size();
        captures.push_back(std::move(cap));
      }
    }
  });
  return captures;
}

sim::AlgorithmConfig adaptive_sim_config() {
  sim::AlgorithmConfig cfg = sim::AlgorithmConfig::spd_kfac();
  cfg.grad_fusion_threshold = kGradThreshold;
  return cfg;
}

class AdaptiveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveEquivalence, ReplannedSchedulesMatchSimulatorEpochForEpoch) {
  const int world = GetParam();
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(world));
  const models::ModelSpec spec = models::mlp_spec(kWidths);
  const std::vector<sched::PassTiming> trajectory = trajectory_for(spec, cal);

  const std::vector<sim::IterationResult> sim_epochs =
      sim::simulate_trajectory(spec, kBatch, cal, adaptive_sim_config(),
                               trajectory);
  ASSERT_EQ(sim_epochs.size(), trajectory.size());

  // The trajectory must actually adapt the schedule, or the test is
  // vacuous: the first and last epochs fuse differently.  (A single worker
  // communicates nothing, so its plan is timing-invariant by design —
  // there the suite checks re-planning is a harmless no-op.)
  if (world > 1) {
    EXPECT_NE(sched::plan_to_text(sim_epochs.front().plan),
              sched::plan_to_text(sim_epochs.back().plan))
        << "trajectory scales chosen too close — same plan every epoch";
  }

  const int steps = static_cast<int>(trajectory.size() * kReplanInterval);
  const std::vector<StepCapture> runtime =
      run_adaptive_runtime(world, trajectory, steps, cal);
  ASSERT_EQ(runtime.size(), static_cast<std::size_t>(steps));

  for (int s = 0; s < steps; ++s) {
    const std::size_t epoch = static_cast<std::size_t>(s) / kReplanInterval;
    const std::string at = "step " + std::to_string(s) + " (epoch " +
                           std::to_string(epoch) + ", P=" +
                           std::to_string(world) + ")";
    // 1. The re-planned runtime schedule is byte-identical to the
    //    simulator's plan for the same trajectory entry.
    EXPECT_EQ(runtime[s].plan_text,
              sched::plan_to_text(sim_epochs[epoch].plan))
        << at;
    // 2. The step's recorded submissions are exactly the epoch plan's
    //    canonical collective sequence — and nothing else (no sync op in
    //    trajectory mode).
    const auto& collectives = sim_epochs[epoch].collectives;
    ASSERT_EQ(runtime[s].submissions.size(), collectives.size()) << at;
    for (std::size_t i = 0; i < collectives.size(); ++i) {
      EXPECT_EQ(runtime[s].submissions[i], collectives[i].label)
          << at << " collective " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, AdaptiveEquivalence,
                         ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

/// Adaptive training run; returns rank-0 final weights and (optionally)
/// cache counters.
std::vector<Matrix> train_adaptive(int world, std::size_t cache_capacity,
                                   int steps, std::size_t* hits = nullptr,
                                   std::size_t* misses = nullptr) {
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(world));
  const models::ModelSpec spec = models::mlp_spec(kWidths);
  std::vector<Matrix> weights;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    Rng init(2024);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = core::DistStrategy::kSpdKfac;
    opts.factor_comm = sched::FactorCommMode::kOptimalFuse;
    opts.grad_fusion_threshold = kGradThreshold;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.stat_decay = 0.5;
    opts.profile_trajectory = trajectory_for(spec, cal);
    opts.replan_interval = kReplanInterval;
    opts.plan_cache_capacity = cache_capacity;
    core::DistKfacOptimizer optimizer(layers, comm, opts);

    nn::SyntheticClassification data(kClasses, kIn, 1, 55);
    Rng shard(300 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < steps; ++s) {
      auto batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
    }
    if (comm.rank() == 0) {
      for (auto* l : layers) weights.push_back(l->weight());
      if (hits != nullptr) *hits = optimizer.plan_cache().hits();
      if (misses != nullptr) *misses = optimizer.plan_cache().misses();
    }
  });
  return weights;
}

TEST(AdaptivePlanCache, HitPathIsBitwiseIdenticalToAlwaysReplan) {
  // 7 steps over a 3-entry trajectory at interval 2: epochs at steps 0, 2,
  // 4 and a clamped refresh at 6.  Steps 1/3/5 and the step-6 refresh
  // (same trajectory entry, same signature) must hit the cache; and the
  // parameters after the run must match the capacity-0 (planner every
  // step) reference bit for bit.
  constexpr int kSteps = 7;
  std::size_t hits = 0, misses = 0;
  const auto cached = train_adaptive(2, sched::PlanCache::kDefaultCapacity,
                                     kSteps, &hits, &misses);
  const auto replanned = train_adaptive(2, 0, kSteps);

  ASSERT_EQ(cached.size(), replanned.size());
  for (std::size_t l = 0; l < cached.size(); ++l) {
    EXPECT_EQ(tensor::max_abs_diff(cached[l], replanned[l]), 0.0)
        << "layer " << l;
  }
  EXPECT_EQ(misses, 3u) << "one planner run per distinct trajectory epoch";
  EXPECT_EQ(hits, static_cast<std::size_t>(kSteps) - 3u)
      << "every steady-state step must reuse the cached plan";
}

TEST(AdaptiveLiveMode, MeasuredProfileLoopSyncsAndCompletes) {
  // Live adaptivity (no injected profile): the profiler accumulates real
  // task timings, the re-plan points rank-sync them with the out-of-plan
  // "profile-sync" all-reduce, and training runs to completion.  Schedules
  // are wall-clock dependent here, so the assertions are structural only.
  constexpr int kWorld = 2, kSteps = 4;
  comm::Cluster::launch(kWorld, [&](comm::Communicator& comm) {
    Rng init(7);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = core::DistStrategy::kSpdKfac;
    opts.factor_comm = sched::FactorCommMode::kOptimalFuse;
    opts.grad_fusion_threshold = kGradThreshold;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.replan_interval = 2;
    core::DistKfacOptimizer optimizer(layers, comm, opts);

    nn::SyntheticClassification data(kClasses, kIn, 1, 99);
    Rng shard(400 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < kSteps; ++s) {
      auto batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      const nn::PassHooks hooks = optimizer.pass_hooks();
      loss.forward(model.forward(flat, hooks), batch.labels);
      model.backward(loss.backward(), hooks);
      optimizer.step();
    }

    EXPECT_EQ(optimizer.steps(), static_cast<std::size_t>(kSteps));
    EXPECT_GE(optimizer.replan_count(), 2u);  // steps 0 and 2
    EXPECT_TRUE(optimizer.profiler().has_factor_samples());
    EXPECT_GT(optimizer.profiler().collective_ops(), 0u);

    // The profile sync ran at each live re-plan point: out-of-plan records
    // named "profile-sync".
    std::size_t syncs = 0;
    for (const auto& rec : optimizer.comm_records()) {
      if (rec.plan_task < 0) {
        EXPECT_EQ(rec.name, "profile-sync");
        ++syncs;
      }
    }
    EXPECT_EQ(syncs, optimizer.replan_count());
  });
}

}  // namespace
}  // namespace spdkfac
