// Golden-schedule snapshots: the full iteration plans of a fixed model zoo
// (MLP / small-conv / VGG-16 shapes × the three distribution strategies)
// are serialized with sched::plan_to_text and diffed against checked-in
// goldens.  Any change to the planner's *decisions* — fusion boundaries,
// gradient grouping, placement, collective order, dependency edges, labels
// — shows up as a readable text diff instead of a silent schedule drift.
//
// Regenerating after an intentional planner change:
//
//     SPDKFAC_REGEN_GOLDENS=1 ./build/tests/test_golden_schedules
//
// rewrites every golden under tests/sched/golden/ (the test then passes
// trivially); review the diff like any other code change and commit it.
// The snapshots are platform-stable: the text form excludes raw floating-
// point readiness values (their total order is captured by comm_order),
// and the planner's double arithmetic is IEEE-deterministic on the CI
// targets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/topology.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"

namespace spdkfac::sched {
namespace {

constexpr int kWorld = 4;
constexpr std::size_t kBatch = 8;
// Small threshold so the zoo models split into several WFBP groups.
constexpr std::size_t kGradThreshold = 100;

struct Zoo {
  const char* name;
  models::ModelSpec spec;
};

std::vector<Zoo> zoo() {
  const std::size_t widths[] = {6, 10, 8, 3};
  return {
      {"mlp", models::mlp_spec(widths)},
      {"conv", models::conv_spec(1, 8, 4, 6, 3)},
      {"vgg16", models::vgg16()},
  };
}

struct Strategy {
  const char* name;
  FactorCommMode factor_comm;
  InverseMode inverse;
};

constexpr Strategy kStrategies[] = {
    {"dkfac", FactorCommMode::kBulk, InverseMode::kLocalAll},
    {"mpdkfac", FactorCommMode::kBulk, InverseMode::kSeqDist},
    {"spdkfac", FactorCommMode::kOptimalFuse, InverseMode::kLBP},
};

IterationPlan plan_for(const models::ModelSpec& spec,
                       const Strategy& strategy) {
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(kWorld));
  ScheduleOptions opt;
  opt.factor_comm = strategy.factor_comm;
  opt.inverse = strategy.inverse;
  opt.grad_fusion_threshold = kGradThreshold;
  return plan_iteration(
      inputs_from_model(spec, kBatch, cal.compute, kWorld,
                        /*second_order=*/true),
      opt, costs_from(cal));
}

std::string golden_path(const std::string& case_name) {
  return std::string(SPDKFAC_GOLDEN_DIR) + "/" + case_name + ".txt";
}

bool regenerating() {
  const char* env = std::getenv("SPDKFAC_REGEN_GOLDENS");
  return env != nullptr && std::string(env) != "0";
}

void check_golden(const std::string& case_name, const std::string& actual) {
  const std::string path = golden_path(case_name);
  if (regenerating()) {
    std::filesystem::create_directories(SPDKFAC_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run with SPDKFAC_REGEN_GOLDENS=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << case_name
      << ": schedule drifted from its golden.  If the change is "
         "intentional, regenerate with SPDKFAC_REGEN_GOLDENS=1 and review "
         "the diff.";
}

TEST(GoldenSchedules, ModelZooTimesStrategiesMatchCheckedInPlans) {
  for (const Zoo& entry : zoo()) {
    for (const Strategy& strategy : kStrategies) {
      const std::string case_name =
          std::string(entry.name) + "_" + strategy.name;
      SCOPED_TRACE(case_name);
      check_golden(case_name, plan_to_text(plan_for(entry.spec, strategy)));
    }
  }
}

TEST(GoldenSchedules, SerializerIsInjectiveOnTheZoo) {
  // Nine distinct schedules must serialize to nine distinct texts —
  // otherwise the goldens could mask drift between cases.
  std::vector<std::string> texts;
  for (const Zoo& entry : zoo()) {
    for (const Strategy& strategy : kStrategies) {
      texts.push_back(plan_to_text(plan_for(entry.spec, strategy)));
    }
  }
  for (std::size_t i = 0; i < texts.size(); ++i) {
    for (std::size_t j = i + 1; j < texts.size(); ++j) {
      EXPECT_NE(texts[i], texts[j]) << "cases " << i << " and " << j;
    }
  }
}

}  // namespace
}  // namespace spdkfac::sched
