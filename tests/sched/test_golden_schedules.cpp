// Golden-schedule snapshots: the full iteration plans of a fixed model zoo
// (MLP / small-conv / VGG-16 shapes × the three distribution strategies)
// are serialized with sched::plan_to_text and diffed against checked-in
// goldens.  Any change to the planner's *decisions* — fusion boundaries,
// gradient grouping, placement, collective order, dependency edges, labels
// — shows up as a readable text diff instead of a silent schedule drift.
//
// Regenerating after an intentional planner change:
//
//     SPDKFAC_REGEN_GOLDENS=1 ./build/tests/test_golden_schedules
//
// rewrites every golden under tests/sched/golden/ (the test then passes
// trivially); review the diff like any other code change and commit it.
// The snapshots are platform-stable: the text form excludes raw floating-
// point readiness values (their total order is captured by comm_order),
// and the planner's double arithmetic is IEEE-deterministic on the CI
// targets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/topology.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"

namespace spdkfac::sched {
namespace {

constexpr int kWorld = 4;
constexpr std::size_t kBatch = 8;
// Small threshold so the zoo models split into several WFBP groups.
constexpr std::size_t kGradThreshold = 100;

struct Zoo {
  const char* name;
  models::ModelSpec spec;
};

std::vector<Zoo> zoo() {
  const std::size_t widths[] = {6, 10, 8, 3};
  return {
      {"mlp", models::mlp_spec(widths)},
      {"conv", models::conv_spec(1, 8, 4, 6, 3)},
      {"vgg16", models::vgg16()},
  };
}

struct Strategy {
  const char* name;
  FactorCommMode factor_comm;
  InverseMode inverse;
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
};

constexpr Strategy kStrategies[] = {
    {"dkfac", FactorCommMode::kBulk, InverseMode::kLocalAll},
    {"mpdkfac", FactorCommMode::kBulk, InverseMode::kSeqDist},
    {"spdkfac", FactorCommMode::kOptimalFuse, InverseMode::kLBP},
};

// Compressed variants of the full SPD-KFAC pipeline: the codecs shift the
// m of Eq. (14), so these goldens pin down the *re-derived* fusion groups,
// CT/NCT typing, algorithm choices and wire sizes — not just annotations.
constexpr Strategy kCompressedStrategies[] = {
    {"spdkfac_int8_topk", FactorCommMode::kOptimalFuse, InverseMode::kLBP,
     comm::Codec::kInt8, comm::Codec::kTopK},
    {"spdkfac_fp16", FactorCommMode::kOptimalFuse, InverseMode::kLBP,
     comm::Codec::kFp16, comm::Codec::kFp16},
};

IterationPlan plan_for(const models::ModelSpec& spec,
                       const Strategy& strategy) {
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(kWorld));
  ScheduleOptions opt;
  opt.factor_comm = strategy.factor_comm;
  opt.inverse = strategy.inverse;
  opt.grad_fusion_threshold = kGradThreshold;
  opt.factor_codec = strategy.factor_codec;
  opt.grad_codec = strategy.grad_codec;
  return plan_iteration(
      inputs_from_model(spec, kBatch, cal.compute, kWorld,
                        /*second_order=*/true),
      opt, costs_from(cal));
}

std::string golden_path(const std::string& case_name) {
  return std::string(SPDKFAC_GOLDEN_DIR) + "/" + case_name + ".txt";
}

bool regenerating() {
  const char* env = std::getenv("SPDKFAC_REGEN_GOLDENS");
  return env != nullptr && std::string(env) != "0";
}

void check_golden(const std::string& case_name, const std::string& actual) {
  const std::string path = golden_path(case_name);
  if (regenerating()) {
    std::filesystem::create_directories(SPDKFAC_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run with SPDKFAC_REGEN_GOLDENS=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << case_name
      << ": schedule drifted from its golden.  If the change is "
         "intentional, regenerate with SPDKFAC_REGEN_GOLDENS=1 and review "
         "the diff.";
}

TEST(GoldenSchedules, ModelZooTimesStrategiesMatchCheckedInPlans) {
  for (const Zoo& entry : zoo()) {
    for (const Strategy& strategy : kStrategies) {
      const std::string case_name =
          std::string(entry.name) + "_" + strategy.name;
      SCOPED_TRACE(case_name);
      check_golden(case_name, plan_to_text(plan_for(entry.spec, strategy)));
    }
  }
}

TEST(GoldenSchedules, CompressedPlansMatchCheckedInPlans) {
  for (const Zoo& entry : zoo()) {
    for (const Strategy& strategy : kCompressedStrategies) {
      const std::string case_name =
          std::string(entry.name) + "_" + strategy.name;
      SCOPED_TRACE(case_name);
      check_golden(case_name, plan_to_text(plan_for(entry.spec, strategy)));
    }
  }
}

// Compression is a planner *dimension*, not a transport detail: with the
// compressed beta of Eq. (14) the planner must reach genuinely different
// decisions — different fusion/WFBP grouping or CT/NCT typing — on at
// least one zoo model, not merely re-annotate the lossless plan.
TEST(GoldenSchedules, CompressionChangesPlanStructure) {
  const Strategy lossless = kStrategies[2];  // spdkfac
  bool structural = false;
  for (const Zoo& entry : zoo()) {
    const IterationPlan base = plan_for(entry.spec, lossless);
    const IterationPlan compressed =
        plan_for(entry.spec, kCompressedStrategies[0]);  // int8 + topk

    const auto groups_differ = [](const std::vector<FusionGroup>& a,
                                  const std::vector<FusionGroup>& b) {
      if (a.size() != b.size()) return true;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first || a[i].last != b[i].last) return true;
      }
      return false;
    };
    bool nct_differ =
        base.placement.assignments.size() !=
        compressed.placement.assignments.size();
    for (std::size_t t = 0; !nct_differ &&
                            t < base.placement.assignments.size();
         ++t) {
      nct_differ = base.placement.assignments[t].nct !=
                   compressed.placement.assignments[t].nct;
    }
    structural |= groups_differ(base.a_groups, compressed.a_groups) ||
                  groups_differ(base.g_groups, compressed.g_groups) ||
                  base.grad_groups != compressed.grad_groups || nct_differ;
  }
  EXPECT_TRUE(structural)
      << "int8+topk compression left every zoo plan structurally identical "
         "to lossless — the codecs are not reaching the fusion DP / LBP";
}

TEST(GoldenSchedules, SerializerIsInjectiveOnTheZoo) {
  // Nine distinct schedules must serialize to nine distinct texts —
  // otherwise the goldens could mask drift between cases.
  std::vector<std::string> texts;
  for (const Zoo& entry : zoo()) {
    for (const Strategy& strategy : kStrategies) {
      texts.push_back(plan_to_text(plan_for(entry.spec, strategy)));
    }
  }
  for (std::size_t i = 0; i < texts.size(); ++i) {
    for (std::size_t j = i + 1; j < texts.size(); ++j) {
      EXPECT_NE(texts[i], texts[j]) << "cases " << i << " and " << j;
    }
  }
}

}  // namespace
}  // namespace spdkfac::sched
