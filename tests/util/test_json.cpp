// util/json.hpp: locale-independent number formatting, RFC 8259 escaping,
// and the validator's own self-checks (a lenient validator would pass the
// exact bugs this PR fixes).
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "testsupport/json_validator.hpp"

namespace spdkfac {
namespace {

using testsupport::valid_json;

// A deliberately hostile locale: comma decimal point, dot grouping every
// three digits — the de_DE-style formatting that corrupts naive emitters.
struct CommaPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class GlobalLocaleGuard {
 public:
  GlobalLocaleGuard()
      : previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaPunct))) {}
  ~GlobalLocaleGuard() { std::locale::global(previous_); }

 private:
  std::locale previous_;
};

TEST(FormatDouble, RoundTripsExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                   123456.789012345, -2.2250738585072014e-308}) {
    const std::string s = util::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(FormatDouble, IgnoresHostileGlobalLocale) {
  GlobalLocaleGuard guard;
  EXPECT_EQ(util::format_double(0.5), "0.5");
  EXPECT_EQ(util::format_double(1234567.0), "1234567");
  // Sanity: the guard really installed a hostile locale (a default-built
  // ostringstream snapshots the global locale).
  std::ostringstream hostile;
  hostile << 0.5;
  EXPECT_NE(hostile.str(), "0.5");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(util::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(util::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::json_number(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::json_number(3.5), "3.5");
}

TEST(JsonEscape, ControlCharactersAndSpecials) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(util::json_escape(std::string("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(JsonEscape, EscapedStringsValidate) {
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) nasty += static_cast<char>(c + (c == 0));
  nasty += "\"\\plain";
  EXPECT_TRUE(valid_json(util::json_string(nasty)));
}

TEST(JsonValidator, AcceptsRealJson) {
  EXPECT_TRUE(valid_json("{}"));
  EXPECT_TRUE(valid_json("[1, 2.5, -3e-7, null, true, false, \"x\"]"));
  EXPECT_TRUE(valid_json("{\"a\": {\"b\": [0.125]}}"));
  EXPECT_TRUE(valid_json("  \"top-level string\"  "));
}

TEST(JsonValidator, RejectsTheBugsWeFixed) {
  EXPECT_FALSE(valid_json("{\"v\": nan}"));          // %g NaN
  EXPECT_FALSE(valid_json("{\"v\": inf}"));          // %g Inf
  EXPECT_FALSE(valid_json("{\"v\": 0,5}"));          // comma decimal point
  EXPECT_FALSE(valid_json("[1.234.567]"));           // grouping separators
  EXPECT_FALSE(valid_json("{\"a\": \"b\"} extra"));  // trailing garbage
  EXPECT_FALSE(valid_json("[1, 2,]"));               // trailing comma
  EXPECT_FALSE(valid_json("{\"a\": 1,}"));           // trailing comma
  EXPECT_FALSE(valid_json(std::string("\"a\x01b\"")));  // raw control char
  EXPECT_FALSE(valid_json("\"bad \\x escape\""));
  EXPECT_FALSE(valid_json("[1"));                    // truncated
  EXPECT_FALSE(valid_json(""));
}

}  // namespace
}  // namespace spdkfac
