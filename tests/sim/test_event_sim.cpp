#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace spdkfac::sim {
namespace {

TEST(EventSim, SingleTask) {
  EventSim es;
  const int s = es.add_stream("comp");
  es.add_task(TaskKind::kForward, 2.5, s);
  const Schedule sched = es.run();
  ASSERT_EQ(sched.tasks.size(), 1u);
  EXPECT_EQ(sched.tasks[0].start, 0.0);
  EXPECT_EQ(sched.tasks[0].end, 2.5);
  EXPECT_EQ(sched.makespan, 2.5);
}

TEST(EventSim, StreamSerializesTasks) {
  EventSim es;
  const int s = es.add_stream("comp");
  es.add_task(TaskKind::kForward, 1.0, s);
  es.add_task(TaskKind::kForward, 2.0, s);
  const Schedule sched = es.run();
  EXPECT_EQ(sched.tasks[1].start, 1.0);
  EXPECT_EQ(sched.tasks[1].end, 3.0);
}

TEST(EventSim, IndependentStreamsOverlap) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  es.add_task(TaskKind::kForward, 3.0, a);
  es.add_task(TaskKind::kGradComm, 2.0, b);
  const Schedule sched = es.run();
  EXPECT_EQ(sched.tasks[1].start, 0.0);
  EXPECT_EQ(sched.makespan, 3.0);
}

TEST(EventSim, DependencyDelaysStart) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  const int t0 = es.add_task(TaskKind::kForward, 3.0, a);
  es.add_task(TaskKind::kGradComm, 1.0, b, {t0});
  const Schedule sched = es.run();
  EXPECT_EQ(sched.tasks[1].start, 3.0);
  EXPECT_EQ(sched.makespan, 4.0);
}

TEST(EventSim, GangTaskOccupiesAllStreams) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  es.add_task(TaskKind::kForward, 2.0, a);
  // Gang over both streams: cannot start until stream a frees at t=2.
  es.add_gang_task(TaskKind::kFactorComm, 1.0, {a, b});
  es.add_task(TaskKind::kForward, 1.0, b);  // queued behind the gang on b
  const Schedule sched = es.run();
  EXPECT_EQ(sched.tasks[1].start, 2.0);
  EXPECT_EQ(sched.tasks[2].start, 3.0);
}

TEST(EventSim, ForwardDependencyThrows) {
  EventSim es;
  const int s = es.add_stream("s");
  EXPECT_THROW(es.add_task(TaskKind::kForward, 1.0, s, {5}),
               std::logic_error);
}

TEST(EventSim, NegativeDurationThrows) {
  EventSim es;
  const int s = es.add_stream("s");
  EXPECT_THROW(es.add_task(TaskKind::kForward, -1.0, s), std::logic_error);
}

TEST(EventSim, UnknownStreamThrows) {
  EventSim es;
  EXPECT_THROW(es.add_task(TaskKind::kForward, 1.0, 3), std::logic_error);
}

TEST(EventSim, DeterministicAcrossRuns) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  int prev = -1;
  for (int i = 0; i < 20; ++i) {
    std::vector<int> deps;
    if (prev >= 0 && i % 3 == 0) deps.push_back(prev);
    prev = es.add_task(i % 2 ? TaskKind::kGradComm : TaskKind::kForward,
                       0.5 + i * 0.1, i % 2 ? b : a, deps);
  }
  const Schedule s1 = es.run();
  const Schedule s2 = es.run();
  ASSERT_EQ(s1.tasks.size(), s2.tasks.size());
  for (std::size_t i = 0; i < s1.tasks.size(); ++i) {
    EXPECT_EQ(s1.tasks[i].start, s2.tasks[i].start);
    EXPECT_EQ(s1.tasks[i].end, s2.tasks[i].end);
  }
}

TEST(Breakdown, ComputeHidesOverlappedComm) {
  EventSim es;
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  es.add_task(TaskKind::kForward, 4.0, comp);
  // Comm fully inside the compute window: contributes nothing.
  es.add_task(TaskKind::kFactorComm, 2.0, comm);
  const Schedule sched = es.run();
  const Breakdown b = compute_breakdown(sched);
  EXPECT_DOUBLE_EQ(b.ff_bp, 4.0);
  EXPECT_DOUBLE_EQ(b.factor_comm, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), sched.makespan);
}

TEST(Breakdown, CommTailIsExposed) {
  EventSim es;
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  const int f = es.add_task(TaskKind::kForward, 2.0, comp);
  es.add_task(TaskKind::kFactorComm, 3.0, comm, {f});
  const Schedule sched = es.run();
  const Breakdown b = compute_breakdown(sched);
  EXPECT_DOUBLE_EQ(b.ff_bp, 2.0);
  EXPECT_DOUBLE_EQ(b.factor_comm, 3.0);
  EXPECT_DOUBLE_EQ(b.total(), 5.0);
}

TEST(Breakdown, PartialOverlapSplitsCorrectly) {
  EventSim es;
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  es.add_task(TaskKind::kForward, 2.0, comp);
  es.add_task(TaskKind::kGradComm, 5.0, comm);  // starts at 0, ends at 5
  const Schedule sched = es.run();
  const Breakdown b = compute_breakdown(sched);
  EXPECT_DOUBLE_EQ(b.ff_bp, 2.0);
  EXPECT_DOUBLE_EQ(b.grad_comm, 3.0);  // only the non-overlapped tail
  EXPECT_DOUBLE_EQ(b.total(), 5.0);
}

TEST(Breakdown, CategoriesAlwaysSumToMakespan) {
  EventSim es;
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  int prev = -1;
  for (int i = 0; i < 10; ++i) {
    prev = es.add_task(i % 2 ? TaskKind::kBackward : TaskKind::kFactorComp,
                       0.3 + 0.05 * i, comp, {});
    es.add_task(i % 3 ? TaskKind::kFactorComm : TaskKind::kGradComm,
                0.2 + 0.1 * i, comm, {prev});
  }
  const Schedule sched = es.run();
  const Breakdown b = compute_breakdown(sched);
  EXPECT_NEAR(b.total(), sched.makespan, 1e-9);
}

TEST(Breakdown, InverseCompBeatsInverseComm) {
  EventSim es;
  const int c0 = es.add_stream("g0.comp");
  const int m1 = es.add_stream("g1.comm");
  es.add_task(TaskKind::kInverseComp, 2.0, c0);
  es.add_task(TaskKind::kInverseComm, 3.0, m1);
  const Breakdown b = compute_breakdown(es.run());
  EXPECT_DOUBLE_EQ(b.inverse_comp, 2.0);
  EXPECT_DOUBLE_EQ(b.inverse_comm, 1.0);
}

TEST(Timeline, RendersRowsPerStream) {
  EventSim es;
  const int comp = es.add_stream("gpu0.comp");
  const int comm = es.add_stream("gpu0.comm");
  const int f = es.add_task(TaskKind::kForward, 1.0, comp);
  es.add_task(TaskKind::kFactorComm, 1.0, comm, {f});
  const Schedule sched = es.run();
  const std::string art =
      render_timeline(sched, {"gpu0.comp", "gpu0.comm"}, 40);
  EXPECT_NE(art.find("gpu0.comp"), std::string::npos);
  EXPECT_NE(art.find('F'), std::string::npos);
  EXPECT_NE(art.find('c'), std::string::npos);
}

// Random-DAG schedule properties: streams never double-book, queue order is
// preserved, dependencies are respected, and the makespan is exactly the
// latest task end.
class ScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleProperty, StreamsSerializeAndDepsHold) {
  std::mt19937_64 rng(GetParam() * 101 + 13);
  std::uniform_int_distribution<int> stream_count(1, 6);
  std::uniform_int_distribution<int> task_count(1, 80);
  std::uniform_real_distribution<double> duration(0.0, 2.0);
  std::uniform_int_distribution<int> coin(0, 3);

  EventSim es;
  const int streams = stream_count(rng);
  for (int s = 0; s < streams; ++s) {
    // Built in two steps: `"s" + std::to_string(s)` trips GCC 12's bogus
    // -Wrestrict on inlined string concatenation (GCC PR 105329).
    std::string name = "s";
    name += std::to_string(s);
    es.add_stream(name);
  }

  const int n = task_count(rng);
  std::vector<std::vector<int>> deps_of(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int> gang;
    std::uniform_int_distribution<int> pick(0, streams - 1);
    gang.push_back(pick(rng));
    if (coin(rng) == 0 && streams > 1) {
      const int extra = pick(rng);
      if (extra != gang[0]) gang.push_back(extra);
    }
    std::vector<int> deps;
    if (i > 0 && coin(rng) <= 1) {
      std::uniform_int_distribution<int> dep(0, i - 1);
      deps.push_back(dep(rng));
    }
    deps_of[i] = deps;
    es.add_gang_task(TaskKind::kOther, duration(rng), gang, deps);
  }

  const Schedule sched = es.run();
  double latest = 0.0;
  for (const auto& t : sched.tasks) latest = std::max(latest, t.end);
  EXPECT_EQ(sched.makespan, latest);

  // Dependencies respected.
  for (int i = 0; i < n; ++i) {
    for (int d : deps_of[i]) {
      EXPECT_GE(sched.tasks[i].start, sched.tasks[d].end) << i << "<-" << d;
    }
  }

  // Per-stream: no overlap and insertion order preserved.
  for (int s = 0; s < streams; ++s) {
    double prev_end = 0.0;
    for (const auto& t : sched.tasks) {
      if (std::find(t.resources.begin(), t.resources.end(), s) ==
          t.resources.end()) {
        continue;
      }
      EXPECT_GE(t.start, prev_end - 1e-12);
      prev_end = t.end;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Range(0, 15));

TEST(TaskKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(TaskKind::kForward), "Forward");
  EXPECT_STREQ(to_string(TaskKind::kInverseComm), "InverseComm");
  EXPECT_STREQ(to_string(TaskKind::kOther), "Other");
}

}  // namespace
}  // namespace spdkfac::sim
