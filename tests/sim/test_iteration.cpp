// Simulation-level reproduction checks: the qualitative claims of the
// paper's evaluation must hold in the simulated iteration schedules.
#include "sim/iteration.hpp"

#include <gtest/gtest.h>

#include "models/model_spec.hpp"
#include "perf/models.hpp"

namespace spdkfac::sim {
namespace {

const perf::ClusterCalibration& cal64() {
  static const auto cal = perf::ClusterCalibration::paper_rtx2080ti_64gpu();
  return cal;
}

const perf::ClusterCalibration& cal1() {
  static const auto cal = perf::ClusterCalibration::paper_fabric(1);
  return cal;
}

const models::ModelSpec& r50() {
  static const auto spec = models::resnet50();
  return spec;
}

TEST(Iteration, SgdSingleGpuHasOnlyCompute) {
  const auto res =
      simulate_iteration(r50(), 32, cal1(), AlgorithmConfig::sgd());
  EXPECT_GT(res.breakdown.ff_bp, 0.0);
  EXPECT_EQ(res.breakdown.grad_comm, 0.0);
  EXPECT_EQ(res.breakdown.factor_comp, 0.0);
  EXPECT_EQ(res.breakdown.inverse_comp, 0.0);
  EXPECT_NEAR(res.breakdown.total(), res.total, 1e-9);
}

TEST(Iteration, KfacSingleGpuAddsFactorAndInverseCompute) {
  const auto res =
      simulate_iteration(r50(), 32, cal1(), AlgorithmConfig::kfac());
  EXPECT_GT(res.breakdown.factor_comp, 0.0);
  EXPECT_GT(res.breakdown.inverse_comp, 0.0);
  EXPECT_EQ(res.breakdown.factor_comm, 0.0);
  EXPECT_EQ(res.breakdown.inverse_comm, 0.0);
}

TEST(Iteration, KfacRoughlyFourTimesSgd) {
  // Section III: "KFAC takes about 4 times slower than SGD" on one GPU.
  const double sgd =
      iteration_time(r50(), 32, cal1(), AlgorithmConfig::sgd());
  const double kfac =
      iteration_time(r50(), 32, cal1(), AlgorithmConfig::kfac());
  EXPECT_GT(kfac / sgd, 2.5);
  EXPECT_LT(kfac / sgd, 6.0);
}

TEST(Iteration, KfacInverseCompMatchesFig2Scale) {
  // Fig. 2 quotes ~292 ms of single-GPU inverse computation for ResNet-50.
  // The paper's Eq. (26) exponential cannot price that total (its 3.64 ms
  // per-call floor alone puts 108 inverses at ~390 ms), so the simulator's
  // cubic law lands at ~160 ms — same order, shape preserved (see
  // EXPERIMENTS.md on this inconsistency in the paper's own numbers).
  const auto res =
      simulate_iteration(r50(), 32, cal1(), AlgorithmConfig::kfac());
  EXPECT_GT(res.breakdown.inverse_comp, 0.10);
  EXPECT_LT(res.breakdown.inverse_comp, 0.40);
}

TEST(Iteration, MpdDistributesInverseComputation) {
  // Fig. 2: MPD-KFAC cuts InverseComp from ~292 ms to ~51 ms but pays
  // InverseComm (~134 ms).
  const auto dkfac =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::dkfac());
  const auto mpd =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::mpd_kfac());
  EXPECT_LT(mpd.breakdown.inverse_comp, 0.4 * dkfac.breakdown.inverse_comp);
  EXPECT_EQ(dkfac.breakdown.inverse_comm, 0.0);
  EXPECT_GT(mpd.breakdown.inverse_comm, 0.02);
}

TEST(Iteration, FactorCommPresentInDistributedKfac) {
  const auto res =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::dkfac());
  EXPECT_GT(res.breakdown.factor_comm, 0.05);
  // Factor traffic exceeds gradient traffic (Section III-A): with WFBP the
  // exposed gradient tail must be smaller than the bulk factor comm.
  EXPECT_GT(res.breakdown.factor_comm, res.breakdown.grad_comm);
}

TEST(Iteration, SpdBeatsBothBaselinesOnAllPaperModels) {
  // Table III: SPD-KFAC is 10-35% faster than D-KFAC and 13-19% faster
  // than MPD-KFAC (we assert improvement, with loose shape bounds).
  for (const auto& spec : models::paper_models()) {
    const std::size_t batch = spec.default_batch;
    const double dkfac =
        iteration_time(spec, batch, cal64(), AlgorithmConfig::dkfac());
    const double mpd =
        iteration_time(spec, batch, cal64(), AlgorithmConfig::mpd_kfac());
    const double spd =
        iteration_time(spec, batch, cal64(), AlgorithmConfig::spd_kfac());
    EXPECT_LT(spd, dkfac) << spec.name;
    EXPECT_LT(spd, mpd) << spec.name;
    const double sp1 = dkfac / spd;
    EXPECT_GT(sp1, 1.05) << spec.name;
    EXPECT_LT(sp1, 2.0) << spec.name;
  }
}

TEST(Iteration, SpdHidesMostFactorCommunication) {
  // Fig. 10: the pipelined schedule hides 50-84% of factor-aggregation
  // communication; require at least ~40% hidden for every paper model.
  for (const auto& spec : models::paper_models()) {
    const auto res = simulate_iteration(spec, spec.default_batch, cal64(),
                                        AlgorithmConfig::spd_kfac());
    EXPECT_GT(res.factor_comm_hidden_fraction(), 0.4) << spec.name;
  }
}

TEST(Iteration, PipelineVariantOrderingMatchesFig10) {
  // Fig. 10 ordering for exposed FactorComm time:
  //   LW w/o TF is worst (startup-dominated), threshold fusion improves on
  //   Naive, and optimal fusion is best.
  auto cfg_with = [](FactorCommMode mode) {
    AlgorithmConfig cfg = AlgorithmConfig::dkfac();
    cfg.factor_comm = mode;
    cfg.name = "variant";
    return cfg;
  };
  for (const auto& spec : models::paper_models()) {
    const std::size_t batch = spec.default_batch;
    auto exposed = [&](FactorCommMode mode) {
      return simulate_iteration(spec, batch, cal64(), cfg_with(mode))
          .breakdown.factor_comm;
    };
    const double naive = exposed(FactorCommMode::kNaive);
    const double lw = exposed(FactorCommMode::kLayerWise);
    const double ttf = exposed(FactorCommMode::kThresholdFuse);
    const double otf = exposed(FactorCommMode::kOptimalFuse);
    EXPECT_GT(lw, naive) << spec.name;   // no fusion pays 2L startups
    EXPECT_LT(otf, naive) << spec.name;  // optimal fusion wins
    EXPECT_LE(otf, ttf * 1.001) << spec.name;
  }
}

TEST(Iteration, LbpBeatsPlacementBaselinesOnInversePhase) {
  // Fig. 12: LBP's InverseComp+InverseComm beats Non-Dist and Seq-Dist.
  auto cfg_with = [](InverseMode mode) {
    AlgorithmConfig cfg = AlgorithmConfig::dkfac();
    cfg.inverse = mode;
    return cfg;
  };
  for (const auto& spec : models::paper_models()) {
    const std::size_t batch = spec.default_batch;
    auto inverse_cost = [&](InverseMode mode) {
      const auto b =
          simulate_iteration(spec, batch, cal64(), cfg_with(mode)).breakdown;
      return b.inverse_comp + b.inverse_comm;
    };
    const double nondist = inverse_cost(InverseMode::kLocalAll);
    const double seq = inverse_cost(InverseMode::kSeqDist);
    const double lbp = inverse_cost(InverseMode::kLBP);
    EXPECT_LT(lbp, nondist) << spec.name;
    EXPECT_LT(lbp, seq) << spec.name;
  }
}

TEST(Iteration, SeqDistLosesToNonDistOnDenseNet) {
  // The paper's standout observation (Figs. 9 and 12): on DenseNet-201 the
  // broadcast overhead of Seq-Dist outweighs the distributed-compute gain.
  const auto spec = models::densenet201();
  auto cfg_with = [](InverseMode mode) {
    AlgorithmConfig cfg = AlgorithmConfig::dkfac();
    cfg.inverse = mode;
    return cfg;
  };
  auto inverse_cost = [&](InverseMode mode) {
    const auto b = simulate_iteration(spec, spec.default_batch, cal64(),
                                      cfg_with(mode))
                       .breakdown;
    return b.inverse_comp + b.inverse_comm;
  };
  EXPECT_GT(inverse_cost(InverseMode::kSeqDist),
            inverse_cost(InverseMode::kLocalAll));
}

TEST(Iteration, AblationBothOptimizationsContribute) {
  // Fig. 13: +Pipe-LBP and -Pipe+LBP each beat -Pipe-LBP; +Pipe+LBP wins.
  auto make = [](FactorCommMode fc, InverseMode inv) {
    AlgorithmConfig cfg = AlgorithmConfig::dkfac();
    cfg.factor_comm = fc;
    cfg.inverse = inv;
    return cfg;
  };
  for (const auto& spec : models::paper_models()) {
    const std::size_t batch = spec.default_batch;
    const double base = iteration_time(
        spec, batch, cal64(),
        make(FactorCommMode::kBulk, InverseMode::kLocalAll));
    const double pipe = iteration_time(
        spec, batch, cal64(),
        make(FactorCommMode::kOptimalFuse, InverseMode::kLocalAll));
    const double lbp = iteration_time(
        spec, batch, cal64(), make(FactorCommMode::kBulk, InverseMode::kLBP));
    const double both = iteration_time(
        spec, batch, cal64(),
        make(FactorCommMode::kOptimalFuse, InverseMode::kLBP));
    EXPECT_LT(pipe, base) << spec.name;
    EXPECT_LT(lbp, base) << spec.name;
    EXPECT_LE(both, pipe) << spec.name;
    EXPECT_LE(both, lbp) << spec.name;
  }
}

TEST(Iteration, BreakdownSumsToTotal) {
  for (const AlgorithmConfig& cfg :
       {AlgorithmConfig::sgd(), AlgorithmConfig::dkfac(),
        AlgorithmConfig::mpd_kfac(), AlgorithmConfig::spd_kfac()}) {
    const auto res = simulate_iteration(r50(), 32, cal64(), cfg);
    EXPECT_NEAR(res.breakdown.total(), res.total, 1e-9) << cfg.name;
  }
}

TEST(Iteration, SpdPlacementHasNctsAndCts) {
  const auto res =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::spd_kfac());
  EXPECT_GT(res.placement.num_ncts(), 0u);
  EXPECT_GT(res.placement.num_cts(), 0u);
  EXPECT_TRUE(res.placement.valid(2 * r50().num_layers()));
}

TEST(Iteration, ScalesAcrossWorldSizes) {
  // Distributed overheads appear as the cluster grows; SPD-KFAC must keep
  // its advantage at every world size the fabric model covers.
  for (int world : {4, 16, 64}) {
    const auto cal = perf::ClusterCalibration::paper_fabric(world);
    const double dkfac =
        iteration_time(r50(), 32, cal, AlgorithmConfig::dkfac());
    const double spd =
        iteration_time(r50(), 32, cal, AlgorithmConfig::spd_kfac());
    EXPECT_LT(spd, dkfac) << "world=" << world;
  }
}

TEST(Iteration, SingleLayerModelWorksUnderEveryAlgorithm) {
  models::ModelSpec tiny = r50();
  tiny.layers.resize(1);
  for (const AlgorithmConfig& cfg :
       {AlgorithmConfig::sgd(), AlgorithmConfig::kfac(),
        AlgorithmConfig::dkfac(), AlgorithmConfig::mpd_kfac(),
        AlgorithmConfig::spd_kfac()}) {
    const auto res = simulate_iteration(tiny, 4, cal64(), cfg);
    EXPECT_GT(res.total, 0.0) << cfg.name;
    EXPECT_NEAR(res.breakdown.total(), res.total, 1e-9) << cfg.name;
  }
}

TEST(Iteration, TwoGpuClusterStillShowsOrdering) {
  const auto cal = perf::ClusterCalibration::paper_fabric(2);
  const double dkfac =
      iteration_time(r50(), 8, cal, AlgorithmConfig::dkfac());
  const double spd =
      iteration_time(r50(), 8, cal, AlgorithmConfig::spd_kfac());
  EXPECT_LT(spd, dkfac);
}

TEST(Iteration, BatchSizeScalesComputeNotComm) {
  // Doubling the batch grows FF&BP and FactorComp but leaves the factor
  // communication volume unchanged (factor sizes depend on dims only).
  const auto small =
      simulate_iteration(r50(), 16, cal64(), AlgorithmConfig::dkfac());
  const auto large =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::dkfac());
  EXPECT_GT(large.breakdown.ff_bp, 1.8 * small.breakdown.ff_bp);
  EXPECT_NEAR(large.factor_comm_busy, small.factor_comm_busy, 1e-12);
}

TEST(Iteration, VggExtensionModelsSimulate) {
  // The VGG extension models (massive fc factors) must flow through every
  // algorithm; with a 25k-dim A factor the CT path is heavily exercised.
  const auto spec = models::vgg16();
  const double dkfac =
      iteration_time(spec, 16, cal64(), AlgorithmConfig::dkfac());
  const double spd =
      iteration_time(spec, 16, cal64(), AlgorithmConfig::spd_kfac());
  EXPECT_GT(dkfac, 0.0);
  EXPECT_LT(spd, dkfac);
}

TEST(Iteration, EmptyModelThrows) {
  models::ModelSpec empty;
  EXPECT_THROW(
      simulate_iteration(empty, 32, cal64(), AlgorithmConfig::sgd()),
      std::invalid_argument);
}

TEST(Iteration, DeterministicResults) {
  const auto a =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::spd_kfac());
  const auto b =
      simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::spd_kfac());
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.breakdown.factor_comm, b.breakdown.factor_comm);
}

TEST(Iteration, ComputeStreamsPriceTheRuntimeOverlap) {
  // The compute_streams knob models the runtime's work-stealing pool: with
  // S > 1 factor builds and inverses overlap the pass kernels (and each
  // other), so the priced iteration can only shrink — while the *plan*
  // (fusion groups, collective order, placement) must not move at all.
  for (const auto make :
       {AlgorithmConfig::spd_kfac, AlgorithmConfig::dkfac}) {
    AlgorithmConfig serial = make();
    AlgorithmConfig pooled = make();
    pooled.compute_streams = 4;
    const auto one = simulate_iteration(r50(), 32, cal64(), serial);
    const auto four = simulate_iteration(r50(), 32, cal64(), pooled);
    EXPECT_LE(four.total, one.total) << serial.name;
    ASSERT_EQ(one.plan.tasks.size(), four.plan.tasks.size()) << serial.name;
    EXPECT_EQ(one.plan.collective_order(), four.plan.collective_order())
        << serial.name;
    ASSERT_EQ(one.collectives.size(), four.collectives.size()) << serial.name;
    for (std::size_t i = 0; i < one.collectives.size(); ++i) {
      EXPECT_EQ(one.collectives[i].label, four.collectives[i].label);
      EXPECT_EQ(one.collectives[i].seconds, four.collectives[i].seconds);
    }
  }
  // Second-order work dominated by factor builds and inverses must shrink
  // strictly once it can spread over four workers.
  AlgorithmConfig pooled = AlgorithmConfig::spd_kfac();
  pooled.compute_streams = 4;
  EXPECT_LT(simulate_iteration(r50(), 32, cal64(), pooled).total,
            simulate_iteration(r50(), 32, cal64(), AlgorithmConfig::spd_kfac())
                .total);
}

TEST(Iteration, ComputeStreamsMustBePositive) {
  AlgorithmConfig cfg = AlgorithmConfig::spd_kfac();
  cfg.compute_streams = 0;
  EXPECT_THROW(simulate_iteration(r50(), 32, cal64(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace spdkfac::sim
