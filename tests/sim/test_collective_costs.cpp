// Cross-validation of the simulator against the collective cost models:
// every gang all-reduce the event-sim schedules must be priced exactly at
// the closed-form alpha + beta*m cost of the algorithm the selector chose,
// the auto-selector must never price worse than the always-ring baseline,
// and the breakdown accounting must keep summing to the makespan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

namespace spdkfac::sim {
namespace {

/// A deliberately small model: two conv layers plus the classifier head.
models::ModelSpec tiny_model() {
  models::ModelSpec spec;
  spec.name = "tiny-cnn";
  spec.input_channels = 3;
  spec.input_hw = 32;
  spec.default_batch = 8;
  models::LayerSpec c1;
  c1.name = "conv1";
  c1.kind = models::LayerKind::kConv2d;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel_h = c1.kernel_w = 3;
  c1.out_h = c1.out_w = 32;
  models::LayerSpec c2 = c1;
  c2.name = "conv2";
  c2.in_channels = 16;
  c2.out_channels = 32;
  c2.out_h = c2.out_w = 16;
  models::LayerSpec fc;
  fc.name = "fc";
  fc.kind = models::LayerKind::kLinear;
  fc.in_channels = 32;
  fc.out_channels = 10;
  fc.has_bias = true;
  spec.layers = {c1, c2, fc};
  return spec;
}

TEST(CollectiveCosts, SimTimingsEqualClosedFormOfSelectedAlgorithm) {
  const comm::Topology topo = comm::Topology::multi_node(2, 2);
  const auto cal = perf::ClusterCalibration::for_topology(topo);
  AlgorithmConfig cfg = AlgorithmConfig::spd_kfac();
  cfg.collective_algo = comm::AllReduceAlgo::kAuto;

  const auto res = simulate_iteration(tiny_model(), 8, cal, cfg);
  ASSERT_FALSE(res.collectives.empty());

  for (const CollectiveChoice& c : res.collectives) {
    if (c.kind == TaskKind::kInverseComm) {
      // Broadcasts are priced by the fabric model, not the all-reduce
      // selector, and carry their root instead of an algorithm.
      const auto& task = res.plan.task(c.plan_task);
      EXPECT_DOUBLE_EQ(c.seconds, cal.bcast_fabric.time_dim(task.dim))
          << c.label;
      EXPECT_EQ(c.root, task.rank) << c.label;
      continue;
    }
    // The charged duration is exactly the chosen algorithm's alpha+beta*m.
    EXPECT_DOUBLE_EQ(c.seconds, cal.collectives.cost(c.algo, c.elements))
        << c.label;
    // The label exposes the choice and maps back to one schedule task of
    // the same duration.
    EXPECT_NE(c.label.find('@'), std::string::npos) << c.label;
    const auto task = std::find_if(
        res.schedule.tasks.begin(), res.schedule.tasks.end(),
        [&](const ScheduledTask& t) { return t.label == c.label; });
    ASSERT_NE(task, res.schedule.tasks.end()) << c.label;
    // end = start + duration in the event sim; recovering the duration by
    // subtraction is only ULP-exact, so allow a tiny absolute slack.
    EXPECT_NEAR(task->end - task->start, c.seconds, 1e-12) << c.label;
  }

  // On a 2x2 hierarchy the default link models make the two-level
  // algorithm strictly cheaper than the ring, so the selector must have
  // moved off the ring somewhere.
  EXPECT_TRUE(std::any_of(
      res.collectives.begin(), res.collectives.end(),
      [](const CollectiveChoice& c) {
        return c.algo != comm::AllReduceAlgo::kRing;
      }));
}

TEST(CollectiveCosts, RingDefaultKeepsSeedPricingAndLabels) {
  const comm::Topology topo = comm::Topology::multi_node(2, 2);
  const auto cal = perf::ClusterCalibration::for_topology(topo);
  const AlgorithmConfig cfg = AlgorithmConfig::spd_kfac();  // default kRing

  const auto res = simulate_iteration(tiny_model(), 8, cal, cfg);
  ASSERT_FALSE(res.collectives.empty());
  for (const CollectiveChoice& c : res.collectives) {
    EXPECT_EQ(c.label.find('@'), std::string::npos) << c.label;
    if (c.kind == TaskKind::kInverseComm) continue;  // fabric-priced
    EXPECT_EQ(c.algo, comm::AllReduceAlgo::kRing);
    EXPECT_DOUBLE_EQ(c.seconds, cal.allreduce.time(c.elements)) << c.label;
  }
}

TEST(CollectiveCosts, BreakdownStillSumsToMakespan) {
  const models::ModelSpec model = tiny_model();
  for (const comm::Topology& topo :
       {comm::Topology::flat(4), comm::Topology::multi_node(2, 2),
        comm::Topology::multi_node(4, 2)}) {
    const auto cal = perf::ClusterCalibration::for_topology(topo);
    for (auto base : {AlgorithmConfig::dkfac(), AlgorithmConfig::spd_kfac()}) {
      for (comm::AllReduceAlgo algo :
           {comm::AllReduceAlgo::kRing, comm::AllReduceAlgo::kAuto,
            comm::AllReduceAlgo::kHalvingDoubling}) {
        AlgorithmConfig cfg = base;
        cfg.collective_algo = algo;
        const auto res = simulate_iteration(model, 8, cal, cfg);
        EXPECT_NEAR(res.breakdown.total(), res.total, 1e-9)
            << cfg.name << " @" << comm::to_string(algo) << " on "
            << topo.nodes << "x" << topo.gpus_per_node;
      }
    }
  }
}

// Acceptance: under the calibrated cost models the auto-selector is never
// worse than the always-ring baseline — per collective at every swept
// message size, and end-to-end for whole simulated iterations — on both
// flat and hierarchical topologies.
TEST(CollectiveCosts, AutoNeverWorseThanRingAtAnySweptSize) {
  for (const comm::Topology& topo :
       {comm::Topology::flat(4), comm::Topology::flat(16),
        comm::Topology::flat(64), comm::Topology::multi_node(2, 2),
        comm::Topology::multi_node(4, 8), comm::Topology::multi_node(8, 8)}) {
    const auto cal = perf::ClusterCalibration::for_topology(topo);
    for (std::size_t m = 1; m <= (std::size_t{1} << 27); m <<= 1) {
      const auto algo = cal.collectives.choose(m);
      EXPECT_LE(cal.collectives.cost(algo, m), cal.allreduce.time(m))
          << topo.nodes << "x" << topo.gpus_per_node << " m=" << m;
    }
  }
}

TEST(CollectiveCosts, AutoIterationNeverSlowerThanRingIteration) {
  const auto model = models::resnet50();
  for (const comm::Topology& topo :
       {comm::Topology::flat(16), comm::Topology::multi_node(4, 4)}) {
    const auto cal = perf::ClusterCalibration::for_topology(topo);
    for (auto base : {AlgorithmConfig::dkfac(), AlgorithmConfig::spd_kfac()}) {
      AlgorithmConfig ring = base, autosel = base;
      ring.collective_algo = comm::AllReduceAlgo::kRing;
      autosel.collective_algo = comm::AllReduceAlgo::kAuto;
      const double t_ring = iteration_time(model, 32, cal, ring);
      const double t_auto = iteration_time(model, 32, cal, autosel);
      // Shrinking task durations cannot delay anything in the event sim.
      EXPECT_LE(t_auto, t_ring * (1.0 + 1e-12))
          << base.name << " on " << topo.nodes << "x" << topo.gpus_per_node;
    }
  }
}

}  // namespace
}  // namespace spdkfac::sim
