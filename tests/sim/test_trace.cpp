#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

namespace spdkfac::sim {
namespace {

Schedule tiny_schedule(EventSim& es) {
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  const int f = es.add_task(TaskKind::kForward, 1.0, comp, {}, "F1");
  es.add_gang_task(TaskKind::kFactorComm, 0.5, {comm}, {f}, "CA0");
  return es.run();
}

TEST(ChromeTrace, ContainsMetadataAndEvents) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  const std::string json = to_chrome_trace(sched, {"comp", "comm"}, "proc");
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"proc\""), std::string::npos);
  EXPECT_NE(json.find("\"comp\""), std::string::npos);
  EXPECT_NE(json.find("\"F1\""), std::string::npos);
  EXPECT_NE(json.find("\"CA0\""), std::string::npos);
  EXPECT_NE(json.find("\"factor_comm\""), std::string::npos);
  // Complete events with microsecond duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
}

TEST(ChromeTrace, StartsAndEndsAsJsonArray) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  const std::string json = to_chrome_trace(sched, {"comp", "comm"});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after ]
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  EventSim es;
  const int s = es.add_stream("str\"eam");
  es.add_task(TaskKind::kForward, 1.0, s, {}, "la\\bel");
  const Schedule sched = es.run();
  const std::string json = to_chrome_trace(sched, {"str\"eam"});
  EXPECT_NE(json.find("str\\\"eam"), std::string::npos);
  EXPECT_NE(json.find("la\\\\bel"), std::string::npos);
}

TEST(ChromeTrace, UnnamedStreamThrows) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  EXPECT_THROW(to_chrome_trace(sched, {"only-one"}), std::invalid_argument);
}

TEST(ChromeTrace, GangTasksAppearOnEveryStream) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  es.add_gang_task(TaskKind::kFactorComm, 1.0, {a, b}, {}, "gang");
  const std::string json = to_chrome_trace(es.run(), {"a", "b"});
  // The gang event is emitted once per occupied stream.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"gang\"", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, 2u);
}

TEST(ChromeTrace, WritesFullIterationToDisk) {
  const auto cal = perf::ClusterCalibration::paper_fabric(4);
  auto spec = models::resnet50();
  spec.layers.resize(6);
  const auto res = simulate_iteration(spec, 8, cal,
                                      AlgorithmConfig::spd_kfac());
  const std::string path = "/tmp/spdkfac_trace_test.json";
  write_chrome_trace(path, res.schedule, res.stream_names);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_GT(content.size(), 1000u);
  EXPECT_NE(content.find("inverse_comp"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTrace, WriteToBadPathThrows) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  EXPECT_THROW(
      write_chrome_trace("/nonexistent-dir/x.json", sched, {"comp", "comm"}),
      std::runtime_error);
}

}  // namespace
}  // namespace spdkfac::sim
