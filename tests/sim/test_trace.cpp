#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <locale>

#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"
#include "testsupport/json_validator.hpp"
#include "util/json.hpp"

namespace spdkfac::sim {
namespace {

Schedule tiny_schedule(EventSim& es) {
  const int comp = es.add_stream("comp");
  const int comm = es.add_stream("comm");
  const int f = es.add_task(TaskKind::kForward, 1.0, comp, {}, "F1");
  es.add_gang_task(TaskKind::kFactorComm, 0.5, {comm}, {f}, "CA0");
  return es.run();
}

TEST(ChromeTrace, ContainsMetadataAndEvents) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  const std::string json = to_chrome_trace(sched, {"comp", "comm"}, "proc");
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"proc\""), std::string::npos);
  EXPECT_NE(json.find("\"comp\""), std::string::npos);
  EXPECT_NE(json.find("\"F1\""), std::string::npos);
  EXPECT_NE(json.find("\"CA0\""), std::string::npos);
  EXPECT_NE(json.find("\"factor_comm\""), std::string::npos);
  // Complete events with microsecond duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
}

TEST(ChromeTrace, StartsAndEndsAsJsonArray) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  const std::string json = to_chrome_trace(sched, {"comp", "comm"});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after ]
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  EventSim es;
  const int s = es.add_stream("str\"eam");
  es.add_task(TaskKind::kForward, 1.0, s, {}, "la\\bel");
  const Schedule sched = es.run();
  const std::string json = to_chrome_trace(sched, {"str\"eam"});
  EXPECT_NE(json.find("str\\\"eam"), std::string::npos);
  EXPECT_NE(json.find("la\\\\bel"), std::string::npos);
}

TEST(ChromeTrace, UnnamedStreamThrows) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  EXPECT_THROW(to_chrome_trace(sched, {"only-one"}), std::invalid_argument);
}

TEST(ChromeTrace, GangTasksAppearOnEveryStream) {
  EventSim es;
  const int a = es.add_stream("a");
  const int b = es.add_stream("b");
  es.add_gang_task(TaskKind::kFactorComm, 1.0, {a, b}, {}, "gang");
  const std::string json = to_chrome_trace(es.run(), {"a", "b"});
  // The gang event is emitted once per occupied stream.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"gang\"", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, 2u);
}

TEST(ChromeTrace, WritesFullIterationToDisk) {
  const auto cal = perf::ClusterCalibration::paper_fabric(4);
  auto spec = models::resnet50();
  spec.layers.resize(6);
  const auto res = simulate_iteration(spec, 8, cal,
                                      AlgorithmConfig::spd_kfac());
  const std::string path = "/tmp/spdkfac_trace_test.json";
  write_chrome_trace(path, res.schedule, res.stream_names);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_GT(content.size(), 1000u);
  EXPECT_NE(content.find("inverse_comp"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTrace, WriteToBadPathThrows) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  EXPECT_THROW(
      write_chrome_trace("/nonexistent-dir/x.json", sched, {"comp", "comm"}),
      std::runtime_error);
}

TEST(ChromeTrace, OutputIsStrictJson) {
  EventSim es;
  const Schedule sched = tiny_schedule(es);
  const std::string json = to_chrome_trace(sched, {"comp", "comm"}, "proc");
  std::string error;
  EXPECT_TRUE(testsupport::valid_json(json, &error)) << error << "\n" << json;
}

// Schedules beyond one second: 6-significant-figure formatting (the old
// default-precision stream insertion) would collapse nearby microsecond
// timestamps to the same value and large ones to scientific notation.
TEST(ChromeTrace, SchedulesBeyondOneSecondKeepMicrosecondPrecision) {
  EventSim es;
  const int comp = es.add_stream("comp");
  const int f = es.add_task(TaskKind::kForward, 100.000001, comp, {}, "long");
  es.add_task(TaskKind::kForward, 0.000002, comp, {f}, "after");
  const std::string json = to_chrome_trace(es.run(), {"comp"});
  std::string error;
  EXPECT_TRUE(testsupport::valid_json(json, &error)) << error;
  // "after" starts where "long" ended: 100.000001 s — about 1e8 us, which a
  // 6-significant-figure emitter would have collapsed to 1e+08.  The
  // expected strings replicate the emitter's exact expression, so this is
  // a bitwise comparison, not a tolerance.
  const std::string after_ts = util::json_number(100.000001 * 1e6);
  EXPECT_NE(json.find("\"ts\":" + after_ts), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ts\":1e+08"), std::string::npos) << json;
}

struct CommaDecimalPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

// The historical bug: a de_DE-style global locale turned "0.5" into "0,5"
// inside ts/dur fields, corrupting every exported trace.
TEST(ChromeTrace, HostileGlobalLocaleStillEmitsStrictJson) {
  const std::locale previous = std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimalPunct));
  std::string json;
  try {
    EventSim es;
    const int comp = es.add_stream("comp");
    es.add_task(TaskKind::kForward, 1.2345675, comp, {}, "F");
    json = to_chrome_trace(es.run(), {"comp"});
  } catch (...) {
    std::locale::global(previous);
    throw;
  }
  std::locale::global(previous);
  std::string error;
  EXPECT_TRUE(testsupport::valid_json(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"dur\":" + util::json_number(1.2345675 * 1e6)),
            std::string::npos)
      << json;
}

TEST(ChromeTrace, FullIterationTraceIsStrictJson) {
  const auto cal = perf::ClusterCalibration::paper_fabric(4);
  auto spec = models::resnet50();
  spec.layers.resize(6);
  const auto res =
      simulate_iteration(spec, 8, cal, AlgorithmConfig::spd_kfac());
  const std::string json = to_chrome_trace(res.schedule, res.stream_names);
  std::string error;
  EXPECT_TRUE(testsupport::valid_json(json, &error)) << error;
}

}  // namespace
}  // namespace spdkfac::sim
