#include "nn/data.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spdkfac::nn {
namespace {

TEST(SyntheticData, ShapesAndLabelRange) {
  SyntheticClassification data(5, 3, 8, /*seed=*/1);
  tensor::Rng rng(0);
  Batch b = data.sample(16, rng);
  EXPECT_EQ(b.inputs.n, 16u);
  EXPECT_EQ(b.inputs.c, 3u);
  EXPECT_EQ(b.inputs.h, 8u);
  ASSERT_EQ(b.labels.size(), 16u);
  for (int label : b.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(SyntheticData, SameDatasetSeedSameTemplates) {
  SyntheticClassification a(3, 1, 4, 99, /*noise=*/0.0);
  SyntheticClassification b(3, 1, 4, 99, /*noise=*/0.0);
  tensor::Rng ra(7), rb(7);
  Batch ba = a.sample(8, ra);
  Batch bb = b.sample(8, rb);
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_EQ(ba.inputs.data, bb.inputs.data);
}

TEST(SyntheticData, DifferentWorkerRngsShardTheStream) {
  SyntheticClassification data(3, 1, 4, 99);
  tensor::Rng r0(0), r1(1);
  Batch b0 = data.sample(8, r0);
  Batch b1 = data.sample(8, r1);
  EXPECT_NE(b0.inputs.data, b1.inputs.data);
}

TEST(SyntheticData, ZeroNoiseReproducesTemplates) {
  SyntheticClassification data(2, 1, 2, 5, /*noise=*/0.0);
  tensor::Rng rng(3);
  Batch b1 = data.sample(32, rng);
  // All samples with the same label must be identical (pure template).
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = i + 1; j < 32; ++j) {
      if (b1.labels[i] == b1.labels[j]) {
        EXPECT_EQ(std::vector<double>(b1.inputs.sample(i).begin(),
                                      b1.inputs.sample(i).end()),
                  std::vector<double>(b1.inputs.sample(j).begin(),
                                      b1.inputs.sample(j).end()));
      }
    }
  }
}

TEST(SyntheticData, CoversAllClassesEventually) {
  SyntheticClassification data(4, 1, 2, 11);
  tensor::Rng rng(13);
  std::set<int> seen;
  Batch b = data.sample(64, rng);
  seen.insert(b.labels.begin(), b.labels.end());
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace spdkfac::nn
