// Numerical gradient checks: the analytic backward passes (and therefore the
// K-FAC captured quantities) are verified against central finite differences
// end-to-end through every layer type.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/data.hpp"
#include "nn/layers.hpp"

namespace spdkfac::nn {
namespace {

using tensor::Rng;

/// Central-difference derivative of the loss w.r.t. one weight entry.
double numeric_weight_grad(Sequential& model, SoftmaxCrossEntropy& loss,
                           const Tensor4D& x, std::span<const int> labels,
                           PreconditionedLayer& layer, std::size_t r,
                           std::size_t c, double eps = 1e-6) {
  double& w = layer.weight()(r, c);
  const double saved = w;
  w = saved + eps;
  const double up = loss.forward(model.forward(x), labels);
  w = saved - eps;
  const double down = loss.forward(model.forward(x), labels);
  w = saved;
  return (up - down) / (2 * eps);
}

/// Checks every weight gradient of `layer` against finite differences.
void check_layer_grads(Sequential& model, PreconditionedLayer& layer,
                       const Tensor4D& x, std::span<const int> labels,
                       double tol = 2e-6) {
  SoftmaxCrossEntropy loss;
  loss.forward(model.forward(x), labels);
  model.backward(loss.backward());
  const tensor::Matrix analytic = layer.weight_grad();
  for (std::size_t r = 0; r < analytic.rows(); ++r) {
    for (std::size_t c = 0; c < analytic.cols(); ++c) {
      const double numeric =
          numeric_weight_grad(model, loss, x, labels, layer, r, c);
      EXPECT_NEAR(analytic(r, c), numeric, tol)
          << layer.name() << " (" << r << "," << c << ")";
    }
  }
}

TEST(GradCheck, LinearWithBias) {
  Rng rng(31);
  Sequential model;
  model.add(std::make_unique<Linear>("fc", 4, 3, true, rng));
  Tensor4D x(3, 4, 1, 1);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{0, 2, 1};
  check_layer_grads(model, *model.preconditioned_layers()[0], x, labels);
}

TEST(GradCheck, TwoLayerMlpBothLayers) {
  Rng rng(37);
  const std::size_t widths[] = {5, 7, 3};
  Sequential model = make_mlp(widths, rng);
  Tensor4D x(4, 5, 1, 1);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{0, 1, 2, 1};
  for (auto* layer : model.preconditioned_layers()) {
    check_layer_grads(model, *layer, x, labels);
  }
}

TEST(GradCheck, ConvStride1Padded) {
  Rng rng(41);
  Sequential model;
  model.add(std::make_unique<Conv2d>("conv", 2, 3, 3, 1, 1, true, rng));
  model.add(std::make_unique<Flatten>());
  Tensor4D x(2, 2, 4, 4);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{5, 17};  // 3*4*4 = 48 logits
  check_layer_grads(model, *model.preconditioned_layers()[0], x, labels);
}

TEST(GradCheck, ConvStride2NoPadding) {
  Rng rng(43);
  Sequential model;
  model.add(std::make_unique<Conv2d>("conv", 1, 2, 2, 2, 0, false, rng));
  model.add(std::make_unique<Flatten>());
  Tensor4D x(2, 1, 4, 4);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{0, 7};  // 2*2*2 = 8 logits
  check_layer_grads(model, *model.preconditioned_layers()[0], x, labels);
}

TEST(GradCheck, FullSmallCnnStack) {
  Rng rng(47);
  Sequential model = make_small_cnn(1, 8, 2, 3, 4, rng);
  Tensor4D x(2, 1, 8, 8);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{1, 3};
  for (auto* layer : model.preconditioned_layers()) {
    check_layer_grads(model, *layer, x, labels, 5e-6);
  }
}

TEST(GradCheck, InputGradientThroughReluAndPool) {
  // Verify dL/dx (not just weight grads) through the nonlinear layers.
  Rng rng(53);
  Sequential model;
  model.add(std::make_unique<Conv2d>("conv", 1, 2, 3, 1, 1, false, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>());
  model.add(std::make_unique<Flatten>());
  Tensor4D x(1, 1, 4, 4);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{3};  // 2*2*2 = 8 logits

  SoftmaxCrossEntropy loss;
  loss.forward(model.forward(x), labels);
  const Tensor4D analytic = model.backward(loss.backward());

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.data.size(); ++i) {
    const double saved = x.data[i];
    x.data[i] = saved + eps;
    const double up = loss.forward(model.forward(x), labels);
    x.data[i] = saved - eps;
    const double down = loss.forward(model.forward(x), labels);
    x.data[i] = saved;
    EXPECT_NEAR(analytic.data[i], (up - down) / (2 * eps), 2e-6) << i;
  }
}

// Randomized architecture sweep: build a random stack of conv / relu / pool
// layers on a tiny input and gradient-check every preconditioned layer.
// Catches interaction bugs (shape bookkeeping, padding, capture state) that
// fixed-architecture tests can miss.
class RandomArchGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomArchGradCheck, AllLayersPassFiniteDifference) {
  Rng rng(GetParam() * 7919 + 11);
  std::uniform_int_distribution<int> conv_count(1, 3);
  std::uniform_int_distribution<std::size_t> channels(1, 4);
  std::uniform_int_distribution<int> coin(0, 1);

  Sequential model;
  std::size_t c = 1;
  std::size_t hw = 8;
  const int convs = conv_count(rng);
  for (int i = 0; i < convs; ++i) {
    const std::size_t cout = channels(rng);
    const bool bias = coin(rng) == 1;
    model.add(std::make_unique<Conv2d>("conv" + std::to_string(i), c, cout,
                                       3, 1, 1, bias, rng));
    c = cout;
    if (coin(rng)) model.add(std::make_unique<ReLU>());
    if (hw >= 4 && coin(rng)) {
      model.add(std::make_unique<MaxPool2d>());
      hw /= 2;
    }
  }
  model.add(std::make_unique<Flatten>());
  const std::size_t features = c * hw * hw;
  const std::size_t classes = 3;
  model.add(std::make_unique<Linear>("head", features, classes, true, rng));

  Tensor4D x(2, 1, 8, 8);
  tensor::fill_normal(x.data, rng);
  std::vector<int> labels{0, 2};
  for (auto* layer : model.preconditioned_layers()) {
    check_layer_grads(model, *layer, x, labels, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchGradCheck, ::testing::Range(0, 8));

TEST(GradCheck, SoftmaxGradMatchesFiniteDifference) {
  Rng rng(59);
  Tensor4D logits(3, 4, 1, 1);
  tensor::fill_normal(logits.data, rng);
  std::vector<int> labels{0, 3, 2};
  SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  const Tensor4D grad = loss.backward();
  const double eps = 1e-7;
  for (std::size_t i = 0; i < logits.data.size(); ++i) {
    const double saved = logits.data[i];
    logits.data[i] = saved + eps;
    const double up = loss.forward(logits, labels);
    logits.data[i] = saved - eps;
    const double down = loss.forward(logits, labels);
    logits.data[i] = saved;
    EXPECT_NEAR(grad.data[i], (up - down) / (2 * eps), 1e-6);
  }
}

}  // namespace
}  // namespace spdkfac::nn
