#include "nn/layers.hpp"

#include <gtest/gtest.h>

namespace spdkfac::nn {
namespace {

using tensor::Rng;

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear fc("fc", 2, 2, /*bias=*/true, rng);
  fc.weight() = tensor::Matrix{{1.0, 2.0, 0.5}, {-1.0, 0.0, 1.0}};
  Tensor4D x(1, 2, 1, 1);
  x.data = {3.0, 4.0};
  Tensor4D y = fc.forward(x);
  EXPECT_DOUBLE_EQ(y.data[0], 1.0 * 3 + 2.0 * 4 + 0.5);
  EXPECT_DOUBLE_EQ(y.data[1], -3.0 + 1.0);
}

TEST(Linear, CapturesBiasAugmentedInput) {
  Rng rng(2);
  Linear fc("fc", 3, 2, /*bias=*/true, rng);
  Tensor4D x(2, 3, 1, 1);
  x.data = {1, 2, 3, 4, 5, 6};
  fc.forward(x);
  const tensor::Matrix& rows = fc.kfac_input();
  ASSERT_EQ(rows.rows(), 2u);
  ASSERT_EQ(rows.cols(), 4u);
  EXPECT_EQ(rows(0, 0), 1.0);
  EXPECT_EQ(rows(0, 3), 1.0);  // bias column
  EXPECT_EQ(rows(1, 2), 6.0);
  EXPECT_EQ(rows(1, 3), 1.0);
}

TEST(Linear, NoBiasHasNoAugmentation) {
  Rng rng(3);
  Linear fc("fc", 3, 2, /*bias=*/false, rng);
  EXPECT_EQ(fc.dim_a(), 3u);
  Tensor4D x(1, 3, 1, 1);
  x.data = {1, 2, 3};
  fc.forward(x);
  EXPECT_EQ(fc.kfac_input().cols(), 3u);
}

TEST(Linear, BackwardCapturesOutputGrads) {
  Rng rng(4);
  Linear fc("fc", 2, 3, true, rng);
  Tensor4D x(2, 2, 1, 1);
  x.data = {1, 2, 3, 4};
  fc.forward(x);
  Tensor4D dy(2, 3, 1, 1);
  dy.data = {1, 0, -1, 0.5, 0.5, 0};
  fc.backward(dy);
  const tensor::Matrix& g = fc.kfac_output_grad();
  ASSERT_EQ(g.rows(), 2u);
  ASSERT_EQ(g.cols(), 3u);
  EXPECT_EQ(g(0, 2), -1.0);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(5);
  Linear fc("fc", 2, 2, true, rng);
  Tensor4D dy(1, 2, 1, 1);
  EXPECT_THROW(fc.backward(dy), std::logic_error);
}

TEST(Linear, ApplyUpdateShiftsWeights) {
  Rng rng(6);
  Linear fc("fc", 2, 2, false, rng);
  tensor::Matrix before = fc.weight();
  tensor::Matrix delta(2, 2, 1.0);
  fc.apply_update(delta, 0.1);
  EXPECT_NEAR(fc.weight()(0, 0), before(0, 0) - 0.1, 1e-12);
}

TEST(Conv2d, OutputShapeWithPaddingAndStride) {
  Rng rng(7);
  Conv2d conv("c", 3, 8, 3, 2, 1, false, rng);
  Tensor4D x(2, 3, 8, 8);
  Tensor4D y = conv.forward(x);
  EXPECT_EQ(y.n, 2u);
  EXPECT_EQ(y.c, 8u);
  EXPECT_EQ(y.h, 4u);
  EXPECT_EQ(y.w, 4u);
}

TEST(Conv2d, IdentityKernelPreservesInput) {
  Rng rng(8);
  Conv2d conv("c", 1, 1, 3, 1, 1, false, rng);
  conv.weight().set_zero();
  conv.weight()(0, 4) = 1.0;  // center tap of the 3x3 kernel
  Tensor4D x(1, 1, 5, 5);
  for (std::size_t i = 0; i < x.data.size(); ++i) x.data[i] = i * 0.5;
  Tensor4D y = conv.forward(x);
  for (std::size_t i = 0; i < x.data.size(); ++i) {
    EXPECT_DOUBLE_EQ(y.data[i], x.data[i]);
  }
}

TEST(Conv2d, KnownSumKernel) {
  Rng rng(9);
  Conv2d conv("c", 1, 1, 2, 1, 0, false, rng);
  conv.weight() = tensor::Matrix(1, 4, 1.0);  // sums each 2x2 patch
  Tensor4D x(1, 1, 2, 2);
  x.data = {1, 2, 3, 4};
  Tensor4D y = conv.forward(x);
  ASSERT_EQ(y.h, 1u);
  EXPECT_DOUBLE_EQ(y.data[0], 10.0);
}

TEST(Conv2d, PatchMatrixHasBiasColumn) {
  Rng rng(10);
  Conv2d conv("c", 2, 4, 3, 1, 1, /*bias=*/true, rng);
  Tensor4D x(1, 2, 4, 4);
  conv.forward(x);
  const tensor::Matrix& patches = conv.kfac_input();
  EXPECT_EQ(patches.rows(), 16u);
  EXPECT_EQ(patches.cols(), 2u * 9 + 1);
  for (std::size_t r = 0; r < patches.rows(); ++r) {
    EXPECT_EQ(patches(r, patches.cols() - 1), 1.0);
  }
}

TEST(Conv2d, WrongChannelCountThrows) {
  Rng rng(11);
  Conv2d conv("c", 3, 4, 3, 1, 1, false, rng);
  Tensor4D x(1, 2, 4, 4);
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
}

TEST(ReLU, ZeroesNegativesAndMasksGradients) {
  ReLU relu;
  Tensor4D x(1, 1, 2, 2);
  x.data = {-1.0, 2.0, 0.0, 3.0};
  Tensor4D y = relu.forward(x);
  EXPECT_EQ(y.data, (std::vector<double>{0, 2, 0, 3}));
  Tensor4D dy(1, 1, 2, 2);
  dy.data = {5, 5, 5, 5};
  Tensor4D dx = relu.backward(dy);
  EXPECT_EQ(dx.data, (std::vector<double>{0, 5, 0, 5}));
}

TEST(MaxPool2d, SelectsMaxAndRoutesGradient) {
  MaxPool2d pool;
  Tensor4D x(1, 1, 2, 2);
  x.data = {1, 5, 3, 2};
  Tensor4D y = pool.forward(x);
  ASSERT_EQ(y.count(), 1u);
  EXPECT_EQ(y.data[0], 5.0);
  Tensor4D dy(1, 1, 1, 1);
  dy.data = {7.0};
  Tensor4D dx = pool.backward(dy);
  EXPECT_EQ(dx.data, (std::vector<double>{0, 7, 0, 0}));
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Tensor4D x(2, 3, 2, 2);
  for (std::size_t i = 0; i < x.data.size(); ++i) x.data[i] = i;
  Tensor4D y = flat.forward(x);
  EXPECT_EQ(y.c, 12u);
  EXPECT_EQ(y.h, 1u);
  Tensor4D back = flat.backward(y);
  EXPECT_TRUE(back.same_shape(x));
  EXPECT_EQ(back.data, x.data);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor4D logits(2, 4, 1, 1);  // all zeros -> uniform softmax
  std::vector<int> labels{0, 3};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(4.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerSample) {
  SoftmaxCrossEntropy loss;
  Tensor4D logits(3, 5, 1, 1);
  tensor::Rng rng(13);
  tensor::fill_normal(logits.data, rng);
  std::vector<int> labels{1, 4, 0};
  loss.forward(logits, labels);
  Tensor4D grad = loss.backward();
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0;
    for (double v : grad.sample(i)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(SoftmaxCrossEntropy, AccuracyTracksArgmax) {
  SoftmaxCrossEntropy loss;
  Tensor4D logits(2, 2, 1, 1);
  logits.data = {5.0, 0.0, 0.0, 5.0};  // predicts class 0 then class 1
  std::vector<int> labels{0, 0};
  loss.forward(logits, labels);
  EXPECT_DOUBLE_EQ(loss.accuracy(), 0.5);
}

TEST(SoftmaxCrossEntropy, BadLabelThrows) {
  SoftmaxCrossEntropy loss;
  Tensor4D logits(1, 2, 1, 1);
  std::vector<int> labels{7};
  EXPECT_THROW(loss.forward(logits, labels), std::invalid_argument);
}

TEST(Sequential, CollectsPreconditionedLayers) {
  Rng rng(17);
  Sequential model = make_small_cnn(1, 8, 4, 8, 3, rng);
  const auto layers = model.preconditioned_layers();
  ASSERT_EQ(layers.size(), 3u);  // conv, conv, fc
  EXPECT_EQ(layers[0]->dim_g(), 4u);
  EXPECT_EQ(layers[2]->dim_g(), 3u);
}

TEST(Sequential, MlpForwardShape) {
  Rng rng(19);
  const std::size_t widths[] = {6, 8, 4};
  Sequential mlp = make_mlp(widths, rng);
  Tensor4D x(5, 6, 1, 1);
  Tensor4D y = mlp.forward(x);
  EXPECT_EQ(y.n, 5u);
  EXPECT_EQ(y.c, 4u);
}

TEST(Sequential, IdenticalSeedsGiveIdenticalWeights) {
  Rng rng_a(123), rng_b(123);
  const std::size_t widths[] = {4, 6, 2};
  Sequential a = make_mlp(widths, rng_a);
  Sequential b = make_mlp(widths, rng_b);
  const auto la = a.preconditioned_layers();
  const auto lb = b.preconditioned_layers();
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(la[i]->weight(), lb[i]->weight()), 0.0);
  }
}

TEST(Sequential, MakeMlpRejectsTooFewWidths) {
  Rng rng(23);
  const std::size_t widths[] = {4};
  EXPECT_THROW(make_mlp(widths, rng), std::invalid_argument);
}

}  // namespace
}  // namespace spdkfac::nn
