// OnlineProfiler unit coverage: EMA folding, the packed()/load_packed()
// sync round-trip, collective aggregates, and construction validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "perf/online_profiler.hpp"

namespace spdkfac::perf {
namespace {

TEST(OnlineProfiler, ValidatesConstruction) {
  EXPECT_THROW(OnlineProfiler(0, 0.5), std::invalid_argument);
  EXPECT_THROW(OnlineProfiler(3, 0.0), std::invalid_argument);
  EXPECT_THROW(OnlineProfiler(3, -0.1), std::invalid_argument);
  EXPECT_THROW(OnlineProfiler(3, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(OnlineProfiler(3, 1.0));
  EXPECT_NO_THROW(OnlineProfiler(1, 0.25));
}

TEST(OnlineProfiler, FirstSampleSeedsThenEmaFolds) {
  OnlineProfiler prof(2, 0.5);
  EXPECT_FALSE(prof.has_factor_samples());

  prof.record_factor_a(0, 0.10);
  EXPECT_TRUE(prof.has_factor_samples());
  EXPECT_DOUBLE_EQ(prof.snapshot().factor_a[0], 0.10);  // seeded directly

  prof.record_factor_a(0, 0.20);  // 0.5*0.10 + 0.5*0.20
  EXPECT_DOUBLE_EQ(prof.snapshot().factor_a[0], 0.15);

  prof.record_factor_g(1, 0.30);
  prof.record_forward(1, 0.01);
  prof.record_backward(0, 0.02);
  const ProfileSnapshot snap = prof.snapshot();
  EXPECT_DOUBLE_EQ(snap.factor_g[1], 0.30);
  EXPECT_DOUBLE_EQ(snap.forward[1], 0.01);
  EXPECT_DOUBLE_EQ(snap.backward[0], 0.02);
  EXPECT_DOUBLE_EQ(snap.factor_a[1], 0.0);  // unsampled slots stay zero
}

TEST(OnlineProfiler, EmaOneKeepsOnlyTheLatestSample) {
  OnlineProfiler prof(1, 1.0);
  prof.record_factor_a(0, 0.5);
  prof.record_factor_a(0, 0.1);
  EXPECT_DOUBLE_EQ(prof.snapshot().factor_a[0], 0.1);
}

TEST(OnlineProfiler, InverseSlotsArePerTensor) {
  OnlineProfiler prof(2, 0.5);
  prof.record_inverse(0, 0.4);   // A_0
  prof.record_inverse(3, 0.8);   // G_1
  EXPECT_DOUBLE_EQ(prof.inverse_seconds(0), 0.4);
  EXPECT_DOUBLE_EQ(prof.inverse_seconds(3), 0.8);
  EXPECT_DOUBLE_EQ(prof.inverse_seconds(1), 0.0);
  prof.record_inverse(3, 0.4);
  EXPECT_DOUBLE_EQ(prof.inverse_seconds(3), 0.6);
}

TEST(OnlineProfiler, PackedRoundTripsThroughLoadPacked) {
  OnlineProfiler prof(3, 0.5);
  prof.record_factor_a(0, 0.1);
  prof.record_factor_g(2, 0.2);
  prof.record_forward(1, 0.3);
  prof.record_backward(2, 0.4);

  const std::vector<double> packed = prof.packed();
  ASSERT_EQ(packed.size(), 12u);  // 4 sections x 3 layers
  EXPECT_DOUBLE_EQ(packed[0], 0.1);   // factor_a[0]
  EXPECT_DOUBLE_EQ(packed[5], 0.2);   // factor_g[2]
  EXPECT_DOUBLE_EQ(packed[7], 0.3);   // forward[1]
  EXPECT_DOUBLE_EQ(packed[11], 0.4);  // backward[2]

  // The sync averages the vector across ranks; loading it back must land
  // every value in its slot.
  std::vector<double> synced(packed);
  for (double& v : synced) v *= 0.5;
  OnlineProfiler other(3, 0.5);
  // An all-zero sync (warm-up step, nothing measured anywhere) must not
  // open the warm-up gate...
  other.load_packed(std::vector<double>(12, 0.0));
  EXPECT_FALSE(other.has_factor_samples());
  // ...but a sync that delivered real factor timings must: the loaded
  // profile is as informative as a measured one.
  other.load_packed(synced);
  EXPECT_TRUE(other.has_factor_samples());
  const ProfileSnapshot snap = other.snapshot();
  EXPECT_DOUBLE_EQ(snap.factor_a[0], 0.05);
  EXPECT_DOUBLE_EQ(snap.factor_g[2], 0.10);
  EXPECT_DOUBLE_EQ(snap.forward[1], 0.15);
  EXPECT_DOUBLE_EQ(snap.backward[2], 0.20);

  EXPECT_THROW(other.load_packed(std::vector<double>(5)),
               std::invalid_argument);
}

TEST(OnlineProfiler, CollectiveAggregatesAccumulate) {
  OnlineProfiler prof(1, 0.5);
  EXPECT_EQ(prof.collective_ops(), 0u);
  prof.record_collective(100, 1e-3);
  prof.record_collective(300, 2e-3);
  prof.record_collective(0, 5e-4);  // empty op: no per-element sample
  EXPECT_EQ(prof.collective_ops(), 3u);
  EXPECT_EQ(prof.collective_elements(), 400u);
  EXPECT_DOUBLE_EQ(prof.collective_seconds(), 3.5e-3);
  // Per-element EMA: seeded at 1e-5, folded with 2e-3/300.
  EXPECT_DOUBLE_EQ(prof.collective_seconds_per_element(),
                   0.5 * 1e-5 + 0.5 * (2e-3 / 300.0));
}

}  // namespace
}  // namespace spdkfac::perf
