#include "perf/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace spdkfac::perf {
namespace {

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 + 2.0 * x);
  const LinearModel m = fit_linear(xs, ys);
  EXPECT_NEAR(m.alpha, 3.0, 1e-12);
  EXPECT_NEAR(m.beta, 2.0, 1e-12);
  EXPECT_NEAR(m(10.0), 23.0, 1e-12);
}

TEST(FitLinear, LeastSquaresOnNoisyData) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(1.5 + 0.25 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const LinearModel m = fit_linear(xs, ys);
  EXPECT_NEAR(m.alpha, 1.5, 0.05);
  EXPECT_NEAR(m.beta, 0.25, 0.01);
}

TEST(FitLinear, RequiresTwoSamples) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), std::invalid_argument);
}

TEST(FitLinear, DegenerateXsThrow) {
  std::vector<double> xs{2.0, 2.0, 2.0};
  std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(xs, ys), std::invalid_argument);
}

TEST(FitExponential, RecoversExactExponential) {
  const double alpha = 3.64e-3, beta = 4.77e-4;  // the paper's Fig. 8 fit
  std::vector<double> xs, ys;
  for (double d = 64; d <= 8192; d *= 2) {
    xs.push_back(d);
    ys.push_back(alpha * std::exp(beta * d));
  }
  const ExpModel m = fit_exponential(xs, ys);
  EXPECT_NEAR(m.alpha, alpha, alpha * 1e-6);
  EXPECT_NEAR(m.beta, beta, beta * 1e-6);
}

TEST(FitExponential, RejectsNonPositive) {
  std::vector<double> xs{1, 2};
  std::vector<double> ys{1.0, 0.0};
  EXPECT_THROW(fit_exponential(xs, ys), std::invalid_argument);
}

TEST(RSquared, PerfectFitIsOne) {
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(RSquared, MeanPredictionIsZero) {
  std::vector<double> obs{1, 2, 3};
  std::vector<double> pred{2, 2, 2};
  EXPECT_NEAR(r_squared(pred, obs), 0.0, 1e-12);
}

TEST(AllReduceModel, PaperConstantsPredictPaperScale) {
  const auto cal = ClusterCalibration::paper_rtx2080ti_64gpu();
  // Fig. 7a: ~0.74 s to all-reduce 5e8 fp32 elements on 64 GPUs.
  EXPECT_NEAR(cal.allreduce.time(500'000'000), 0.0122 + 1.45e-9 * 5e8, 1e-9);
  EXPECT_GT(cal.allreduce.time(500'000'000), 0.7);
  EXPECT_LT(cal.allreduce.time(500'000'000), 0.8);
  EXPECT_NEAR(cal.allreduce.startup(), 1.22e-2, 1e-12);
}

TEST(BroadcastModel, PackedTriangleCost) {
  const auto cal = ClusterCalibration::paper_rtx2080ti_64gpu();
  const double by_dim = cal.broadcast.time_dim(4608);
  const double by_elements = cal.broadcast.time_elements(4608ull * 4609 / 2);
  EXPECT_DOUBLE_EQ(by_dim, by_elements);
}

TEST(InverseModel, PaperFitMatchesFig8Endpoint) {
  const auto cal = ClusterCalibration::paper_rtx2080ti_64gpu();
  // Fig. 8 shows ~0.18 s at d = 8192 on an RTX2080Ti.
  EXPECT_NEAR(cal.inverse.time(8192), 0.18, 0.03);
  // ...and a few milliseconds at small dims.
  EXPECT_LT(cal.inverse.time(64), 0.005);
}

TEST(ComputeModel, ThroughputAndOverhead) {
  ComputeModel m;
  m.fwd_flops_per_s = 1e12;
  m.kernel_overhead_s = 1e-5;
  EXPECT_NEAR(m.fwd_time(1e9), 1e-3 + 1e-5, 1e-12);
}

TEST(PaperFabric, SingleGpuHasNoCommCost) {
  const auto cal = ClusterCalibration::paper_fabric(1);
  EXPECT_EQ(cal.allreduce.time(1'000'000), 0.0);
  EXPECT_EQ(cal.broadcast.time_dim(1024), 0.0);
  EXPECT_EQ(cal.world_size, 1);
}

TEST(PaperFabric, SixtyFourMatchesPaperPreset) {
  const auto a = ClusterCalibration::paper_fabric(64);
  const auto b = ClusterCalibration::paper_rtx2080ti_64gpu();
  EXPECT_DOUBLE_EQ(a.allreduce.model.alpha, b.allreduce.model.alpha);
  EXPECT_DOUBLE_EQ(a.allreduce.model.beta, b.allreduce.model.beta);
  EXPECT_DOUBLE_EQ(a.broadcast.model.alpha, b.broadcast.model.alpha);
}

TEST(PaperFabric, CostsGrowWithWorldSize) {
  const auto small = ClusterCalibration::paper_fabric(8);
  const auto large = ClusterCalibration::paper_fabric(64);
  EXPECT_LT(small.allreduce.time(100'000'000),
            large.allreduce.time(100'000'000));
  EXPECT_LT(small.broadcast.time_dim(4096), large.broadcast.time_dim(4096));
}

TEST(PaperFabric, RejectsNonPositiveWorld) {
  EXPECT_THROW(ClusterCalibration::paper_fabric(0), std::invalid_argument);
}

TEST(Crossover, MatchesDirectComparison) {
  const auto cal = ClusterCalibration::paper_rtx2080ti_64gpu();
  const std::size_t cross =
      ct_nct_crossover_dim(cal.inverse, cal.broadcast);
  ASSERT_GT(cross, 0u);
  ASSERT_LT(cross, 16384u);
  EXPECT_LT(cal.inverse.time(cross), cal.broadcast.time_dim(cross));
  EXPECT_GE(cal.inverse.time(cross + 1), cal.broadcast.time_dim(cross + 1));
}

TEST(Crossover, Fig11ShapeSmallTensorsAreNct) {
  // Fig. 11: below the crossover the inverse is cheaper than broadcasting;
  // above, broadcasting wins.  With the paper's constants the crossover sits
  // in the low thousands of dimensions.
  const auto cal = ClusterCalibration::paper_rtx2080ti_64gpu();
  const std::size_t cross = ct_nct_crossover_dim(cal.inverse, cal.broadcast);
  EXPECT_GT(cross, 500u);
  EXPECT_LT(cross, 8192u);
}

class FitProperty : public ::testing::TestWithParam<int> {};

TEST_P(FitProperty, LinearFitIsExactOnLinearData) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coef(-5.0, 5.0);
  const double alpha = coef(rng), beta = coef(rng);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    const double x = i * 3.7 + 1;
    xs.push_back(x);
    ys.push_back(alpha + beta * x);
  }
  const LinearModel m = fit_linear(xs, ys);
  EXPECT_NEAR(m.alpha, alpha, 1e-8);
  EXPECT_NEAR(m.beta, beta, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace spdkfac::perf
