#include "perf/measure.hpp"

#include <gtest/gtest.h>

namespace spdkfac::perf {
namespace {

TEST(TimeMean, ReturnsPositiveForRealWork) {
  volatile double sink = 0.0;
  const double t = time_mean(
      [&sink] {
        for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
      },
      3, 1);
  EXPECT_GT(t, 0.0);
}

TEST(MeasureInverse, ProducesMonotonishSamples) {
  const std::vector<std::size_t> dims{16, 32, 64, 128};
  const auto samples = measure_inverse_times(dims, /*runs=*/2, /*warmup=*/0);
  ASSERT_EQ(samples.size(), dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    EXPECT_EQ(samples[i].x, static_cast<double>(dims[i]));
    EXPECT_GT(samples[i].seconds, 0.0);
  }
  // Inverting a 128-dim matrix must cost more than a 16-dim one.
  EXPECT_GT(samples.back().seconds, samples.front().seconds);
}

TEST(MeasureInverse, FitsExponentialModel) {
  const std::vector<std::size_t> dims{16, 32, 64, 96, 128};
  const auto samples = measure_inverse_times(dims, 2, 0);
  const InverseModel model = fit_inverse_model(samples);
  EXPECT_GT(model.alpha, 0.0);
  // The fitted curve should predict the largest measurement within an order
  // of magnitude (CPU timing noise allowed).
  const double predicted = model.time(128);
  EXPECT_GT(predicted, samples.back().seconds / 10.0);
  EXPECT_LT(predicted, samples.back().seconds * 10.0);
}

TEST(MeasureAllReduce, SamplesAndFit) {
  const std::vector<std::size_t> sizes{1024, 4096, 16384, 65536};
  const auto samples = measure_allreduce_times(sizes, /*world=*/2, 2, 1);
  ASSERT_EQ(samples.size(), sizes.size());
  for (const auto& s : samples) EXPECT_GT(s.seconds, 0.0);
  const LinearModel m = fit_comm_model(samples);
  // Per-element cost must be non-negative for a real transport.
  EXPECT_GE(m.beta, 0.0);
}

TEST(MeasureBroadcast, ProducesSamples) {
  const std::vector<std::size_t> sizes{1024, 8192};
  const auto samples = measure_broadcast_times(sizes, /*world=*/3, 2, 1);
  ASSERT_EQ(samples.size(), 2u);
  for (const auto& s : samples) EXPECT_GT(s.seconds, 0.0);
}

}  // namespace
}  // namespace spdkfac::perf
