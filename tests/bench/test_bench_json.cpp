// BENCH_*.json emission: the document must be strict JSON no matter which
// values the benches measured (NaN/Inf from degenerate runs) and no matter
// the process locale — the two historical corruption modes.
#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <locale>

#include "testsupport/json_validator.hpp"

namespace spdkfac {
namespace {

using testsupport::valid_json;

bench::BenchJson hostile_document() {
  bench::BenchJson doc("unit_test");
  doc.add("clean", {{"mean_s", 0.015625}, {"count", 3.0}});
  doc.add("degenerate",
          {{"nan_field", std::numeric_limits<double>::quiet_NaN()},
           {"inf_field", std::numeric_limits<double>::infinity()},
           {"ninf_field", -std::numeric_limits<double>::infinity()},
           {"tiny", 5e-324},
           {"huge", 1.7e308}});
  doc.add("name \"quoted\"\nnewline\ttab", {{"v", 1.0}});
  bench::SampleStats s;
  s.mean = std::numeric_limits<double>::quiet_NaN();
  s.p50 = 0.5;
  s.p90 = 0.9;
  doc.add_timing("timing", s, 0.75, 4096, 8192);
  return doc;
}

TEST(BenchJson, HostileValuesStillEmitStrictJson) {
  const std::string json = hostile_document().to_json();
  std::string error;
  EXPECT_TRUE(valid_json(json, &error)) << error << "\n" << json;
  // NaN/Inf fields are present but null — the data point is kept, its
  // unrepresentable value is not.
  EXPECT_NE(json.find("\"nan_field\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inf_field\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan,"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wire_bytes_per_iter\": 4096"), std::string::npos)
      << json;
}

struct CommaPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(BenchJson, HostileGlobalLocaleStillEmitsStrictJson) {
  const std::locale previous = std::locale::global(
      std::locale(std::locale::classic(), new CommaPunct));
  std::string json;
  try {
    json = hostile_document().to_json();
  } catch (...) {
    std::locale::global(previous);
    throw;
  }
  std::locale::global(previous);
  std::string error;
  EXPECT_TRUE(valid_json(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"mean_s\": 0.015625"), std::string::npos) << json;
}

}  // namespace
}  // namespace spdkfac
