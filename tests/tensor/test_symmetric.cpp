#include "tensor/symmetric.hpp"

#include <gtest/gtest.h>

#include "tensor/linalg.hpp"
#include "tensor/random.hpp"

namespace spdkfac::tensor {
namespace {

TEST(PackedSize, MatchesTriangleNumbers) {
  EXPECT_EQ(packed_size(0), 0u);
  EXPECT_EQ(packed_size(1), 1u);
  EXPECT_EQ(packed_size(2), 3u);
  EXPECT_EQ(packed_size(64), 2080u);      // paper's smallest ResNet-50 factor
  EXPECT_EQ(packed_size(4608), 10619136u);  // paper's largest
}

TEST(PackedIndex, RowMajorUpperTriangle) {
  // d = 3: layout (0,0)(0,1)(0,2)(1,1)(1,2)(2,2).
  EXPECT_EQ(packed_index(0, 0, 3), 0u);
  EXPECT_EQ(packed_index(0, 2, 3), 2u);
  EXPECT_EQ(packed_index(1, 1, 3), 3u);
  EXPECT_EQ(packed_index(1, 2, 3), 4u);
  EXPECT_EQ(packed_index(2, 2, 3), 5u);
}

TEST(SymmetricPacked, ZeroInitialized) {
  SymmetricPacked p(4);
  EXPECT_EQ(p.dim(), 4u);
  EXPECT_EQ(p.size(), 10u);
  for (double v : p.data()) EXPECT_EQ(v, 0.0);
}

TEST(SymmetricPacked, AtIsSymmetricView) {
  SymmetricPacked p(3);
  p.at(0, 2) = 5.0;
  EXPECT_EQ(p.at(2, 0), 5.0);
  p.at(2, 1) = -1.0;
  EXPECT_EQ(p.at(1, 2), -1.0);
}

TEST(SymmetricPacked, PackRejectsNonSquare) {
  EXPECT_THROW(SymmetricPacked::pack(Matrix(2, 3)), std::invalid_argument);
}

TEST(PackUnpack, RoundTripsExactly) {
  Rng rng(42);
  for (std::size_t d : {1u, 2u, 5u, 17u, 64u}) {
    Matrix spd = random_spd(d, rng);
    SymmetricPacked p = SymmetricPacked::pack(spd);
    Matrix back = p.unpack();
    EXPECT_EQ(max_abs_diff(spd, back), 0.0) << "d=" << d;
  }
}

TEST(PackUpper, WrongSpanSizeThrows) {
  Matrix a = Matrix::identity(3);
  std::vector<double> too_small(5);
  EXPECT_THROW(pack_upper(a, too_small), std::invalid_argument);
}

TEST(UnpackUpper, WrongSizeThrows) {
  Matrix a(3, 3);
  std::vector<double> packed(5);
  EXPECT_THROW(unpack_upper(packed, a), std::invalid_argument);
}

TEST(PackUnpack, UpperTriangleIsTruth) {
  // Asymmetric input: pack takes the upper triangle and unpack mirrors it.
  Matrix a{{1, 2}, {999, 3}};
  Matrix back = SymmetricPacked::pack(a).unpack();
  EXPECT_EQ(back(0, 1), 2.0);
  EXPECT_EQ(back(1, 0), 2.0);
  EXPECT_EQ(back(1, 1), 3.0);
}

TEST(PackUnpack, InversesSurvivePackedTransport) {
  // The real optimizer ships damped inverses as packed triangles; since
  // spd_inverse symmetrizes, transport must be lossless.
  Rng rng(77);
  Matrix inv = spd_inverse(random_spd(24, rng));
  Matrix back = SymmetricPacked::pack(inv).unpack();
  EXPECT_EQ(max_abs_diff(inv, back), 0.0);
}

class PackedRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedRoundTrip, RandomSymmetricRoundTrip) {
  const std::size_t d = GetParam();
  Rng rng(d);
  Matrix m = random_normal(d, d, rng);
  symmetrize(m);
  EXPECT_EQ(max_abs_diff(SymmetricPacked::pack(m).unpack(), m), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, PackedRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 31, 100));

}  // namespace
}  // namespace spdkfac::tensor
