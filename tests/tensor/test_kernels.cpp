// Unit tests for the runtime-dispatched microkernel tables
// (src/tensor/kernels): every supported ISA level is checked against a
// naive reference, and the determinism contract from kernels.hpp is
// enforced — per-element k-ascending accumulation independent of caller
// chunking, bitwise-stable repeats within a level, and bitwise equality
// across levels for the purely elementwise kernels the collectives use.
#include "tensor/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "tensor/random.hpp"

namespace spdkfac::tensor::kernels {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<Isa> supported_levels() {
  std::vector<Isa> levels{Isa::kScalar};
  if (supported(Isa::kAvx2)) levels.push_back(Isa::kAvx2);
  return levels;
}

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  fill_normal(v, rng);
  return v;
}

void expect_bitwise_eq(const std::vector<double>& got,
                       const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // memcmp-style comparison so NaNs with equal payloads also pass.
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " at " << i << ": " << got[i] << " vs " << want[i];
  }
}

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, double tol,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol * (1.0 + std::abs(want[i])))
        << what << " at " << i;
  }
}

// ---------------------------------------------------------------------------
// Dispatch.

TEST(KernelDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(supported(Isa::kScalar));
  EXPECT_EQ(table(Isa::kScalar).isa, Isa::kScalar);
  EXPECT_STREQ(to_string(Isa::kScalar), "scalar");
  EXPECT_STREQ(to_string(Isa::kAvx2), "avx2");
}

TEST(KernelDispatch, ActiveIsSupported) {
  EXPECT_TRUE(supported(active()));
  EXPECT_TRUE(supported(best_supported()));
  EXPECT_EQ(active_table().isa, active());
}

TEST(KernelDispatch, ForceRoundTrip) {
  const Isa before = active();
  force(Isa::kScalar);
  EXPECT_EQ(active(), Isa::kScalar);
  EXPECT_EQ(active_table().isa, Isa::kScalar);
  if (supported(Isa::kAvx2)) {
    force(Isa::kAvx2);
    EXPECT_EQ(active(), Isa::kAvx2);
  }
  force(before);
  EXPECT_EQ(active(), before);
}

TEST(KernelDispatch, UnsupportedLevelDegrades) {
  if (supported(Isa::kAvx2)) {
    GTEST_SKIP() << "avx2 supported here; degradation path not reachable";
  }
  EXPECT_EQ(table(Isa::kAvx2).isa, Isa::kScalar);
  EXPECT_THROW(force(Isa::kAvx2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-level conformance: each supported table vs a naive reference.

class KernelLevel : public ::testing::TestWithParam<Isa> {
 protected:
  const KernelTable& kt() const { return table(GetParam()); }
};

std::string level_name(const ::testing::TestParamInfo<Isa>& info) {
  return to_string(info.param);
}

TEST_P(KernelLevel, GemmNnMatchesReference) {
  Rng rng(101);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {4, 8, 8}, {7, 9, 13}, {37, 41, 29}, {8, 64, 32}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], K = s[1], N = s[2];
    const auto a = random_vec(rows * K, rng);
    const auto b = random_vec(K * N, rng);
    auto c = random_vec(rows * N, rng);
    auto want = c;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t j = 0; j < N; ++j) {
          want[i * N + j] += a[i * K + k] * b[k * N + j];
        }
      }
    }
    kt().gemm_nn(rows, K, N, a.data(), K, b.data(), N, c.data(), N);
    expect_close(c, want, 1e-12, "gemm_nn");
  }
}

TEST_P(KernelLevel, GemmTnMatchesReference) {
  Rng rng(102);
  // A is K x Acols; the kernel computes a `rows`-column block of A^T * B
  // starting at column `i0` (the pointer is pre-offset to the block).
  const std::size_t K = 23, Acols = 17, N = 11;
  const auto a = random_vec(K * Acols, rng);
  const auto b = random_vec(K * N, rng);
  for (std::size_t i0 : {std::size_t{0}, std::size_t{5}}) {
    const std::size_t rows = Acols - i0;
    auto c = random_vec(rows * N, rng);
    auto want = c;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t j = 0; j < N; ++j) {
          want[i * N + j] += a[k * Acols + i0 + i] * b[k * N + j];
        }
      }
    }
    kt().gemm_tn(rows, K, N, a.data() + i0, Acols, b.data(), N, c.data(), N);
    expect_close(c, want, 1e-12, "gemm_tn");
  }
}

TEST_P(KernelLevel, GemmNtMatchesReference) {
  Rng rng(103);
  const std::size_t rows = 13, K = 19, M = 9;
  const auto a = random_vec(rows * K, rng);
  const auto b = random_vec(M * K, rng);
  auto c = random_vec(rows * M, rng);
  auto want = c;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < M; ++j) {
      for (std::size_t k = 0; k < K; ++k) {
        want[i * M + j] += a[i * K + k] * b[j * K + k];
      }
    }
  }
  kt().gemm_nt(rows, K, M, a.data(), K, b.data(), K, c.data(), M);
  expect_close(c, want, 1e-12, "gemm_nt");
}

// Chunk invariance is what makes matmul() bitwise-independent of the exec
// pool's row partitioning: a row block computed alone must produce exactly
// the bits it produces inside a larger call.
TEST_P(KernelLevel, GemmsAreRowChunkInvariant) {
  Rng rng(104);
  const std::size_t rows = 23, K = 31, N = 18;
  const auto a = random_vec(rows * K, rng);
  const auto b = random_vec(K * N, rng);
  const auto c0 = random_vec(rows * N, rng);

  for (std::size_t split : {std::size_t{1}, std::size_t{4}, std::size_t{17}}) {
    auto whole = c0;
    kt().gemm_nn(rows, K, N, a.data(), K, b.data(), N, whole.data(), N);
    auto parts = c0;
    kt().gemm_nn(split, K, N, a.data(), K, b.data(), N, parts.data(), N);
    kt().gemm_nn(rows - split, K, N, a.data() + split * K, K, b.data(), N,
                 parts.data() + split * N, N);
    expect_bitwise_eq(parts, whole, "gemm_nn split");
  }

  // Same property for the T-N variant (column blocks of A).
  auto whole = c0;
  kt().gemm_tn(rows, K, N, a.data(), rows, b.data(), N, whole.data(), N);
  auto parts = c0;
  kt().gemm_tn(9, K, N, a.data(), rows, b.data(), N, parts.data(), N);
  kt().gemm_tn(rows - 9, K, N, a.data() + 9, rows, b.data(), N,
               parts.data() + 9 * N, N);
  expect_bitwise_eq(parts, whole, "gemm_tn split");
}

TEST_P(KernelLevel, DotMatchesReferenceAndRepeatsBitwise) {
  Rng rng(105);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{31}, std::size_t{257}}) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    double want = 0.0;
    for (std::size_t k = 0; k < n; ++k) want += x[k] * y[k];
    const double got = kt().dot(x.data(), y.data(), n);
    EXPECT_NEAR(got, want, 1e-12 * (1.0 + std::abs(want))) << "dot n=" << n;
    const double again = kt().dot(x.data(), y.data(), n);
    EXPECT_EQ(std::memcmp(&got, &again, sizeof(double)), 0)
        << "dot not deterministic, n=" << n;
  }
}

// axpy drives the multi-RHS triangular solves of spd_inverse; like ema it
// may contract into FMA per level, but an element's bits must not depend
// on where a caller splits the range (chunk/block invariance).
TEST_P(KernelLevel, AxpyCloseToReferenceAndSplitInvariant) {
  Rng rng(110);
  const double alpha = -0.731;
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{7},
                        std::size_t{32}, std::size_t{261}}) {
    const auto src = random_vec(n, rng);
    const auto dst0 = random_vec(n, rng);

    auto got = dst0;
    kt().axpy(got.data(), src.data(), n, alpha);
    for (std::size_t i = 0; i < n; ++i) {
      const double want = dst0[i] + alpha * src[i];
      EXPECT_NEAR(got[i], want, 1e-14 * (1.0 + std::abs(want)))
          << "axpy n=" << n << " i=" << i;
    }

    auto again = dst0;
    kt().axpy(again.data(), src.data(), n, alpha);
    expect_bitwise_eq(again, got, "axpy repeat");

    // Splitting the range anywhere must not change any element's bits.
    for (std::size_t cut : {n / 3, n / 2, n - 1}) {
      auto parts = dst0;
      kt().axpy(parts.data(), src.data(), cut, alpha);
      kt().axpy(parts.data() + cut, src.data() + cut, n - cut, alpha);
      expect_bitwise_eq(parts, got, "axpy split");
    }
  }
}

// add/max/scale feed the collectives' reduce loops; the header promises
// their bits are identical across ISA levels, so the reduction result does
// not depend on which level a rank runs at.
TEST_P(KernelLevel, ElementwiseBitwiseMatchesScalar) {
  Rng rng(106);
  const std::size_t n = 259;  // vector body + tail
  const auto src = random_vec(n, rng);
  const auto dst0 = random_vec(n, rng);
  const KernelTable& ref = table(Isa::kScalar);

  auto got = dst0, want = dst0;
  kt().add(got.data(), src.data(), n);
  ref.add(want.data(), src.data(), n);
  expect_bitwise_eq(got, want, "add");

  got = dst0, want = dst0;
  kt().max(got.data(), src.data(), n);
  ref.max(want.data(), src.data(), n);
  expect_bitwise_eq(got, want, "max");

  got = dst0, want = dst0;
  kt().scale(got.data(), n, 1.0 / 3.0);
  ref.scale(want.data(), n, 1.0 / 3.0);
  expect_bitwise_eq(got, want, "scale");
}

// std::max(dst, src) keeps dst when either operand is NaN; the vector max
// must agree or the fault-tolerant max-reduce changes behavior per ISA.
TEST_P(KernelLevel, MaxMatchesStdMaxNanSemantics) {
  std::vector<double> dst{1.0, kNan, -2.0, kNan, 5.0, 0.0, 1.0, 2.0, 3.0};
  std::vector<double> src{kNan, 3.0, -1.0, kNan, 4.0, kNan, 7.0, 1.0, kNan};
  auto want = dst;
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = std::max(want[i], src[i]);
  }
  kt().max(dst.data(), src.data(), dst.size());
  ASSERT_EQ(dst.size(), want.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(dst[i])) << "at " << i;
    } else {
      EXPECT_EQ(dst[i], want[i]) << "at " << i;
    }
  }
}

TEST_P(KernelLevel, EmaMatchesReferenceAndRepeatsBitwise) {
  Rng rng(107);
  const std::size_t n = 133;
  const auto fresh = random_vec(n, rng);
  const auto state0 = random_vec(n, rng);
  const double decay = 0.95;

  auto want = state0;
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = decay * want[i] + (1.0 - decay) * fresh[i];
  }
  auto got = state0;
  kt().ema(got.data(), fresh.data(), n, decay);
  // FMA contraction may round differently from the scalar reference — the
  // contract is closeness across levels, bitwise stability within one.
  expect_close(got, want, 1e-14, "ema");

  auto again = state0;
  kt().ema(again.data(), fresh.data(), n, decay);
  expect_bitwise_eq(again, got, "ema repeat");
}

TEST_P(KernelLevel, PackUnpackRoundTripBitwise) {
  Rng rng(108);
  for (std::size_t d : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{33}}) {
    const std::size_t packed_n = d * (d + 1) / 2;
    const auto packed = random_vec(packed_n, rng);
    std::vector<double> dense(d * d, kNan);
    kt().unpack_upper(packed.data(), d, dense.data(), d);
    // Dense result is exactly symmetric.
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        EXPECT_EQ(dense[r * d + c], dense[c * d + r]) << d;
      }
    }
    std::vector<double> back(packed_n, kNan);
    kt().pack_upper(dense.data(), d, d, back.data());
    expect_bitwise_eq(back, packed, "pack(unpack) round trip");
  }
}

// ema_unpack is the zero-copy fusion of unpack_upper + dense ema; on a
// bitwise-symmetric state it must equal the two-step version bit for bit
// (same level on both sides).
TEST_P(KernelLevel, EmaUnpackMatchesUnpackThenEma) {
  Rng rng(109);
  for (std::size_t d : {std::size_t{1}, std::size_t{5}, std::size_t{19},
                        std::size_t{34}}) {
    const std::size_t packed_n = d * (d + 1) / 2;
    const auto seed_packed = random_vec(packed_n, rng);
    const auto fresh_packed = random_vec(packed_n, rng);
    const double decay = 0.9;

    // Symmetric starting state, built by the same level's unpack.
    std::vector<double> state(d * d);
    kt().unpack_upper(seed_packed.data(), d, state.data(), d);

    // Reference: unpack to a dense intermediate, then dense EMA.
    std::vector<double> want = state;
    std::vector<double> dense(d * d);
    kt().unpack_upper(fresh_packed.data(), d, dense.data(), d);
    kt().ema(want.data(), dense.data(), d * d, decay);

    auto got = state;
    kt().ema_unpack(fresh_packed.data(), d, got.data(), d, decay, false);
    expect_bitwise_eq(got, want, "ema_unpack fold");

    // init=true is exactly unpack_upper.
    std::vector<double> init_got(d * d, kNan);
    kt().ema_unpack(fresh_packed.data(), d, init_got.data(), d, decay, true);
    expect_bitwise_eq(init_got, dense, "ema_unpack init");
  }
}

TEST_P(KernelLevel, SymmetrizeRowsMatchesScalarAndComposes) {
  Rng rng(110);
  for (std::size_t n : {std::size_t{1}, std::size_t{6}, std::size_t{35}}) {
    const auto a0 = random_vec(n * n, rng);
    auto got = a0, want = a0;
    kt().symmetrize_rows(got.data(), n, n, 0, n);
    table(Isa::kScalar).symmetrize_rows(want.data(), n, n, 0, n);
    expect_bitwise_eq(got, want, "symmetrize vs scalar");
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(got[r * n + c], got[c * n + r]);
      }
    }
    // Chunked row ranges compose to the full-range result (the matrix
    // symmetrize parallelizes over row chunks).
    if (n > 2) {
      auto parts = a0;
      kt().symmetrize_rows(parts.data(), n, n, 0, n / 2);
      kt().symmetrize_rows(parts.data(), n, n, n / 2, n);
      expect_bitwise_eq(parts, got, "symmetrize chunked");
    }
  }
}

TEST_P(KernelLevel, TransposeExact) {
  Rng rng(111);
  const std::size_t shapes[][2] = {
      {1, 1}, {1, 9}, {9, 1}, {4, 4}, {7, 13}, {32, 32}, {37, 65}, {64, 33}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], cols = s[1];
    const auto in = random_vec(rows * cols, rng);
    std::vector<double> out(cols * rows, kNan);
    kt().transpose(in.data(), rows, cols, cols, out.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(out[c * rows + r], in[r * cols + c])
            << rows << "x" << cols << " at " << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, KernelLevel,
                         ::testing::ValuesIn(supported_levels()), level_name);

// ---------------------------------------------------------------------------
// Cross-level closeness: the AVX2 GEMMs may round differently (FMA), but
// they must stay within a few ulps of the scalar reference.

TEST(KernelCrossLevel, GemmLevelsAgreeWithinTolerance) {
  if (!supported(Isa::kAvx2)) GTEST_SKIP() << "single level build/CPU";
  Rng rng(112);
  const std::size_t rows = 31, K = 47, N = 22;
  const auto a = random_vec(rows * K, rng);
  const auto b = random_vec(K * N, rng);
  const auto c0 = random_vec(rows * N, rng);

  auto scalar_c = c0, avx2_c = c0;
  table(Isa::kScalar).gemm_nn(rows, K, N, a.data(), K, b.data(), N,
                              scalar_c.data(), N);
  table(Isa::kAvx2).gemm_nn(rows, K, N, a.data(), K, b.data(), N,
                            avx2_c.data(), N);
  expect_close(avx2_c, scalar_c, 1e-13, "gemm_nn cross-level");
}

}  // namespace
}  // namespace spdkfac::tensor::kernels
