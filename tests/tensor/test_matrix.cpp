#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "tensor/random.hpp"

namespace spdkfac::tensor {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5);
  for (double v : m.data()) EXPECT_EQ(v, 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix sum = a + b;
  Matrix diff = b - a;
  EXPECT_EQ(sum(1, 1), 44.0);
  EXPECT_EQ(diff(0, 0), 9.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a{{1, -2}};
  Matrix b = 2.0 * a;
  Matrix c = a * -1.0;
  EXPECT_EQ(b(0, 1), -4.0);
  EXPECT_EQ(c(0, 0), -1.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix a(3, 3);
  a.add_diagonal(0.5);
  EXPECT_EQ(a(0, 0), 0.5);
  EXPECT_EQ(a(2, 2), 0.5);
  EXPECT_EQ(a(0, 1), 0.0);
}

TEST(Matrix, AddDiagonalNonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(a.add_diagonal(1.0), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
}

// The kernel transpose is cache-blocked in 32x32 tiles (with 4x4 register
// tiles on the vector level); sweep shapes that land on and straddle both
// block edges, plus degenerate rows/columns.
TEST(Matrix, TransposedNonSquareAndBlockEdges) {
  Rng rng(23);
  const std::size_t shapes[][2] = {{1, 1},  {1, 17}, {17, 1},  {4, 4},
                                   {5, 7},  {32, 32}, {33, 31}, {37, 65},
                                   {64, 33}};
  for (const auto& s : shapes) {
    Matrix a = random_normal(s[0], s[1], rng);
    Matrix t = a.transposed();
    ASSERT_EQ(t.rows(), a.cols());
    ASSERT_EQ(t.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(t(c, r), a(r, c)) << s[0] << "x" << s[1];
      }
    }
    Matrix back = t.transposed();
    EXPECT_EQ(max_abs_diff(back, a), 0.0);
  }
}

TEST(Matrix, TransposedEmpty) {
  Matrix t = Matrix().transposed();
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.cols(), 0u);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbs) {
  Matrix a{{1, -7}, {3, 2}};
  EXPECT_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, SetZero) {
  Matrix a{{1, 2}, {3, 4}};
  a.set_zero();
  for (double v : a.data()) EXPECT_EQ(v, 0.0);
}

TEST(Matmul, SmallKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(7);
  Matrix a = random_normal(4, 4, rng);
  EXPECT_TRUE(allclose(matmul(a, Matrix::identity(4)), a));
  EXPECT_TRUE(allclose(matmul(Matrix::identity(4), a), a));
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(11);
  Matrix a = random_normal(5, 3, rng);
  Matrix b = random_normal(5, 4, rng);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(a.transposed(), b)));
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(13);
  Matrix a = random_normal(4, 6, rng);
  Matrix b = random_normal(5, 6, rng);
  EXPECT_TRUE(allclose(matmul_nt(a, b), matmul(a, b.transposed())));
}

// Regression for the old `if (aik == 0.0) continue;` zero-skip in the
// matmul inner loops: skipping the multiply silently turned 0 * NaN and
// 0 * inf into 0, masking upstream numerical blow-ups.  IEEE requires the
// NaN to propagate into every output element the bad operand touches.
TEST(Matmul, ZeroTimesNanPropagates) {
  Matrix a{{0.0, 1.0}, {2.0, 0.0}};
  Matrix b(2, 2);
  b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  b(0, 1) = std::numeric_limits<double>::infinity();
  b(1, 0) = 3.0;
  b(1, 1) = 4.0;
  Matrix c = matmul(a, b);
  // Row 0 multiplies the NaN/inf row of b by an explicit 0.
  EXPECT_TRUE(std::isnan(c(0, 0)));  // 0*NaN + 1*3
  EXPECT_TRUE(std::isnan(c(0, 1)));  // 0*inf + 1*4
  // Row 1 scales the bad row by 2: NaN and inf must survive.
  EXPECT_TRUE(std::isnan(c(1, 0)));
  EXPECT_TRUE(std::isinf(c(1, 1)) || std::isnan(c(1, 1)));
}

TEST(Matmul, TnAndNtPropagateNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Matrix a(2, 2);  // all zeros
  Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  b(0, 0) = nan;
  // tn(i, j) sums a(k, i) * b(k, j); the NaN at b(0, 0) reaches column 0.
  Matrix tn = matmul_tn(a, b);
  EXPECT_TRUE(std::isnan(tn(0, 0)));
  EXPECT_TRUE(std::isnan(tn(1, 0)));
  EXPECT_EQ(tn(1, 1), 0.0);  // untouched by the NaN: 0*2 + 0*4

  Matrix nt = matmul_nt(b, a);
  EXPECT_TRUE(std::isnan(nt(0, 0)));
  EXPECT_TRUE(std::isnan(nt(0, 1)));
}

TEST(Matvec, MatchesMatmul) {
  Rng rng(17);
  Matrix a = random_normal(4, 3, rng);
  std::vector<double> x{1.0, -2.0, 0.5};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = 0;
    for (std::size_t j = 0; j < 3; ++j) expect += a(i, j) * x[j];
    EXPECT_DOUBLE_EQ(y[i], expect);
  }
}

TEST(Allclose, DetectsDifference) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-6}};
  EXPECT_FALSE(allclose(a, b, 1e-9, 1e-9));
  EXPECT_TRUE(allclose(a, b, 1e-3, 1e-3));
}

TEST(Allclose, ShapeMismatchIsFalse) {
  EXPECT_FALSE(allclose(Matrix(1, 2), Matrix(2, 1)));
}

TEST(MatrixPrint, ContainsDims) {
  std::ostringstream os;
  os << Matrix(2, 3);
  EXPECT_NE(os.str().find("2x3"), std::string::npos);
}

// Associativity-style property sweep over random shapes.
class MatmulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatmulProperty, AssociativeWithinTolerance) {
  Rng rng(GetParam());
  std::uniform_int_distribution<std::size_t> dim(1, 12);
  const std::size_t m = dim(rng), k = dim(rng), n = dim(rng), p = dim(rng);
  Matrix a = random_normal(m, k, rng);
  Matrix b = random_normal(k, n, rng);
  Matrix c = random_normal(n, p, rng);
  EXPECT_TRUE(allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                       1e-9, 1e-9));
}

TEST_P(MatmulProperty, DistributesOverAddition) {
  Rng rng(GetParam() + 1000);
  std::uniform_int_distribution<std::size_t> dim(1, 12);
  const std::size_t m = dim(rng), k = dim(rng), n = dim(rng);
  Matrix a = random_normal(m, k, rng);
  Matrix b = random_normal(k, n, rng);
  Matrix c = random_normal(k, n, rng);
  EXPECT_TRUE(allclose(matmul(a, b + c), matmul(a, b) + matmul(a, c), 1e-9,
                       1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace spdkfac::tensor
