#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/random.hpp"

namespace spdkfac::tensor {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5);
  for (double v : m.data()) EXPECT_EQ(v, 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix sum = a + b;
  Matrix diff = b - a;
  EXPECT_EQ(sum(1, 1), 44.0);
  EXPECT_EQ(diff(0, 0), 9.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a{{1, -2}};
  Matrix b = 2.0 * a;
  Matrix c = a * -1.0;
  EXPECT_EQ(b(0, 1), -4.0);
  EXPECT_EQ(c(0, 0), -1.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix a(3, 3);
  a.add_diagonal(0.5);
  EXPECT_EQ(a(0, 0), 0.5);
  EXPECT_EQ(a(2, 2), 0.5);
  EXPECT_EQ(a(0, 1), 0.0);
}

TEST(Matrix, AddDiagonalNonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(a.add_diagonal(1.0), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbs) {
  Matrix a{{1, -7}, {3, 2}};
  EXPECT_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, SetZero) {
  Matrix a{{1, 2}, {3, 4}};
  a.set_zero();
  for (double v : a.data()) EXPECT_EQ(v, 0.0);
}

TEST(Matmul, SmallKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(7);
  Matrix a = random_normal(4, 4, rng);
  EXPECT_TRUE(allclose(matmul(a, Matrix::identity(4)), a));
  EXPECT_TRUE(allclose(matmul(Matrix::identity(4), a), a));
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(11);
  Matrix a = random_normal(5, 3, rng);
  Matrix b = random_normal(5, 4, rng);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(a.transposed(), b)));
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(13);
  Matrix a = random_normal(4, 6, rng);
  Matrix b = random_normal(5, 6, rng);
  EXPECT_TRUE(allclose(matmul_nt(a, b), matmul(a, b.transposed())));
}

TEST(Matvec, MatchesMatmul) {
  Rng rng(17);
  Matrix a = random_normal(4, 3, rng);
  std::vector<double> x{1.0, -2.0, 0.5};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = 0;
    for (std::size_t j = 0; j < 3; ++j) expect += a(i, j) * x[j];
    EXPECT_DOUBLE_EQ(y[i], expect);
  }
}

TEST(Allclose, DetectsDifference) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-6}};
  EXPECT_FALSE(allclose(a, b, 1e-9, 1e-9));
  EXPECT_TRUE(allclose(a, b, 1e-3, 1e-3));
}

TEST(Allclose, ShapeMismatchIsFalse) {
  EXPECT_FALSE(allclose(Matrix(1, 2), Matrix(2, 1)));
}

TEST(MatrixPrint, ContainsDims) {
  std::ostringstream os;
  os << Matrix(2, 3);
  EXPECT_NE(os.str().find("2x3"), std::string::npos);
}

// Associativity-style property sweep over random shapes.
class MatmulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatmulProperty, AssociativeWithinTolerance) {
  Rng rng(GetParam());
  std::uniform_int_distribution<std::size_t> dim(1, 12);
  const std::size_t m = dim(rng), k = dim(rng), n = dim(rng), p = dim(rng);
  Matrix a = random_normal(m, k, rng);
  Matrix b = random_normal(k, n, rng);
  Matrix c = random_normal(n, p, rng);
  EXPECT_TRUE(allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                       1e-9, 1e-9));
}

TEST_P(MatmulProperty, DistributesOverAddition) {
  Rng rng(GetParam() + 1000);
  std::uniform_int_distribution<std::size_t> dim(1, 12);
  const std::size_t m = dim(rng), k = dim(rng), n = dim(rng);
  Matrix a = random_normal(m, k, rng);
  Matrix b = random_normal(k, n, rng);
  Matrix c = random_normal(k, n, rng);
  EXPECT_TRUE(allclose(matmul(a, b + c), matmul(a, b) + matmul(a, c), 1e-9,
                       1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace spdkfac::tensor
