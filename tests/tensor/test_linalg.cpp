#include "tensor/linalg.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace spdkfac::tensor {
namespace {

TEST(Cholesky, KnownFactorization) {
  // A = L L^T with L = [[2,0],[1,3]] -> A = [[4,2],[2,10]].
  Matrix a{{4, 2}, {2, 10}};
  auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_DOUBLE_EQ(chol->lower(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(chol->lower(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(chol->lower(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(chol->lower(0, 1), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, SolveRecoversKnownVector) {
  Rng rng(3);
  Matrix a = random_spd(6, rng);
  auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  std::vector<double> x_true{1, -1, 2, 0.5, -3, 4};
  const auto b = matvec(a, x_true);
  const auto x = chol->solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Cholesky, SolveMatrixRecoversIdentity) {
  Rng rng(5);
  Matrix a = random_spd(5, rng);
  auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  Matrix x = chol->solve(Matrix::identity(5));
  EXPECT_TRUE(allclose(matmul(a, x), Matrix::identity(5), 1e-8, 1e-8));
}

TEST(Cholesky, LogDetMatchesDiagonalProduct) {
  Matrix a{{4, 0}, {0, 9}};
  auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(36.0), 1e-12);
}

TEST(SpdInverse, InverseOfIdentityIsIdentity) {
  EXPECT_TRUE(allclose(spd_inverse(Matrix::identity(4)),
                       Matrix::identity(4)));
}

TEST(SpdInverse, DiagonalMatrix) {
  Matrix a{{2, 0}, {0, 5}};
  Matrix inv = spd_inverse(a);
  EXPECT_NEAR(inv(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.2, 1e-12);
  EXPECT_NEAR(inv(0, 1), 0.0, 1e-12);
}

TEST(SpdInverse, ThrowsOnIndefinite) {
  Matrix a{{0, 0}, {0, 0}};
  EXPECT_THROW(spd_inverse(a), std::domain_error);
}

TEST(SpdInverse, ResultIsExactlySymmetric) {
  Rng rng(9);
  Matrix inv = spd_inverse(random_spd(20, rng));
  for (std::size_t i = 0; i < inv.rows(); ++i) {
    for (std::size_t j = 0; j < inv.cols(); ++j) {
      EXPECT_EQ(inv(i, j), inv(j, i));
    }
  }
}

TEST(DampedInverse, MatchesManualDamping) {
  Rng rng(21);
  Matrix a = random_spd(8, rng);
  Matrix damped = a;
  damped.add_diagonal(0.3);
  EXPECT_TRUE(allclose(damped_inverse(a, 0.3), spd_inverse(damped)));
}

TEST(DampedInverse, DampingRescuesSingularMatrix) {
  Matrix a(4, 4);  // zero matrix: singular, but A + gamma I is SPD
  Matrix inv = damped_inverse(a, 0.5);
  EXPECT_TRUE(allclose(inv, Matrix::identity(4) * 2.0));
}

TEST(IsSymmetric, DetectsAsymmetry) {
  Matrix a{{1, 2}, {2.1, 1}};
  EXPECT_FALSE(is_symmetric(a, 1e-3));
  EXPECT_TRUE(is_symmetric(a, 0.2));
  EXPECT_FALSE(is_symmetric(Matrix(2, 3)));
}

TEST(Symmetrize, AveragesOffDiagonals) {
  Matrix a{{1, 2}, {4, 1}};
  symmetrize(a);
  EXPECT_EQ(a(0, 1), 3.0);
  EXPECT_EQ(a(1, 0), 3.0);
}

TEST(SpdInverseFlops, Cubic) {
  EXPECT_DOUBLE_EQ(spd_inverse_flops(10), 1000.0);
}

TEST(SymmetricEigen, DiagonalMatrixEigenvaluesSorted) {
  Matrix a{{5, 0, 0}, {0, 1, 0}, {0, 0, 3}};
  const SymmetricEigen eigen = symmetric_eigen(a);
  ASSERT_EQ(eigen.eigenvalues.size(), 3u);
  EXPECT_NEAR(eigen.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[2], 5.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  const SymmetricEigen eigen = symmetric_eigen(a);
  EXPECT_NEAR(eigen.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsAndOrthonormal) {
  Rng rng(101);
  const Matrix a = random_spd(24, rng);
  const SymmetricEigen eigen = symmetric_eigen(a);
  // Q^T Q = I.
  EXPECT_TRUE(allclose(matmul_tn(eigen.eigenvectors, eigen.eigenvectors),
                       Matrix::identity(24), 1e-9, 1e-9));
  // Q diag(lambda) Q^T = A.
  Matrix scaled = eigen.eigenvectors;
  for (std::size_t j = 0; j < 24; ++j) {
    for (std::size_t i = 0; i < 24; ++i) {
      scaled(i, j) *= eigen.eigenvalues[j];
    }
  }
  EXPECT_TRUE(allclose(matmul_nt(scaled, eigen.eigenvectors), a, 1e-8, 1e-9));
}

TEST(SymmetricEigen, DampedInverseMatchesCholeskyPath) {
  Rng rng(103);
  const Matrix a = random_spd(16, rng);
  const Matrix via_eigen = symmetric_eigen(a).damped_inverse(0.2);
  const Matrix via_chol = damped_inverse(a, 0.2);
  EXPECT_TRUE(allclose(via_eigen, via_chol, 1e-8, 1e-10));
}

TEST(SymmetricEigen, OneDecompositionServesManyDampings) {
  // The amortization property real K-FAC systems exploit.
  Rng rng(107);
  const Matrix a = random_spd(10, rng);
  const SymmetricEigen eigen = symmetric_eigen(a);
  for (double gamma : {1e-3, 1e-1, 1.0}) {
    EXPECT_TRUE(allclose(eigen.damped_inverse(gamma),
                         damped_inverse(a, gamma), 1e-8, 1e-10))
        << gamma;
  }
}

TEST(SymmetricEigen, IndefiniteMatrixStillDecomposes) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues -1, 3
  const SymmetricEigen eigen = symmetric_eigen(a);
  EXPECT_NEAR(eigen.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-12);
  // Damping must rescue it only when gamma > 1.
  EXPECT_THROW(eigen.damped_inverse(0.5), std::domain_error);
  const Matrix inv = eigen.damped_inverse(2.0);
  Matrix damped = a;
  damped.add_diagonal(2.0);
  EXPECT_TRUE(allclose(matmul(damped, inv), Matrix::identity(2), 1e-10,
                       1e-10));
}

TEST(SymmetricEigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(SymmetricEigen, SizeOneMatrix) {
  Matrix a{{4.0}};
  const SymmetricEigen eigen = symmetric_eigen(a);
  EXPECT_DOUBLE_EQ(eigen.eigenvalues[0], 4.0);
  EXPECT_DOUBLE_EQ(eigen.damped_inverse(1.0)(0, 0), 0.2);
}

// Property sweep: inverse really inverts across sizes and conditioning.
class SpdInverseProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SpdInverseProperty, ProductWithInverseIsIdentity) {
  const auto [n, jitter] = GetParam();
  Rng rng(static_cast<unsigned>(n * 1000 + jitter * 10));
  Matrix a = random_spd(n, rng, jitter);
  Matrix inv = spd_inverse(a);
  EXPECT_TRUE(allclose(matmul(a, inv), Matrix::identity(n), 1e-6, 1e-6))
      << "n=" << n << " jitter=" << jitter;
}

TEST_P(SpdInverseProperty, CholeskyReconstructs) {
  const auto [n, jitter] = GetParam();
  Rng rng(static_cast<unsigned>(n * 77 + 5));
  Matrix a = random_spd(n, rng, jitter);
  auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  Matrix recon = matmul_nt(chol->lower, chol->lower);
  EXPECT_TRUE(allclose(recon, a, 1e-9, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SpdInverseProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 33, 64),
                       ::testing::Values(1e-3, 0.1, 1.0)));

}  // namespace
}  // namespace spdkfac::tensor
