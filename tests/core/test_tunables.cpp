// with_tunable / set_tunable / force_replan: the control plane's live
// reconfiguration path.  The strong guarantee (a rejected set leaves the
// options bitwise untouched) is what lets spdkfacd validate `set` commands
// before queueing them.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "tensor/random.hpp"

namespace spdkfac::core {
namespace {

TEST(WithTunable, SetsEveryDocumentedTunable) {
  const DistKfacOptions base;

  DistKfacOptions next = with_tunable(base, "lr", 0.125);
  EXPECT_DOUBLE_EQ(next.lr, 0.125);
  EXPECT_DOUBLE_EQ(base.lr, 0.05) << "input must be untouched";

  next = with_tunable(base, "damping", 0.25);
  EXPECT_DOUBLE_EQ(next.damping, 0.25);

  next = with_tunable(base, "stat_decay", 0.0);
  EXPECT_DOUBLE_EQ(next.stat_decay, 0.0);

  next = with_tunable(base, "kl_clip", 0.001);
  EXPECT_DOUBLE_EQ(next.kl_clip, 0.001);

  next = with_tunable(base, "factor_update_freq", 4.0);
  EXPECT_EQ(next.factor_update_freq, 4u);

  next = with_tunable(base, "inverse_update_freq", 8.0);
  EXPECT_EQ(next.inverse_update_freq, 8u);

  next = with_tunable(base, "replan_interval", 16.0);
  EXPECT_EQ(next.replan_interval, 16u);
}

TEST(WithTunable, RejectsUnknownNamesNamingTheValidOnes) {
  const DistKfacOptions base;
  try {
    with_tunable(base, "learning_rate", 0.1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("learning_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("lr"), std::string::npos) << what;
    EXPECT_NE(what.find("replan_interval"), std::string::npos) << what;
  }
}

TEST(WithTunable, RejectsValuesValidateRejects) {
  const DistKfacOptions base;
  EXPECT_THROW(with_tunable(base, "lr", 0.0), std::invalid_argument);
  EXPECT_THROW(with_tunable(base, "lr", -0.1), std::invalid_argument);
  EXPECT_THROW(with_tunable(base, "damping", 0.0), std::invalid_argument);
  EXPECT_THROW(with_tunable(base, "stat_decay", 1.0), std::invalid_argument);
  EXPECT_THROW(with_tunable(base, "stat_decay", -0.1),
               std::invalid_argument);
  EXPECT_THROW(with_tunable(base, "kl_clip", -1.0), std::invalid_argument);
}

TEST(WithTunable, FrequencyTunablesRequirePositiveIntegers) {
  const DistKfacOptions base;
  for (const char* name :
       {"factor_update_freq", "inverse_update_freq", "replan_interval"}) {
    EXPECT_THROW(with_tunable(base, name, 0.0), std::invalid_argument)
        << name;
    EXPECT_THROW(with_tunable(base, name, -1.0), std::invalid_argument)
        << name;
    EXPECT_THROW(with_tunable(base, name, 1.5), std::invalid_argument)
        << name;
    EXPECT_THROW(with_tunable(base, name,
                              std::numeric_limits<double>::infinity()),
                 std::invalid_argument)
        << name;
    EXPECT_NO_THROW(with_tunable(base, name, 3.0)) << name;
  }
}

// ---------------------------------------------------------------------------
// Live optimizer: set_tunable / force_replan between steps.
// ---------------------------------------------------------------------------

sched::PassTiming fixed_profile(std::size_t layers) {
  sched::PassTiming t;
  for (std::size_t l = 0; l < layers; ++l) {
    t.a_ready.push_back(1e-4 * static_cast<double>(l + 1));
    t.g_ready.push_back(1e-3 + 1e-4 * static_cast<double>(l + 1));
    t.grad_ready.push_back(1e-3 + 1.5e-4 * static_cast<double>(l + 1));
  }
  t.backward_end = 2e-3;
  return t;
}

TEST(SetTunable, StrongGuaranteeAndLiveEffectOnTheOptimizer) {
  comm::Cluster::launch(1, [&](comm::Communicator& comm) {
    tensor::Rng rng(7);
    const std::size_t widths[] = {6, 8, 4};
    nn::Sequential model = nn::make_mlp(widths, rng);
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.profile = fixed_profile(layers.size());
    opts.replan_interval = 100;  // no natural re-plan inside this test
    DistKfacOptimizer optimizer(layers, comm, opts);

    optimizer.set_tunable("lr", 0.01);
    EXPECT_DOUBLE_EQ(optimizer.options().lr, 0.01);

    const DistKfacOptions before = optimizer.options();
    EXPECT_THROW(optimizer.set_tunable("lr", -5.0), std::invalid_argument);
    EXPECT_THROW(optimizer.set_tunable("bogus", 1.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(optimizer.options().lr, before.lr);
    EXPECT_DOUBLE_EQ(optimizer.options().damping, before.damping);

    // force_replan arms an immediate planning refresh: the first step plans
    // (epoch 1); without force_replan the next steps reuse that epoch.
    nn::SyntheticClassification data(4, 6, 1, 11);
    tensor::Rng shard(100);
    nn::SoftmaxCrossEntropy loss;
    const auto one_step = [&] {
      nn::Batch b = data.sample(8, shard);
      nn::Tensor4D flat(b.inputs.n, 6, 1, 1);
      flat.data = b.inputs.data;
      loss.forward(model.forward(flat), b.labels);
      model.backward(loss.backward());
      optimizer.step();
    };
    one_step();
    const std::size_t epoch_after_first = optimizer.replan_count();
    one_step();
    EXPECT_EQ(optimizer.replan_count(), epoch_after_first)
        << "replan_interval=100 must not re-plan on step 2";
    optimizer.force_replan();
    one_step();
    EXPECT_EQ(optimizer.replan_count(), epoch_after_first + 1)
        << "force_replan must trigger a refresh on the next step";
  });
}

}  // namespace
}  // namespace spdkfac::core
