// Distributed K-FAC equivalence and consistency tests — the reproduction of
// the paper's correctness claim (Section VI): "our proposed algorithms are
// systemic optimizations without affecting the numerical results of D-KFAC,
// [so] SPD-KFAC should generate identical numerical results".
//
// We verify three levels:
//   1. every strategy keeps all ranks' model replicas bitwise identical;
//   2. D-KFAC, MPD-KFAC and SPD-KFAC produce the same updates up to
//      floating-point reassociation of the all-reduce;
//   3. the P-worker run matches a serial reference that averages the
//      per-shard factors and gradients (Eq. 13).
#include "core/dist_kfac.hpp"

#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "nn/data.hpp"
#include "tensor/linalg.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

constexpr std::size_t kIn = 6, kHidden = 10, kClasses = 3;
constexpr std::uint64_t kModelSeed = 4242;
constexpr std::uint64_t kDataSeed = 99;

nn::Sequential make_model() {
  Rng rng(kModelSeed);
  const std::size_t widths[] = {kIn, kHidden, kClasses};
  return nn::make_mlp(widths, rng);
}

/// One local forward/backward on this worker's shard.
void run_pass(nn::Sequential& model, const nn::SyntheticClassification& data,
              Rng& rng, std::size_t batch) {
  auto b = data.sample(batch, rng);
  Tensor4D flat(b.inputs.n, kIn, 1, 1);
  flat.data = b.inputs.data;
  nn::SoftmaxCrossEntropy loss;
  loss.forward(model.forward(flat), b.labels);
  model.backward(loss.backward());
}

/// Runs `steps` distributed K-FAC steps on `world` workers and returns the
/// final weight matrices of every rank.
std::vector<std::vector<Matrix>> train_distributed(int world,
                                                   DistStrategy strategy,
                                                   int steps,
                                                   std::size_t batch = 8) {
  std::vector<std::vector<Matrix>> final_weights(world);
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = strategy;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.stat_decay = 0.5;
    DistKfacOptimizer optimizer(layers, comm, opts);

    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard_rng(1000 + comm.rank());
    for (int s = 0; s < steps; ++s) {
      run_pass(model, data, shard_rng, batch);
      optimizer.step();
    }
    std::vector<Matrix> weights;
    for (auto* l : layers) weights.push_back(l->weight());
    final_weights[comm.rank()] = std::move(weights);
  });
  return final_weights;
}

class StrategySuite : public ::testing::TestWithParam<DistStrategy> {};

TEST_P(StrategySuite, AllRanksStayBitwiseIdentical) {
  const auto weights = train_distributed(4, GetParam(), 3);
  for (int r = 1; r < 4; ++r) {
    for (std::size_t l = 0; l < weights[0].size(); ++l) {
      EXPECT_EQ(tensor::max_abs_diff(weights[r][l], weights[0][l]), 0.0)
          << to_string(GetParam()) << " rank " << r << " layer " << l;
    }
  }
}

TEST_P(StrategySuite, MatchesSerialShardAveragedReference) {
  // Serial reference for one step: run every shard's pass on its own model
  // replica, average factors and gradients, apply Eq. (13) once.
  const int world = 3;
  const std::size_t batch = 8;

  // --- distributed run, 1 step ---
  const auto dist_weights = train_distributed(world, GetParam(), 1, batch);

  // --- serial reference ---
  std::vector<nn::Sequential> replicas;
  for (int r = 0; r < world; ++r) replicas.push_back(make_model());
  nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
  for (int r = 0; r < world; ++r) {
    Rng shard_rng(1000 + r);
    run_pass(replicas[r], data, shard_rng, batch);
  }
  auto ref_layers = replicas[0].preconditioned_layers();
  std::vector<Matrix> expected;
  for (std::size_t l = 0; l < ref_layers.size(); ++l) {
    Matrix a, g, grad;
    for (int r = 0; r < world; ++r) {
      auto* layer = replicas[r].preconditioned_layers()[l];
      const Matrix la = compute_factor_a(*layer);
      const Matrix lg = compute_factor_g(*layer);
      if (r == 0) {
        a = la;
        g = lg;
        grad = layer->weight_grad();
      } else {
        a += la;
        g += lg;
        grad += layer->weight_grad();
      }
    }
    a *= 1.0 / world;
    g *= 1.0 / world;
    grad *= 1.0 / world;
    const Matrix delta =
        tensor::matmul(tensor::damped_inverse(g, 0.1),
                       tensor::matmul(grad, tensor::damped_inverse(a, 0.1)));
    Matrix w = ref_layers[l]->weight();
    expected.push_back(w - delta * 0.1);
  }

  for (std::size_t l = 0; l < expected.size(); ++l) {
    EXPECT_TRUE(tensor::allclose(dist_weights[0][l], expected[l], 1e-8, 1e-10))
        << to_string(GetParam()) << " layer " << l << " max diff "
        << tensor::max_abs_diff(dist_weights[0][l], expected[l]);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySuite,
                         ::testing::Values(DistStrategy::kDKfac,
                                           DistStrategy::kMpdKfac,
                                           DistStrategy::kSpdKfac),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(DistKfac, StrategiesAgreeWithEachOther) {
  // The paper's central numerical claim: SPD-KFAC == MPD-KFAC == D-KFAC up
  // to all-reduce reassociation (different fusion layouts change the
  // floating-point summation grouping, nothing else).
  const auto dkfac = train_distributed(4, DistStrategy::kDKfac, 3);
  const auto mpd = train_distributed(4, DistStrategy::kMpdKfac, 3);
  const auto spd = train_distributed(4, DistStrategy::kSpdKfac, 3);
  for (std::size_t l = 0; l < dkfac[0].size(); ++l) {
    EXPECT_TRUE(tensor::allclose(mpd[0][l], dkfac[0][l], 1e-9, 1e-11))
        << "MPD vs D layer " << l;
    EXPECT_TRUE(tensor::allclose(spd[0][l], dkfac[0][l], 1e-9, 1e-11))
        << "SPD vs D layer " << l;
  }
}

TEST(DistKfac, SingleWorkerMatchesLocalKfacOptimizer) {
  // P = 1 distributed must collapse to the single-process optimizer.
  const auto dist_weights = train_distributed(1, DistStrategy::kSpdKfac, 4);

  nn::Sequential model = make_model();
  auto layers = model.preconditioned_layers();
  KfacOptions opts;
  opts.lr = 0.1;
  opts.damping = 0.1;
  opts.stat_decay = 0.5;
  KfacOptimizer kfac(layers, opts);
  nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
  Rng shard_rng(1000);
  for (int s = 0; s < 4; ++s) {
    run_pass(model, data, shard_rng, 8);
    kfac.step();
  }
  for (std::size_t l = 0; l < layers.size(); ++l) {
    EXPECT_TRUE(
        tensor::allclose(dist_weights[0][l], layers[l]->weight(), 1e-9, 1e-11))
        << "layer " << l;
  }
}

TEST(DistKfac, PlacementMatchesStrategy) {
  comm::Cluster::launch(4, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();

    DistKfacOptions opts;
    opts.strategy = DistStrategy::kMpdKfac;
    DistKfacOptimizer mpd(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng rng(7 + comm.rank());
    run_pass(model, data, rng, 4);
    mpd.step();
    EXPECT_EQ(mpd.placement().policy, "Seq-Dist");
    EXPECT_EQ(mpd.placement().num_ncts(), 0u);
    EXPECT_TRUE(mpd.placement().valid(2 * layers.size()));
  });
}

TEST(DistKfac, SpdPlacementUsesLbp) {
  comm::Cluster::launch(2, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kSpdKfac;
    DistKfacOptimizer spd(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng rng(7 + comm.rank());
    run_pass(model, data, rng, 4);
    spd.step();
    EXPECT_EQ(spd.placement().policy, "LBP");
    EXPECT_TRUE(spd.placement().valid(2 * layers.size()));
  });
}

TEST(DistKfac, SpdFusionGroupsCoverAllLayersAfterWarmup) {
  // Step 0 communicates layer-wise (no measurements yet); step 1 plans from
  // the measured factor times with Eq. (15).  Either way the groups must
  // partition the layer range exactly.
  comm::Cluster::launch(2, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    const std::size_t L = layers.size();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kSpdKfac;
    DistKfacOptimizer spd(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng rng(17 + comm.rank());
    for (int s = 0; s < 2; ++s) {
      run_pass(model, data, rng, 4);
      spd.step();
      const auto& a_groups = spd.last_a_groups();
      const auto& g_groups = spd.last_g_groups();
      ASSERT_FALSE(a_groups.empty());
      ASSERT_FALSE(g_groups.empty());
      EXPECT_EQ(a_groups.front().first, 0u);
      EXPECT_EQ(a_groups.back().last, L - 1);
      EXPECT_EQ(g_groups.back().last, L - 1);
      for (std::size_t i = 1; i < a_groups.size(); ++i) {
        EXPECT_EQ(a_groups[i].first, a_groups[i - 1].last + 1);
      }
    }
  });
}

TEST(DistKfac, TrainingReducesLossAcrossWorkers) {
  const int world = 4;
  std::vector<double> first(world), last(world);
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kSpdKfac;
    opts.lr = 0.2;
    opts.damping = 0.1;
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed, 0.2);
    Rng rng(500 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < 20; ++s) {
      auto b = data.sample(16, rng);
      Tensor4D flat(b.inputs.n, kIn, 1, 1);
      flat.data = b.inputs.data;
      const double l = loss.forward(model.forward(flat), b.labels);
      model.backward(loss.backward());
      optimizer.step();
      if (s == 0) first[comm.rank()] = l;
      last[comm.rank()] = l;
    }
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_LT(last[r], 0.6 * first[r]) << "rank " << r;
  }
}

TEST(DistKfac, RejectsEmptyLayerList) {
  comm::Cluster::launch(1, [](comm::Communicator& comm) {
    EXPECT_THROW(DistKfacOptimizer({}, comm), std::invalid_argument);
  });
}

TEST(DistKfac, UpdateFrequenciesReduceWork) {
  comm::Cluster::launch(2, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kDKfac;
    opts.factor_update_freq = 2;
    opts.inverse_update_freq = 2;
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng rng(31 + comm.rank());
    run_pass(model, data, rng, 4);
    optimizer.step();
    const Matrix inv_after_1 = optimizer.inverse_a(0);
    run_pass(model, data, rng, 4);
    optimizer.step();  // freq 2: inverses must be unchanged
    EXPECT_EQ(tensor::max_abs_diff(optimizer.inverse_a(0), inv_after_1), 0.0);
  });
}

/// Real-numerics path of the collective algorithm library: training on a
/// hierarchical topology with the auto-selected algorithms must keep ranks
/// bitwise identical and match the ring run up to the floating-point
/// reassociation the different reduction orders introduce.
TEST(DistKfac, TopologyAwareCollectivesMatchRingNumerics) {
  const comm::Topology topo = comm::Topology::multi_node(2, 2);
  auto train = [&](comm::AllReduceAlgo algo) {
    std::vector<std::vector<Matrix>> final_weights(topo.world_size());
    comm::Cluster::launch(topo, [&](comm::Communicator& comm) {
      nn::Sequential model = make_model();
      auto layers = model.preconditioned_layers();
      DistKfacOptions opts;
      opts.strategy = DistStrategy::kSpdKfac;
      opts.lr = 0.1;
      opts.damping = 0.1;
      opts.stat_decay = 0.5;
      opts.collective_algo = algo;
      DistKfacOptimizer optimizer(layers, comm, opts);
      if (algo == comm::AllReduceAlgo::kAuto) {
        // On a 2x2 hierarchy the default link models never pick the ring.
        EXPECT_NE(optimizer.collective_algo(1), comm::AllReduceAlgo::kRing);
        EXPECT_NE(optimizer.collective_algo(1 << 22),
                  comm::AllReduceAlgo::kRing);
      }
      nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
      Rng shard_rng(1000 + comm.rank());
      for (int s = 0; s < 3; ++s) {
        run_pass(model, data, shard_rng, 8);
        optimizer.step();
      }
      std::vector<Matrix> weights;
      for (auto* l : layers) weights.push_back(l->weight());
      final_weights[comm.rank()] = std::move(weights);
    });
    return final_weights;
  };

  const auto ring = train(comm::AllReduceAlgo::kRing);
  const auto autosel = train(comm::AllReduceAlgo::kAuto);
  const auto hd = train(comm::AllReduceAlgo::kHalvingDoubling);
  for (const auto& run : {ring, autosel, hd}) {
    for (int r = 1; r < topo.world_size(); ++r) {
      for (std::size_t l = 0; l < run[r].size(); ++l) {
        EXPECT_EQ(tensor::max_abs_diff(run[r][l], run[0][l]), 0.0)
            << "rank " << r << " layer " << l;
      }
    }
  }
  for (std::size_t l = 0; l < ring[0].size(); ++l) {
    EXPECT_TRUE(tensor::allclose(autosel[0][l], ring[0][l], 1e-8, 1e-10))
        << "auto vs ring, layer " << l;
    EXPECT_TRUE(tensor::allclose(hd[0][l], ring[0][l], 1e-8, 1e-10))
        << "halving-doubling vs ring, layer " << l;
  }
}

}  // namespace
}  // namespace spdkfac::core
