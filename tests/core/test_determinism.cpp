// Determinism under concurrency — the safety net of the dataflow refactor:
// with a fixed planning profile (reproducible schedules), the same seeds
// must yield *bitwise-identical* parameters after N steps for every
// executor configuration: serial (pool_size 0) and pools of 1, 2 and 4
// workers, hooked and post-hoc.  Everything that moved onto the pool —
// blocked GEMM/Cholesky loops, concurrent factor builds, racing inverse
// tasks, out-of-order collective completions — must be invisible to the
// numerics.  Runs under TSan in CI, where any ordering the executor fails
// to enforce also surfaces as a data race.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "models/model_spec.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "sched/serialize.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/matrix.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

constexpr std::size_t kWidths[] = {6, 12, 10, 3};
constexpr std::size_t kIn = 6, kClasses = 3, kBatch = 8;
constexpr int kSteps = 3;

struct RunConfig {
  int world = 2;
  std::size_t pool_size = 0;
  DistStrategy strategy = DistStrategy::kSpdKfac;
  bool hooked = true;
  int steps = kSteps;
  /// Adaptive mode: re-plan every 2 steps from a deterministic profile
  /// trajectory instead of a single fixed profile.  The schedule then
  /// *changes mid-run* (different fusion per epoch), and determinism must
  /// survive the re-planning loop and the plan cache.
  bool adaptive = false;
  /// Microkernel ISA level to pin inside every rank (forked ranks force it
  /// in-child).  Bitwise determinism is promised *within* a level, never
  /// across levels (FMA contraction rounds differently) — so the forced-ISA
  /// matrix never compares scalar weights against avx2 weights.
  std::optional<tensor::kernels::Isa> isa = std::nullopt;
};

/// Deterministic trajectory spanning two decades of absolute scale — each
/// epoch fuses differently (see tests/sched/test_adaptive.cpp).
std::vector<sched::PassTiming> trajectory_for(
    const models::ModelSpec& spec, const perf::ClusterCalibration& cal) {
  sched::PassTiming base = sched::timing_from_model(spec, kBatch, cal.compute,
                                                    /*second_order=*/true);
  auto scale = [](sched::PassTiming t, double f) {
    for (auto* v : {&t.a_ready, &t.g_ready, &t.grad_ready}) {
      for (double& x : *v) x *= f;
    }
    t.backward_end *= f;
    return t;
  };
  return {base, scale(base, 12.0), scale(base, 150.0)};
}

/// The per-rank training body shared by every launch mode: N steps with a
/// fixed profile (or trajectory), returning this rank's final weights.
std::vector<Matrix> train_rank(const RunConfig& cfg, comm::Communicator& comm,
                               std::string* plan_text = nullptr) {
  if (cfg.isa.has_value()) tensor::kernels::force(*cfg.isa);
  const models::ModelSpec spec = models::mlp_spec(kWidths);
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(cfg.world));
  Rng init(2024);
  nn::Sequential model = nn::make_mlp(kWidths, init);
  auto layers = model.preconditioned_layers();
  DistKfacOptions opts;
  opts.strategy = cfg.strategy;
  opts.pool_size = cfg.pool_size;
  opts.lr = 0.1;
  opts.damping = 0.1;
  opts.stat_decay = 0.5;
  opts.grad_fusion_threshold = 64;  // several WFBP groups
  // Fixed profile/trajectory: the fusion plan must not depend on
  // wall-clock measurements, or different pool sizes would legitimately
  // produce different (equally correct) schedules.
  if (cfg.adaptive) {
    opts.profile_trajectory = trajectory_for(spec, cal);
    opts.replan_interval = 2;
  } else {
    opts.profile = sched::timing_from_model(spec, kBatch, cal.compute,
                                            /*second_order=*/true);
  }
  DistKfacOptimizer optimizer(layers, comm, opts);

  nn::SyntheticClassification data(kClasses, kIn, 1, 55);
  Rng shard(300 + comm.rank());
  nn::SoftmaxCrossEntropy loss;
  for (int s = 0; s < cfg.steps; ++s) {
    auto batch = data.sample(kBatch, shard);
    Tensor4D flat(batch.inputs.n, kIn, 1, 1);
    flat.data = batch.inputs.data;
    if (cfg.hooked) {
      const nn::PassHooks hooks = optimizer.pass_hooks();
      loss.forward(model.forward(flat, hooks), batch.labels);
      model.backward(loss.backward(), hooks);
    } else {
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
    }
    optimizer.step();
  }
  if (plan_text != nullptr) {
    *plan_text = sched::plan_to_text(optimizer.plan());
  }
  std::vector<Matrix> weights;
  for (auto* l : layers) weights.push_back(l->weight());
  return weights;
}

/// In-process launch; returns rank-0 final weights and, when `plan_texts`
/// is given, every rank's serialized final plan (indexed by rank).
std::vector<Matrix> train(const RunConfig& cfg,
                          std::vector<std::string>* plan_texts = nullptr) {
  std::vector<Matrix> weights;
  if (plan_texts != nullptr) {
    plan_texts->assign(static_cast<std::size_t>(cfg.world), "");
  }
  comm::Cluster::launch(cfg.world, [&](comm::Communicator& comm) {
    std::string plan_text;
    auto rank_weights = train_rank(cfg, comm, &plan_text);
    if (comm.rank() == 0) weights = std::move(rank_weights);
    if (plan_texts != nullptr) {
      (*plan_texts)[static_cast<std::size_t>(comm.rank())] =
          std::move(plan_text);
    }
  });
  return weights;
}

/// The same training over any transport backend; returns every rank's
/// final weights flattened to doubles (processes report through pipes, so
/// the result must be a plain vector).
std::vector<std::vector<double>> train_over(comm::TransportKind kind,
                                            const RunConfig& cfg) {
  return comm::Cluster::launch_collect(
      kind, comm::Topology::flat(cfg.world), [&](comm::Communicator& comm) {
        std::vector<double> flat;
        for (const Matrix& w : train_rank(cfg, comm)) {
          flat.insert(flat.end(), w.data().begin(), w.data().end());
        }
        return flat;
      });
}

std::vector<double> flatten(const std::vector<Matrix>& weights) {
  std::vector<double> flat;
  for (const Matrix& w : weights) {
    flat.insert(flat.end(), w.data().begin(), w.data().end());
  }
  return flat;
}

void expect_bitwise_equal(const std::vector<Matrix>& a,
                          const std::vector<Matrix>& b,
                          const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t l = 0; l < a.size(); ++l) {
    EXPECT_EQ(tensor::max_abs_diff(a[l], b[l]), 0.0)
        << context << " layer " << l;
  }
}

class DeterminismSuite : public ::testing::TestWithParam<DistStrategy> {};

TEST_P(DeterminismSuite, PoolSizesProduceBitwiseIdenticalModels) {
  RunConfig cfg;
  cfg.strategy = GetParam();
  cfg.pool_size = 0;
  const auto serial = train(cfg);
  for (const std::size_t pool : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    cfg.pool_size = pool;
    expect_bitwise_equal(train(cfg), serial,
                         std::string(to_string(GetParam())) + " pool=" +
                             std::to_string(pool));
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, DeterminismSuite,
                         ::testing::Values(DistStrategy::kDKfac,
                                           DistStrategy::kMpdKfac,
                                           DistStrategy::kSpdKfac),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(Determinism, HookedMatchesPostHocUnderEveryPoolSize) {
  // The two trigger paths release the same gates; with a fixed profile the
  // executed dataflow (and so the model) must be bitwise identical.
  for (const std::size_t pool : {std::size_t{0}, std::size_t{4}}) {
    RunConfig hooked{.world = 4, .pool_size = pool, .hooked = true};
    RunConfig posthoc{.world = 4, .pool_size = pool, .hooked = false};
    expect_bitwise_equal(train(hooked), train(posthoc),
                         "pool=" + std::to_string(pool));
  }
}

TEST(Determinism, RepeatedPooledRunsAreBitwiseStable) {
  // Same config twice: scheduler nondeterminism (steal order, completion
  // order) must never leak into the parameters.
  RunConfig cfg{.world = 4, .pool_size = 4};
  expect_bitwise_equal(train(cfg), train(cfg), "repeat");
}

TEST(Determinism, AdaptiveReplanningIsBitwiseIdenticalAcrossPoolSizes) {
  // The adaptive loop re-plans mid-run (trajectory epochs at steps 0, 2,
  // 4), changing fusion groups between epochs.  Re-planning, the profile
  // signature, and the plan cache are all pure functions of the injected
  // trajectory — so every executor configuration must still produce the
  // identical bits, exactly like the fixed-profile runs above.
  RunConfig cfg;
  cfg.world = 2;
  cfg.adaptive = true;
  cfg.steps = 6;
  cfg.pool_size = 0;
  const auto serial = train(cfg);
  for (const std::size_t pool : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    cfg.pool_size = pool;
    expect_bitwise_equal(train(cfg), serial,
                         "adaptive pool=" + std::to_string(pool));
  }
}

TEST(Determinism, AdaptiveHookedMatchesPostHocAndRepeats) {
  RunConfig hooked{.world = 4, .pool_size = 4, .hooked = true, .steps = 6,
                   .adaptive = true};
  RunConfig posthoc{.world = 4, .pool_size = 4, .hooked = false, .steps = 6,
                    .adaptive = true};
  const auto first = train(hooked);
  expect_bitwise_equal(first, train(posthoc), "adaptive hooked==post-hoc");
  expect_bitwise_equal(first, train(hooked), "adaptive repeat");
}

// ---------------------------------------------------------------------------
// Cross-backend determinism: moving the ranks out of process — onto shared
// memory rings or a socket mesh — must be invisible to the numerics.  The
// wire carries raw IEEE-754 bits and the collectives apply the identical
// reduction orders, so P=4 training must be bitwise-identical across all
// three transports (and across pool sizes on a real wire).
// ---------------------------------------------------------------------------

class DeterminismBackend
    : public ::testing::TestWithParam<comm::TransportKind> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(GetParam());
  }
};

TEST_P(DeterminismBackend, TrainingMatchesInProcessBitwise) {
  RunConfig cfg{.world = 4, .pool_size = 2};
  const std::vector<double> reference = flatten(train(cfg));
  const auto results = train_over(GetParam(), cfg);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t r = 0; r < results.size(); ++r) {
    // Every rank ends with the same model (synchronous training), and that
    // model is bit-for-bit the in-process one.
    EXPECT_EQ(results[r], reference)
        << testsupport::backend_name(GetParam()) << " rank " << r
        << " diverged from the in-process run";
  }
}

TEST_P(DeterminismBackend, PoolSizesAgreeOverTheWire) {
  // Serial executor vs a 2-worker pool, both on this backend: executor
  // concurrency must stay invisible even when the collectives cross a
  // process boundary mid-step.
  RunConfig cfg{.world = 4, .pool_size = 0};
  const auto serial = train_over(GetParam(), cfg);
  cfg.pool_size = 2;
  const auto pooled = train_over(GetParam(), cfg);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r], pooled[r])
        << testsupport::backend_name(GetParam()) << " rank " << r
        << " pool=2 diverged from serial";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DeterminismBackend,
    ::testing::ValuesIn(testsupport::kAllTransports),
    [](const ::testing::TestParamInfo<comm::TransportKind>& info) {
      return testsupport::backend_name(info.param);
    });

// ---------------------------------------------------------------------------
// Forced-ISA matrix: the microkernel determinism contract says bits are a
// pure function of (inputs, shape, ISA level) — so at *each* pinned level,
// every pool size and every transport must reproduce the identical model.
// ---------------------------------------------------------------------------

std::vector<tensor::kernels::Isa> kernel_levels() {
  std::vector<tensor::kernels::Isa> levels{tensor::kernels::Isa::kScalar};
  if (tensor::kernels::supported(tensor::kernels::Isa::kAvx2)) {
    levels.push_back(tensor::kernels::Isa::kAvx2);
  }
  return levels;
}

/// Restores the process-global active level on scope exit (in-process ranks
/// force it globally; forked ranks only mutate their own copy).
class IsaGuard {
 public:
  IsaGuard() : saved_(tensor::kernels::active()) {}
  ~IsaGuard() { tensor::kernels::force(saved_); }

 private:
  tensor::kernels::Isa saved_;
};

class ForcedIsaBackend
    : public ::testing::TestWithParam<comm::TransportKind> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(GetParam());
  }
};

TEST_P(ForcedIsaBackend, PoolSizesBitwiseIdenticalAtEveryIsaLevel) {
  const IsaGuard guard;
  for (const tensor::kernels::Isa level : kernel_levels()) {
    RunConfig cfg{.world = 2, .pool_size = 0, .isa = level};
    const auto serial = train_over(GetParam(), cfg);
    ASSERT_EQ(serial.size(), 2u);
    for (const std::size_t pool : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
      cfg.pool_size = pool;
      const auto pooled = train_over(GetParam(), cfg);
      ASSERT_EQ(pooled.size(), serial.size());
      for (std::size_t r = 0; r < serial.size(); ++r) {
        EXPECT_EQ(pooled[r], serial[r])
            << testsupport::backend_name(GetParam()) << " isa="
            << tensor::kernels::to_string(level) << " pool=" << pool
            << " rank " << r << " diverged from serial";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ForcedIsaBackend,
    ::testing::ValuesIn(testsupport::kAllTransports),
    [](const ::testing::TestParamInfo<comm::TransportKind>& info) {
      return testsupport::backend_name(info.param);
    });

// ---------------------------------------------------------------------------
// Checkpoint/restore with the buffer arena, per ISA level: restoring mid-run
// rebuilds the optimizer (fresh arena, fresh plan cache) — the continued run
// must still be bitwise the uninterrupted one at the same pinned level.
// ---------------------------------------------------------------------------

std::vector<Matrix> train_checkpointed(tensor::kernels::Isa level,
                                       bool interrupted) {
  constexpr int kWorld = 2, kCut = 2, kTotal = 4;
  const models::ModelSpec spec = models::mlp_spec(kWidths);
  const auto cal = perf::ClusterCalibration::for_topology(
      comm::Topology::flat(kWorld));
  DistKfacOptions opts;
  opts.strategy = DistStrategy::kSpdKfac;
  opts.pool_size = 2;
  opts.lr = 0.1;
  opts.damping = 0.1;
  opts.stat_decay = 0.5;
  opts.grad_fusion_threshold = 64;
  opts.profile = sched::timing_from_model(spec, kBatch, cal.compute,
                                          /*second_order=*/true);

  std::vector<std::string> blobs(kWorld);
  std::vector<Matrix> weights;
  auto run = [&](bool restore_phase) {
    comm::Cluster::launch(kWorld, [&](comm::Communicator& comm) {
      tensor::kernels::force(level);
      Rng init(2024);
      nn::Sequential model = nn::make_mlp(kWidths, init);
      auto layers = model.preconditioned_layers();
      DistKfacOptimizer optimizer(layers, comm, opts);
      nn::SyntheticClassification data(kClasses, kIn, 1, 55);
      Rng shard(300 + comm.rank());
      nn::SoftmaxCrossEntropy loss;
      int first = 0, last = kTotal;
      if (interrupted) {
        if (restore_phase) {
          std::istringstream in(blobs[static_cast<std::size_t>(comm.rank())]);
          optimizer.restore_checkpoint(in);
          for (int s = 0; s < kCut; ++s) data.sample(kBatch, shard);  // replay
          first = kCut;
        } else {
          last = kCut;
        }
      }
      for (int s = first; s < last; ++s) {
        auto batch = data.sample(kBatch, shard);
        Tensor4D flat(batch.inputs.n, kIn, 1, 1);
        flat.data = batch.inputs.data;
        loss.forward(model.forward(flat), batch.labels);
        model.backward(loss.backward());
        optimizer.step();
      }
      if (interrupted && !restore_phase) {
        std::ostringstream out;
        optimizer.save_checkpoint(out);
        blobs[static_cast<std::size_t>(comm.rank())] = out.str();
      } else if (comm.rank() == 0) {
        // The restored optimizer must still run its collectives on the
        // (new) arena slab, not on staging copies.
        for (const auto& rec : optimizer.comm_records()) {
          if (rec.plan_task >= 0) {
            EXPECT_TRUE(optimizer.arena().contains(rec.data)) << rec.name;
          }
        }
        weights.clear();
        for (auto* l : layers) weights.push_back(l->weight());
      }
    });
  };
  if (interrupted) run(/*restore_phase=*/false);
  run(/*restore_phase=*/interrupted);
  return weights;
}

TEST(Determinism, CheckpointResumeBitwiseStableWithArenaAtEveryIsaLevel) {
  const IsaGuard guard;
  for (const tensor::kernels::Isa level : kernel_levels()) {
    const auto uninterrupted = train_checkpointed(level, false);
    const auto resumed = train_checkpointed(level, true);
    expect_bitwise_equal(resumed, uninterrupted,
                         std::string("checkpoint isa=") +
                             tensor::kernels::to_string(level));
  }
}

TEST(Determinism, AdaptiveReplannedPlansAreRankIdentical) {
  // After the last re-plan epoch every rank must hold the byte-identical
  // schedule — the cross-rank contract the profile sync / deterministic
  // trajectory exists to guarantee (a divergent plan would deadlock or
  // corrupt the collectives long before this check, but the serialized
  // comparison pins the property explicitly).
  RunConfig cfg;
  cfg.world = 4;
  cfg.adaptive = true;
  cfg.steps = 6;
  cfg.pool_size = 2;
  std::vector<std::string> plans;
  train(cfg, &plans);
  ASSERT_EQ(plans.size(), 4u);
  for (std::size_t r = 1; r < plans.size(); ++r) {
    EXPECT_EQ(plans[r], plans[0]) << "rank " << r << " plan diverged";
  }
  EXPECT_FALSE(plans[0].empty());
}

}  // namespace
}  // namespace spdkfac::core
