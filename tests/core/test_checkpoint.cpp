// Checkpoint/restore suite: the journal format (CRC guarding, truncation,
// versioning), optimizer round-trips, the bitwise-resume contract — a run
// interrupted by checkpoint/restore must be indistinguishable from the
// uninterrupted run — and the elastic path (restore at a different world
// size re-plans instead of replaying a stale schedule).  Plus the
// integration story the PR exists for: a rank killed mid-step surfaces
// comm::RankFailure on every survivor, the optimizer latches failed(), and
// a checkpoint taken before the death restores into a fresh cluster that
// finishes training with exactly the weights of a run nothing ever killed.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "tensor/linalg.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

// ---------------------------------------------------------------------------
// Journal layer
// ---------------------------------------------------------------------------

TEST(Journal, RoundTripsRecords) {
  std::ostringstream out;
  journal::Writer writer(out);
  journal::Payload p1;
  p1.put_u64(42);
  p1.put_f64(-0.0);
  writer.record(journal::RecordType::kMeta, 0, p1);
  journal::Payload p2;
  p2.put_matrix(Matrix{{1.0, 2.0}, {3.0, 4.0}});
  writer.record(journal::RecordType::kWeights, 7, p2);
  writer.finish();

  std::istringstream in(out.str());
  journal::Reader reader(in);
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, journal::RecordType::kMeta);
  auto v1 = first->view();
  EXPECT_EQ(v1.get_u64(), 42u);
  EXPECT_EQ(std::signbit(v1.get_f64()), true);  // -0.0 survives bitwise
  auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, journal::RecordType::kWeights);
  EXPECT_EQ(second->index, 7);
  auto v2 = second->view();
  const Matrix m = v2.get_matrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // stays exhausted
}

TEST(Journal, CrcMatchesKnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the IEEE 802.3 check value.
  const std::string data = "123456789";
  EXPECT_EQ(journal::crc32(std::span(
                reinterpret_cast<const unsigned char*>(data.data()),
                data.size())),
            0xCBF43926u);
}

std::string valid_journal() {
  std::ostringstream out;
  journal::Writer writer(out);
  journal::Payload p;
  for (int i = 0; i < 32; ++i) p.put_u64(static_cast<std::uint64_t>(i));
  writer.record(journal::RecordType::kMeta, 0, p);
  writer.finish();
  return out.str();
}

TEST(Journal, DetectsEveryFlippedBitViaCrc) {
  const std::string good = valid_journal();
  // Flip one bit in every payload-area byte: each must be caught by the
  // frame CRC (header-area flips may also surface as bad magic/version).
  for (std::size_t byte = 12; byte < good.size(); ++byte) {
    std::string bad = good;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    std::istringstream in(bad);
    EXPECT_THROW(
        {
          journal::Reader reader(in);
          while (reader.next().has_value()) {
          }
        },
        std::runtime_error)
        << "flip at byte " << byte << " went undetected";
  }
}

TEST(Journal, DetectsTruncation) {
  const std::string good = valid_journal();
  // A journal cut anywhere before its end must fail loudly — the
  // kill-during-checkpoint scenario.
  for (std::size_t len : {good.size() - 1, good.size() / 2, std::size_t{9}}) {
    std::istringstream in(good.substr(0, len));
    EXPECT_THROW(
        {
          journal::Reader reader(in);
          while (reader.next().has_value()) {
          }
        },
        std::runtime_error)
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(Journal, RejectsForeignMagicAndVersion) {
  std::istringstream junk("not a checkpoint at all");
  EXPECT_THROW(journal::Reader reader(junk), std::runtime_error);

  std::string bumped = valid_journal();
  bumped[8] = static_cast<char>(journal::kVersion + 1);  // version field
  std::istringstream in(bumped);
  EXPECT_THROW(journal::Reader reader(in), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Training harness (mirrors test_dist_kfac.cpp)
// ---------------------------------------------------------------------------

constexpr std::size_t kIn = 6, kHidden = 10, kClasses = 3;
constexpr std::uint64_t kModelSeed = 4242;
constexpr std::uint64_t kDataSeed = 99;
constexpr std::size_t kBatch = 8;

nn::Sequential make_model() {
  Rng rng(kModelSeed);
  const std::size_t widths[] = {kIn, kHidden, kClasses};
  return nn::make_mlp(widths, rng);
}

/// A fixed planning profile pins the schedule: resumed runs must replay the
/// identical plan for weights to be bitwise comparable (with live profiling
/// the plan is a function of wall-clock noise, which no checkpoint can
/// reproduce — the checkpoint carries the *planning state*, and a fixed
/// profile makes that state the whole story).
sched::PassTiming fixed_profile(std::size_t layers) {
  sched::PassTiming t;
  for (std::size_t l = 0; l < layers; ++l) {
    t.a_ready.push_back(1e-4 * static_cast<double>(l + 1));
    t.g_ready.push_back(1e-3 + 1e-4 * static_cast<double>(l + 1));
    t.grad_ready.push_back(1e-3 + 1.5e-4 * static_cast<double>(l + 1));
  }
  t.backward_end = 2e-3;
  return t;
}

DistKfacOptions make_options(std::size_t layers) {
  DistKfacOptions opts;
  opts.strategy = DistStrategy::kSpdKfac;
  opts.lr = 0.1;
  opts.damping = 0.1;
  opts.stat_decay = 0.5;
  opts.profile = fixed_profile(layers);
  return opts;
}

void run_pass(nn::Sequential& model, const nn::SyntheticClassification& data,
              Rng& rng) {
  auto b = data.sample(kBatch, rng);
  Tensor4D flat(b.inputs.n, kIn, 1, 1);
  flat.data = b.inputs.data;
  nn::SoftmaxCrossEntropy loss;
  loss.forward(model.forward(flat), b.labels);
  model.backward(loss.backward());
}

/// Trains `steps` steps on `world` in-process ranks; optionally saves a
/// per-rank checkpoint after `save_after` steps.  Returns rank 0's final
/// weights (all ranks are asserted bitwise identical elsewhere).
std::vector<Matrix> train(int world, int steps, int save_after = -1,
                          std::vector<std::string>* blobs = nullptr) {
  std::vector<Matrix> final_weights;
  if (blobs != nullptr) blobs->assign(static_cast<std::size_t>(world), {});
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard_rng(1000 + comm.rank());
    for (int s = 0; s < steps; ++s) {
      run_pass(model, data, shard_rng);
      optimizer.step();
      if (blobs != nullptr && s + 1 == save_after) {
        std::ostringstream out;
        optimizer.save_checkpoint(out);
        (*blobs)[static_cast<std::size_t>(comm.rank())] = out.str();
      }
    }
    if (comm.rank() == 0) {
      for (auto* l : layers) final_weights.push_back(l->weight());
    }
  });
  return final_weights;
}

/// Restores each rank from its blob and trains `steps` more steps,
/// replaying the shard RNG past the `done` steps the checkpoint covers.
std::vector<Matrix> resume(int world, const std::vector<std::string>& blobs,
                           int done, int steps) {
  std::vector<Matrix> final_weights;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
    std::istringstream in(blobs[static_cast<std::size_t>(comm.rank())]);
    optimizer.restore_checkpoint(in);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard_rng(1000 + comm.rank());
    for (int s = 0; s < done; ++s) data.sample(kBatch, shard_rng);  // replay
    for (int s = 0; s < steps; ++s) {
      run_pass(model, data, shard_rng);
      optimizer.step();
    }
    if (comm.rank() == 0) {
      for (auto* l : layers) final_weights.push_back(l->weight());
    }
  });
  return final_weights;
}

void expect_bitwise_equal(const std::vector<Matrix>& a,
                          const std::vector<Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    EXPECT_EQ(tensor::max_abs_diff(a[l], b[l]), 0.0) << "layer " << l;
  }
}

// ---------------------------------------------------------------------------
// Optimizer round-trips
// ---------------------------------------------------------------------------

TEST(Checkpoint, ResumedRunIsBitwiseIdenticalToUninterrupted) {
  const auto uninterrupted = train(2, 4);
  std::vector<std::string> blobs;
  train(2, 2, /*save_after=*/2, &blobs);
  ASSERT_FALSE(blobs[0].empty());
  const auto resumed = resume(2, blobs, /*done=*/2, /*steps=*/2);
  expect_bitwise_equal(uninterrupted, resumed);
}

TEST(Checkpoint, RestorePreservesCountersAndProfile) {
  std::vector<std::string> blobs;
  train(2, 3, /*save_after=*/3, &blobs);
  comm::Cluster::launch(2, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
    std::istringstream in(blobs[static_cast<std::size_t>(comm.rank())]);
    optimizer.restore_checkpoint(in);
    EXPECT_EQ(optimizer.steps(), 3u);
    EXPECT_FALSE(optimizer.failed());
    EXPECT_EQ(optimizer.planning_profile().a_ready,
              fixed_profile(layers.size()).a_ready);
    EXPECT_EQ(optimizer.plan_cache().size(), 0u);  // cache never serialized
  });
}

TEST(Checkpoint, CorruptBlobLeavesOptimizerUntouched) {
  std::vector<std::string> blobs;
  train(1, 2, /*save_after=*/2, &blobs);
  std::string bad = blobs[0];
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  comm::Cluster::launch(1, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
    const Matrix before = layers[0]->weight();
    std::istringstream in(bad);
    EXPECT_THROW(optimizer.restore_checkpoint(in), std::runtime_error);
    EXPECT_EQ(tensor::max_abs_diff(layers[0]->weight(), before), 0.0);
    EXPECT_EQ(optimizer.steps(), 0u);
  });
}

TEST(Checkpoint, RejectsMismatchedModelAndStrategy) {
  std::vector<std::string> blobs;
  train(1, 1, /*save_after=*/1, &blobs);
  comm::Cluster::launch(1, [&](comm::Communicator& comm) {
    {
      // Wrong layer shapes.
      Rng rng(kModelSeed);
      const std::size_t widths[] = {kIn, kHidden + 2, kClasses};
      nn::Sequential other = nn::make_mlp(widths, rng);
      auto layers = other.preconditioned_layers();
      DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
      std::istringstream in(blobs[0]);
      EXPECT_THROW(optimizer.restore_checkpoint(in), std::runtime_error);
    }
    {
      // Wrong strategy.
      nn::Sequential model = make_model();
      auto layers = model.preconditioned_layers();
      DistKfacOptions opts = make_options(layers.size());
      opts.strategy = DistStrategy::kDKfac;
      DistKfacOptimizer optimizer(layers, comm, opts);
      std::istringstream in(blobs[0]);
      EXPECT_THROW(optimizer.restore_checkpoint(in), std::runtime_error);
    }
  });
}

// ---------------------------------------------------------------------------
// Elastic restart: restore at a different world size
// ---------------------------------------------------------------------------

TEST(Checkpoint, ElasticRestoreAtSmallerWorldReplansAndRuns) {
  std::vector<std::string> blobs;
  train(4, 2, /*save_after=*/2, &blobs);
  // Any single rank's checkpoint restores any cluster (state is
  // rank-identical); here both survivors restore from rank 0's blob.
  std::vector<std::vector<Matrix>> weights(2);
  comm::Cluster::launch(2, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, make_options(layers.size()));
    std::istringstream in(blobs[0]);
    optimizer.restore_checkpoint(in);
    EXPECT_EQ(optimizer.steps(), 2u);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard_rng(1000 + comm.rank());
    for (int s = 0; s < 2; ++s) data.sample(kBatch, shard_rng);
    run_pass(model, data, shard_rng);
    optimizer.step();
    EXPECT_EQ(optimizer.steps(), 3u);
    std::vector<Matrix> w;
    for (auto* l : layers) w.push_back(l->weight());
    weights[static_cast<std::size_t>(comm.rank())] = std::move(w);
  });
  // The shrunk cluster must still keep its replicas bitwise identical.
  expect_bitwise_equal(weights[0], weights[1]);
}

// ---------------------------------------------------------------------------
// The full story: checkpoint, kill a rank mid-step, restore, finish — and
// end up exactly where an undisturbed run ends up.
// ---------------------------------------------------------------------------

TEST(Checkpoint, KillMidStepThenRestoreMatchesUninterruptedRun) {
  const int world = 2;
  const auto uninterrupted = train(world, 4);
  std::vector<std::string> blobs;
  train(world, 2, /*save_after=*/2, &blobs);

  // A doomed cluster: rank 1's first send dies (SIGKILL semantics; the
  // in-process backend throws FaultInjected on the victim instead).  The
  // survivor's step() must surface a RankFailure and latch failed().
  comm::LaunchOptions fault_opts;
  fault_opts.comm_timeout_s = 0.4;
  fault_opts.collect_timeout_s = 30.0;
  fault_opts.fault.rank = 1;
  fault_opts.fault.action = comm::FaultAction::kKill;
  fault_opts.fault.op = comm::FaultOp::kSend;
  try {
    comm::Cluster::launch_collect(
        comm::TransportKind::kInProcess, comm::Topology::flat(world),
        [&](comm::Communicator& comm) -> std::vector<double> {
          nn::Sequential model = make_model();
          auto layers = model.preconditioned_layers();
          DistKfacOptimizer optimizer(layers, comm,
                                      make_options(layers.size()));
          nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
          Rng shard_rng(1000 + comm.rank());
          run_pass(model, data, shard_rng);
          try {
            optimizer.step();
          } catch (const comm::RankFailure& failure) {
            EXPECT_TRUE(optimizer.failed());
            EXPECT_THROW(optimizer.step(), std::logic_error);
            return {1.0, static_cast<double>(failure.failed_rank())};
          }
          return {0.0};
        },
        fault_opts);
    FAIL() << "the victim's death must surface as LaunchFailure";
  } catch (const comm::LaunchFailure& failure) {
    const auto& survivor = failure.partial_results()[0];
    ASSERT_EQ(survivor.size(), 2u) << "rank 0 did not observe the failure";
    EXPECT_EQ(survivor[0], 1.0);
    EXPECT_EQ(survivor[1], 1.0) << "rank 0 misattributed the dead rank";
  }

  // Recovery: a fresh cluster restores the pre-kill checkpoint and runs the
  // remaining steps — bitwise the same endpoint as the run nothing killed.
  const auto resumed = resume(world, blobs, /*done=*/2, /*steps=*/2);
  expect_bitwise_equal(uninterrupted, resumed);
}

}  // namespace
}  // namespace spdkfac::core
