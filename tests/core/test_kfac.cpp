// Correctness of the single-process K-FAC optimizer: factor construction,
// damping, preconditioning algebra, and actual optimization behaviour on a
// synthetic task.
#include "core/kfac_optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "tensor/linalg.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

TEST(ComputeFactors, MatchHandComputedMoments) {
  Rng rng(1);
  nn::Linear fc("fc", 2, 2, /*bias=*/true, rng);
  Tensor4D x(2, 2, 1, 1);
  x.data = {1.0, 2.0, 3.0, 4.0};
  fc.forward(x);
  Tensor4D dy(2, 2, 1, 1);
  dy.data = {1.0, 0.0, 0.0, 1.0};
  fc.backward(dy);

  // a rows: [1,2,1], [3,4,1];  A = a^T a / 2.
  const Matrix a = compute_factor_a(fc);
  EXPECT_DOUBLE_EQ(a(0, 0), (1.0 + 9.0) / 2);
  EXPECT_DOUBLE_EQ(a(0, 1), (2.0 + 12.0) / 2);
  EXPECT_DOUBLE_EQ(a(2, 2), 1.0);
  EXPECT_TRUE(tensor::is_symmetric(a));

  // g rows: [1,0], [0,1];  G = g^T g / 2 = I/2.
  const Matrix g = compute_factor_g(fc);
  EXPECT_TRUE(tensor::allclose(g, Matrix::identity(2) * 0.5));
}

TEST(ComputeFactors, ThrowWithoutCapturedPass) {
  Rng rng(2);
  nn::Linear fc("fc", 2, 2, true, rng);
  EXPECT_THROW(compute_factor_a(fc), std::logic_error);
  EXPECT_THROW(compute_factor_g(fc), std::logic_error);
}

TEST(RunningAverage, InitializesThenDecays) {
  Matrix state;
  Matrix first{{2.0}};
  update_running_average(state, first, 0.9);
  EXPECT_DOUBLE_EQ(state(0, 0), 2.0);  // first sample taken whole
  Matrix second{{4.0}};
  update_running_average(state, second, 0.9);
  EXPECT_DOUBLE_EQ(state(0, 0), 0.9 * 2.0 + 0.1 * 4.0);
}

TEST(KfacOptimizer, RejectsEmptyLayerList) {
  EXPECT_THROW(KfacOptimizer({}, {}), std::invalid_argument);
}

TEST(KfacOptimizer, StepAppliesPreconditionedUpdate) {
  Rng rng(3);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>("fc", 3, 2, true, rng));
  auto layers = model.preconditioned_layers();

  KfacOptions opts;
  opts.lr = 0.1;
  opts.damping = 0.5;
  opts.stat_decay = 0.0;  // use the fresh factors directly
  KfacOptimizer kfac(layers, opts);

  Tensor4D x(4, 3, 1, 1);
  tensor::fill_normal(x.data, rng);
  nn::SoftmaxCrossEntropy loss;
  std::vector<int> labels{0, 1, 0, 1};
  loss.forward(model.forward(x), labels);
  model.backward(loss.backward());

  const Matrix w_before = layers[0]->weight();
  const Matrix grad = layers[0]->weight_grad();
  const Matrix a = compute_factor_a(*layers[0]);
  const Matrix g = compute_factor_g(*layers[0]);
  kfac.step();

  // Expected: w - lr * (G+gI)^-1 grad (A+gI)^-1.
  const Matrix delta = tensor::matmul(
      tensor::damped_inverse(g, 0.5),
      tensor::matmul(grad, tensor::damped_inverse(a, 0.5)));
  const Matrix expect = w_before - delta * 0.1;
  EXPECT_TRUE(tensor::allclose(layers[0]->weight(), expect, 1e-10, 1e-12));
  EXPECT_EQ(kfac.steps(), 1u);
}

TEST(KfacOptimizer, InverseUpdateFreqSkipsReinversion) {
  Rng rng(5);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>("fc", 3, 3, true, rng));
  auto layers = model.preconditioned_layers();
  KfacOptions opts;
  opts.inverse_update_freq = 2;
  KfacOptimizer kfac(layers, opts);

  nn::SyntheticClassification data(3, 3, 1, 7);
  nn::SoftmaxCrossEntropy loss;
  Rng data_rng(11);

  auto pass = [&] {
    auto batch = data.sample(6, data_rng);
    nn::Tensor4D flat(batch.inputs.n, 3, 1, 1);
    flat.data = batch.inputs.data;
    loss.forward(model.forward(flat), batch.labels);
    model.backward(loss.backward());
  };

  pass();
  kfac.step();
  const Matrix inv_after_1 = kfac.inverse_a(0);
  pass();
  kfac.step();  // step 1: inverses NOT refreshed (freq 2)
  EXPECT_EQ(tensor::max_abs_diff(kfac.inverse_a(0), inv_after_1), 0.0);
  pass();
  kfac.step();  // step 2: refreshed
  EXPECT_GT(tensor::max_abs_diff(kfac.inverse_a(0), inv_after_1), 0.0);
}

TEST(KfacOptimizer, WithHugeDampingApproachesScaledSgd) {
  // As damping -> inf, (F + gI)^-1 -> I/g, so K-FAC's step direction
  // approaches SGD's gradient direction (scaled by 1/g^2 here).
  Rng rng(7);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>("fc", 4, 2, false, rng));
  auto layers = model.preconditioned_layers();
  const double g = 1e6;
  KfacOptions opts;
  opts.lr = 1.0;
  opts.damping = g;
  opts.stat_decay = 0.0;
  KfacOptimizer kfac(layers, opts);

  Tensor4D x(3, 4, 1, 1);
  tensor::fill_normal(x.data, rng);
  nn::SoftmaxCrossEntropy loss;
  std::vector<int> labels{0, 1, 1};
  loss.forward(model.forward(x), labels);
  model.backward(loss.backward());

  const Matrix w_before = layers[0]->weight();
  const Matrix grad = layers[0]->weight_grad();
  kfac.step();
  const Matrix applied = (w_before - layers[0]->weight()) * (g * g);
  EXPECT_TRUE(tensor::allclose(applied, grad, 1e-3, 1e-9));
}

TEST(KfacOptimizer, ReducesLossOnSyntheticTask) {
  Rng rng(9);
  const std::size_t widths[] = {8, 16, 4};
  nn::Sequential model = nn::make_mlp(widths, rng);
  KfacOptions opts;
  opts.lr = 0.2;
  opts.damping = 0.1;
  KfacOptimizer kfac(model.preconditioned_layers(), opts);

  nn::SyntheticClassification data(4, 8, 1, 21, /*noise=*/0.2);
  nn::SoftmaxCrossEntropy loss;
  Rng data_rng(33);

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    auto batch = data.sample(32, data_rng);
    nn::Tensor4D flat(batch.inputs.n, 8, 1, 1);
    flat.data = batch.inputs.data;
    const double l = loss.forward(model.forward(flat), batch.labels);
    model.backward(loss.backward());
    kfac.step();
    if (step == 0) first_loss = l;
    last_loss = l;
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
}

TEST(KfacOptimizer, ConvergesFasterThanSgdPerIteration) {
  // The motivation for second-order training (paper Section I): fewer
  // iterations to a given loss.  Train identical models with SGD and K-FAC
  // on the same stream and compare losses after a fixed budget.
  auto run = [](bool use_kfac) {
    Rng rng(77);
    const std::size_t widths[] = {8, 16, 4};
    nn::Sequential model = nn::make_mlp(widths, rng);
    auto layers = model.preconditioned_layers();
    KfacOptions kopts;
    kopts.lr = 0.2;
    kopts.damping = 0.1;
    KfacOptimizer kfac(layers, kopts);
    SgdOptimizer sgd(layers, /*lr=*/0.2);

    nn::SyntheticClassification data(4, 8, 1, 5, 0.2);
    nn::SoftmaxCrossEntropy loss;
    Rng data_rng(13);
    double total_last5 = 0.0;
    for (int step = 0; step < 25; ++step) {
      auto batch = data.sample(32, data_rng);
      nn::Tensor4D flat(batch.inputs.n, 8, 1, 1);
      flat.data = batch.inputs.data;
      const double l = loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      if (use_kfac) {
        kfac.step();
      } else {
        sgd.step();
      }
      if (step >= 20) total_last5 += l;
    }
    return total_last5 / 5.0;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(KlClip, DisabledReturnsOne) {
  std::vector<Matrix> deltas{Matrix{{1.0, 2.0}}};
  std::vector<Matrix> grads{Matrix{{3.0, 4.0}}};
  EXPECT_DOUBLE_EQ(kl_clip_factor(deltas, grads, 0.1, 0.0), 1.0);
}

TEST(KlClip, ClampsLargeUpdates) {
  // <delta, grad> = 1*3 + 2*4 = 11; lr^2 * 11 = 0.11; with kl_clip = 0.01,
  // nu = sqrt(0.01 / 0.11).
  std::vector<Matrix> deltas{Matrix{{1.0, 2.0}}};
  std::vector<Matrix> grads{Matrix{{3.0, 4.0}}};
  const double nu = kl_clip_factor(deltas, grads, 0.1, 0.01);
  EXPECT_NEAR(nu, std::sqrt(0.01 / 0.11), 1e-12);
  EXPECT_LT(nu, 1.0);
}

TEST(KlClip, SmallUpdatesPassThrough) {
  std::vector<Matrix> deltas{Matrix{{1e-6}}};
  std::vector<Matrix> grads{Matrix{{1e-6}}};
  EXPECT_DOUBLE_EQ(kl_clip_factor(deltas, grads, 0.01, 1.0), 1.0);
}

TEST(KlClip, NegativeTrustMeasureIsHarmless) {
  std::vector<Matrix> deltas{Matrix{{1.0}}};
  std::vector<Matrix> grads{Matrix{{-1.0}}};
  EXPECT_DOUBLE_EQ(kl_clip_factor(deltas, grads, 0.1, 0.5), 1.0);
}

TEST(KlClip, MismatchedSizesThrow) {
  std::vector<Matrix> deltas{Matrix{{1.0}}, Matrix{{2.0}}};
  std::vector<Matrix> grads{Matrix{{1.0}}};
  EXPECT_THROW(kl_clip_factor(deltas, grads, 0.1, 0.5),
               std::invalid_argument);
}

TEST(KfacOptimizer, KlClipScalesAppliedStep) {
  Rng rng(91);
  auto run = [&rng](double kl_clip) {
    Rng local(91);
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>("fc", 3, 2, false, local));
    auto layers = model.preconditioned_layers();
    KfacOptions opts;
    opts.lr = 0.5;
    opts.damping = 0.01;
    opts.stat_decay = 0.0;
    opts.kl_clip = kl_clip;
    KfacOptimizer kfac(layers, opts);
    Tensor4D x(2, 3, 1, 1);
    Rng data_rng(5);
    tensor::fill_normal(x.data, data_rng);
    nn::SoftmaxCrossEntropy loss;
    std::vector<int> labels{0, 1};
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());
    const Matrix before = layers[0]->weight();
    kfac.step();
    return (before - layers[0]->weight()).frobenius_norm();
  };
  const double unclipped = run(0.0);
  const double clipped = run(1e-6);  // tiny trust region
  EXPECT_LT(clipped, unclipped);
  EXPECT_GT(clipped, 0.0);
  (void)rng;
}

TEST(InverseMethodOption, EigenPathMatchesCholeskyPath) {
  auto run = [](InverseMethod method) {
    Rng local(55);
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>("fc", 4, 3, true, local));
    auto layers = model.preconditioned_layers();
    KfacOptions opts;
    opts.inverse_method = method;
    KfacOptimizer kfac(layers, opts);
    Tensor4D x(4, 4, 1, 1);
    Rng data_rng(9);
    tensor::fill_normal(x.data, data_rng);
    nn::SoftmaxCrossEntropy loss;
    std::vector<int> labels{0, 1, 2, 0};
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());
    kfac.step();
    return layers[0]->weight();
  };
  EXPECT_TRUE(tensor::allclose(run(InverseMethod::kEigen),
                               run(InverseMethod::kCholesky), 1e-8, 1e-10));
}

TEST(FactoredDamping, BalancedFactorsGiveSymmetricSplit) {
  // When tr(A)/d_A == tr(G)/d_G, pi = 1 and both factors get sqrt(gamma).
  Matrix a = Matrix::identity(4) * 2.0;
  Matrix g = Matrix::identity(7) * 2.0;
  const auto [ga, gg] = factored_damping(a, g, 0.09);
  EXPECT_NEAR(ga, 0.3, 1e-12);
  EXPECT_NEAR(gg, 0.3, 1e-12);
}

TEST(FactoredDamping, SkewedTracesSkewTheSplit) {
  Matrix a = Matrix::identity(2) * 100.0;  // mean trace 100
  Matrix g = Matrix::identity(2) * 1.0;    // mean trace 1
  const auto [ga, gg] = factored_damping(a, g, 1.0);
  EXPECT_NEAR(ga, 10.0, 1e-9);  // pi = 10
  EXPECT_NEAR(gg, 0.1, 1e-9);
  EXPECT_NEAR(ga * gg, 1.0, 1e-9);  // product preserves gamma
}

TEST(FactoredDamping, DegenerateTraceFallsBack) {
  Matrix a(3, 3);  // zero trace
  Matrix g = Matrix::identity(3);
  const auto [ga, gg] = factored_damping(a, g, 0.5);
  EXPECT_DOUBLE_EQ(ga, 0.5);
  EXPECT_DOUBLE_EQ(gg, 0.5);
}

TEST(PiDamping, ChangesUpdateButStillLearns) {
  auto run = [](bool pi) {
    Rng local(66);
    const std::size_t widths[] = {6, 8, 3};
    nn::Sequential model = nn::make_mlp(widths, local);
    auto layers = model.preconditioned_layers();
    KfacOptions opts;
    opts.pi_damping = pi;
    opts.lr = 0.2;
    opts.damping = 0.1;
    KfacOptimizer kfac(layers, opts);
    nn::SyntheticClassification data(3, 6, 1, 44, 0.2);
    nn::SoftmaxCrossEntropy loss;
    Rng data_rng(3);
    double last = 0;
    for (int s = 0; s < 15; ++s) {
      auto batch = data.sample(16, data_rng);
      nn::Tensor4D flat(batch.inputs.n, 6, 1, 1);
      flat.data = batch.inputs.data;
      last = loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      kfac.step();
    }
    return std::pair<double, tensor::Matrix>{last, layers[0]->weight()};
  };
  const auto [loss_pi, w_pi] = run(true);
  const auto [loss_plain, w_plain] = run(false);
  EXPECT_LT(loss_pi, 1.2);    // still converging
  EXPECT_LT(loss_plain, 1.2);
  EXPECT_GT(tensor::max_abs_diff(w_pi, w_plain), 0.0);  // different paths
}

TEST(DistPiDamping, ConsistentAcrossRanksAndStrategies) {
  // pi-damping derives from aggregated factors, so ranks stay identical and
  // strategies agree.
  auto run = [](DistStrategy strategy) {
    std::vector<tensor::Matrix> weights;
    comm::Cluster::launch(3, [&](comm::Communicator& comm) {
      Rng local(77);
      const std::size_t widths[] = {5, 7, 3};
      nn::Sequential model = nn::make_mlp(widths, local);
      auto layers = model.preconditioned_layers();
      DistKfacOptions opts;
      opts.strategy = strategy;
      opts.pi_damping = true;
      opts.inverse_method = InverseMethod::kEigen;
      DistKfacOptimizer optimizer(layers, comm, opts);
      nn::SyntheticClassification data(3, 5, 1, 12);
      Rng shard(300 + comm.rank());
      nn::SoftmaxCrossEntropy loss;
      for (int s = 0; s < 2; ++s) {
        auto batch = data.sample(8, shard);
        nn::Tensor4D flat(batch.inputs.n, 5, 1, 1);
        flat.data = batch.inputs.data;
        loss.forward(model.forward(flat), batch.labels);
        model.backward(loss.backward());
        optimizer.step();
      }
      if (comm.rank() == 0) {
        for (auto* l : layers) weights.push_back(l->weight());
      }
    });
    return weights;
  };
  const auto dkfac = run(DistStrategy::kDKfac);
  const auto spd = run(DistStrategy::kSpdKfac);
  for (std::size_t l = 0; l < dkfac.size(); ++l) {
    EXPECT_TRUE(tensor::allclose(spd[l], dkfac[l], 1e-9, 1e-11))
        << "layer " << l;
  }
}

TEST(SgdOptimizer, AppliesPlainGradientStep) {
  Rng rng(15);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>("fc", 2, 2, false, rng));
  auto layers = model.preconditioned_layers();
  Tensor4D x(1, 2, 1, 1);
  x.data = {1.0, -1.0};
  nn::SoftmaxCrossEntropy loss;
  std::vector<int> labels{0};
  loss.forward(model.forward(x), labels);
  model.backward(loss.backward());
  const Matrix w = layers[0]->weight();
  const Matrix grad = layers[0]->weight_grad();
  SgdOptimizer sgd(layers, 0.5);
  sgd.step();
  EXPECT_TRUE(tensor::allclose(layers[0]->weight(), w - grad * 0.5));
}

}  // namespace
}  // namespace spdkfac::core
