// Coverage for DistKfacOptions defaults, construction-time validation, and
// to_string(DistStrategy).
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/layers.hpp"
#include "tensor/random.hpp"

namespace spdkfac::core {
namespace {

TEST(DistKfacOptionsTest, DefaultsMatchPaperConfiguration) {
  DistKfacOptions opts;
  EXPECT_DOUBLE_EQ(opts.lr, 0.05);
  EXPECT_DOUBLE_EQ(opts.damping, 3e-2);
  EXPECT_DOUBLE_EQ(opts.stat_decay, 0.95);
  EXPECT_EQ(opts.factor_update_freq, 1u);
  EXPECT_EQ(opts.inverse_update_freq, 1u);
  EXPECT_DOUBLE_EQ(opts.kl_clip, 0.0);
  EXPECT_EQ(opts.inverse_method, InverseMethod::kCholesky);
  EXPECT_FALSE(opts.pi_damping);
  EXPECT_EQ(opts.strategy, DistStrategy::kSpdKfac);
  EXPECT_EQ(opts.balance, sched::BalanceMetric::kEstimatedTime);
  EXPECT_EQ(opts.factor_comm, sched::FactorCommMode::kOptimalFuse);
  EXPECT_EQ(opts.grad_fusion_threshold, sched::kHorovodThresholdElements);
  EXPECT_EQ(opts.pool_size, 2u);
  EXPECT_TRUE(opts.profile.empty());
  EXPECT_EQ(opts.transport, comm::TransportKind::kInProcess);
  EXPECT_EQ(opts.shm_ring_bytes, comm::kDefaultShmRingBytes);
  EXPECT_NO_THROW(opts.validate());
}

TEST(DistKfacOptionsTest, ValidateRejectsBadShmRingBytes) {
  DistKfacOptions opts;
  opts.shm_ring_bytes = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.shm_ring_bytes = 512;  // below the 1 KiB floor
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.shm_ring_bytes = 3000;  // not a power of two
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.shm_ring_bytes = std::size_t{1} << 32;  // above the 2^31 cap
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.shm_ring_bytes = 1024;
  EXPECT_NO_THROW(opts.validate());
  opts.shm_ring_bytes = std::size_t{1} << 20;
  EXPECT_NO_THROW(opts.validate());
}

TEST(TransportKindTest, ToStringRoundTripsAndRejectsUnknown) {
  for (const comm::TransportKind kind :
       {comm::TransportKind::kInProcess, comm::TransportKind::kSharedMemory,
        comm::TransportKind::kSocket}) {
    EXPECT_EQ(comm::transport_from_string(comm::to_string(kind)), kind);
  }
  EXPECT_THROW(comm::transport_from_string("infiniband"),
               std::invalid_argument);
  EXPECT_THROW(comm::transport_from_string(""), std::invalid_argument);
}

TEST(DistKfacOptionsTest, ValidateRejectsZeroUpdateFrequencies) {
  DistKfacOptions opts;
  opts.factor_update_freq = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = DistKfacOptions{};
  opts.inverse_update_freq = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DistKfacOptionsTest, ValidateRejectsNonPositiveLrAndDamping) {
  for (const double bad : {0.0, -0.1}) {
    DistKfacOptions opts;
    opts.lr = bad;
    EXPECT_THROW(opts.validate(), std::invalid_argument) << "lr=" << bad;
    opts = DistKfacOptions{};
    opts.damping = bad;
    EXPECT_THROW(opts.validate(), std::invalid_argument) << "damping=" << bad;
  }
}

TEST(DistKfacOptionsTest, ValidateRejectsWrappedNegativeThreshold) {
  // size_t cannot hold a negative, but `opts.grad_fusion_threshold = -1`
  // compiles and silently wraps to ~2^64 — one giant fusion group.  Values
  // in the wrapped-negative half of the range are rejected.
  DistKfacOptions opts;
  opts.grad_fusion_threshold = static_cast<std::size_t>(-1);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.grad_fusion_threshold = static_cast<std::size_t>(-123456);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.grad_fusion_threshold = 0;  // layer-wise gradients: legitimate
  EXPECT_NO_THROW(opts.validate());
}

TEST(DistKfacOptionsTest, ValidateRejectsWrappedNegativePoolSize) {
  DistKfacOptions opts;
  opts.pool_size = static_cast<std::size_t>(-4);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.pool_size = 0;  // serial executor: legitimate
  EXPECT_NO_THROW(opts.validate());
}

TEST(DistKfacOptionsTest, ValidateRejectsNegativeProfileEntries) {
  const auto with_profile = [](sched::PassTiming timing) {
    DistKfacOptions opts;
    opts.profile = std::move(timing);
    return opts;
  };

  sched::PassTiming good;
  good.a_ready = {0.1, 0.2};
  good.g_ready = {0.3, 0.4};
  good.grad_ready = {0.25, 0.15};
  good.backward_end = 0.5;
  EXPECT_NO_THROW(with_profile(good).validate());

  sched::PassTiming bad = good;
  bad.a_ready[1] = -0.2;
  EXPECT_THROW(with_profile(bad).validate(), std::invalid_argument);

  bad = good;
  bad.g_ready[0] = -1e-9;
  EXPECT_THROW(with_profile(bad).validate(), std::invalid_argument);

  bad = good;
  bad.grad_ready[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(with_profile(bad).validate(), std::invalid_argument);

  bad = good;
  bad.backward_end = -0.5;
  EXPECT_THROW(with_profile(bad).validate(), std::invalid_argument);

  bad = good;
  bad.backward_end = std::numeric_limits<double>::infinity();
  EXPECT_THROW(with_profile(bad).validate(), std::invalid_argument);
}

TEST(DistKfacOptionsTest, ValidateRejectsWrappedNegativeReplanInterval) {
  DistKfacOptions opts;
  opts.replan_interval = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.replan_interval = static_cast<std::size_t>(-1);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.replan_interval = static_cast<std::size_t>(-50);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.replan_interval = 10;  // legitimate steady-state cadence
  EXPECT_NO_THROW(opts.validate());
}

TEST(DistKfacOptionsTest, ValidateRejectsOutOfRangeProfileEma) {
  for (const double bad :
       {0.0, -0.5, 1.0001, 2.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    DistKfacOptions opts;
    opts.profile_ema = bad;
    EXPECT_THROW(opts.validate(), std::invalid_argument)
        << "profile_ema=" << bad;
  }
  for (const double good : {1e-6, 0.5, 1.0}) {
    DistKfacOptions opts;
    opts.profile_ema = good;
    EXPECT_NO_THROW(opts.validate()) << "profile_ema=" << good;
  }
}

TEST(DistKfacOptionsTest, ValidateRejectsWrappedNegativeCacheCapacity) {
  DistKfacOptions opts;
  opts.plan_cache_capacity = static_cast<std::size_t>(-8);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.plan_cache_capacity = 0;  // always-replan: legitimate
  EXPECT_NO_THROW(opts.validate());
}

TEST(DistKfacOptionsTest, ValidateChecksTrajectoryEntriesAndExclusivity) {
  sched::PassTiming good;
  good.a_ready = {0.1, 0.2};
  good.g_ready = {0.3, 0.4};
  good.grad_ready = {0.25, 0.15};
  good.backward_end = 0.5;

  DistKfacOptions opts;
  opts.profile_trajectory = {good, good};
  EXPECT_NO_THROW(opts.validate());

  sched::PassTiming bad = good;
  bad.g_ready[1] = -1.0;
  opts.profile_trajectory = {good, bad};
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  bad = good;
  bad.backward_end = std::numeric_limits<double>::quiet_NaN();
  opts.profile_trajectory = {bad};
  EXPECT_THROW(opts.validate(), std::invalid_argument);

  // A fixed profile and a trajectory cannot both drive planning.
  opts = DistKfacOptions{};
  opts.profile = good;
  opts.profile_trajectory = {good};
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(DistKfacOptionsTest, AdaptiveDefaultsArePaperFaithful) {
  DistKfacOptions opts;
  EXPECT_EQ(opts.replan_interval, 1u);
  EXPECT_DOUBLE_EQ(opts.profile_ema, 0.5);
  EXPECT_TRUE(opts.profile_trajectory.empty());
  EXPECT_EQ(opts.plan_cache_capacity, sched::PlanCache::kDefaultCapacity);
}

TEST(DistKfacOptionsTest, OptimizerConstructionValidatesOptions) {
  comm::Cluster::launch(1, [](comm::Communicator& comm) {
    tensor::Rng rng(1);
    const std::size_t widths[] = {4, 3};
    nn::Sequential model = nn::make_mlp(widths, rng);
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.factor_update_freq = 0;
    EXPECT_THROW(DistKfacOptimizer(layers, comm, opts),
                 std::invalid_argument);
    opts = DistKfacOptions{};
    opts.lr = -1.0;
    EXPECT_THROW(DistKfacOptimizer(layers, comm, opts),
                 std::invalid_argument);
    EXPECT_NO_THROW(DistKfacOptimizer(layers, comm, DistKfacOptions{}));
  });
}

TEST(DistStrategyTest, ToStringNamesEachStrategy) {
  EXPECT_STREQ(to_string(DistStrategy::kDKfac), "D-KFAC");
  EXPECT_STREQ(to_string(DistStrategy::kMpdKfac), "MPD-KFAC");
  EXPECT_STREQ(to_string(DistStrategy::kSpdKfac), "SPD-KFAC");
}

TEST(DistStrategyTest, ToStringRoundTripsUniquely) {
  const DistStrategy all[] = {DistStrategy::kDKfac, DistStrategy::kMpdKfac,
                              DistStrategy::kSpdKfac};
  std::map<std::string, DistStrategy> by_name;
  for (DistStrategy s : all) {
    const char* name = to_string(s);
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    auto [it, inserted] = by_name.emplace(name, s);
    EXPECT_TRUE(inserted) << "duplicate strategy name: " << name;
  }
  // Name -> strategy -> name is the identity: names are a faithful key.
  for (const auto& [name, s] : by_name) {
    EXPECT_EQ(name, to_string(s));
  }
}

}  // namespace
}  // namespace spdkfac::core
