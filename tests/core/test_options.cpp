// Coverage for DistKfacOptions defaults and to_string(DistStrategy).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/dist_kfac.hpp"

namespace spdkfac::core {
namespace {

TEST(DistKfacOptionsTest, DefaultsMatchPaperConfiguration) {
  DistKfacOptions opts;
  EXPECT_DOUBLE_EQ(opts.lr, 0.05);
  EXPECT_DOUBLE_EQ(opts.damping, 3e-2);
  EXPECT_DOUBLE_EQ(opts.stat_decay, 0.95);
  EXPECT_EQ(opts.factor_update_freq, 1u);
  EXPECT_EQ(opts.inverse_update_freq, 1u);
  EXPECT_DOUBLE_EQ(opts.kl_clip, 0.0);
  EXPECT_EQ(opts.inverse_method, InverseMethod::kCholesky);
  EXPECT_FALSE(opts.pi_damping);
  EXPECT_EQ(opts.strategy, DistStrategy::kSpdKfac);
  EXPECT_EQ(opts.balance, BalanceMetric::kEstimatedTime);
}

TEST(DistStrategyTest, ToStringNamesEachStrategy) {
  EXPECT_STREQ(to_string(DistStrategy::kDKfac), "D-KFAC");
  EXPECT_STREQ(to_string(DistStrategy::kMpdKfac), "MPD-KFAC");
  EXPECT_STREQ(to_string(DistStrategy::kSpdKfac), "SPD-KFAC");
}

TEST(DistStrategyTest, ToStringRoundTripsUniquely) {
  const DistStrategy all[] = {DistStrategy::kDKfac, DistStrategy::kMpdKfac,
                              DistStrategy::kSpdKfac};
  std::map<std::string, DistStrategy> by_name;
  for (DistStrategy s : all) {
    const char* name = to_string(s);
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    auto [it, inserted] = by_name.emplace(name, s);
    EXPECT_TRUE(inserted) << "duplicate strategy name: " << name;
  }
  // Name -> strategy -> name is the identity: names are a faithful key.
  for (const auto& [name, s] : by_name) {
    EXPECT_EQ(name, to_string(s));
  }
}

}  // namespace
}  // namespace spdkfac::core
