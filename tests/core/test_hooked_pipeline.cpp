// Hook-mode distributed K-FAC (the SPDKFACOptimizer architecture of
// Fig. 6): factor and gradient communication submitted inline with the
// forward/backward passes must leave the numerics untouched and the
// overlap observable.
#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

constexpr std::size_t kIn = 6, kHidden = 10, kClasses = 3;
constexpr std::uint64_t kModelSeed = 777;
constexpr std::uint64_t kDataSeed = 31;

nn::Sequential make_model() {
  Rng rng(kModelSeed);
  const std::size_t widths[] = {kIn, kHidden, kHidden, kClasses};
  return nn::make_mlp(widths, rng);
}

Tensor4D flatten(const nn::Batch& batch) {
  Tensor4D flat(batch.inputs.n, kIn, 1, 1);
  flat.data = batch.inputs.data;
  return flat;
}

/// Trains with or without hooks; returns rank-0 final weights.
std::vector<Matrix> train(int world, DistStrategy strategy, int steps,
                          bool hooked, std::size_t factor_freq = 1) {
  std::vector<Matrix> weights;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = strategy;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.stat_decay = 0.5;
    opts.factor_update_freq = factor_freq;
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard(900 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < steps; ++s) {
      auto batch = data.sample(8, shard);
      if (hooked) {
        const nn::PassHooks hooks = optimizer.pass_hooks();
        loss.forward(model.forward(flatten(batch), hooks), batch.labels);
        model.backward(loss.backward(), hooks);
      } else {
        loss.forward(model.forward(flatten(batch)), batch.labels);
        model.backward(loss.backward());
      }
      optimizer.step();
    }
    if (comm.rank() == 0) {
      for (auto* l : layers) weights.push_back(l->weight());
    }
  });
  return weights;
}

class HookedStrategy : public ::testing::TestWithParam<DistStrategy> {};

TEST_P(HookedStrategy, HookedMatchesPostHocExactly) {
  // Same collectives in the same order over the same buffers => the hooked
  // path must match the post-hoc path bit-for-bit under the bulk
  // strategies.  SPD-KFAC's fusion plan derives from *measured* factor
  // times, so group boundaries (and hence all-reduce reassociation) can
  // vary between runs: compare within floating-point reassociation noise.
  const auto plain = train(3, GetParam(), 3, /*hooked=*/false);
  const auto hooked = train(3, GetParam(), 3, /*hooked=*/true);
  ASSERT_EQ(plain.size(), hooked.size());
  for (std::size_t l = 0; l < plain.size(); ++l) {
    if (GetParam() == DistStrategy::kSpdKfac) {
      EXPECT_TRUE(tensor::allclose(hooked[l], plain[l], 1e-9, 1e-11))
          << "layer " << l << " diff "
          << tensor::max_abs_diff(plain[l], hooked[l]);
    } else {
      EXPECT_EQ(tensor::max_abs_diff(plain[l], hooked[l]), 0.0)
          << to_string(GetParam()) << " layer " << l;
    }
  }
}

TEST_P(HookedStrategy, HookedKeepsRanksConsistent) {
  const int world = 4;
  std::vector<std::vector<Matrix>> all(world);
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = GetParam();
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard(40 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < 2; ++s) {
      auto batch = data.sample(8, shard);
      const nn::PassHooks hooks = optimizer.pass_hooks();
      loss.forward(model.forward(flatten(batch), hooks), batch.labels);
      model.backward(loss.backward(), hooks);
      optimizer.step();
    }
    for (auto* l : layers) all[comm.rank()].push_back(l->weight());
  });
  for (int r = 1; r < world; ++r) {
    for (std::size_t l = 0; l < all[0].size(); ++l) {
      EXPECT_EQ(tensor::max_abs_diff(all[r][l], all[0][l]), 0.0)
          << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, HookedStrategy,
                         ::testing::Values(DistStrategy::kDKfac,
                                           DistStrategy::kMpdKfac,
                                           DistStrategy::kSpdKfac),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(HookedPipeline, FactorUpdateFreqSkipsFactorWork) {
  // With factor_update_freq = 2 the hooked path must still work on the
  // off-steps (gradients flow, factors reused).
  const auto weights =
      train(2, DistStrategy::kSpdKfac, 4, /*hooked=*/true, /*freq=*/2);
  const auto plain =
      train(2, DistStrategy::kSpdKfac, 4, /*hooked=*/false, /*freq=*/2);
  for (std::size_t l = 0; l < weights.size(); ++l) {
    EXPECT_TRUE(tensor::allclose(weights[l], plain[l], 1e-9, 1e-11));
  }
}

TEST(HookedPipeline, SingleWorkerHooksAreHarmless) {
  const auto hooked = train(1, DistStrategy::kSpdKfac, 3, true);
  const auto plain = train(1, DistStrategy::kSpdKfac, 3, false);
  for (std::size_t l = 0; l < hooked.size(); ++l) {
    EXPECT_EQ(tensor::max_abs_diff(hooked[l], plain[l]), 0.0);
  }
}

TEST(HookedPipeline, ForgettingBackwardHooksIsDetected) {
  comm::Cluster::launch(2, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kDKfac;  // bulk comm: no pipelined waits
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard(60 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    auto batch = data.sample(4, shard);
    const nn::PassHooks hooks = optimizer.pass_hooks();
    loss.forward(model.forward(flatten(batch), hooks), batch.labels);
    model.backward(loss.backward());  // hooks forgotten here
    EXPECT_THROW(optimizer.step(), std::logic_error);
    // The abandoned dataflow poisons the optimizer: further steps refuse
    // with a clear error (peers' collective state diverged) instead of
    // wedging; reconstruction is the only recovery.
    EXPECT_THROW(optimizer.step(), std::logic_error);
  });
}

TEST(HookedPipeline, SubmitsCommDuringBackwardPass) {
  // Observability of the overlap: under SPD-KFAC at least one A-group
  // all-reduce must have *completed* before the backward pass ends — i.e.
  // communication really ran concurrently with computation.
  comm::Cluster::launch(2, [](comm::Communicator& comm) {
    nn::Sequential model = make_model();
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = DistStrategy::kSpdKfac;
    DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(kClasses, kIn, 1, kDataSeed);
    Rng shard(50 + comm.rank());
    nn::SoftmaxCrossEntropy loss;

    auto batch = data.sample(8, shard);
    const nn::PassHooks hooks = optimizer.pass_hooks();
    loss.forward(model.forward(flatten(batch), hooks), batch.labels);
    // A-pass groups were submitted during forward (layer-wise on step 0);
    // by the time backward ends they should be complete without any wait()
    // from our side.
    model.backward(loss.backward(), hooks);
    EXPECT_GT(optimizer.last_a_groups().size(), 0u);
    optimizer.step();
    EXPECT_EQ(optimizer.steps(), 1u);
  });
}

}  // namespace
}  // namespace spdkfac::core
