// BufferArena unit tests plus the zero-copy contract of the optimizer's
// communication path: every plan collective's OpRecord::data must point
// into the rank's arena slab (the engine operated in place, no staging
// copy), the slab must stop reallocating once the plan is steady, and the
// carve layout must hand out 64-byte-aligned spans.
#include "core/buffer_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac::core {
namespace {

bool aligned64(const double* p) {
  return reinterpret_cast<std::uintptr_t>(p) % BufferArena::kAlignBytes == 0;
}

TEST(BufferArena, AlignedRoundsUpToQuantum) {
  EXPECT_EQ(BufferArena::aligned(0), 0u);
  EXPECT_EQ(BufferArena::aligned(1), 8u);
  EXPECT_EQ(BufferArena::aligned(8), 8u);
  EXPECT_EQ(BufferArena::aligned(9), 16u);
  EXPECT_EQ(BufferArena::aligned(64), 64u);
}

TEST(BufferArena, EveryCarveIs64ByteAligned) {
  BufferArena arena;
  arena.reset(BufferArena::aligned(3) + BufferArena::aligned(17) +
              BufferArena::aligned(8));
  for (std::size_t n : {std::size_t{3}, std::size_t{17}, std::size_t{8}}) {
    auto span = arena.carve(n);
    EXPECT_EQ(span.size(), n);
    EXPECT_TRUE(aligned64(span.data()));
  }
}

TEST(BufferArena, GrowOnlyAndAddressStableWhenCapacitySuffices) {
  BufferArena arena;
  arena.reset(64);
  const double* base = arena.carve(64).data();
  EXPECT_EQ(arena.rebuilds(), 1u);

  // Smaller or equal layouts reuse the slab: same base address, no rebuild.
  arena.reset(32);
  EXPECT_EQ(arena.carve(32).data(), base);
  EXPECT_EQ(arena.rebuilds(), 1u);
  arena.reset(64);
  EXPECT_EQ(arena.carve(16).data(), base);
  EXPECT_EQ(arena.rebuilds(), 1u);

  // Growing reallocates (exactly once).
  arena.reset(1024);
  EXPECT_EQ(arena.rebuilds(), 2u);
  EXPECT_GE(arena.capacity_doubles(), 1024u);
}

TEST(BufferArena, CarvePastCapacityThrows) {
  BufferArena arena;
  arena.reset(16);
  arena.carve(16);
  EXPECT_THROW(arena.carve(1), std::logic_error);
}

TEST(BufferArena, ContainsTracksSlab) {
  BufferArena arena;
  EXPECT_FALSE(arena.contains(nullptr));
  arena.reset(32);
  auto span = arena.carve(32);
  EXPECT_TRUE(arena.contains(span.data()));
  EXPECT_TRUE(arena.contains(span.data() + span.size() - 1));
  double outside = 0.0;
  EXPECT_FALSE(arena.contains(&outside));
}

// ---------------------------------------------------------------------------
// Zero-copy contract on a live optimizer.

constexpr std::size_t kIn = 6, kHidden = 10, kClasses = 3;

void run_pass(nn::Sequential& model, const nn::SyntheticClassification& data,
              tensor::Rng& rng) {
  auto b = data.sample(8, rng);
  nn::Tensor4D flat(b.inputs.n, kIn, 1, 1);
  flat.data = b.inputs.data;
  nn::SoftmaxCrossEntropy loss;
  loss.forward(model.forward(flat), b.labels);
  model.backward(loss.backward());
}

struct ArenaObservation {
  std::vector<comm::OpRecord> records;
  std::size_t rebuilds = 0;
  std::size_t capacity = 0;
  std::size_t bytes_saved = 0;
  bool all_plan_records_in_arena = true;
};

ArenaObservation observe_rank0(DistStrategy strategy, int world, int steps) {
  ArenaObservation obs;
  comm::Cluster::launch(world, [&](comm::Communicator& comm) {
    tensor::Rng rng(4242);
    const std::size_t widths[] = {kIn, kHidden, kClasses};
    nn::Sequential model = nn::make_mlp(widths, rng);
    auto layers = model.preconditioned_layers();
    DistKfacOptions opts;
    opts.strategy = strategy;
    opts.lr = 0.1;
    opts.damping = 0.1;
    opts.stat_decay = 0.5;
    DistKfacOptimizer optimizer(layers, comm, opts);

    nn::SyntheticClassification data(kClasses, kIn, 1, 99);
    tensor::Rng shard_rng(1000 + comm.rank());
    for (int s = 0; s < steps; ++s) {
      run_pass(model, data, shard_rng);
      optimizer.step();
    }
    if (comm.rank() == 0) {
      obs.records = optimizer.comm_records();
      obs.rebuilds = optimizer.arena().rebuilds();
      obs.capacity = optimizer.arena().capacity_doubles();
      obs.bytes_saved = optimizer.arena_bytes_saved_per_step();
      for (const auto& rec : obs.records) {
        if (rec.plan_task >= 0 &&
            !optimizer.arena().contains(rec.data)) {
          obs.all_plan_records_in_arena = false;
        }
      }
    }
  });
  return obs;
}

TEST(ArenaZeroCopy, PlanCollectivesSubmitArenaSpans) {
  const auto obs = observe_rank0(DistStrategy::kSpdKfac, 2, 3);
  // A 2-layer MLP on 2 workers must communicate: factors, grads, inverses.
  std::size_t plan_records = 0;
  for (const auto& rec : obs.records) {
    if (rec.plan_task >= 0) {
      ++plan_records;
      EXPECT_NE(rec.data, nullptr) << rec.name;
    }
  }
  EXPECT_GT(plan_records, 0u);
  EXPECT_TRUE(obs.all_plan_records_in_arena)
      << "some plan collective ran on a non-arena staging buffer";
}

TEST(ArenaZeroCopy, SlabStopsGrowingOnSteadyPlan) {
  const auto obs = observe_rank0(DistStrategy::kSpdKfac, 2, 4);
  EXPECT_GT(obs.capacity, 0u);
  // The packing layout is a pure function of the plan; re-planning epochs
  // may grow it a handful of times early, but 4 steps of a toy model must
  // not rebuild the slab once per step.
  EXPECT_LE(obs.rebuilds, 3u);
}

TEST(ArenaZeroCopy, ReportsBytesSavedWhenCommunicating) {
  const auto obs = observe_rank0(DistStrategy::kSpdKfac, 2, 2);
  EXPECT_GT(obs.bytes_saved, 0u);
}

TEST(ArenaZeroCopy, OtherStrategiesAlsoRunOnArena) {
  for (DistStrategy s : {DistStrategy::kDKfac, DistStrategy::kMpdKfac}) {
    const auto obs = observe_rank0(s, 2, 2);
    EXPECT_TRUE(obs.all_plan_records_in_arena) << static_cast<int>(s);
  }
}

TEST(ArenaZeroCopy, SingleWorkerStillSteps) {
  // P=1 plans communicate little or nothing; the arena path must degrade
  // cleanly and any plan-tagged traffic must still run on the slab.
  const auto obs = observe_rank0(DistStrategy::kSpdKfac, 1, 2);
  EXPECT_TRUE(obs.all_plan_records_in_arena);
}

}  // namespace
}  // namespace spdkfac::core
