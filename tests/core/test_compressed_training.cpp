// End-to-end training under compressed collectives — the regression suite
// for the top-k error-feedback gradient path and its persistence:
//
//   * convergence: a small MLP trained with grad_codec=kTopK (+ error
//     feedback) and factor_codec=kInt8 must reach a final loss within a
//     fixed tolerance of the lossless run — the EF residuals recover the
//     sparsification loss across steps;
//   * determinism: compressed training is bitwise identical across pool
//     sizes and across all three transport backends (the codec kernels and
//     the rank-ordered compressed reduction leave no ordering freedom);
//   * persistence: checkpoint/restore mid-run — with the per-layer EF
//     residuals riding the journal as kGradResidual records — resumes
//     bitwise identically to the uninterrupted run, and pre-compression
//     journals (no residual records) still restore into a compressed
//     optimizer (zeroed residuals).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/codec.hpp"
#include "core/dist_kfac.hpp"
#include "models/model_spec.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/planner.hpp"
#include "tensor/matrix.hpp"
#include "testsupport/backends.hpp"

namespace spdkfac::core {
namespace {

using nn::Tensor4D;
using tensor::Matrix;
using tensor::Rng;

constexpr std::size_t kWidths[] = {6, 12, 10, 3};
constexpr std::size_t kIn = 6, kClasses = 3, kBatch = 8;

struct RunConfig {
  int world = 2;
  std::size_t pool_size = 0;
  int steps = 4;
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  double topk_ratio = 0.2;
};

DistKfacOptions options_for(const RunConfig& cfg,
                            const models::ModelSpec& spec,
                            const perf::ClusterCalibration& cal) {
  DistKfacOptions opts;
  opts.strategy = DistStrategy::kSpdKfac;
  opts.pool_size = cfg.pool_size;
  opts.lr = 0.1;
  opts.damping = 0.1;
  opts.stat_decay = 0.5;
  opts.grad_fusion_threshold = 64;  // several WFBP groups
  opts.factor_codec = cfg.factor_codec;
  opts.grad_codec = cfg.grad_codec;
  opts.topk_ratio = cfg.topk_ratio;
  // Fixed profile: schedules must not depend on wall-clock measurements.
  opts.profile = sched::timing_from_model(spec, kBatch, cal.compute,
                                          /*second_order=*/true);
  return opts;
}

/// The per-rank training body: `cfg.steps` steps, returning final weights
/// and, when `loss_out` is given, the last step's training loss.
std::vector<Matrix> train_rank(const RunConfig& cfg, comm::Communicator& comm,
                               double* loss_out = nullptr) {
  const models::ModelSpec spec = models::mlp_spec(kWidths);
  const auto cal =
      perf::ClusterCalibration::for_topology(comm::Topology::flat(cfg.world));
  Rng init(2024);
  nn::Sequential model = nn::make_mlp(kWidths, init);
  auto layers = model.preconditioned_layers();
  DistKfacOptimizer optimizer(layers, comm, options_for(cfg, spec, cal));

  nn::SyntheticClassification data(kClasses, kIn, 1, 55);
  Rng shard(300 + comm.rank());
  nn::SoftmaxCrossEntropy loss;
  double last_loss = 0.0;
  for (int s = 0; s < cfg.steps; ++s) {
    auto batch = data.sample(kBatch, shard);
    Tensor4D flat(batch.inputs.n, kIn, 1, 1);
    flat.data = batch.inputs.data;
    last_loss = loss.forward(model.forward(flat), batch.labels);
    model.backward(loss.backward());
    optimizer.step();
  }
  if (loss_out != nullptr) *loss_out = last_loss;
  std::vector<Matrix> weights;
  for (auto* l : layers) weights.push_back(l->weight());
  return weights;
}

std::vector<Matrix> train(const RunConfig& cfg, double* loss_out = nullptr) {
  std::vector<Matrix> weights;
  comm::Cluster::launch(cfg.world, [&](comm::Communicator& comm) {
    double rank_loss = 0.0;
    auto rank_weights = train_rank(cfg, comm, &rank_loss);
    if (comm.rank() == 0) {
      weights = std::move(rank_weights);
      if (loss_out != nullptr) *loss_out = rank_loss;
    }
  });
  return weights;
}

std::vector<std::vector<double>> train_over(comm::TransportKind kind,
                                            const RunConfig& cfg) {
  return comm::Cluster::launch_collect(
      kind, comm::Topology::flat(cfg.world), [&](comm::Communicator& comm) {
        std::vector<double> flat;
        for (const Matrix& w : train_rank(cfg, comm)) {
          flat.insert(flat.end(), w.data().begin(), w.data().end());
        }
        return flat;
      });
}

void expect_bitwise_equal(const std::vector<Matrix>& a,
                          const std::vector<Matrix>& b,
                          const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t l = 0; l < a.size(); ++l) {
    EXPECT_EQ(tensor::max_abs_diff(a[l], b[l]), 0.0)
        << context << " layer " << l;
  }
}

RunConfig compressed_config() {
  RunConfig cfg;
  cfg.factor_codec = comm::Codec::kInt8;
  cfg.grad_codec = comm::Codec::kTopK;
  cfg.topk_ratio = 0.2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Convergence: error feedback recovers the sparsification loss.
// ---------------------------------------------------------------------------

TEST(CompressedTraining, TopKWithErrorFeedbackTracksLosslessLoss) {
  RunConfig lossless;
  lossless.steps = 10;
  double loss_none = 0.0, loss_first = 0.0;
  train(lossless, &loss_none);
  RunConfig first = lossless;
  first.steps = 1;
  train(first, &loss_first);
  ASSERT_LT(loss_none, loss_first);  // the lossless baseline itself learns

  RunConfig compressed = compressed_config();
  compressed.steps = 10;
  double loss_topk = 0.0;
  train(compressed, &loss_topk);

  // Converges (well below the step-1 loss) and lands within a fixed band
  // of the lossless optimum — EF keeps the sparsifier honest: without the
  // residual feedback, 80% of every small layer's gradient would simply
  // vanish each step.
  EXPECT_LT(loss_topk, 0.5 * loss_first + 0.5 * loss_none)
      << "top-k+EF did not converge (lossless " << loss_none << ", step-1 "
      << loss_first << ", topk " << loss_topk << ")";
  EXPECT_NEAR(loss_topk, loss_none, 0.25)
      << "top-k+EF final loss drifted from the lossless run";
}

// ---------------------------------------------------------------------------
// Determinism: pool sizes, repeats, transports.
// ---------------------------------------------------------------------------

TEST(CompressedTraining, PoolSizesProduceBitwiseIdenticalModels) {
  RunConfig cfg = compressed_config();
  cfg.pool_size = 0;
  const auto serial = train(cfg);
  for (const std::size_t pool : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    cfg.pool_size = pool;
    expect_bitwise_equal(train(cfg), serial,
                         "compressed pool=" + std::to_string(pool));
  }
}

TEST(CompressedTraining, RepeatedRunsAreBitwiseStable) {
  RunConfig cfg = compressed_config();
  cfg.world = 4;
  cfg.pool_size = 4;
  expect_bitwise_equal(train(cfg), train(cfg), "compressed repeat");
}

class CompressedBackend
    : public ::testing::TestWithParam<comm::TransportKind> {
 protected:
  void SetUp() override {
    SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(GetParam());
  }
};

TEST_P(CompressedBackend, TrainingMatchesInProcessBitwise) {
  RunConfig cfg = compressed_config();
  cfg.world = 4;
  cfg.pool_size = 2;
  const auto reference = train(cfg);
  std::vector<double> flat;
  for (const Matrix& w : reference) {
    flat.insert(flat.end(), w.data().begin(), w.data().end());
  }
  const auto results = train_over(GetParam(), cfg);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_EQ(results[r], flat)
        << testsupport::backend_name(GetParam()) << " rank " << r
        << " diverged from the in-process compressed run";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CompressedBackend,
    ::testing::ValuesIn(testsupport::kAllTransports),
    [](const ::testing::TestParamInfo<comm::TransportKind>& info) {
      return testsupport::backend_name(info.param);
    });

// ---------------------------------------------------------------------------
// Persistence: EF residuals ride the checkpoint journal.
// ---------------------------------------------------------------------------

/// Phase 1 trains `cut` steps and saves; phase 2 restores into a fresh
/// optimizer, replays the data stream, and finishes.  The residuals at the
/// cut are nonzero (top-k shipped only 20% of each gradient), so a resume
/// that dropped them would visibly diverge from the straight-through run.
std::vector<Matrix> train_resumed(const RunConfig& base) {
  constexpr int kCut = 2;
  std::vector<std::string> blobs(static_cast<std::size_t>(base.world));
  comm::Cluster::launch(base.world, [&](comm::Communicator& comm) {
    RunConfig cfg = base;
    cfg.steps = kCut;
    const models::ModelSpec spec = models::mlp_spec(kWidths);
    const auto cal = perf::ClusterCalibration::for_topology(
        comm::Topology::flat(cfg.world));
    Rng init(2024);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, options_for(cfg, spec, cal));
    nn::SyntheticClassification data(kClasses, kIn, 1, 55);
    Rng shard(300 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < kCut; ++s) {
      auto batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
    }
    std::ostringstream out;
    optimizer.save_checkpoint(out);
    blobs[static_cast<std::size_t>(comm.rank())] = out.str();
  });

  std::vector<Matrix> weights;
  comm::Cluster::launch(base.world, [&](comm::Communicator& comm) {
    const models::ModelSpec spec = models::mlp_spec(kWidths);
    const auto cal = perf::ClusterCalibration::for_topology(
        comm::Topology::flat(base.world));
    Rng init(2024);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm, options_for(base, spec, cal));
    std::istringstream in(blobs[static_cast<std::size_t>(comm.rank())]);
    optimizer.restore_checkpoint(in);
    nn::SyntheticClassification data(kClasses, kIn, 1, 55);
    Rng shard(300 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < kCut; ++s) data.sample(kBatch, shard);  // replay
    for (int s = kCut; s < base.steps; ++s) {
      auto batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
    }
    if (comm.rank() == 0) {
      for (auto* l : layers) weights.push_back(l->weight());
    }
  });
  return weights;
}

TEST(CompressedTraining, CheckpointResumeIsBitwiseStraightThrough) {
  RunConfig cfg = compressed_config();
  cfg.steps = 4;
  cfg.pool_size = 2;
  const auto straight = train(cfg);
  const auto resumed = train_resumed(cfg);
  expect_bitwise_equal(resumed, straight, "compressed checkpoint resume");
}

TEST(CompressedTraining, LosslessJournalRestoresIntoCompressedOptimizer) {
  // Backward compatibility: a journal written without residual records
  // (lossless run, or any pre-compression checkpoint) restores into a
  // top-k optimizer — residuals simply start from zero.
  comm::Cluster::launch(2, [&](comm::Communicator& comm) {
    const models::ModelSpec spec = models::mlp_spec(kWidths);
    const auto cal =
        perf::ClusterCalibration::for_topology(comm::Topology::flat(2));
    RunConfig lossless;
    std::string blob;
    {
      Rng init(2024);
      nn::Sequential model = nn::make_mlp(kWidths, init);
      auto layers = model.preconditioned_layers();
      DistKfacOptimizer optimizer(layers, comm,
                                  options_for(lossless, spec, cal));
      nn::SyntheticClassification data(kClasses, kIn, 1, 55);
      Rng shard(300 + comm.rank());
      nn::SoftmaxCrossEntropy loss;
      auto batch = data.sample(kBatch, shard);
      Tensor4D flat(batch.inputs.n, kIn, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
      std::ostringstream out;
      optimizer.save_checkpoint(out);
      blob = out.str();
    }
    RunConfig compressed = compressed_config();
    Rng init(2024);
    nn::Sequential model = nn::make_mlp(kWidths, init);
    auto layers = model.preconditioned_layers();
    DistKfacOptimizer optimizer(layers, comm,
                                options_for(compressed, spec, cal));
    std::istringstream in(blob);
    EXPECT_NO_THROW(optimizer.restore_checkpoint(in));
  });
}

}  // namespace
}  // namespace spdkfac::core
