// Work-stealing pool and ambient-context coverage: submission/stealing,
// the parallel_for chunking contract (bitwise determinism across pool
// sizes, nesting, caller participation), and Context resolution.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exec/context.hpp"

namespace spdkfac::exec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerlessPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // inline: done before submit returns
}

TEST(ThreadPool, TasksSubmittedFromWorkersAreStolen) {
  // One task fans out many more from inside the pool; all must complete
  // even though they land on the submitting worker's own deque first.
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    pool.submit([&] {
      for (int i = 0; i < 64; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForChunkBoundariesIgnoreWorkerCount) {
  // The determinism contract: identical chunk boundaries for every pool
  // size, so disjoint-output bodies give bitwise-identical results.
  auto boundaries = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(103, 10, [&](std::size_t b, std::size_t e) {
      std::lock_guard lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = boundaries(0);
  EXPECT_EQ(boundaries(1), serial);
  EXPECT_EQ(boundaries(4), serial);
  ASSERT_EQ(serial.size(), 11u);  // ceil(103 / 10)
  EXPECT_EQ(serial.back().second, 103u);
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  // A pool task issuing its own parallel_for must not deadlock even when
  // every worker is busy: the caller claims chunks itself.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(100, 9, [&](std::size_t b2, std::size_t e2) {
        total.fetch_add(static_cast<long>(e2 - b2));
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Context, ResolvesOverrideThenWorkerThenSerial) {
  EXPECT_EQ(Context::current_pool(), nullptr);  // plain thread: serial
  ThreadPool pool(2);
  {
    Context ctx(&pool);
    EXPECT_EQ(Context::current_pool(), &pool);
    {
      Context serial(nullptr);  // forcing serial wins over the outer scope
      EXPECT_EQ(Context::current_pool(), nullptr);
    }
    EXPECT_EQ(Context::current_pool(), &pool);
  }
  EXPECT_EQ(Context::current_pool(), nullptr);

  // Worker threads ambiently belong to their pool, so kernels running as
  // pool tasks parallelize on it without any guard.
  std::atomic<ThreadPool*> seen{nullptr};
  pool.submit([&seen] { seen.store(Context::current_pool()); });
  while (seen.load() == nullptr) std::this_thread::yield();
  EXPECT_EQ(seen.load(), &pool);
}

TEST(Context, FreeParallelForRunsSeriallyWithoutPool) {
  std::vector<int> order;
  parallel_for(5, 2, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Context, ParallelKernelsBitwiseMatchSerial) {
  // The property the tensor layer builds on: a chunked sum of expensive
  // floating-point work, written to disjoint slots, is bitwise identical
  // under any pool.
  const std::size_t n = 10'000;
  auto run = [&](ThreadPool* pool) {
    std::vector<double> out(n);
    Context ctx(pool);
    parallel_for(n, 64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
      }
    });
    return out;
  };
  ThreadPool four(4);
  const auto serial = run(nullptr);
  const auto pooled = run(&four);
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace spdkfac::exec
