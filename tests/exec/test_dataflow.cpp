// DataflowExecutor coverage: dependency release, external gates, the
// ordered submission lane under adversarial completion order, inline
// (pool-less) execution, graph reuse and validation.
#include "exec/dataflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace spdkfac::exec {
namespace {

using Node = DataflowExecutor::Node;
using NodeKind = DataflowExecutor::NodeKind;

/// Thread-safe trace of execution events.
struct Trace {
  std::mutex mu;
  std::vector<std::string> events;
  void add(std::string e) {
    std::lock_guard lock(mu);
    events.push_back(std::move(e));
  }
  std::vector<std::string> get() {
    std::lock_guard lock(mu);
    return events;
  }
};

Node compute(Trace& trace, const std::string& name, std::vector<int> deps,
             int external = 0) {
  Node n;
  n.kind = NodeKind::kCompute;
  n.deps = std::move(deps);
  n.external_deps = external;
  n.work = [&trace, name] { trace.add(name); };
  return n;
}

Node submission(Trace& trace, const std::string& name, std::vector<int> deps,
                int external = 0) {
  Node n;
  n.kind = NodeKind::kSubmission;
  n.deps = std::move(deps);
  n.external_deps = external;
  n.work = [&trace, name] { trace.add(name); };
  return n;
}

TEST(Dataflow, RespectsDependenciesInlineAndPooled) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    ThreadPool pool(3);
    ThreadPool* p = workers == 0 ? nullptr : &pool;
    Trace trace;
    std::vector<Node> nodes;
    nodes.push_back(compute(trace, "a", {}));
    nodes.push_back(compute(trace, "b", {0}));
    nodes.push_back(compute(trace, "c", {0, 1}));
    DataflowExecutor ex;
    ex.begin(std::move(nodes), {}, p);
    ex.wait();
    EXPECT_TRUE(ex.idle());
    EXPECT_EQ(trace.get(), (std::vector<std::string>{"a", "b", "c"}));
  }
}

TEST(Dataflow, ExternalGatesHoldBackReadyNodes) {
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "gated", {}, /*external=*/2));
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {}, nullptr);
  EXPECT_FALSE(ex.idle());
  EXPECT_TRUE(trace.get().empty());
  ex.satisfy(0);
  EXPECT_TRUE(trace.get().empty());  // one of two gates released
  ex.satisfy(0);
  ex.wait();
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"gated"}));
}

TEST(Dataflow, LaneFiresInOrderRegardlessOfReadiness) {
  // Submission s1 becomes dep-ready *before* s0; the lane must still fire
  // s0 first.  Retirement flows through complete(), out of order.
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(submission(trace, "s0", {}, /*external=*/1));  // 0
  nodes.push_back(submission(trace, "s1", {}));                  // 1
  nodes.push_back(compute(trace, "after", {0, 1}));              // 2
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {0, 1}, nullptr);
  EXPECT_TRUE(trace.get().empty());  // s1 ready but behind s0 in the lane
  ex.satisfy(0);
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"s0", "s1"}));
  ex.complete(1);  // async ops may finish out of submission order
  ex.complete(0);
  ex.wait();
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"s0", "s1", "after"}));
}

TEST(Dataflow, MixedGraphDrivesComputeBetweenSubmissions) {
  // compute -> submission -> (completion) -> compute chain, pooled.
  ThreadPool pool(2);
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "pack", {}));           // 0
  nodes.push_back(submission(trace, "allreduce", {0}));  // 1
  nodes.push_back(compute(trace, "unpack", {1}));        // 2
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {1}, &pool);
  // Emulate the engine: wait until the submission fired, then complete it.
  while (trace.get().size() < 2) {}
  ex.complete(1);
  ex.wait();
  EXPECT_EQ(trace.get(),
            (std::vector<std::string>{"pack", "allreduce", "unpack"}));
}

TEST(Dataflow, GraphsAreReusableAfterDrain) {
  Trace trace;
  DataflowExecutor ex;
  for (int round = 0; round < 3; ++round) {
    // Two steps: `"r" + std::to_string(...)` trips GCC 12's bogus
    // -Wrestrict (GCC PR 105329).
    std::string name = "r";
    name += std::to_string(round);
    std::vector<Node> nodes;
    nodes.push_back(compute(trace, name, {}));
    ex.begin(std::move(nodes), {}, nullptr);
    ex.wait();
  }
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"r0", "r1", "r2"}));
}

TEST(Dataflow, BeginValidatesGraph) {
  Trace trace;
  DataflowExecutor ex;

  std::vector<Node> dangling;
  dangling.push_back(compute(trace, "x", {5}));
  EXPECT_THROW(ex.begin(std::move(dangling), {}, nullptr),
               std::invalid_argument);

  std::vector<Node> missing_lane;
  missing_lane.push_back(submission(trace, "s", {}, 1));
  EXPECT_THROW(ex.begin(std::move(missing_lane), {}, nullptr),
               std::invalid_argument);

  std::vector<Node> not_submission;
  not_submission.push_back(compute(trace, "c", {}, 1));
  EXPECT_THROW(ex.begin(std::move(not_submission), {0}, nullptr),
               std::invalid_argument);
}

TEST(Dataflow, BeginRefusesWhileInFlight) {
  Trace trace;
  DataflowExecutor ex;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "held", {}, /*external=*/1));
  ex.begin(std::move(nodes), {}, nullptr);
  std::vector<Node> next;
  next.push_back(compute(trace, "next", {}));
  EXPECT_THROW(ex.begin(std::move(next), {}, nullptr), std::logic_error);
  ex.satisfy(0);
  ex.wait();
}

TEST(Dataflow, WideFanOutRetiresEverything) {
  // 1 root -> 64 children -> 1 join, on a small pool; exercises concurrent
  // retire paths.
  ThreadPool pool(3);
  Trace trace;
  std::atomic<int> children{0};
  std::vector<Node> nodes(66);
  nodes[0] = compute(trace, "root", {});
  std::vector<int> all_children;
  for (int i = 1; i <= 64; ++i) {
    nodes[i].kind = NodeKind::kCompute;
    nodes[i].deps = {0};
    nodes[i].work = [&children] { children.fetch_add(1); };
    all_children.push_back(i);
  }
  nodes[65] = compute(trace, "join", all_children);
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {}, &pool);
  ex.wait();
  EXPECT_EQ(children.load(), 64);
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"root", "join"}));
}

}  // namespace
}  // namespace spdkfac::exec
