// DataflowExecutor coverage: dependency release, external gates, the
// ordered submission lane under adversarial completion order, inline
// (pool-less) execution, graph reuse and validation.
#include "exec/dataflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace spdkfac::exec {
namespace {

using Node = DataflowExecutor::Node;
using NodeKind = DataflowExecutor::NodeKind;

/// Thread-safe trace of execution events.
struct Trace {
  std::mutex mu;
  std::vector<std::string> events;
  void add(std::string e) {
    std::lock_guard lock(mu);
    events.push_back(std::move(e));
  }
  std::vector<std::string> get() {
    std::lock_guard lock(mu);
    return events;
  }
};

Node compute(Trace& trace, const std::string& name, std::vector<int> deps,
             int external = 0) {
  Node n;
  n.kind = NodeKind::kCompute;
  n.deps = std::move(deps);
  n.external_deps = external;
  n.work = [&trace, name] { trace.add(name); };
  return n;
}

Node submission(Trace& trace, const std::string& name, std::vector<int> deps,
                int external = 0) {
  Node n;
  n.kind = NodeKind::kSubmission;
  n.deps = std::move(deps);
  n.external_deps = external;
  n.work = [&trace, name] { trace.add(name); };
  return n;
}

TEST(Dataflow, RespectsDependenciesInlineAndPooled) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    ThreadPool pool(3);
    ThreadPool* p = workers == 0 ? nullptr : &pool;
    Trace trace;
    std::vector<Node> nodes;
    nodes.push_back(compute(trace, "a", {}));
    nodes.push_back(compute(trace, "b", {0}));
    nodes.push_back(compute(trace, "c", {0, 1}));
    DataflowExecutor ex;
    ex.begin(std::move(nodes), {}, p);
    ex.wait();
    EXPECT_TRUE(ex.idle());
    EXPECT_EQ(trace.get(), (std::vector<std::string>{"a", "b", "c"}));
  }
}

TEST(Dataflow, ExternalGatesHoldBackReadyNodes) {
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "gated", {}, /*external=*/2));
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {}, nullptr);
  EXPECT_FALSE(ex.idle());
  EXPECT_TRUE(trace.get().empty());
  ex.satisfy(0);
  EXPECT_TRUE(trace.get().empty());  // one of two gates released
  ex.satisfy(0);
  ex.wait();
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"gated"}));
}

TEST(Dataflow, LaneFiresInOrderRegardlessOfReadiness) {
  // Submission s1 becomes dep-ready *before* s0; the lane must still fire
  // s0 first.  Retirement flows through complete(), out of order.
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(submission(trace, "s0", {}, /*external=*/1));  // 0
  nodes.push_back(submission(trace, "s1", {}));                  // 1
  nodes.push_back(compute(trace, "after", {0, 1}));              // 2
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {0, 1}, nullptr);
  EXPECT_TRUE(trace.get().empty());  // s1 ready but behind s0 in the lane
  ex.satisfy(0);
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"s0", "s1"}));
  ex.complete(1);  // async ops may finish out of submission order
  ex.complete(0);
  ex.wait();
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"s0", "s1", "after"}));
}

TEST(Dataflow, MixedGraphDrivesComputeBetweenSubmissions) {
  // compute -> submission -> (completion) -> compute chain, pooled.
  ThreadPool pool(2);
  Trace trace;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "pack", {}));           // 0
  nodes.push_back(submission(trace, "allreduce", {0}));  // 1
  nodes.push_back(compute(trace, "unpack", {1}));        // 2
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {1}, &pool);
  // Emulate the engine: wait until the submission fired, then complete it.
  while (trace.get().size() < 2) {}
  ex.complete(1);
  ex.wait();
  EXPECT_EQ(trace.get(),
            (std::vector<std::string>{"pack", "allreduce", "unpack"}));
}

TEST(Dataflow, GraphsAreReusableAfterDrain) {
  Trace trace;
  DataflowExecutor ex;
  for (int round = 0; round < 3; ++round) {
    // Two steps: `"r" + std::to_string(...)` trips GCC 12's bogus
    // -Wrestrict (GCC PR 105329).
    std::string name = "r";
    name += std::to_string(round);
    std::vector<Node> nodes;
    nodes.push_back(compute(trace, name, {}));
    ex.begin(std::move(nodes), {}, nullptr);
    ex.wait();
  }
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"r0", "r1", "r2"}));
}

TEST(Dataflow, BeginValidatesGraph) {
  Trace trace;
  DataflowExecutor ex;

  std::vector<Node> dangling;
  dangling.push_back(compute(trace, "x", {5}));
  EXPECT_THROW(ex.begin(std::move(dangling), {}, nullptr),
               std::invalid_argument);

  std::vector<Node> missing_lane;
  missing_lane.push_back(submission(trace, "s", {}, 1));
  EXPECT_THROW(ex.begin(std::move(missing_lane), {}, nullptr),
               std::invalid_argument);

  std::vector<Node> not_submission;
  not_submission.push_back(compute(trace, "c", {}, 1));
  EXPECT_THROW(ex.begin(std::move(not_submission), {0}, nullptr),
               std::invalid_argument);
}

TEST(Dataflow, BeginRefusesWhileInFlight) {
  Trace trace;
  DataflowExecutor ex;
  std::vector<Node> nodes;
  nodes.push_back(compute(trace, "held", {}, /*external=*/1));
  ex.begin(std::move(nodes), {}, nullptr);
  std::vector<Node> next;
  next.push_back(compute(trace, "next", {}));
  EXPECT_THROW(ex.begin(std::move(next), {}, nullptr), std::logic_error);
  ex.satisfy(0);
  ex.wait();
}

TEST(Dataflow, WideFanOutRetiresEverything) {
  // 1 root -> 64 children -> 1 join, on a small pool; exercises concurrent
  // retire paths.
  ThreadPool pool(3);
  Trace trace;
  std::atomic<int> children{0};
  std::vector<Node> nodes(66);
  nodes[0] = compute(trace, "root", {});
  std::vector<int> all_children;
  for (int i = 1; i <= 64; ++i) {
    nodes[i].kind = NodeKind::kCompute;
    nodes[i].deps = {0};
    nodes[i].work = [&children] { children.fetch_add(1); };
    all_children.push_back(i);
  }
  nodes[65] = compute(trace, "join", all_children);
  DataflowExecutor ex;
  ex.begin(std::move(nodes), {}, &pool);
  ex.wait();
  EXPECT_EQ(children.load(), 64);
  EXPECT_EQ(trace.get(), (std::vector<std::string>{"root", "join"}));
}

TEST(Dataflow, ObserverReportsEveryComputeNodeWithItsDuration) {
  // The observer is the profiling tap: once per kCompute node, after its
  // work, with a non-negative duration — on the pool and inline alike.
  // Submission and noop nodes are never reported.
  for (const bool pooled : {false, true}) {
    Trace trace;
    DataflowExecutor ex;
    std::mutex mu;
    std::vector<std::pair<int, double>> observed;
    ex.set_observer([&](int id, double seconds) {
      std::lock_guard lock(mu);
      observed.emplace_back(id, seconds);
    });

    std::vector<Node> nodes(3);
    nodes[0] = compute(trace, "a", {});
    nodes[1].kind = NodeKind::kNoop;
    nodes[1].deps = {0};
    nodes[2] = compute(trace, "b", {1});

    ThreadPool pool(2);
    ex.begin(std::move(nodes), {}, pooled ? &pool : nullptr);
    ex.wait();

    std::lock_guard lock(mu);
    ASSERT_EQ(observed.size(), 2u) << (pooled ? "pooled" : "inline");
    EXPECT_EQ(observed[0].first, 0);
    EXPECT_EQ(observed[1].first, 2);
    for (const auto& [id, seconds] : observed) {
      EXPECT_GE(seconds, 0.0) << "node " << id;
    }
  }
}

TEST(Dataflow, ObserverCanBeClearedAndRejectsMidFlightInstall) {
  Trace trace;
  DataflowExecutor ex;
  int calls = 0;
  ex.set_observer([&](int, double) { ++calls; });
  ex.set_observer(nullptr);  // cleared: next graph runs unobserved

  std::vector<Node> nodes(1);
  nodes[0] = compute(trace, "a", {}, /*external=*/1);
  ex.begin(std::move(nodes), {}, nullptr);
  EXPECT_THROW(ex.set_observer([](int, double) {}), std::logic_error);
  ex.satisfy(0);
  ex.wait();
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace spdkfac::exec
