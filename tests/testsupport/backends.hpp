// Shared helpers for tests parameterized over the transport backends.
#pragma once

#include <string>

#include "comm/transport.hpp"

// ThreadSanitizer cannot follow the process-per-rank backends (threads
// created after fork are unsupported), so multi-process cells skip under
// TSan — the in-process backend keeps full TSan coverage.
#if defined(__SANITIZE_THREAD__)
#define SPDKFAC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPDKFAC_TSAN 1
#endif
#endif
#ifndef SPDKFAC_TSAN
#define SPDKFAC_TSAN 0
#endif

#define SPDKFAC_SKIP_MULTIPROCESS_UNDER_TSAN(kind)                        \
  do {                                                                    \
    if (SPDKFAC_TSAN &&                                                   \
        (kind) != spdkfac::comm::TransportKind::kInProcess) {             \
      GTEST_SKIP() << "multi-process backends unsupported under TSan";    \
    }                                                                     \
  } while (0)

namespace spdkfac::testsupport {

inline constexpr comm::TransportKind kAllTransports[] = {
    comm::TransportKind::kInProcess,
    comm::TransportKind::kSharedMemory,
    comm::TransportKind::kSocket,
};

/// Backend name for gtest case names ("inproc" / "shm" / "socket") — the CI
/// cross-backend step selects tests by these substrings.
inline std::string backend_name(comm::TransportKind kind) {
  return comm::to_string(kind);
}

}  // namespace spdkfac::testsupport
