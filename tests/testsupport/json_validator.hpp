// Strict minimal JSON (RFC 8259) validator for the emitter tests: no
// external parser dependency, and deliberately stricter than lenient
// consumers — nan/inf tokens, raw control characters in strings, trailing
// commas, trailing garbage and bad escapes are all rejected, because the
// bugs this harness guards against (locale decimal commas, %g NaN output,
// unescaped control chars) produce exactly those.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace spdkfac::testsupport {

class JsonValidator {
 public:
  /// True when `text` is one complete, valid JSON value (plus optional
  /// surrounding whitespace).  On failure `error` (if non-null) names the
  /// offending byte offset and what was expected.
  static bool valid(std::string_view text, std::string* error = nullptr) {
    JsonValidator v{text};
    if (!v.value() || (v.ws(), v.pos_ != text.size())) {
      if (error != nullptr) {
        *error = v.error_.empty()
                     ? "trailing garbage at byte " + std::to_string(v.pos_)
                     : v.error_;
      }
      return false;
    }
    return true;
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool peek(char c) {
    ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool eat(char c) {
    ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (++depth_ > 256) return fail("nesting too deep");
    ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = object();
        break;
      case '[':
        ok = array();
        break;
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
        break;
    }
    --depth_;
    return ok;
  }

  bool object() {
    if (!eat('{')) return false;
    if (peek('}')) return eat('}');
    for (;;) {
      ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
      ws();
      if (peek(',')) {
        eat(',');
        continue;  // strict: the next iteration requires a key, so a
                   // trailing comma fails at the '"' check
      }
      return eat('}');
    }
  }

  bool array() {
    if (!eat('[')) return false;
    if (peek(']')) return eat(']');
    for (;;) {
      if (!value()) return false;
      ws();
      if (peek(',')) {
        eat(',');
        ws();
        if (peek(']')) return fail("trailing comma");
        continue;
      }
      return eat(']');
    }
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // int part: 0 | [1-9][0-9]*
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    } else {
      pos_ = start;
      return fail("bad number (nan/inf are not JSON)");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

/// Gtest-friendly shorthand.
inline bool valid_json(std::string_view text, std::string* error = nullptr) {
  return JsonValidator::valid(text, error);
}

}  // namespace spdkfac::testsupport
