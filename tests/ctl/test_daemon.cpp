// End-to-end control plane: every spdkfacctl command answered by a live
// daemon, live `set` taking effect without a restart (bitwise-equivalent
// to an inline loop applying the same tunables), rejected sets leaving the
// options untouched, and the determinism contract — hammering the ctl
// socket during training must not perturb the trained weights.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/transport.hpp"
#include "core/dist_kfac.hpp"
#include "ctl/client.hpp"
#include "ctl/daemon.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "tensor/random.hpp"
#include "testsupport/json_validator.hpp"
#include "util/json.hpp"

namespace spdkfac {
namespace {

using testsupport::valid_json;

constexpr int kWorld = 2;
constexpr std::size_t kLayers = 3;  // conv, conv, linear of make_small_cnn

std::string test_socket_path(const std::string& tag) {
  return comm::default_tmp_dir() + "/spdkfacd-" + tag + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// Pinned planning profile: daemon runs must be pure functions of seeds and
/// directives (no wall-clock-dependent plans) for bitwise comparisons.
sched::PassTiming fixed_profile() {
  sched::PassTiming t;
  for (std::size_t l = 0; l < kLayers; ++l) {
    t.a_ready.push_back(1e-4 * static_cast<double>(l + 1));
    t.g_ready.push_back(1e-3 + 1e-4 * static_cast<double>(l + 1));
    t.grad_ready.push_back(1e-3 + 1.5e-4 * static_cast<double>(l + 1));
  }
  t.backward_end = 2e-3;
  return t;
}

ctl::DaemonOptions daemon_options(const std::string& tag) {
  ctl::DaemonOptions opts;
  opts.socket_path = test_socket_path(tag);
  opts.world = kWorld;
  opts.optimizer.profile = fixed_profile();
  return opts;
}

/// Runs a daemon, drives it from this thread through a CtlClient (the
/// driver must end with a `shutdown` request), and returns the daemon for
/// weight/step inspection.  Rethrows any daemon-side fatal error.
void drive_daemon(ctl::Daemon& daemon,
                  const std::string& socket_path,
                  const std::function<void(ctl::CtlClient&)>& driver) {
  std::exception_ptr daemon_error;
  std::thread serving([&] {
    try {
      daemon.run();
    } catch (...) {
      daemon_error = std::current_exception();
    }
  });
  try {
    ctl::CtlClient client(socket_path, 10.0);
    driver(client);
  } catch (...) {
    daemon.request_shutdown();
    serving.join();
    throw;
  }
  // Idempotent: covers a driver that bailed early (gtest ASSERT) without
  // issuing its shutdown request, so join() cannot hang.
  daemon.request_shutdown();
  serving.join();
  if (daemon_error) std::rethrow_exception(daemon_error);
}

/// Blocks until the daemon has completed `steps` optimizer steps.
void await_steps(const ctl::Daemon& daemon, std::size_t steps) {
  while (daemon.steps_completed() < steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(CtlDaemon, EveryCommandAnswersAgainstALiveDaemon) {
  const ctl::DaemonOptions opts = daemon_options("commands");
  ctl::Daemon daemon(opts);
  drive_daemon(daemon, opts.socket_path, [&](ctl::CtlClient& client) {
    ctl::Response r = client.request("step 2");
    ASSERT_TRUE(r.ok) << r.body;
    await_steps(daemon, 2);

    r = client.request("status");
    ASSERT_TRUE(r.ok) << r.body;
    std::string error;
    EXPECT_TRUE(valid_json(r.body, &error)) << error << "\n" << r.body;
    EXPECT_NE(r.body.find("\"step\": 2"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"strategy\": \"SPD-KFAC\""), std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("\"world\": 2"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"failed\": false"), std::string::npos) << r.body;

    r = client.request("profile");
    ASSERT_TRUE(r.ok) << r.body;
    EXPECT_TRUE(valid_json(r.body, &error)) << error << "\n" << r.body;
    EXPECT_NE(r.body.find("\"layers\": 3"), std::string::npos) << r.body;

    r = client.request("plan");
    ASSERT_TRUE(r.ok) << r.body;
    EXPECT_NE(r.body.find("task"), std::string::npos) << r.body;

    r = client.request("cache");
    ASSERT_TRUE(r.ok) << r.body;
    EXPECT_TRUE(valid_json(r.body, &error)) << error << "\n" << r.body;
    EXPECT_NE(r.body.find("\"hits\""), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"misses\""), std::string::npos) << r.body;

    r = client.request("metrics");
    ASSERT_TRUE(r.ok) << r.body;
    EXPECT_NE(r.body.find("# TYPE spdkfac_steps_total counter"),
              std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("\nspdkfac_steps_total 2\n"), std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("spdkfac_world_size 2"), std::string::npos)
        << r.body;
    EXPECT_NE(r.body.find("spdkfac_wire_bytes_per_iteration"),
              std::string::npos)
        << r.body;

    r = client.request("trace");
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(valid_json(r.body, &error)) << error;
    // A real run's trace has both lanes populated.
    EXPECT_NE(r.body.find("\"compute-0\""), std::string::npos);
    EXPECT_NE(r.body.find("\"comm-0\""), std::string::npos);
    EXPECT_NE(r.body.find("\"cat\":\"compute\""), std::string::npos);
    EXPECT_NE(r.body.find("\"cat\":\"comm\""), std::string::npos);

    r = client.request("replan");
    EXPECT_TRUE(r.ok) << r.body;

    r = client.request("set lr=0.07");
    ASSERT_TRUE(r.ok) << r.body;
    r = client.request("status");
    ASSERT_TRUE(r.ok);
    EXPECT_NE(r.body.find("\"lr\": 0.07"), std::string::npos) << r.body;

    r = client.request("bogus");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.body.find("unknown command"), std::string::npos) << r.body;

    EXPECT_TRUE(client.request("shutdown").ok);
  });
  EXPECT_EQ(daemon.steps_completed(), 2u);
  EXPECT_EQ(daemon.rank0_weights().size(), kLayers);
}

TEST(CtlDaemon, RejectedSetLeavesOptionsUntouched) {
  const ctl::DaemonOptions opts = daemon_options("reject");
  ctl::Daemon daemon(opts);
  drive_daemon(daemon, opts.socket_path, [&](ctl::CtlClient& client) {
    ctl::Response before = client.request("status");
    ASSERT_TRUE(before.ok);

    for (const char* bad :
         {"set lr=-1", "set lr=0", "set stat_decay=1.5", "set kl_clip=-2",
          "set factor_update_freq=0", "set factor_update_freq=1.5",
          "set replan_interval=-3", "set no_such_tunable=1", "set lr=abc",
          "set lr", "set"}) {
      ctl::Response r = client.request(bad);
      EXPECT_FALSE(r.ok) << bad << " was accepted: " << r.body;
    }

    ctl::Response after = client.request("status");
    ASSERT_TRUE(after.ok);
    EXPECT_EQ(before.body, after.body)
        << "rejected sets must not change anything status reports";

    // The daemon still trains after the rejections.
    ASSERT_TRUE(client.request("step 1").ok);
    await_steps(daemon, 1);
    EXPECT_TRUE(client.request("shutdown").ok);
  });
  EXPECT_EQ(daemon.steps_completed(), 1u);
}

TEST(CtlDaemon, ConstructorRejectsInvalidConfigurations) {
  ctl::DaemonOptions opts = daemon_options("ctor");
  opts.world = 0;
  EXPECT_THROW(ctl::Daemon daemon(opts), std::invalid_argument);

  opts = daemon_options("ctor");
  opts.optimizer.transport = comm::TransportKind::kSocket;
  EXPECT_THROW(ctl::Daemon daemon(opts), std::invalid_argument);

  opts = daemon_options("ctor");
  opts.optimizer.lr = -1.0;
  EXPECT_THROW(ctl::Daemon daemon(opts), std::invalid_argument);

  opts = daemon_options("ctor");
  opts.socket_path = "/tmp/" + std::string(200, 'd') + ".sock";
  EXPECT_THROW(ctl::Daemon daemon(opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Live `set` equivalence: daemon run with `set lr/damping` between steps ==
// inline loop applying the same set_tunable calls at the same boundaries.
// ---------------------------------------------------------------------------

/// The daemon's training loop, replicated inline (same seeds, same model,
/// same hooked passes), with tunable changes applied after `set_after`
/// steps.  Returns rank 0's final weights.
std::vector<tensor::Matrix> inline_reference_run(
    const ctl::DaemonOptions& opts, std::size_t steps_before,
    const std::vector<std::pair<std::string, double>>& sets,
    std::size_t steps_after) {
  std::vector<tensor::Matrix> weights;
  comm::Cluster::launch(opts.world, [&](comm::Communicator& comm) {
    tensor::Rng init(opts.init_seed);
    nn::Sequential model =
        nn::make_small_cnn(opts.in_channels, opts.image_hw, opts.conv1,
                           opts.conv2, opts.classes, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptimizer optimizer(layers, comm, opts.optimizer);
    nn::SyntheticClassification data(opts.classes, opts.in_channels,
                                     opts.image_hw, opts.data_seed,
                                     opts.noise);
    tensor::Rng shard(100 + static_cast<std::uint64_t>(comm.rank()));
    nn::SoftmaxCrossEntropy loss;
    const auto one_step = [&] {
      nn::Batch batch = data.sample(opts.batch, shard);
      const nn::PassHooks hooks = optimizer.pass_hooks();
      loss.forward(model.forward(batch.inputs, hooks), batch.labels);
      model.backward(loss.backward(), hooks);
      optimizer.step();
    };
    for (std::size_t s = 0; s < steps_before; ++s) one_step();
    for (const auto& [name, value] : sets) {
      optimizer.set_tunable(name, value);
    }
    for (std::size_t s = 0; s < steps_after; ++s) one_step();
    if (comm.rank() == 0) {
      for (nn::PreconditionedLayer* layer : layers) {
        weights.push_back(layer->weight());
      }
    }
  });
  return weights;
}

void expect_bitwise_equal(const std::vector<tensor::Matrix>& a,
                          const std::vector<tensor::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    ASSERT_EQ(a[l].data().size(), b[l].data().size()) << "layer " << l;
    for (std::size_t i = 0; i < a[l].data().size(); ++i) {
      // Bitwise: EXPECT_EQ on doubles is exact equality, which is what the
      // determinism contract promises (0.0 == -0.0 aside, which training
      // weights never hit).
      EXPECT_EQ(a[l].data()[i], b[l].data()[i])
          << "layer " << l << " element " << i;
    }
  }
}

TEST(CtlDaemon, LiveSetMatchesInlineReferenceBitwise) {
  constexpr std::size_t kBefore = 3, kAfter = 3;
  const std::vector<std::pair<std::string, double>> kSets{
      {"lr", 0.01}, {"damping", 0.05}};

  const ctl::DaemonOptions opts = daemon_options("liveset");
  ctl::Daemon daemon(opts);
  drive_daemon(daemon, opts.socket_path, [&](ctl::CtlClient& client) {
    ASSERT_TRUE(client.request("step " + std::to_string(kBefore)).ok);
    await_steps(daemon, kBefore);  // sets must land at the same boundary
    for (const auto& [name, value] : kSets) {
      ctl::Response r = client.request("set " + name + "=" +
                                       util::format_double(value));
      ASSERT_TRUE(r.ok) << r.body;
    }
    ASSERT_TRUE(client.request("step " + std::to_string(kAfter)).ok);
    await_steps(daemon, kBefore + kAfter);
    // The set really took effect without a restart.
    ctl::Response status = client.request("status");
    ASSERT_TRUE(status.ok);
    EXPECT_NE(status.body.find("\"lr\": 0.01"), std::string::npos)
        << status.body;
    EXPECT_NE(status.body.find("\"damping\": 0.05"), std::string::npos)
        << status.body;
    EXPECT_TRUE(client.request("shutdown").ok);
  });

  const std::vector<tensor::Matrix> reference =
      inline_reference_run(opts, kBefore, kSets, kAfter);
  expect_bitwise_equal(daemon.rank0_weights(), reference);
}

// ---------------------------------------------------------------------------
// Determinism under ctl load: reads must never perturb training.
// ---------------------------------------------------------------------------

TEST(CtlDaemon, CtlReadsNeverPerturbTrainingBitwise) {
  constexpr std::size_t kSteps = 6;

  // Quiet run: queue all steps, wait, shut down.
  const ctl::DaemonOptions quiet_opts = daemon_options("quiet");
  ctl::Daemon quiet(quiet_opts);
  drive_daemon(quiet, quiet_opts.socket_path, [&](ctl::CtlClient& client) {
    ASSERT_TRUE(client.request("step " + std::to_string(kSteps)).ok);
    await_steps(quiet, kSteps);
    EXPECT_TRUE(client.request("shutdown").ok);
  });

  // Hammered run: same steps, but every read command fired continuously
  // from two client threads while training runs.
  const ctl::DaemonOptions loud_opts = daemon_options("loud");
  ctl::Daemon loud(loud_opts);
  drive_daemon(loud, loud_opts.socket_path, [&](ctl::CtlClient& client) {
    std::atomic<bool> done{false};
    std::vector<std::thread> hammers;
    for (int h = 0; h < 2; ++h) {
      hammers.emplace_back([&, h] {
        ctl::CtlClient mine(loud_opts.socket_path, 10.0);
        const std::vector<std::string> reads{
            "status", "profile", "plan", "cache", "metrics", "trace"};
        std::size_t i = static_cast<std::size_t>(h);
        while (!done.load()) {
          ctl::Response r = mine.request(reads[i++ % reads.size()]);
          EXPECT_TRUE(r.ok) << r.body;
        }
      });
    }
    ASSERT_TRUE(client.request("step " + std::to_string(kSteps)).ok);
    await_steps(loud, kSteps);
    done.store(true);
    for (std::thread& t : hammers) t.join();
    EXPECT_TRUE(client.request("shutdown").ok);
  });

  ASSERT_EQ(quiet.steps_completed(), kSteps);
  ASSERT_EQ(loud.steps_completed(), kSteps);
  expect_bitwise_equal(quiet.rank0_weights(), loud.rank0_weights());
}

// Batch mode: auto_steps drains and the daemon exits without a shutdown.
TEST(CtlDaemon, BatchModeExitsAfterAutoSteps) {
  ctl::DaemonOptions opts = daemon_options("batch");
  opts.auto_steps = 2;
  opts.run_until_shutdown = false;
  ctl::Daemon daemon(opts);
  daemon.run();
  EXPECT_EQ(daemon.steps_completed(), 2u);
  EXPECT_EQ(daemon.rank0_weights().size(), kLayers);

  // Identical batch run reproduces identical weights (fixed profile).
  ctl::Daemon again(opts);
  again.run();
  expect_bitwise_equal(daemon.rank0_weights(), again.rank0_weights());
}

}  // namespace
}  // namespace spdkfac
