// Control-plane building blocks: text packing, the framed request/reply
// exchange over a real Unix socket, socket-path validation, Prometheus
// rendering, and the live trace recorder's lane packing + strict JSON.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "comm/wire.hpp"
#include "ctl/client.hpp"
#include "ctl/metrics.hpp"
#include "ctl/protocol.hpp"
#include "ctl/server.hpp"
#include "ctl/trace_recorder.hpp"
#include "testsupport/json_validator.hpp"
#include "util/json.hpp"

namespace spdkfac {
namespace {

using testsupport::valid_json;

std::string test_socket_path(const std::string& tag) {
  return comm::default_tmp_dir() + "/spdkfac-ctl-" + tag + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(CtlProtocol, PackUnpackRoundTrip) {
  for (const std::string& text :
       {std::string(), std::string("status"),
        std::string("set lr=0.125"), std::string(1000, 'x'),
        std::string("emb\0edded", 9), std::string("exactly8"),
        std::string("nine char")}) {
    const std::vector<double> payload = ctl::pack_text(text);
    EXPECT_EQ(ctl::unpack_text(payload), text);
  }
}

TEST(CtlProtocol, UnpackRejectsMalformedPayloads) {
  EXPECT_THROW(ctl::unpack_text({}), std::runtime_error);
  std::vector<double> payload = ctl::pack_text("twelve bytes");
  payload.resize(1);  // length header says 12, zero bytes shipped
  EXPECT_THROW(ctl::unpack_text(payload), std::runtime_error);
}

TEST(CtlProtocol, TextFrameParsesBackThroughWireParser) {
  const auto bytes =
      ctl::encode_text_frame(comm::wire::kCtlRequestTag, "profile");
  comm::wire::FrameParser parser;
  ASSERT_TRUE(parser.feed(bytes));
  ASSERT_TRUE(parser.has_frame());
  const comm::wire::Frame frame = parser.pop_frame();
  EXPECT_EQ(frame.header.tag, comm::wire::kCtlRequestTag);
  EXPECT_EQ(ctl::unpack_text(frame.payload), "profile");
}

TEST(CtlSocketPath, TooLongPathThrowsWithBothLengths) {
  const std::string long_path = "/tmp/" + std::string(200, 'a') + ".sock";
  try {
    comm::validate_socket_path(long_path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sun_path"), std::string::npos) << what;
    EXPECT_NE(what.find(long_path), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(comm::max_socket_path_bytes())),
              std::string::npos)
        << what;
  }
  EXPECT_THROW(ctl::CtlServer server(long_path), std::invalid_argument);
}

TEST(CtlServerClient, RoundTripsEveryFrameAndReportsErrors) {
  const std::string path = test_socket_path("roundtrip");
  ctl::CtlServer server(path);
  std::thread client_thread([&] {
    ctl::CtlClient client(path, 5.0);
    ctl::Response ok = client.request("echo hello");
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.body, "echo: echo hello");
    ctl::Response err = client.request("boom");
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.body, "kaboom");
  });
  const ctl::CtlServer::Handler handler = [](const std::string& cmd) {
    if (cmd == "boom") throw std::runtime_error("kaboom");
    return ctl::Response{true, "echo: " + cmd};
  };
  std::size_t handled = 0;
  while (handled < 2) {
    handled += server.handle(handler, 100);
  }
  client_thread.join();
  EXPECT_EQ(handled, 2u);
}

TEST(CtlServerClient, SurvivesAClientThatDisconnects) {
  const std::string path = test_socket_path("disconnect");
  ctl::CtlServer server(path);
  {
    ctl::CtlClient client(path, 5.0);
    // connect and immediately go away
  }
  const ctl::CtlServer::Handler handler = [](const std::string&) {
    return ctl::Response{true, ""};
  };
  EXPECT_EQ(server.handle(handler, 50), 0u);
  // A fresh client still gets service afterwards.
  std::thread client_thread([&] {
    ctl::CtlClient client(path, 5.0);
    EXPECT_TRUE(client.request("ping").ok);
  });
  std::size_t handled = 0;
  while (handled < 1) handled += server.handle(handler, 100);
  client_thread.join();
}

TEST(CtlServer, UnlinksSocketOnDestruction) {
  const std::string path = test_socket_path("unlink");
  {
    ctl::CtlServer server(path);
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0);
}

TEST(Metrics, RendersPrometheusTextExposition) {
  const std::vector<ctl::Metric> metrics{
      {"spdkfac_steps_total", "Optimizer steps completed",
       ctl::Metric::Type::kCounter, 42.0},
      {"spdkfac_last_iteration_seconds", "Wall time of the last step",
       ctl::Metric::Type::kGauge, 0.125},
  };
  const std::string text = ctl::render_prometheus(metrics);
  EXPECT_NE(text.find("# HELP spdkfac_steps_total Optimizer steps completed"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE spdkfac_steps_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("\nspdkfac_steps_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spdkfac_last_iteration_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("\nspdkfac_last_iteration_seconds 0.125\n"),
            std::string::npos);
}

TEST(TraceRecorder, PacksOverlappingEventsOntoDistinctLanes) {
  ctl::TraceRecorder recorder;
  // Two overlapping compute intervals -> two compute lanes; a third that
  // starts after the first ended reuses lane 0.  One comm interval.
  recorder.add("factor_a0", ctl::TraceRecorder::Lane::kCompute, 0.0, 1.0);
  recorder.add("factor_g0", ctl::TraceRecorder::Lane::kCompute, 0.5, 1.5);
  recorder.add("inverse", ctl::TraceRecorder::Lane::kCompute, 1.0, 2.0);
  recorder.add("ar@A", ctl::TraceRecorder::Lane::kComm, 0.25, 0.75);
  const std::string trace = recorder.to_chrome_trace("test-run");
  std::string error;
  EXPECT_TRUE(valid_json(trace, &error)) << error << "\n" << trace;
  EXPECT_NE(trace.find("\"compute-0\""), std::string::npos);
  EXPECT_NE(trace.find("\"compute-1\""), std::string::npos);
  EXPECT_NE(trace.find("\"comm-0\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"comm\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"compute\""), std::string::npos);
  // The comm event's tid sits after both compute lanes.
  EXPECT_NE(trace.find(R"("cat":"comm","ph":"X","pid":1,"tid":2)"),
            std::string::npos)
      << trace;
}

TEST(TraceRecorder, LongTimestampsKeepFullPrecision) {
  ctl::TraceRecorder recorder;
  // 100 seconds in: a 6-significant-digit emitter would render both events
  // at the same microsecond tick.
  recorder.add("a", ctl::TraceRecorder::Lane::kCompute, 100.000001,
               100.000002);
  recorder.add("b", ctl::TraceRecorder::Lane::kCompute, 100.000003,
               100.000004);
  const std::string trace = recorder.to_chrome_trace("precision");
  EXPECT_TRUE(valid_json(trace));
  // Expected strings replicate the recorder's own ts expression, so these
  // are exact matches — and they differ, where 6 significant figures would
  // have collapsed both to 1.00000e+08.
  const std::string ts_a = util::json_number(100.000001 * 1e6);
  const std::string ts_b = util::json_number(100.000003 * 1e6);
  EXPECT_NE(ts_a, ts_b);
  EXPECT_NE(trace.find("\"ts\":" + ts_a), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ts\":" + ts_b), std::string::npos) << trace;
}

TEST(TraceRecorder, EmptyRecorderStillEmitsValidTrace) {
  ctl::TraceRecorder recorder;
  const std::string trace = recorder.to_chrome_trace("empty");
  std::string error;
  EXPECT_TRUE(valid_json(trace, &error)) << error;
}

}  // namespace
}  // namespace spdkfac
