// Dense row-major matrix type used throughout the SPD-KFAC reproduction.
//
// The K-FAC algorithm manipulates per-layer Kronecker factors A = a a^T and
// G = g g^T, their damped inverses, and preconditioned gradients.  All of
// those are small-to-medium dense matrices (the paper's factor dimensions
// range from 64 to 8192), so a simple contiguous double-precision matrix with
// a handful of BLAS-like kernels is sufficient and keeps the library
// dependency-free.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace spdkfac::tensor {

/// Row-major dense matrix of doubles.
///
/// Invariant: data_.size() == rows_ * cols_ at all times.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length.  Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage (row-major).
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Pointer to the start of row r.
  double* row_ptr(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  // Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Matrix operator*(Matrix lhs, double scalar) noexcept {
    lhs *= scalar;
    return lhs;
  }
  friend Matrix operator*(double scalar, Matrix rhs) noexcept {
    rhs *= scalar;
    return rhs;
  }

  bool operator==(const Matrix& other) const noexcept = default;

  /// Adds `value` to every diagonal element (Tikhonov damping A + gamma*I).
  /// Requires a square matrix.
  void add_diagonal(double value);

  /// Resets all elements to zero without reallocating.
  void set_zero() noexcept;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Largest absolute element.
  double max_abs() const noexcept;

  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.  Dimensions must agree; throws std::invalid_argument otherwise.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without forming A^T.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * B^T without forming B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// y = A * x for a vector x (x.size() == A.cols()).
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// Returns true when |a - b| <= atol + rtol * |b| element-wise.
bool allclose(const Matrix& a, const Matrix& b, double rtol = 1e-9,
              double atol = 1e-12) noexcept;

/// Maximum element-wise absolute difference; requires equal shapes.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Pretty-printer for debugging and test failure messages.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace spdkfac::tensor
