// Packed upper-triangle storage for symmetric matrices.
//
// The paper reduces Kronecker-factor traffic by communicating only the upper
// triangle (d*(d+1)/2 elements) of each symmetric factor/inverse (Section V-B
// and the "# As"/"# Gs" columns of Table II count exactly these elements).
// This module provides the pack/unpack pair used by the real distributed
// optimizer as well as the element-count helpers used by the communication
// performance models.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace spdkfac::tensor {

/// Number of elements in the packed upper triangle (incl. diagonal) of a
/// d x d symmetric matrix: d*(d+1)/2.
constexpr std::size_t packed_size(std::size_t d) noexcept {
  return d * (d + 1) / 2;
}

/// Index of element (r, c), r <= c, inside the packed row-major upper
/// triangle of a d x d matrix.
constexpr std::size_t packed_index(std::size_t r, std::size_t c,
                                   std::size_t d) noexcept {
  // Row r starts after rows 0..r-1, which contribute d + (d-1) + ... +
  // (d-r+1) = r*d - r*(r-1)/2 elements; within the row, column c is offset
  // c - r.
  return r * d - r * (r - 1) / 2 + (c - r);
}

/// Symmetric matrix stored as its packed upper triangle.
class SymmetricPacked {
 public:
  SymmetricPacked() = default;

  /// Zero-initialized d x d symmetric matrix.
  explicit SymmetricPacked(std::size_t dim);

  /// Packs a dense symmetric matrix (upper triangle is taken as truth).
  /// Throws std::invalid_argument for non-square input.
  static SymmetricPacked pack(const Matrix& dense);

  /// Expands back to a dense symmetric matrix.
  Matrix unpack() const;

  std::size_t dim() const noexcept { return dim_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& at(std::size_t r, std::size_t c) noexcept;
  double at(std::size_t r, std::size_t c) const noexcept;

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  bool operator==(const SymmetricPacked&) const noexcept = default;

 private:
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

/// Copies the packed upper triangle of `dense` into `out` (must have
/// packed_size(dim) elements).  This is the zero-allocation path used when
/// staging factors into communication fusion buffers.
void pack_upper(const Matrix& dense, std::span<double> out);

/// Fills a dense symmetric matrix from a packed upper triangle.
void unpack_upper(std::span<const double> packed, Matrix& dense);

}  // namespace spdkfac::tensor
