// AVX2/FMA kernel table — 256-bit double-precision microkernels.
//
// Compiled with -mavx2 -mfma only when CMake detected an x86-64 target
// whose compiler accepts the flags (SPDKFAC_KERNELS_AVX2 is then defined
// for this TU alone, so no other object file ever contains AVX
// instructions); otherwise the table aliases the scalar one and
// avx2_compiled() reports false, which keeps the dispatcher honest on
// other architectures.
//
// Register-tiling scheme:
//   * gemm_nn / gemm_tn: 4x8 micro-tiles (8 YMM accumulators) with the
//     k loop innermost and unblocked per tile, so every C element
//     accumulates strictly k ascending — bitwise independent of the
//     caller's row chunking, as the determinism suite requires.
//   * gemm_nt: 1x4 tiles of FMA dot products sharing the A-row loads,
//     each reduced with the same fixed-tree horizontal sum as dot().
//   * symmetrize / transpose / unpack mirror: 4x4 in-register transposes
//     (unpacklo/hi + 128-bit permutes) over 32x32 cache blocks.
//
// Elementwise kernels (add/max/scale) round identically to scalar ops, so
// they are bitwise equal to the scalar table; the FMA-contracted kernels
// are not, which is exactly why determinism is promised per ISA level.
#include "tensor/kernels/tables.hpp"

#if defined(SPDKFAC_KERNELS_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace spdkfac::tensor::kernels {

namespace {

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

/// Fixed-tree horizontal sum: (l0 + l2) + (l1 + l3).  One definition used
/// by every reduction kernel, so per-element results depend only on the
/// element count.
inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + k), _mm256_loadu_pd(y + k),
                          acc);
  }
  double sum = hsum(acc);
  for (; k < n; ++k) sum += x[k] * y[k];
  return sum;
}

/// In-register transpose of a 4x4 double tile.
inline void transpose4x4(__m256d& r0, __m256d& r1, __m256d& r2,
                         __m256d& r3) noexcept {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  r0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  r1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  r2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  r3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

/// Scalar column tail shared by gemm_nn/gemm_tn: columns [j0, N) of `rows`
/// C rows, k ascending per element.  `a_at(i, k)` abstracts the A layout.
template <typename AAt>
inline void gemm_tail_cols(std::size_t rows, std::size_t K, std::size_t j0,
                           std::size_t N, AAt a_at, const double* b,
                           std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* ci = c + i * ldc;
    for (std::size_t k = 0; k < K; ++k) {
      const double aik = a_at(i, k);
      const double* bk = b + k * ldb;
      for (std::size_t j = j0; j < N; ++j) ci[j] += aik * bk[j];
    }
  }
}

/// 4x8 micro-tile: C rows i..i+3, columns j..j+7, full K sweep in
/// registers.  `load_a4(k)` yields (a(i,k), a(i+1,k), a(i+2,k), a(i+3,k)).
template <typename LoadA4>
inline void tile_4x8(std::size_t K, LoadA4 load_a4, const double* b,
                     std::size_t ldb, double* c0, double* c1, double* c2,
                     double* c3) {
  __m256d acc00 = _mm256_loadu_pd(c0), acc01 = _mm256_loadu_pd(c0 + 4);
  __m256d acc10 = _mm256_loadu_pd(c1), acc11 = _mm256_loadu_pd(c1 + 4);
  __m256d acc20 = _mm256_loadu_pd(c2), acc21 = _mm256_loadu_pd(c2 + 4);
  __m256d acc30 = _mm256_loadu_pd(c3), acc31 = _mm256_loadu_pd(c3 + 4);
  for (std::size_t k = 0; k < K; ++k) {
    const __m256d a4 = load_a4(k);
    const __m256d b0 = _mm256_loadu_pd(b + k * ldb);
    const __m256d b1 = _mm256_loadu_pd(b + k * ldb + 4);
    const __m256d a0 = _mm256_permute4x64_pd(a4, 0x00);
    const __m256d a1 = _mm256_permute4x64_pd(a4, 0x55);
    const __m256d a2 = _mm256_permute4x64_pd(a4, 0xAA);
    const __m256d a3 = _mm256_permute4x64_pd(a4, 0xFF);
    acc00 = _mm256_fmadd_pd(a0, b0, acc00);
    acc01 = _mm256_fmadd_pd(a0, b1, acc01);
    acc10 = _mm256_fmadd_pd(a1, b0, acc10);
    acc11 = _mm256_fmadd_pd(a1, b1, acc11);
    acc20 = _mm256_fmadd_pd(a2, b0, acc20);
    acc21 = _mm256_fmadd_pd(a2, b1, acc21);
    acc30 = _mm256_fmadd_pd(a3, b0, acc30);
    acc31 = _mm256_fmadd_pd(a3, b1, acc31);
  }
  _mm256_storeu_pd(c0, acc00);
  _mm256_storeu_pd(c0 + 4, acc01);
  _mm256_storeu_pd(c1, acc10);
  _mm256_storeu_pd(c1 + 4, acc11);
  _mm256_storeu_pd(c2, acc20);
  _mm256_storeu_pd(c2 + 4, acc21);
  _mm256_storeu_pd(c3, acc30);
  _mm256_storeu_pd(c3 + 4, acc31);
}

/// 1x8 row tile for the < 4 leftover rows.
inline void tile_1x8(std::size_t K, const double* ai, std::size_t stride_a,
                     const double* b, std::size_t ldb, double* ci) {
  __m256d acc0 = _mm256_loadu_pd(ci);
  __m256d acc1 = _mm256_loadu_pd(ci + 4);
  for (std::size_t k = 0; k < K; ++k) {
    const __m256d va = _mm256_set1_pd(ai[k * stride_a]);
    acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + k * ldb), acc0);
    acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + k * ldb + 4), acc1);
  }
  _mm256_storeu_pd(ci, acc0);
  _mm256_storeu_pd(ci + 4, acc1);
}

void gemm_nn_avx2(std::size_t rows, std::size_t K, std::size_t N,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc) {
  const std::size_t N8 = N & ~std::size_t{7};
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    const double* a2 = a1 + lda;
    const double* a3 = a2 + lda;
    for (std::size_t j = 0; j < N8; j += 8) {
      tile_4x8(
          K,
          [&](std::size_t k) {
            return _mm256_set_pd(a3[k], a2[k], a1[k], a0[k]);
          },
          b + j, ldb, c + i * ldc + j, c + (i + 1) * ldc + j,
          c + (i + 2) * ldc + j, c + (i + 3) * ldc + j);
    }
  }
  for (; i < rows; ++i) {
    for (std::size_t j = 0; j < N8; j += 8) {
      tile_1x8(K, a + i * lda, 1, b + j, ldb, c + i * ldc + j);
    }
  }
  if (N8 < N) {
    gemm_tail_cols(
        rows, K, N8, N,
        [&](std::size_t r, std::size_t k) { return a[r * lda + k]; }, b, ldb,
        c, ldc);
  }
}

void gemm_tn_avx2(std::size_t rows, std::size_t K, std::size_t N,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc) {
  // A is read transposed: a(k, i) at a[k*lda + i].  The 4 broadcasts of a
  // micro-tile step are adjacent, so one unaligned load feeds them all.
  const std::size_t N8 = N & ~std::size_t{7};
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* acol = a + i;
    for (std::size_t j = 0; j < N8; j += 8) {
      tile_4x8(
          K,
          [&](std::size_t k) { return _mm256_loadu_pd(acol + k * lda); },
          b + j, ldb, c + i * ldc + j, c + (i + 1) * ldc + j,
          c + (i + 2) * ldc + j, c + (i + 3) * ldc + j);
    }
  }
  for (; i < rows; ++i) {
    for (std::size_t j = 0; j < N8; j += 8) {
      tile_1x8(K, a + i, lda, b + j, ldb, c + i * ldc + j);
    }
  }
  if (N8 < N) {
    gemm_tail_cols(
        rows, K, N8, N,
        [&](std::size_t r, std::size_t k) { return a[k * lda + r]; }, b, ldb,
        c, ldc);
  }
}

void gemm_nt_avx2(std::size_t rows, std::size_t K, std::size_t M,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc) {
  const std::size_t K4 = K & ~std::size_t{3};
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= M; j += 4) {
      // Four dot products sharing each A load; every accumulator follows
      // the exact dot() recipe (4-lane stripe, fixed-tree hsum, ascending
      // tail), so results match dot_avx2 element for element.
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < K4; k += 4) {
        const __m256d va = _mm256_loadu_pd(ai + k);
        acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0 + k), acc0);
        acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1 + k), acc1);
        acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2 + k), acc2);
        acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3 + k), acc3);
      }
      double s0 = hsum(acc0), s1 = hsum(acc1), s2 = hsum(acc2),
             s3 = hsum(acc3);
      for (std::size_t k = K4; k < K; ++k) {
        const double av = ai[k];
        s0 += av * b0[k];
        s1 += av * b1[k];
        s2 += av * b2[k];
        s3 += av * b3[k];
      }
      ci[j] += s0;
      ci[j + 1] += s1;
      ci[j + 2] += s2;
      ci[j + 3] += s3;
    }
    for (; j < M; ++j) ci[j] += dot_avx2(ai, b + j * ldb, K);
  }
}

// ---------------------------------------------------------------------------
// Elementwise kernels (bitwise identical to scalar)
// ---------------------------------------------------------------------------

void add_avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void max_avx2(double* dst, const double* src, std::size_t n) {
  // _mm256_max_pd(a, b) returns b when either operand is NaN, i.e. it is
  // max(dst, src) with the operand order below matching std::max's
  // "first wins on ties/NaN" only for the second slot — the scalar path
  // uses std::max(dst, src) which keeps dst on NaN, so feed dst as the
  // *second* operand to preserve bitwise agreement.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_max_pd(_mm256_loadu_pd(src + i),
                                            _mm256_loadu_pd(dst + i)));
  }
  for (; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void scale_avx2(double* dst, std::size_t n, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i), vs));
  }
  for (; i < n; ++i) dst[i] *= s;
}

void axpy_avx2(double* dst, const double* src, std::size_t n, double alpha) {
  // Same FMA shape in the body and the tail (std::fma compiles to vfmadd
  // here), so an element's bits do not depend on its lane position — the
  // within-level chunk-invariance the triangular solves rely on.
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_fmadd_pd(va, _mm256_loadu_pd(src + i),
                                     _mm256_loadu_pd(dst + i)));
  }
  for (; i < n; ++i) dst[i] = std::fma(alpha, src[i], dst[i]);
}

// ---------------------------------------------------------------------------
// EMA folds
// ---------------------------------------------------------------------------

/// One EMA run: state[0..n) = decay*state + (1-decay)*fresh.  The scalar
/// tail uses the same mul+fma shape as the vector body (fma(decay, s,
/// blend*f)), so a value's result depends only on its inputs, not its
/// position relative to the vector remainder.
inline void ema_run(double* state, const double* fresh, std::size_t n,
                    __m256d vdecay, __m256d vblend, double decay,
                    double blend) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d blended =
        _mm256_mul_pd(vblend, _mm256_loadu_pd(fresh + i));
    _mm256_storeu_pd(
        state + i,
        _mm256_fmadd_pd(vdecay, _mm256_loadu_pd(state + i), blended));
  }
  for (; i < n; ++i) {
    state[i] = std::fma(decay, state[i], blend * fresh[i]);
  }
}

void ema_avx2(double* state, const double* fresh, std::size_t n,
              double decay) {
  const double blend = 1.0 - decay;
  ema_run(state, fresh, n, _mm256_set1_pd(decay), _mm256_set1_pd(blend),
          decay, blend);
}

/// Mirrors the lower triangle from the upper one with 4x4 register
/// transposes over the fully-below-diagonal tiles.
void mirror_lower_avx2(double* a, std::size_t d, std::size_t lda) {
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 1; rb < d; rb += kBlock) {
    const std::size_t re = std::min(d, rb + kBlock);
    for (std::size_t cb = 0; cb < re; cb += kBlock) {
      const std::size_t ce = std::min(re, cb + kBlock);
      for (std::size_t r = rb; r < re; r += 4) {
        const std::size_t cend = std::min(ce, r);  // strictly below diagonal
        std::size_t c = cb;
        if (r + 4 <= re && r + 4 <= d) {
          for (; c + 4 <= cend && c + 4 <= r; c += 4) {
            // lower(r..r+3, c..c+3) = upper(c..c+3, r..r+3)^T
            __m256d u0 = _mm256_loadu_pd(a + c * lda + r);
            __m256d u1 = _mm256_loadu_pd(a + (c + 1) * lda + r);
            __m256d u2 = _mm256_loadu_pd(a + (c + 2) * lda + r);
            __m256d u3 = _mm256_loadu_pd(a + (c + 3) * lda + r);
            transpose4x4(u0, u1, u2, u3);
            _mm256_storeu_pd(a + r * lda + c, u0);
            _mm256_storeu_pd(a + (r + 1) * lda + c, u1);
            _mm256_storeu_pd(a + (r + 2) * lda + c, u2);
            _mm256_storeu_pd(a + (r + 3) * lda + c, u3);
          }
        }
        for (std::size_t rr = r; rr < std::min(re, r + 4); ++rr) {
          double* arow = a + rr * lda;
          for (std::size_t cc = c; cc < std::min(ce, rr); ++cc) {
            arow[cc] = a[cc * lda + rr];
          }
        }
      }
    }
  }
}

void ema_unpack_avx2(const double* packed, std::size_t d, double* state,
                     std::size_t lds, double decay, bool init) {
  const double blend = 1.0 - decay;
  const __m256d vdecay = _mm256_set1_pd(decay);
  const __m256d vblend = _mm256_set1_pd(blend);
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    double* srow = state + r * lds + r;
    if (init) {
      std::memcpy(srow, packed + idx, run * sizeof(double));
    } else {
      ema_run(srow, packed + idx, run, vdecay, vblend, decay, blend);
    }
    idx += run;
  }
  mirror_lower_avx2(state, d, lds);
}

// ---------------------------------------------------------------------------
// Symmetric pack/unpack and symmetrize
// ---------------------------------------------------------------------------

void unpack_upper_avx2(const double* packed, std::size_t d, double* a,
                       std::size_t lda) {
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    std::memcpy(a + r * lda + r, packed + idx, run * sizeof(double));
    idx += run;
  }
  mirror_lower_avx2(a, d, lda);
}

void symmetrize_rows_avx2(double* a, std::size_t n, std::size_t lda,
                          std::size_t r0, std::size_t r1) {
  const __m256d half = _mm256_set1_pd(0.5);
  auto scalar_pair = [&](std::size_t i, std::size_t j) {
    const double avg = 0.5 * (a[i * lda + j] + a[j * lda + i]);
    a[i * lda + j] = avg;
    a[j * lda + i] = avg;
  };
  std::size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    // Pairs inside the diagonal 4x4 corner stay scalar.
    for (std::size_t r = i; r < i + 4; ++r) {
      for (std::size_t j = r + 1; j < std::min(i + 4, n); ++j) {
        scalar_pair(r, j);
      }
    }
    std::size_t j = i + 4;
    for (; j + 4 <= n; j += 4) {
      // avg = 0.5 * (upper_tile + lower_tile^T); write it and its
      // transpose back.  0.5*(x+y) rounds identically to the scalar path.
      __m256d u0 = _mm256_loadu_pd(a + i * lda + j);
      __m256d u1 = _mm256_loadu_pd(a + (i + 1) * lda + j);
      __m256d u2 = _mm256_loadu_pd(a + (i + 2) * lda + j);
      __m256d u3 = _mm256_loadu_pd(a + (i + 3) * lda + j);
      __m256d l0 = _mm256_loadu_pd(a + j * lda + i);
      __m256d l1 = _mm256_loadu_pd(a + (j + 1) * lda + i);
      __m256d l2 = _mm256_loadu_pd(a + (j + 2) * lda + i);
      __m256d l3 = _mm256_loadu_pd(a + (j + 3) * lda + i);
      transpose4x4(l0, l1, l2, l3);
      u0 = _mm256_mul_pd(half, _mm256_add_pd(u0, l0));
      u1 = _mm256_mul_pd(half, _mm256_add_pd(u1, l1));
      u2 = _mm256_mul_pd(half, _mm256_add_pd(u2, l2));
      u3 = _mm256_mul_pd(half, _mm256_add_pd(u3, l3));
      _mm256_storeu_pd(a + i * lda + j, u0);
      _mm256_storeu_pd(a + (i + 1) * lda + j, u1);
      _mm256_storeu_pd(a + (i + 2) * lda + j, u2);
      _mm256_storeu_pd(a + (i + 3) * lda + j, u3);
      transpose4x4(u0, u1, u2, u3);
      _mm256_storeu_pd(a + j * lda + i, u0);
      _mm256_storeu_pd(a + (j + 1) * lda + i, u1);
      _mm256_storeu_pd(a + (j + 2) * lda + i, u2);
      _mm256_storeu_pd(a + (j + 3) * lda + i, u3);
    }
    for (; j < n; ++j) {
      for (std::size_t r = i; r < i + 4; ++r) scalar_pair(r, j);
    }
  }
  for (; i < r1; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) scalar_pair(i, j);
  }
}

void transpose_avx2(const double* in, std::size_t rows, std::size_t cols,
                    std::size_t ldi, double* out, std::size_t ldo) {
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t re = std::min(rows, rb + kBlock);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t ce = std::min(cols, cb + kBlock);
      std::size_t r = rb;
      for (; r + 4 <= re; r += 4) {
        std::size_t c = cb;
        for (; c + 4 <= ce; c += 4) {
          __m256d t0 = _mm256_loadu_pd(in + r * ldi + c);
          __m256d t1 = _mm256_loadu_pd(in + (r + 1) * ldi + c);
          __m256d t2 = _mm256_loadu_pd(in + (r + 2) * ldi + c);
          __m256d t3 = _mm256_loadu_pd(in + (r + 3) * ldi + c);
          transpose4x4(t0, t1, t2, t3);
          _mm256_storeu_pd(out + c * ldo + r, t0);
          _mm256_storeu_pd(out + (c + 1) * ldo + r, t1);
          _mm256_storeu_pd(out + (c + 2) * ldo + r, t2);
          _mm256_storeu_pd(out + (c + 3) * ldo + r, t3);
        }
        for (; c < ce; ++c) {
          for (std::size_t rr = r; rr < r + 4; ++rr) {
            out[c * ldo + rr] = in[rr * ldi + c];
          }
        }
      }
      for (; r < re; ++r) {
        const double* irow = in + r * ldi;
        for (std::size_t c = cb; c < ce; ++c) out[c * ldo + r] = irow[c];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec kernels — bitwise identical to the scalar table by construction
// (see kernels.hpp): the only rounding steps are the double multiply, the
// RNE double->int32 conversion (cvtpd_epi32 honours the default rounding
// mode, exactly nearbyint), the exactly-rounded double<->float conversion,
// and the shared software half converter.
// ---------------------------------------------------------------------------

double absmax_avx2(const double* src, std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF'FFFF'FFFF'FFFFll));
  __m256d vmax = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vmax = _mm256_max_pd(vmax,
                         _mm256_and_pd(_mm256_loadu_pd(src + i), abs_mask));
  }
  const __m128d lo = _mm256_castpd256_pd128(vmax);
  const __m128d hi = _mm256_extractf128_pd(vmax, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  double m = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) m = std::max(m, std::fabs(src[i]));
  return m;
}

void int8_quantize_avx2(const double* src, std::size_t n, double inv_scale,
                        signed char* dst) {
  // clamp-then-convert equals the scalar nearbyint-then-clamp for every
  // finite input: both round with RNE and both end inside [-127, 127].
  const __m256d vinv = _mm256_set1_pd(inv_scale);
  const __m256d vlo = _mm256_set1_pd(-127.0);
  const __m256d vhi = _mm256_set1_pd(127.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_min_pd(
        vhi, _mm256_max_pd(vlo, _mm256_mul_pd(_mm256_loadu_pd(src + i),
                                              vinv)));
    const __m128i q32 = _mm256_cvtpd_epi32(t);           // RNE
    const __m128i q16 = _mm_packs_epi32(q32, q32);       // in-range: exact
    const __m128i q8 = _mm_packs_epi16(q16, q16);
    const int packed = _mm_cvtsi128_si32(q8);
    std::memcpy(dst + i, &packed, 4);
  }
  for (; i < n; ++i) {
    double t = std::nearbyint(src[i] * inv_scale);
    t = std::min(127.0, std::max(-127.0, t));
    dst[i] = static_cast<signed char>(t);
  }
}

void int8_dequantize_avx2(const signed char* src, std::size_t n, double scale,
                          double* dst) {
  const __m256d vscale = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int packed;
    std::memcpy(&packed, src + i, 4);
    const __m128i q8 = _mm_cvtsi32_si128(packed);
    const __m128i q32 = _mm_cvtepi8_epi32(q8);
    _mm256_storeu_pd(dst + i,
                     _mm256_mul_pd(_mm256_cvtepi32_pd(q32), vscale));
  }
  for (; i < n; ++i) dst[i] = scale * static_cast<double>(src[i]);
}

void fp16_pack_avx2(const double* src, std::size_t n, std::uint16_t* dst) {
  // Vectorize the exactly-rounded double->float narrowing; the float->half
  // step goes through the shared software converter so the bits match the
  // scalar table.
  std::size_t i = 0;
  alignas(16) float f[4];
  for (; i + 4 <= n; i += 4) {
    _mm_store_ps(f, _mm256_cvtpd_ps(_mm256_loadu_pd(src + i)));
    dst[i] = detail::float_to_half(f[0]);
    dst[i + 1] = detail::float_to_half(f[1]);
    dst[i + 2] = detail::float_to_half(f[2]);
    dst[i + 3] = detail::float_to_half(f[3]);
  }
  for (; i < n; ++i) {
    dst[i] = detail::float_to_half(static_cast<float>(src[i]));
  }
}

void fp16_unpack_avx2(const std::uint16_t* src, std::size_t n, double* dst) {
  std::size_t i = 0;
  alignas(16) float f[4];
  for (; i + 4 <= n; i += 4) {
    f[0] = detail::half_to_float(src[i]);
    f[1] = detail::half_to_float(src[i + 1]);
    f[2] = detail::half_to_float(src[i + 2]);
    f[3] = detail::half_to_float(src[i + 3]);
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_load_ps(f)));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<double>(detail::half_to_float(src[i]));
  }
}

}  // namespace

namespace detail {

const KernelTable& avx2_table() noexcept {
  static const KernelTable t{
      Isa::kAvx2,        gemm_nn_avx2,
      gemm_tn_avx2,      gemm_nt_avx2,
      dot_avx2,          add_avx2,
      max_avx2,          scale_avx2,
      axpy_avx2,         ema_avx2,
      ema_unpack_avx2,
      scalar_table().pack_upper,  // memcpy row runs — already optimal
      unpack_upper_avx2, symmetrize_rows_avx2,
      transpose_avx2,
      absmax_avx2,       int8_quantize_avx2,
      int8_dequantize_avx2, fp16_pack_avx2,
      fp16_unpack_avx2};
  return t;
}

bool avx2_compiled() noexcept { return true; }

}  // namespace detail

}  // namespace spdkfac::tensor::kernels

#else  // !SPDKFAC_KERNELS_AVX2: non-x86 build — alias the scalar table.

namespace spdkfac::tensor::kernels::detail {

const KernelTable& avx2_table() noexcept { return scalar_table(); }
bool avx2_compiled() noexcept { return false; }

}  // namespace spdkfac::tensor::kernels::detail

#endif
