// Portable scalar kernel table — the cross-platform numeric reference.
//
// Accumulation orders here define the contract the vector levels must
// respect per element (k ascending for the GEMMs, ascending dot tails):
// the AVX2 table may re-tile these loops but the per-element order of the
// scalar level is what golden numeric expectations are phrased against.
//
// Note the GEMMs carry no zero-skip branch: `if (a == 0.0) continue`
// would break IEEE special-value propagation (0 * NaN must stay NaN,
// 0 * inf must stay NaN) and defeats vectorization — the branch the seed
// kernels had was removed when this layer was introduced (regression
// test: tensor/test_matrix.cpp NaN/Inf propagation).
#include "tensor/kernels/tables.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace spdkfac::tensor::kernels {

namespace {

void gemm_nn_scalar(std::size_t rows, std::size_t K, std::size_t N,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t k = 0; k < K; ++k) {
      const double aik = ai[k];
      const double* bk = b + k * ldb;
      for (std::size_t j = 0; j < N; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_tn_scalar(std::size_t rows, std::size_t K, std::size_t N,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  // k outer keeps both streamed operands contiguous; each c(i,j) still
  // accumulates strictly k ascending.
  for (std::size_t k = 0; k < K; ++k) {
    const double* ak = a + k * lda;
    const double* bk = b + k * ldb;
    for (std::size_t i = 0; i < rows; ++i) {
      const double aki = ak[i];
      double* ci = c + i * ldc;
      for (std::size_t j = 0; j < N; ++j) ci[j] += aki * bk[j];
    }
  }
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += x[k] * y[k];
  return sum;
}

void gemm_nt_scalar(std::size_t rows, std::size_t K, std::size_t M,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t j = 0; j < M; ++j) {
      ci[j] += dot_scalar(ai, b + j * ldb, K);
    }
  }
}

void add_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void max_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void scale_scalar(double* dst, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= s;
}

void axpy_scalar(double* dst, const double* src, std::size_t n,
                 double alpha) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void ema_scalar(double* state, const double* fresh, std::size_t n,
                double decay) {
  const double blend = 1.0 - decay;
  for (std::size_t i = 0; i < n; ++i) {
    state[i] = decay * state[i] + blend * fresh[i];
  }
}

void ema_unpack_scalar(const double* packed, std::size_t d, double* state,
                       std::size_t lds, double decay, bool init) {
  // Pass 1: fold the packed values into the upper triangle, row runs
  // contiguous on both sides.
  const double blend = 1.0 - decay;
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    double* srow = state + r * lds;
    if (init) {
      for (std::size_t c = r; c < d; ++c) srow[c] = packed[idx++];
    } else {
      for (std::size_t c = r; c < d; ++c) {
        srow[c] = decay * srow[c] + blend * packed[idx++];
      }
    }
  }
  // Pass 2: mirror the lower triangle from the freshly written upper one.
  // Bitwise equal to folding each lower element directly, because the
  // pre-fold state is exactly symmetric (see header contract).
  for (std::size_t r = 1; r < d; ++r) {
    double* srow = state + r * lds;
    for (std::size_t c = 0; c < r; ++c) srow[c] = state[c * lds + r];
  }
}

void pack_upper_scalar(const double* a, std::size_t d, std::size_t lda,
                       double* out) {
  // Each row's packed run is contiguous in both representations.
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    std::memcpy(out + idx, a + r * lda + r, run * sizeof(double));
    idx += run;
  }
}

void unpack_upper_scalar(const double* packed, std::size_t d, double* a,
                         std::size_t lda) {
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    std::memcpy(a + r * lda + r, packed + idx, run * sizeof(double));
    idx += run;
  }
  for (std::size_t r = 1; r < d; ++r) {
    double* arow = a + r * lda;
    for (std::size_t c = 0; c < r; ++c) arow[c] = a[c * lda + r];
  }
}

void symmetrize_rows_scalar(double* a, std::size_t n, std::size_t lda,
                            std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    double* arow = a + i * lda;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (arow[j] + a[j * lda + i]);
      arow[j] = avg;
      a[j * lda + i] = avg;
    }
  }
}

void transpose_scalar(const double* in, std::size_t rows, std::size_t cols,
                      std::size_t ldi, double* out, std::size_t ldo) {
  // Cache-blocked: a 32x32 double tile is 8 KiB per operand, so both the
  // row-streamed source and the column-strided destination stay resident
  // while the tile is swapped.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t re = std::min(rows, rb + kBlock);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t ce = std::min(cols, cb + kBlock);
      for (std::size_t r = rb; r < re; ++r) {
        const double* irow = in + r * ldi;
        for (std::size_t c = cb; c < ce; ++c) {
          out[c * ldo + r] = irow[c];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec kernels (comm::Codec).  See the header's determinism note: these
// must produce the same bits at every ISA level, so everything that rounds
// does so through operations whose vector lanes round exactly like the
// scalar ops (double*double multiply, RNE double->int conversion) or
// through the shared software half converter below.
// ---------------------------------------------------------------------------

double absmax_scalar(const double* src, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(src[i]));
  return m;
}

void int8_quantize_scalar(const double* src, std::size_t n, double inv_scale,
                          signed char* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    double t = std::nearbyint(src[i] * inv_scale);  // RNE in default mode
    t = std::min(127.0, std::max(-127.0, t));
    dst[i] = static_cast<signed char>(t);
  }
}

void int8_dequantize_scalar(const signed char* src, std::size_t n,
                            double scale, double* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = scale * static_cast<double>(src[i]);
  }
}

void fp16_pack_scalar(const double* src, std::size_t n, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::float_to_half(static_cast<float>(src[i]));
  }
}

void fp16_unpack_scalar(const std::uint16_t* src, std::size_t n,
                        double* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(detail::half_to_float(src[i]));
  }
}

}  // namespace

namespace detail {

std::uint16_t float_to_half(float f) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFF'FFFFu;
  if (abs >= 0x7F80'0000u) {  // inf / NaN (NaN keeps a payload bit set)
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (abs > 0x7F80'0000u ? 0x0200u : 0u));
  }
  if (abs >= 0x4780'0000u) {  // >= 65520 rounds past half's max -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x3880'0000u) {  // below 2^-14: subnormal half (or zero)
    const std::uint32_t mant = (abs & 0x007F'FFFFu) | 0x0080'0000u;
    const int shift = 126 - static_cast<int>(abs >> 23);
    if (shift > 24) return static_cast<std::uint16_t>(sign);  // underflow
    const std::uint32_t kept = mant >> shift;
    const std::uint32_t rem = mant & ((std::uint32_t{1} << shift) - 1);
    const std::uint32_t half = std::uint32_t{1} << (shift - 1);
    std::uint32_t r = kept;
    if (rem > half || (rem == half && (kept & 1u))) ++r;
    return static_cast<std::uint16_t>(sign | r);
  }
  const std::uint32_t mant = abs & 0x007F'FFFFu;
  const std::uint32_t exp = (abs >> 23) - 112;  // rebias 127 -> 15
  std::uint32_t r = (exp << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  // RNE on the 13 dropped bits; a carry correctly bumps the exponent.
  if (rem > 0x1000u || (rem == 0x1000u && (r & 1u))) ++r;
  return static_cast<std::uint16_t>(sign | r);
}

float half_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F80'0000u | (mant << 13);  // inf / NaN
  } else if (exp != 0) {
    bits = sign | ((exp + 112) << 23) | (mant << 13);
  } else if (mant == 0) {
    bits = sign;
  } else {  // subnormal half: normalize into a float exponent
    int k = 0;
    while (!(mant & 0x400u)) {
      mant <<= 1;
      ++k;
    }
    mant &= 0x3FFu;
    bits = sign | (static_cast<std::uint32_t>(113 - k) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

const KernelTable& scalar_table() noexcept {
  static const KernelTable t{
      Isa::kScalar,       gemm_nn_scalar,     gemm_tn_scalar,
      gemm_nt_scalar,     dot_scalar,         add_scalar,
      max_scalar,         scale_scalar,       axpy_scalar,
      ema_scalar,         ema_unpack_scalar,  pack_upper_scalar,
      unpack_upper_scalar, symmetrize_rows_scalar, transpose_scalar,
      absmax_scalar,      int8_quantize_scalar, int8_dequantize_scalar,
      fp16_pack_scalar,   fp16_unpack_scalar};
  return t;
}

}  // namespace detail

}  // namespace spdkfac::tensor::kernels
