// Portable scalar kernel table — the cross-platform numeric reference.
//
// Accumulation orders here define the contract the vector levels must
// respect per element (k ascending for the GEMMs, ascending dot tails):
// the AVX2 table may re-tile these loops but the per-element order of the
// scalar level is what golden numeric expectations are phrased against.
//
// Note the GEMMs carry no zero-skip branch: `if (a == 0.0) continue`
// would break IEEE special-value propagation (0 * NaN must stay NaN,
// 0 * inf must stay NaN) and defeats vectorization — the branch the seed
// kernels had was removed when this layer was introduced (regression
// test: tensor/test_matrix.cpp NaN/Inf propagation).
#include "tensor/kernels/kernels.hpp"

#include <algorithm>
#include <cstring>

namespace spdkfac::tensor::kernels {

namespace {

void gemm_nn_scalar(std::size_t rows, std::size_t K, std::size_t N,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t k = 0; k < K; ++k) {
      const double aik = ai[k];
      const double* bk = b + k * ldb;
      for (std::size_t j = 0; j < N; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_tn_scalar(std::size_t rows, std::size_t K, std::size_t N,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  // k outer keeps both streamed operands contiguous; each c(i,j) still
  // accumulates strictly k ascending.
  for (std::size_t k = 0; k < K; ++k) {
    const double* ak = a + k * lda;
    const double* bk = b + k * ldb;
    for (std::size_t i = 0; i < rows; ++i) {
      const double aki = ak[i];
      double* ci = c + i * ldc;
      for (std::size_t j = 0; j < N; ++j) ci[j] += aki * bk[j];
    }
  }
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += x[k] * y[k];
  return sum;
}

void gemm_nt_scalar(std::size_t rows, std::size_t K, std::size_t M,
                    const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t j = 0; j < M; ++j) {
      ci[j] += dot_scalar(ai, b + j * ldb, K);
    }
  }
}

void add_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void max_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void scale_scalar(double* dst, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= s;
}

void axpy_scalar(double* dst, const double* src, std::size_t n,
                 double alpha) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void ema_scalar(double* state, const double* fresh, std::size_t n,
                double decay) {
  const double blend = 1.0 - decay;
  for (std::size_t i = 0; i < n; ++i) {
    state[i] = decay * state[i] + blend * fresh[i];
  }
}

void ema_unpack_scalar(const double* packed, std::size_t d, double* state,
                       std::size_t lds, double decay, bool init) {
  // Pass 1: fold the packed values into the upper triangle, row runs
  // contiguous on both sides.
  const double blend = 1.0 - decay;
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    double* srow = state + r * lds;
    if (init) {
      for (std::size_t c = r; c < d; ++c) srow[c] = packed[idx++];
    } else {
      for (std::size_t c = r; c < d; ++c) {
        srow[c] = decay * srow[c] + blend * packed[idx++];
      }
    }
  }
  // Pass 2: mirror the lower triangle from the freshly written upper one.
  // Bitwise equal to folding each lower element directly, because the
  // pre-fold state is exactly symmetric (see header contract).
  for (std::size_t r = 1; r < d; ++r) {
    double* srow = state + r * lds;
    for (std::size_t c = 0; c < r; ++c) srow[c] = state[c * lds + r];
  }
}

void pack_upper_scalar(const double* a, std::size_t d, std::size_t lda,
                       double* out) {
  // Each row's packed run is contiguous in both representations.
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    std::memcpy(out + idx, a + r * lda + r, run * sizeof(double));
    idx += run;
  }
}

void unpack_upper_scalar(const double* packed, std::size_t d, double* a,
                         std::size_t lda) {
  std::size_t idx = 0;
  for (std::size_t r = 0; r < d; ++r) {
    const std::size_t run = d - r;
    std::memcpy(a + r * lda + r, packed + idx, run * sizeof(double));
    idx += run;
  }
  for (std::size_t r = 1; r < d; ++r) {
    double* arow = a + r * lda;
    for (std::size_t c = 0; c < r; ++c) arow[c] = a[c * lda + r];
  }
}

void symmetrize_rows_scalar(double* a, std::size_t n, std::size_t lda,
                            std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    double* arow = a + i * lda;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (arow[j] + a[j * lda + i]);
      arow[j] = avg;
      a[j * lda + i] = avg;
    }
  }
}

void transpose_scalar(const double* in, std::size_t rows, std::size_t cols,
                      std::size_t ldi, double* out, std::size_t ldo) {
  // Cache-blocked: a 32x32 double tile is 8 KiB per operand, so both the
  // row-streamed source and the column-strided destination stay resident
  // while the tile is swapped.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t re = std::min(rows, rb + kBlock);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t ce = std::min(cols, cb + kBlock);
      for (std::size_t r = rb; r < re; ++r) {
        const double* irow = in + r * ldi;
        for (std::size_t c = cb; c < ce; ++c) {
          out[c * ldo + r] = irow[c];
        }
      }
    }
  }
}

}  // namespace

namespace detail {

const KernelTable& scalar_table() noexcept {
  static const KernelTable t{
      Isa::kScalar,       gemm_nn_scalar,     gemm_tn_scalar,
      gemm_nt_scalar,     dot_scalar,         add_scalar,
      max_scalar,         scale_scalar,       axpy_scalar,
      ema_scalar,         ema_unpack_scalar,  pack_upper_scalar,
      unpack_upper_scalar, symmetrize_rows_scalar, transpose_scalar};
  return t;
}

}  // namespace detail

}  // namespace spdkfac::tensor::kernels
