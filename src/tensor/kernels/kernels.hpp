// Runtime-dispatched CPU microkernels for the factor/inverse hot path.
//
// Everything numeric the distributed optimizer spends its time in — the
// GEMM variants behind factor construction and preconditioning, the
// Cholesky/triangular-solve inner products of the SPD inverse, symmetric
// pack/unpack, the EMA fold, and the collectives' elementwise reduce
// loops — funnels through the function-pointer table returned by
// active().  Two implementations exist:
//
//   kScalar — portable C++ loops, the cross-platform numeric reference;
//   kAvx2   — cache-blocked AVX2/FMA double-precision microkernels
//             (4x8 register tiles for the GEMMs, 4-lane FMA dot products,
//             4x4 in-register transposes), compiled only on x86-64 and
//             selected only when CPUID reports AVX2+FMA.
//
// Dispatch is resolved once, at first use: the SPDKFAC_ISA environment
// variable ("scalar" or "avx2") overrides CPUID detection — requesting
// an unsupported level silently degrades to the best available one, so a
// pinned-ISA test suite still runs (and records what it ran at) on older
// hardware.  Tests and benches may also switch levels mid-process with
// force().
//
// Determinism contract (what the bitwise test suites rely on):
//
//   * Every kernel's result is a pure function of (inputs, shape, ISA
//     level).  Accumulation orders are fixed per level: the GEMMs sum k
//     ascending per output element regardless of row chunking or register
//     blocking, dot() uses a fixed 4-lane stripe + fixed-tree horizontal
//     sum + ascending tail, so results never depend on the exec pool size
//     or on how callers block their outer loops.
//   * Different ISA levels may round differently (FMA contracts mul+add
//     into one rounding); bitwise determinism holds *within* a level,
//     and the scalar level is the portable reference.
//   * The purely elementwise kernels (add/max/scale) are bitwise
//     identical across levels — vector lanes round exactly like the
//     scalar ops — which keeps the collectives' reduction bits stable
//     no matter which level each test forces.
//
// All pointers are to row-major double storage; kernels accept leading
// dimensions and never require alignment (unaligned loads are used
// throughout; the BufferArena still hands out 64-byte-aligned slabs so
// the common case hits aligned fast paths in hardware).
#pragma once

#include <cstddef>
#include <cstdint>

namespace spdkfac::tensor::kernels {

enum class Isa { kScalar = 0, kAvx2 = 1 };

const char* to_string(Isa isa) noexcept;

/// Whether this build + CPU can execute the level (kScalar: always).
bool supported(Isa isa) noexcept;

/// Highest supported level (CPUID-detected at first call).
Isa best_supported() noexcept;

/// Level in effect: resolved on first use from SPDKFAC_ISA (falling back
/// to best_supported() when unset, unparsable, or unsupported).
Isa active() noexcept;

/// Pins the active level (tests/benches).  Throws std::invalid_argument
/// for a level this build/CPU cannot execute.  Not thread-safe against
/// kernels running concurrently — switch between steps only.
void force(Isa isa);

/// One ISA level's kernel set.  All matrix arguments are row-major with
/// explicit leading dimensions; `rows`-style extents are block extents, so
/// callers pass pointers already offset to their block.
struct KernelTable {
  Isa isa;

  /// C[0..rows)x[0..N) += A[0..rows)x[0..K) * B[0..K)x[0..N).
  /// Per-element accumulation order: k ascending.
  void (*gemm_nn)(std::size_t rows, std::size_t K, std::size_t N,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc);

  /// C[0..rows)x[0..N) += A^T block * B: c(i,j) += a[k*lda + i] * b(k,j)
  /// (a points at the first column of the block).  k ascending.
  void (*gemm_tn)(std::size_t rows, std::size_t K, std::size_t N,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc);

  /// C[0..rows)x[0..M) += A * B^T: c(i,j) += dot(a_i, b_j) over K.
  void (*gemm_nt)(std::size_t rows, std::size_t K, std::size_t M,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc);

  /// sum_k x[k] * y[k] — the Cholesky column update reduces to this.
  double (*dot)(const double* x, const double* y, std::size_t n);

  // Elementwise reduce loops shared with comm::detail::accumulate/finalize
  // (bitwise identical across ISA levels — see file comment).
  void (*add)(double* dst, const double* src, std::size_t n);
  void (*max)(double* dst, const double* src, std::size_t n);
  void (*scale)(double* dst, std::size_t n, double s);

  /// dst[i] += alpha * src[i] — the row update of the multi-RHS triangular
  /// solves behind spd_inverse.  Vector levels contract into FMA (like
  /// ema): bitwise-stable within a level, close across levels.
  void (*axpy)(double* dst, const double* src, std::size_t n, double alpha);

  /// state = decay*state + (1-decay)*fresh, elementwise (the factor EMA).
  void (*ema)(double* state, const double* fresh, std::size_t n,
              double decay);

  /// Folds a packed upper triangle straight into a dense symmetric EMA
  /// state (both triangles), the zero-copy replacement for
  /// unpack_upper + dense EMA: with init, state(r,c) = packed value; else
  /// state(r,c) = decay*state(r,c) + (1-decay)*value.  Requires the dense
  /// state to be exactly symmetric (bitwise), which the EMA preserves.
  void (*ema_unpack)(const double* packed, std::size_t d, double* state,
                     std::size_t lds, double decay, bool init);

  /// Packed upper triangle (row-major, incl. diagonal) <-> dense symmetric.
  void (*pack_upper)(const double* a, std::size_t d, std::size_t lda,
                     double* out);
  void (*unpack_upper)(const double* packed, std::size_t d, double* a,
                       std::size_t lda);

  /// Averages a(i,j)/a(j,i) pairs owned by rows [r0, r1) (pair owner:
  /// min(i,j)), writing both mirror elements.
  void (*symmetrize_rows)(double* a, std::size_t n, std::size_t lda,
                          std::size_t r0, std::size_t r1);

  /// out(c, r) = in(r, c), cache-blocked.
  void (*transpose)(const double* in, std::size_t rows, std::size_t cols,
                    std::size_t ldi, double* out, std::size_t ldo);

  // -------------------------------------------------------------------------
  // Compressed-collective codec primitives (comm::Codec).  All four codec
  // kernels are bitwise identical across ISA levels: the fp16 conversion is
  // one shared software IEEE-754 converter (double -> float -> half, both
  // steps round-to-nearest-even) whose vector variant only vectorizes the
  // exactly-rounded double<->float step, and the int8 quantize is an
  // elementwise multiply + RNE round + clamp, all of which round the same
  // in scalar and vector lanes.  That is what lets the compressed
  // collectives promise cross-rank bitwise results regardless of which
  // level each rank dispatched to.
  // -------------------------------------------------------------------------

  /// max_i |src[i]| (0.0 for n == 0) — the int8 per-chunk scale probe.
  /// Exact (no rounding), hence order-independent and bitwise across levels.
  double (*absmax)(const double* src, std::size_t n);

  /// dst[i] = clamp(rne(src[i] * inv_scale), -127, 127) as a signed byte.
  /// inv_scale == 0 quantizes everything to 0 (the all-zero-chunk case).
  void (*int8_quantize)(const double* src, std::size_t n, double inv_scale,
                        signed char* dst);

  /// dst[i] = scale * src[i] (bytes widened exactly, one correctly rounded
  /// multiply).
  void (*int8_dequantize)(const signed char* src, std::size_t n, double scale,
                          double* dst);

  /// dst[i] = IEEE-754 binary16 bits of src[i], via double -> float (RNE)
  /// -> half (RNE).
  void (*fp16_pack)(const double* src, std::size_t n, std::uint16_t* dst);

  /// dst[i] = the exact double value of the half bits in src[i].
  void (*fp16_unpack)(const std::uint16_t* src, std::size_t n, double* dst);
};

/// The table of one specific level (kernel unit tests compare levels).
/// Requesting an unsupported level returns the scalar table.
const KernelTable& table(Isa isa) noexcept;

/// The table of the active level.  Callers should grab the reference once
/// per operation so a concurrent force() cannot tear a multi-call kernel.
inline const KernelTable& active_table() noexcept { return table(active()); }

}  // namespace spdkfac::tensor::kernels
