// Internal: the per-ISA kernel tables the dispatcher selects between.
// Not installed API — include "tensor/kernels/kernels.hpp" instead.
#pragma once

#include "tensor/kernels/kernels.hpp"

namespace spdkfac::tensor::kernels::detail {

const KernelTable& scalar_table() noexcept;

/// The AVX2/FMA table when this translation unit was compiled with AVX2
/// codegen (x86-64 + a compiler accepting -mavx2 -mfma); the scalar table
/// otherwise, with avx2_compiled() reporting which.
const KernelTable& avx2_table() noexcept;
bool avx2_compiled() noexcept;

/// The one software IEEE-754 half converter both tables' fp16 codec kernels
/// share (round-to-nearest-even both ways).  Defined in kernels_scalar.cpp;
/// the AVX2 fp16 kernels vectorize only the exactly-rounded double<->float
/// step and call these per element, which is what keeps the packed bits
/// identical across ISA levels.
std::uint16_t float_to_half(float f) noexcept;
float half_to_float(std::uint16_t h) noexcept;

}  // namespace spdkfac::tensor::kernels::detail
