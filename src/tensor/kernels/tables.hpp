// Internal: the per-ISA kernel tables the dispatcher selects between.
// Not installed API — include "tensor/kernels/kernels.hpp" instead.
#pragma once

#include "tensor/kernels/kernels.hpp"

namespace spdkfac::tensor::kernels::detail {

const KernelTable& scalar_table() noexcept;

/// The AVX2/FMA table when this translation unit was compiled with AVX2
/// codegen (x86-64 + a compiler accepting -mavx2 -mfma); the scalar table
/// otherwise, with avx2_compiled() reporting which.
const KernelTable& avx2_table() noexcept;
bool avx2_compiled() noexcept;

}  // namespace spdkfac::tensor::kernels::detail
