// Runtime ISA dispatch: CPUID detection, SPDKFAC_ISA override, force().
#include "tensor/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "tensor/kernels/tables.hpp"

namespace spdkfac::tensor::kernels {

namespace {

bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Resolves the initial level once: SPDKFAC_ISA if set and usable,
/// otherwise the best CPUID-supported level.  Unknown or unsupported
/// values degrade silently so a pinned-ISA suite still runs everywhere.
Isa resolve_initial() noexcept {
  Isa pick = best_supported();
  if (const char* env = std::getenv("SPDKFAC_ISA")) {
    const std::string v(env);
    if (v == "scalar") {
      pick = Isa::kScalar;
    } else if (v == "avx2" && supported(Isa::kAvx2)) {
      pick = Isa::kAvx2;
    }
  }
  return pick;
}

std::atomic<Isa>& active_level() noexcept {
  static std::atomic<Isa> level{resolve_initial()};
  return level;
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return detail::avx2_compiled() && cpu_has_avx2_fma();
  }
  return false;
}

Isa best_supported() noexcept {
  return supported(Isa::kAvx2) ? Isa::kAvx2 : Isa::kScalar;
}

Isa active() noexcept {
  return active_level().load(std::memory_order_relaxed);
}

void force(Isa isa) {
  if (!supported(isa)) {
    throw std::invalid_argument(
        std::string("kernels::force: ISA level '") + to_string(isa) +
        "' is not supported by this build/CPU");
  }
  active_level().store(isa, std::memory_order_relaxed);
}

const KernelTable& table(Isa isa) noexcept {
  if (isa == Isa::kAvx2 && supported(Isa::kAvx2)) {
    return detail::avx2_table();
  }
  return detail::scalar_table();
}

}  // namespace spdkfac::tensor::kernels
