// Dense linear-algebra kernels for symmetric positive-definite matrices.
//
// The paper computes the damped Kronecker-factor inverses (A + gamma*I)^-1
// and (G + gamma*I)^-1 with cuSolver's Cholesky path; this module is the CPU
// equivalent: Cholesky factorization, triangular solves, and an SPD inverse
// built on top of them.
#pragma once

#include <optional>
#include <span>

#include "tensor/matrix.hpp"

namespace spdkfac::tensor {

/// Result of a Cholesky factorization A = L * L^T with L lower triangular.
struct Cholesky {
  Matrix lower;

  /// Solves L * y = b in place.
  void solve_lower(std::span<double> b) const;

  /// Solves L^T * x = y in place.
  void solve_upper(std::span<double> b) const;

  /// Solves A x = b via the two triangular solves.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// log(det(A)) = 2 * sum(log(diag(L))).
  double log_det() const noexcept;
};

/// Cholesky-factorizes a symmetric positive-definite matrix.  Returns
/// std::nullopt when the matrix is not (numerically) positive definite.
std::optional<Cholesky> cholesky(const Matrix& a);

/// Inverse of an SPD matrix via Cholesky.  Throws std::domain_error when the
/// matrix is not positive definite.  The result is exactly symmetric (we
/// symmetrize the final product so downstream symmetric-packed communication
/// never drops information).
Matrix spd_inverse(const Matrix& a);

/// (A + damping*I)^-1 — the operation SPD-KFAC load-balances across GPUs.
/// Matches the paper's Tikhonov-regularized inverse of Eq. (12).
Matrix damped_inverse(const Matrix& a, double damping);

/// True when |a(i,j) - a(j,i)| <= tol for all i, j.
bool is_symmetric(const Matrix& a, double tol = 1e-9) noexcept;

/// Symmetrize in place: a <- (a + a^T) / 2.
void symmetrize(Matrix& a);

/// Floating-point operation estimate for an n x n SPD inverse through
/// Cholesky (factorize n^3/3 + invert L n^3/3 + multiply n^3/3 = n^3).
/// Used by the performance-model calibration tooling.
double spd_inverse_flops(std::size_t n) noexcept;

/// Eigendecomposition A = Q diag(lambda) Q^T of a symmetric matrix.
/// `eigenvectors` holds the (orthonormal) eigenvectors as columns, ordered
/// by ascending eigenvalue.
struct SymmetricEigen {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;

  /// Reconstructs (A + damping*I)^-1 = Q diag(1/(lambda_i + damping)) Q^T —
  /// the amortization trick real K-FAC systems use: one decomposition
  /// serves every damping value (KAISA / kfac-pytorch style).  Throws
  /// std::domain_error if any lambda_i + damping <= 0.
  Matrix damped_inverse(double damping) const;
};

/// Cyclic Jacobi eigensolver for symmetric matrices.  Converges to machine
/// precision in a handful of sweeps for the well-conditioned Kronecker
/// factors K-FAC produces; O(n^3) per sweep.
SymmetricEigen symmetric_eigen(const Matrix& a, int max_sweeps = 50,
                               double tol = 1e-12);

}  // namespace spdkfac::tensor
