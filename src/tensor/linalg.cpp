#include "tensor/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exec/context.hpp"
#include "exec/grain.hpp"
#include "tensor/kernels/kernels.hpp"

namespace spdkfac::tensor {

namespace {

/// Shape-only chunking (see exec/grain.hpp): ~64k inner ops per chunk, so
/// the kernels stay bitwise-deterministic across pool sizes and serial for
/// small factors.
std::size_t items_per_chunk(std::size_t ops_per_item) noexcept {
  return exec::grain_for_ops(ops_per_item);
}

}  // namespace

void Cholesky::solve_lower(std::span<double> b) const {
  const std::size_t n = lower.rows();
  const auto& kt = kernels::active_table();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = lower.row_ptr(i);
    b[i] = (b[i] - kt.dot(li, b.data(), i)) / li[i];
  }
}

void Cholesky::solve_upper(std::span<double> b) const {
  const std::size_t n = lower.rows();
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    // Traverse column ii of L below the diagonal, i.e. row entries L(k, ii).
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * b[k];
    b[ii] = sum / lower(ii, ii);
  }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_lower(x);
  solve_upper(x);
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  if (b.rows() != lower.rows()) {
    throw std::invalid_argument("Cholesky::solve shape mismatch");
  }
  Matrix x = b.transposed();  // iterate columns of b contiguously
  for (std::size_t c = 0; c < x.rows(); ++c) {
    std::span<double> col(x.row_ptr(c), x.cols());
    solve_lower(col);
    solve_upper(col);
  }
  return x.transposed();
}

double Cholesky::log_det() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i) {
    s += std::log(lower(i, i));
  }
  return 2.0 * s;
}

std::optional<Cholesky> cholesky(const Matrix& a) {
  if (!a.square()) {
    throw std::invalid_argument("cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double* lj = l.row_ptr(j);
    const double diag =
        a(j, j) - kernels::active_table().dot(lj, lj, j);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    // The column update below the diagonal is embarrassingly parallel: each
    // l(i, j) reads only finished rows; the inner product runs on the
    // active ISA's dot microkernel over the two contiguous row prefixes.
    const auto& kt = kernels::active_table();
    exec::parallel_for(
        n - j - 1, items_per_chunk(j + 1),
        [&, j, ljj](std::size_t s0, std::size_t s1) {
          for (std::size_t i = j + 1 + s0; i < j + 1 + s1; ++i) {
            l(i, j) = (a(i, j) - kt.dot(l.row_ptr(i), lj, j)) / ljj;
          }
        });
  }
  return Cholesky{std::move(l)};
}

Matrix spd_inverse(const Matrix& a) {
  auto chol = cholesky(a);
  if (!chol) {
    throw std::domain_error("spd_inverse: matrix is not positive definite");
  }
  const std::size_t n = a.rows();
  // Invert by solving A X = I with two *multi-RHS* triangular sweeps: each
  // chunk owns a range of identity columns and sweeps the rows of L (then
  // of U = L^T) once, updating its whole column block with contiguous
  // axpy/scale microkernels — the same O(n^3) flops as per-column solves,
  // but unit-stride FMA across the block width instead of the short
  // sequential dot products that used to dominate.
  //
  // Determinism: an output element (i, j) accumulates its k terms in
  // ascending order no matter how columns are chunked or blocked — the
  // forward sweep's update widths reach column j only for k >= j, the k
  // loops run ascending, and axpy/scale round per element independent of
  // lane position — so results stay bitwise identical across pool sizes
  // (within an ISA level), as the determinism suite requires.
  const Matrix upper = chol->lower.transposed();
  const auto& kt = kernels::active_table();
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) inv(j, j) = 1.0;
  // Column blocks of kBlock keep a sweep's working set (n rows x block
  // width) L2-resident while amortizing kernel-call overhead over
  // full-width axpy runs.  The chunk grain is floored at kBlock: narrower
  // chunks would degrade the sweeps to short-vector updates, and the
  // per-element accumulation order is block-width-invariant anyway.
  constexpr std::size_t kBlock = 64;
  exec::parallel_for(
      n, std::max(items_per_chunk(2 * n * n), kBlock),
      [&](std::size_t j0, std::size_t j1) {
        // Each row update is a 1-row GEMM with the negated L/U row as the
        // coefficient vector: the destination row rides in registers
        // across the whole k sweep instead of being re-loaded per k, and
        // gemm_nn's k-ascending per-element order makes the bits equal to
        // an axpy-per-k formulation (negation is exact).  Updates past a
        // row's triangular frontier multiply exact zeros of Y, which
        // leaves every element's bits untouched.
        std::vector<double> neg(n);
        for (std::size_t b0 = j0; b0 < j1; b0 += kBlock) {
          const std::size_t b1 = std::min(j1, b0 + kBlock);
          const std::size_t w = b1 - b0;
          // Forward sweep: Y = L^{-1} I over columns [b0, b1).  Y is lower
          // triangular, so rows above b0 stay zero.
          for (std::size_t i = b0; i < n; ++i) {
            const double* li = chol->lower.row_ptr(i);
            double* yi = inv.row_ptr(i) + b0;
            const std::size_t K = i - b0;
            for (std::size_t k = 0; k < K; ++k) neg[k] = -li[b0 + k];
            kt.gemm_nn(1, K, w, neg.data(), n, inv.row_ptr(b0) + b0, n, yi,
                       n);
            kt.scale(yi, w, 1.0 / li[i]);
          }
          // Back sweep: X = U^{-1} Y, rows descending, full block width.
          for (std::size_t i = n; i-- > 0;) {
            const double* ui = upper.row_ptr(i);
            double* xi = inv.row_ptr(i) + b0;
            const std::size_t K = n - i - 1;
            for (std::size_t k = 0; k < K; ++k) neg[k] = -ui[i + 1 + k];
            kt.gemm_nn(1, K, w, neg.data(), n, inv.row_ptr(i + 1) + b0, n,
                       xi, n);
            kt.scale(xi, w, 1.0 / ui[i]);
          }
        }
      });
  symmetrize(inv);
  return inv;
}

Matrix damped_inverse(const Matrix& a, double damping) {
  Matrix damped = a;
  damped.add_diagonal(damping);
  return spd_inverse(damped);
}

bool is_symmetric(const Matrix& a, double tol) noexcept {
  if (!a.square()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol) return false;
    }
  }
  return true;
}

void symmetrize(Matrix& a) {
  if (!a.square()) {
    throw std::invalid_argument("symmetrize requires a square matrix");
  }
  // Each unordered pair {i, j} is owned by the chunk containing min(i, j),
  // so chunks write disjoint element sets.  0.5*(x+y) is elementwise, so
  // every ISA level produces identical bits here.
  const auto& kt = kernels::active_table();
  exec::parallel_for(a.rows(), items_per_chunk(a.cols()),
                     [&](std::size_t r0, std::size_t r1) {
                       kt.symmetrize_rows(a.row_ptr(0), a.rows(), a.cols(),
                                          r0, r1);
                     });
}

double spd_inverse_flops(std::size_t n) noexcept {
  const double nd = static_cast<double>(n);
  return nd * nd * nd;
}

Matrix SymmetricEigen::damped_inverse(double damping) const {
  const std::size_t n = eigenvalues.size();
  // Validate serially (throwing out of a pool chunk is not allowed), then
  // build Q * diag(1/(lambda+damping)) in parallel row blocks; the
  // reconstruction GEMM and symmetrize parallelize internally.
  std::vector<double> inv_denoms(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double denom = eigenvalues[j] + damping;
    if (denom <= 0.0 || !std::isfinite(denom)) {
      throw std::domain_error(
          "SymmetricEigen::damped_inverse: non-positive damped eigenvalue");
    }
    inv_denoms[j] = 1.0 / denom;
  }
  Matrix scaled(n, n);  // Q * diag(1/(lambda+damping))
  exec::parallel_for(n, items_per_chunk(n),
                     [&](std::size_t r0, std::size_t r1) {
                       for (std::size_t i = r0; i < r1; ++i) {
                         for (std::size_t j = 0; j < n; ++j) {
                           scaled(i, j) = eigenvectors(i, j) * inv_denoms[j];
                         }
                       }
                     });
  Matrix result = matmul_nt(scaled, eigenvectors);
  symmetrize(result);
  return result;
}

SymmetricEigen symmetric_eigen(const Matrix& a, int max_sweeps, double tol) {
  if (!a.square()) {
    throw std::invalid_argument("symmetric_eigen requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix m = a;
  symmetrize(m);
  Matrix q = Matrix::identity(n);

  // Parallel sweep-convergence check with a deterministic reduction: chunk
  // partial sums land in fixed slots and combine in chunk order, so the
  // result never depends on the pool size.  (The rotations themselves stay
  // serial — cyclic Jacobi is sequentially dependent rotation to rotation.)
  auto off_diagonal_norm = [&m, n] {
    const std::size_t chunk = items_per_chunk(n);
    const std::size_t nchunks = (n + chunk - 1) / chunk;
    std::vector<double> partial(std::max<std::size_t>(nchunks, 1), 0.0);
    exec::parallel_for(n, chunk, [&](std::size_t r0, std::size_t r1) {
      double s = 0.0;
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
      }
      partial[r0 / chunk] = s;
    });
    double s = 0.0;
    for (double p : partial) s += p;
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(m.max_abs(), 1.0);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * scale * n) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q_idx = p + 1; q_idx < n; ++q_idx) {
        const double apq = m(p, q_idx);
        if (std::abs(apq) <= tol * scale) continue;
        // Classic Jacobi rotation annihilating m(p, q).
        const double theta = (m(q_idx, q_idx) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p), mkq = m(k, q_idx);
          m(k, p) = c * mkp - s * mkq;
          m(k, q_idx) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k), mqk = m(q_idx, k);
          m(p, k) = c * mpk - s * mqk;
          m(q_idx, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p), qkq = q(k, q_idx);
          q(k, p) = c * qkp - s * qkq;
          q(k, q_idx) = s * qkp + c * qkq;
        }
      }
    }
  }

  SymmetricEigen eigen;
  eigen.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) eigen.eigenvalues[i] = m(i, i);

  // Sort ascending, permuting the eigenvector columns accordingly.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&eigen](std::size_t x,
                                                 std::size_t y) {
    return eigen.eigenvalues[x] < eigen.eigenvalues[y];
  });
  SymmetricEigen sorted;
  sorted.eigenvalues.resize(n);
  sorted.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted.eigenvalues[j] = eigen.eigenvalues[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted.eigenvectors(i, j) = q(i, order[j]);
    }
  }
  return sorted;
}

}  // namespace spdkfac::tensor
