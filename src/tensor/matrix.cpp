#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "exec/context.hpp"
#include "exec/grain.hpp"
#include "tensor/kernels/kernels.hpp"

namespace spdkfac::tensor {

namespace {

/// Output rows per parallel_for chunk (see exec/grain.hpp).  Chunking
/// depends only on the shape (never on the pool size), which keeps every
/// kernel bitwise-deterministic across pool sizes — each output element is
/// produced by exactly one chunk, and the microkernels' per-element
/// accumulation order is independent of the chunk boundaries.
std::size_t rows_per_chunk(std::size_t ops_per_row) noexcept {
  return exec::grain_for_ops(ops_per_row);
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix initializer rows differ in length");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix += shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix -= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& v : data_) v *= scalar;
  return *this;
}

void Matrix::add_diagonal(double value) {
  if (!square()) {
    throw std::invalid_argument("add_diagonal requires a square matrix");
  }
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

void Matrix::set_zero() noexcept {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  if (rows_ == 0 || cols_ == 0) return t;
  kernels::active_table().transpose(data_.data(), rows_, cols_, cols_,
                                    t.row_ptr(0), rows_);
  return t;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul shape mismatch");
  }
  Matrix c(a.rows(), b.cols());
  if (c.rows() == 0 || c.cols() == 0) return c;
  // Rows of c are independent, so the outer loop blocks across the ambient
  // pool; each chunk runs the active ISA's register-tiled microkernel.  No
  // zero-skip on a(i,k): it would break IEEE special-value propagation
  // (0 * NaN must stay NaN) and defeat vectorization.
  const auto& kt = kernels::active_table();
  exec::parallel_for(
      a.rows(), rows_per_chunk(a.cols() * b.cols()),
      [&](std::size_t r0, std::size_t r1) {
        kt.gemm_nn(r1 - r0, a.cols(), b.cols(), a.row_ptr(r0), a.cols(),
                   b.row_ptr(0), b.cols(), c.row_ptr(r0), c.cols());
      });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn shape mismatch");
  }
  Matrix c(a.cols(), b.cols());
  if (c.rows() == 0 || c.cols() == 0) return c;
  // Parallel over blocks of c's rows (columns of a); every microkernel
  // accumulates each c(i,j) strictly k ascending, so results are bitwise
  // identical across chunkings within an ISA level.  No zero-skip (IEEE
  // NaN/Inf propagation — see matmul).
  const auto& kt = kernels::active_table();
  exec::parallel_for(
      a.cols(), rows_per_chunk(a.rows() * b.cols()),
      [&](std::size_t i0, std::size_t i1) {
        kt.gemm_tn(i1 - i0, a.rows(), b.cols(), a.row_ptr(0) + i0, a.cols(),
                   b.row_ptr(0), b.cols(), c.row_ptr(i0), c.cols());
      });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt shape mismatch");
  }
  Matrix c(a.rows(), b.rows());
  if (c.rows() == 0 || c.cols() == 0) return c;
  const auto& kt = kernels::active_table();
  exec::parallel_for(
      a.rows(), rows_per_chunk(a.cols() * b.rows()),
      [&](std::size_t r0, std::size_t r1) {
        kt.gemm_nt(r1 - r0, a.cols(), b.rows(), a.row_ptr(r0), a.cols(),
                   b.row_ptr(0), b.cols(), c.row_ptr(r0), c.cols());
      });
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec shape mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double sum = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) sum += ai[k] * x[k];
    y[i] = sum;
  }
  return y;
}

bool allclose(const Matrix& a, const Matrix& b, double rtol,
              double atol) noexcept {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (std::abs(da[i] - db[i]) > atol + rtol * std::abs(db[i])) return false;
  }
  return true;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff shape mismatch");
  }
  double m = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    m = std::max(m, std::abs(da[i] - db[i]));
  }
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << "\n";
  }
  return os << "]";
}

}  // namespace spdkfac::tensor
