#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "exec/context.hpp"

namespace spdkfac::tensor {

namespace {

/// Output rows per parallel_for chunk, targeting ~64k inner operations so
/// small matrices stay serial and large ones split with negligible per-chunk
/// overhead.  Chunking depends only on the shape (never on the pool size),
/// which keeps every kernel bitwise-deterministic across pool sizes — each
/// output element is produced by exactly one chunk, by the serial code.
std::size_t rows_per_chunk(std::size_t ops_per_row) noexcept {
  constexpr std::size_t kTargetOps = std::size_t{1} << 16;
  return std::max<std::size_t>(1, kTargetOps / std::max<std::size_t>(ops_per_row, 1));
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix initializer rows differ in length");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix += shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix -= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& v : data_) v *= scalar;
  return *this;
}

void Matrix::add_diagonal(double value) {
  if (!square()) {
    throw std::invalid_argument("add_diagonal requires a square matrix");
  }
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

void Matrix::set_zero() noexcept {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul shape mismatch");
  }
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // both b and c, which is the standard cache-friendly ordering for
  // row-major storage.  Rows of c are independent, so the outer loop blocks
  // across the ambient pool.
  exec::parallel_for(
      a.rows(), rows_per_chunk(a.cols() * b.cols()),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          double* ci = c.row_ptr(i);
          const double* ai = a.row_ptr(i);
          for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = ai[k];
            if (aik == 0.0) continue;
            const double* bk = b.row_ptr(k);
            for (std::size_t j = 0; j < b.cols(); ++j) {
              ci[j] += aik * bk[j];
            }
          }
        }
      });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn shape mismatch");
  }
  Matrix c(a.cols(), b.cols());
  // Parallel over blocks of c's rows (columns of a); the k-outer traversal
  // inside each block keeps the per-element accumulation order of the
  // serial kernel (k ascending), so results are bitwise identical.
  exec::parallel_for(
      a.cols(), rows_per_chunk(a.rows() * b.cols()),
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t k = 0; k < a.rows(); ++k) {
          const double* ak = a.row_ptr(k);
          const double* bk = b.row_ptr(k);
          for (std::size_t i = i0; i < i1; ++i) {
            const double aki = ak[i];
            if (aki == 0.0) continue;
            double* ci = c.row_ptr(i);
            for (std::size_t j = 0; j < b.cols(); ++j) {
              ci[j] += aki * bk[j];
            }
          }
        }
      });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt shape mismatch");
  }
  Matrix c(a.rows(), b.rows());
  exec::parallel_for(
      a.rows(), rows_per_chunk(a.cols() * b.rows()),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* ai = a.row_ptr(i);
          double* ci = c.row_ptr(i);
          for (std::size_t j = 0; j < b.rows(); ++j) {
            const double* bj = b.row_ptr(j);
            double sum = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k) sum += ai[k] * bj[k];
            ci[j] = sum;
          }
        }
      });
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec shape mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double sum = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) sum += ai[k] * x[k];
    y[i] = sum;
  }
  return y;
}

bool allclose(const Matrix& a, const Matrix& b, double rtol,
              double atol) noexcept {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (std::abs(da[i] - db[i]) > atol + rtol * std::abs(db[i])) return false;
  }
  return true;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff shape mismatch");
  }
  double m = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    m = std::max(m, std::abs(da[i] - db[i]));
  }
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << "\n";
  }
  return os << "]";
}

}  // namespace spdkfac::tensor
