#include "tensor/symmetric.hpp"

#include <stdexcept>

#include "tensor/kernels/kernels.hpp"

namespace spdkfac::tensor {

SymmetricPacked::SymmetricPacked(std::size_t dim)
    : dim_(dim), data_(packed_size(dim), 0.0) {}

SymmetricPacked SymmetricPacked::pack(const Matrix& dense) {
  if (!dense.square()) {
    throw std::invalid_argument("SymmetricPacked::pack requires square input");
  }
  SymmetricPacked p(dense.rows());
  pack_upper(dense, p.data());
  return p;
}

Matrix SymmetricPacked::unpack() const {
  Matrix dense(dim_, dim_);
  unpack_upper(data_, dense);
  return dense;
}

double& SymmetricPacked::at(std::size_t r, std::size_t c) noexcept {
  if (r > c) std::swap(r, c);
  return data_[packed_index(r, c, dim_)];
}

double SymmetricPacked::at(std::size_t r, std::size_t c) const noexcept {
  if (r > c) std::swap(r, c);
  return data_[packed_index(r, c, dim_)];
}

void pack_upper(const Matrix& dense, std::span<double> out) {
  const std::size_t d = dense.rows();
  if (out.size() != packed_size(d)) {
    throw std::invalid_argument("pack_upper: output span has wrong size");
  }
  if (d == 0) return;
  kernels::active_table().pack_upper(dense.row_ptr(0), d, dense.cols(),
                                     out.data());
}

void unpack_upper(std::span<const double> packed, Matrix& dense) {
  const std::size_t d = dense.rows();
  if (!dense.square() || packed.size() != packed_size(d)) {
    throw std::invalid_argument("unpack_upper: size mismatch");
  }
  if (d == 0) return;
  kernels::active_table().unpack_upper(packed.data(), d, dense.row_ptr(0),
                                       dense.cols());
}

}  // namespace spdkfac::tensor
