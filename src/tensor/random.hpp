// Deterministic random helpers for tests, benchmarks and the synthetic
// training workloads.  Everything is seeded explicitly so distributed runs
// are reproducible across worker threads.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/matrix.hpp"

namespace spdkfac::tensor {

using Rng = std::mt19937_64;

/// Matrix with i.i.d. N(mean, stddev^2) entries.
Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                     double mean = 0.0, double stddev = 1.0);

/// Matrix with i.i.d. U(lo, hi) entries.
Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                      double lo = 0.0, double hi = 1.0);

/// Random symmetric positive-definite matrix: B^T B / n + jitter * I with B
/// an n x n Gaussian matrix.  `jitter` keeps the spectrum away from zero so
/// Cholesky succeeds even for large n.
Matrix random_spd(std::size_t n, Rng& rng, double jitter = 1e-3);

/// Fills a span with N(0,1) samples.
void fill_normal(std::span<double> out, Rng& rng, double mean = 0.0,
                 double stddev = 1.0);

}  // namespace spdkfac::tensor
