#include "tensor/random.hpp"

namespace spdkfac::tensor {

Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng, double mean,
                     double stddev) {
  Matrix m(rows, cols);
  fill_normal(m.data(), rng, mean, stddev);
  return m;
}

Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& v : m.data()) v = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng, double jitter) {
  Matrix b = random_normal(n, n, rng);
  Matrix spd = matmul_tn(b, b);
  spd *= 1.0 / static_cast<double>(n);
  spd.add_diagonal(jitter);
  return spd;
}

void fill_normal(std::span<double> out, Rng& rng, double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  for (double& v : out) v = dist(rng);
}

}  // namespace spdkfac::tensor
