#include "sim/iteration.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace spdkfac::sim {

AlgorithmConfig AlgorithmConfig::sgd() {
  AlgorithmConfig cfg;
  cfg.name = "SGD";
  cfg.second_order = false;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::kfac() {
  AlgorithmConfig cfg;
  cfg.name = "KFAC";
  cfg.second_order = true;
  cfg.factor_comm = FactorCommMode::kBulk;
  cfg.inverse = InverseMode::kLocalAll;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::dkfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "D-KFAC";
  return cfg;
}

AlgorithmConfig AlgorithmConfig::mpd_kfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "MPD-KFAC";
  cfg.inverse = InverseMode::kSeqDist;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::spd_kfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "SPD-KFAC";
  cfg.factor_comm = FactorCommMode::kOptimalFuse;
  cfg.inverse = InverseMode::kLBP;
  return cfg;
}

namespace {

/// Pending communication op, gathered from all passes and then submitted to
/// the communication streams in readiness order (mirroring the async
/// engine's FIFO queue).
struct CommOp {
  double ready = 0.0;
  TaskKind kind = TaskKind::kOther;
  double duration = 0.0;
  std::vector<int> deps;
  std::string label;
  std::size_t elements = 0;
  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing;
};

/// Prices one gang all-reduce under the config's algorithm policy: kRing
/// keeps the seed's Eq. (14) pricing; otherwise the calibration's selector
/// supplies (or picks, for kAuto) the algorithm and its alpha+beta*m cost.
class CollectivePricer {
 public:
  CollectivePricer(const perf::ClusterCalibration& cal,
                   const AlgorithmConfig& cfg)
      : cal_(cal), policy_(cfg.collective_algo) {
    if (policy_ != comm::AllReduceAlgo::kRing) {
      selector_ = cal.effective_selector();
    }
  }

  std::pair<double, comm::AllReduceAlgo> price(std::size_t elements) const {
    if (policy_ == comm::AllReduceAlgo::kRing) {
      return {cal_.allreduce.time(elements), comm::AllReduceAlgo::kRing};
    }
    const comm::AllReduceAlgo algo = policy_ == comm::AllReduceAlgo::kAuto
                                         ? selector_.choose(elements)
                                         : policy_;
    return {selector_.cost(algo, elements), algo};
  }

  /// Trace labels carry the algorithm only when the config departs from
  /// the seed's implicit ring (keeps seed-era golden labels stable).
  std::string decorate(std::string label, comm::AllReduceAlgo algo) const {
    if (policy_ == comm::AllReduceAlgo::kRing) return label;
    return label + "@" + comm::to_string(algo);
  }

 private:
  const perf::ClusterCalibration& cal_;
  comm::AllReduceAlgo policy_;
  comm::AlgorithmSelector selector_;
};

core::FusionPolicy to_policy(FactorCommMode mode) {
  switch (mode) {
    case FactorCommMode::kLayerWise:
      return core::FusionPolicy::kNoFusion;
    case FactorCommMode::kThresholdFuse:
      return core::FusionPolicy::kThreshold;
    case FactorCommMode::kOptimalFuse:
      return core::FusionPolicy::kOptimal;
    case FactorCommMode::kBulk:
    case FactorCommMode::kNaive:
      return core::FusionPolicy::kSingleBulk;
  }
  return core::FusionPolicy::kSingleBulk;
}

}  // namespace

IterationResult simulate_iteration(const models::ModelSpec& model,
                                   std::size_t batch,
                                   const perf::ClusterCalibration& cal,
                                   const AlgorithmConfig& cfg) {
  const int world = cal.world_size;
  const std::size_t L = model.layers.size();
  if (L == 0) throw std::invalid_argument("simulate_iteration: empty model");

  EventSim es;
  // Streams per GPU: one compute stream, one communication stream for the
  // factor/inverse traffic (the paper's own fusion controller + broadcast
  // path), and one for gradient aggregation (Horovod's communicator — a
  // separate NCCL channel in the paper's implementation, so gradient
  // all-reduces do not queue behind factor all-reduces).
  std::vector<int> comp(world), comm(world), gcomm(world);
  std::vector<std::string> stream_names;
  for (int p = 0; p < world; ++p) {
    comp[p] = es.add_stream("gpu" + std::to_string(p) + ".comp");
    comm[p] = es.add_stream("gpu" + std::to_string(p) + ".comm");
    gcomm[p] = es.add_stream("gpu" + std::to_string(p) + ".gradcomm");
  }
  // Shared-fabric stream: concurrent broadcasts from different roots contend
  // here (all-reduces already gang every per-GPU comm stream).
  const int fabric = es.add_stream("fabric");
  for (int p = 0; p < world; ++p) {
    stream_names.push_back(es.stream_name(comp[p]));
    stream_names.push_back(es.stream_name(comm[p]));
    stream_names.push_back(es.stream_name(gcomm[p]));
  }
  stream_names.push_back(es.stream_name(fabric));
  std::vector<int> factor_comm_streams(comm.begin(), comm.end());
  factor_comm_streams.push_back(fabric);
  std::vector<int> grad_comm_streams(gcomm.begin(), gcomm.end());

  // Per-layer task durations from the compute model.
  std::vector<double> t_fwd(L), t_bwd(L), t_a(L), t_g(L);
  for (std::size_t l = 0; l < L; ++l) {
    const auto& layer = model.layers[l];
    t_fwd[l] = cal.compute.fwd_time(layer.fwd_flops(batch));
    t_bwd[l] = cal.compute.bwd_time(layer.bwd_flops(batch));
    if (cfg.second_order) {
      t_a[l] = cal.compute.factor_time(layer.factor_a_flops(batch));
      t_g[l] = cal.compute.factor_time(layer.factor_g_flops(batch));
    }
  }

  // -------------------------------------------------------------------
  // Forward pass on the representative GPU 0 (all workers are symmetric
  // until the inverse phase):  A_0 F_1 A_1 F_2 ... A_{L-1} F_L (Fig. 1b).
  // -------------------------------------------------------------------
  std::vector<int> a_comp_id(L, -1), g_comp_id(L, -1), b_id(L, -1);
  std::vector<double> a_ready(L, 0.0), g_ready(L, 0.0), grad_ready(L, 0.0);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    if (cfg.second_order) {
      a_comp_id[l] = es.add_task(TaskKind::kFactorComp, t_a[l], comp[0], {},
                                 "A" + std::to_string(l));
      clock += t_a[l];
      a_ready[l] = clock;
    }
    es.add_task(TaskKind::kForward, t_fwd[l], comp[0], {},
                "F" + std::to_string(l + 1));
    clock += t_fwd[l];
  }

  // -------------------------------------------------------------------
  // Backward pass: B_L G_L ... B_1 G_1; gradients ready after each B.
  // -------------------------------------------------------------------
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    b_id[l] = es.add_task(TaskKind::kBackward, t_bwd[l], comp[0], {},
                          "B" + std::to_string(l + 1));
    clock += t_bwd[l];
    grad_ready[l] = clock;
    if (cfg.second_order) {
      g_comp_id[l] = es.add_task(TaskKind::kFactorComp, t_g[l], comp[0], {},
                                 "G" + std::to_string(l + 1));
      clock += t_g[l];
      g_ready[l] = clock;
    }
  }
  const double bwd_end = clock;
  const int last_comp_id =
      cfg.second_order ? g_comp_id[0] : b_id[0];

  // -------------------------------------------------------------------
  // Communication plan (world > 1): gradient WFBP groups plus the factor
  // aggregation ops of the configured mode, submitted in readiness order.
  // -------------------------------------------------------------------
  std::vector<CommOp> comm_ops;
  double factor_comm_busy = 0.0;
  const CollectivePricer pricer(cal, cfg);

  if (world > 1) {
    // Gradients: threshold fusion over backward order (Horovod default in
    // every algorithm of the paper).
    {
      std::size_t acc = 0;
      std::size_t group_tail_layer = L;  // first (deepest) member
      for (std::size_t i = 0; i < L; ++i) {
        const std::size_t l = L - 1 - i;
        if (acc == 0) group_tail_layer = l;
        acc += model.layers[l].params();
        const bool flush =
            acc >= cfg.grad_fusion_threshold || l == 0;
        if (flush) {
          CommOp op;
          op.ready = grad_ready[l];
          op.kind = TaskKind::kGradComm;
          std::tie(op.duration, op.algo) = pricer.price(acc);
          op.elements = acc;
          op.deps = {b_id[l]};
          op.label = pricer.decorate("grad[" + std::to_string(l) + ".." +
                                         std::to_string(group_tail_layer) +
                                         "]",
                                     op.algo);
          comm_ops.push_back(std::move(op));
          acc = 0;
        }
      }
    }

    if (cfg.second_order) {
      std::vector<std::size_t> a_sizes(L), g_sizes_rev(L);
      for (std::size_t l = 0; l < L; ++l) {
        a_sizes[l] = model.layers[l].a_elements();
        g_sizes_rev[l] = model.layers[L - 1 - l].g_elements();
      }

      if (cfg.factor_comm == FactorCommMode::kBulk ||
          cfg.factor_comm == FactorCommMode::kNaive) {
        const std::size_t a_total =
            std::accumulate(a_sizes.begin(), a_sizes.end(), std::size_t{0});
        const std::size_t g_total = std::accumulate(
            g_sizes_rev.begin(), g_sizes_rev.end(), std::size_t{0});
        CommOp a_op;
        a_op.kind = TaskKind::kFactorComm;
        std::tie(a_op.duration, a_op.algo) = pricer.price(a_total);
        a_op.elements = a_total;
        a_op.label = pricer.decorate("A-bulk", a_op.algo);
        if (cfg.factor_comm == FactorCommMode::kNaive) {
          // Naive pipelining: ship all A factors while the backward pass
          // computes the G factors.
          a_op.ready = a_ready[L - 1];
          a_op.deps = {a_comp_id[L - 1]};
        } else {
          a_op.ready = bwd_end;
          a_op.deps = {last_comp_id};
        }
        CommOp g_op;
        g_op.kind = TaskKind::kFactorComm;
        std::tie(g_op.duration, g_op.algo) = pricer.price(g_total);
        g_op.elements = g_total;
        g_op.ready = bwd_end;
        g_op.deps = {last_comp_id};
        g_op.label = pricer.decorate("G-bulk", g_op.algo);
        factor_comm_busy += a_op.duration + g_op.duration;
        comm_ops.push_back(std::move(a_op));
        comm_ops.push_back(std::move(g_op));
      } else {
        // Layer-wise pipelined aggregation: plan fused groups for the A pass
        // (forward) and the G pass (backward, deepest layer first).
        const core::FusionPolicy policy = to_policy(cfg.factor_comm);
        core::FusionPlanInput a_input{a_ready, a_sizes, 0.0};
        const auto a_groups =
            core::plan_fusion(a_input, cal.allreduce, policy);
        double stream_free = a_groups.empty() ? 0.0 : a_groups.back().comm_end;
        std::vector<double> g_ready_rev(L);
        for (std::size_t i = 0; i < L; ++i) g_ready_rev[i] = g_ready[L - 1 - i];
        core::FusionPlanInput g_input{g_ready_rev, g_sizes_rev, stream_free};
        const auto g_groups =
            core::plan_fusion(g_input, cal.allreduce, policy);

        for (const auto& g : a_groups) {
          CommOp op;
          op.ready = g.ready_time;
          op.kind = TaskKind::kFactorComm;
          std::tie(op.duration, op.algo) = pricer.price(g.elements);
          op.elements = g.elements;
          op.deps = {a_comp_id[g.last]};
          op.label = pricer.decorate("A[" + std::to_string(g.first) + ".." +
                                         std::to_string(g.last) + "]",
                                     op.algo);
          factor_comm_busy += op.duration;
          comm_ops.push_back(std::move(op));
        }
        for (const auto& g : g_groups) {
          CommOp op;
          op.ready = g.ready_time;
          op.kind = TaskKind::kFactorComm;
          std::tie(op.duration, op.algo) = pricer.price(g.elements);
          op.elements = g.elements;
          // Index i in the reversed G sequence maps to layer L-1-i.
          op.deps = {g_comp_id[L - 1 - g.last]};
          op.label = pricer.decorate("G[" + std::to_string(g.first) + ".." +
                                         std::to_string(g.last) + "]",
                                     op.algo);
          factor_comm_busy += op.duration;
          comm_ops.push_back(std::move(op));
        }
      }
    }

    std::stable_sort(comm_ops.begin(), comm_ops.end(),
                     [](const CommOp& a, const CommOp& b) {
                       return a.ready < b.ready;
                     });
  }

  IterationResult result;
  std::vector<int> factor_comm_ids;
  for (const CommOp& op : comm_ops) {
    const auto& streams = op.kind == TaskKind::kGradComm
                              ? grad_comm_streams
                              : factor_comm_streams;
    const int id =
        es.add_gang_task(op.kind, op.duration, streams, op.deps, op.label);
    if (op.kind == TaskKind::kFactorComm) factor_comm_ids.push_back(id);
    result.collectives.push_back(
        {op.label, op.kind, op.elements, op.algo, op.duration});
  }

  result.algorithm = cfg.name;
  result.factor_comm_busy = factor_comm_busy;

  // -------------------------------------------------------------------
  // Inverse phase: place the 2L damped inverses per the configured policy
  // and schedule comp (+ broadcast for CTs) on every GPU.  Tensor order:
  // T_{2l} = A_l, T_{2l+1} = G_l, matching the paper's T_1..T_2L.
  // -------------------------------------------------------------------
  if (cfg.second_order) {
    std::vector<std::size_t> dims(2 * L);
    for (std::size_t l = 0; l < L; ++l) {
      dims[2 * l] = model.layers[l].dim_a();
      dims[2 * l + 1] = model.layers[l].dim_g();
    }

    switch (cfg.inverse) {
      case InverseMode::kLocalAll:
        result.placement = core::nondist_place(dims, world);
        break;
      case InverseMode::kSeqDist:
        result.placement = core::seq_place(dims, world);
        break;
      case InverseMode::kLBP:
        // CT/NCT decisions compare against the fabric broadcast cost the
        // tensor would actually pay.
        result.placement = core::lbp_place(dims, world, cal.inverse,
                                           cal.bcast_fabric, cfg.balance);
        break;
    }

    // All GPUs hold consistent global factors only after every factor
    // aggregation finished (the barrier of Fig. 1b).
    std::vector<int> barrier = factor_comm_ids;
    if (barrier.empty()) barrier.push_back(last_comp_id);

    // Worklist per GPU: owned CTs plus every NCT.  LBP emits CTs
    // largest-first; keep that order and merge NCTs in descending dimension
    // so small replicated inverses fill the tail while broadcasts drain.
    std::vector<std::vector<std::size_t>> worklists(world);
    for (int p = 0; p < world; ++p) {
      worklists[p] = result.placement.per_gpu[p];
      for (const auto& a : result.placement.assignments) {
        if (a.nct) worklists[p].push_back(a.tensor);
      }
      if (cfg.inverse == InverseMode::kLBP) {
        std::stable_sort(worklists[p].begin(), worklists[p].end(),
                         [&](std::size_t x, std::size_t y) {
                           return dims[x] > dims[y];
                         });
      }
    }
    // Submit round-robin across GPUs so the fabric stream's FIFO order
    // matches actual readiness (all GPUs start their r-th inverse at about
    // the same time); per-GPU task order is preserved.
    std::size_t max_len = 0;
    for (const auto& wl : worklists) max_len = std::max(max_len, wl.size());
    for (std::size_t r = 0; r < max_len; ++r) {
      for (int p = 0; p < world; ++p) {
        if (r >= worklists[p].size()) continue;
        const std::size_t t = worklists[p][r];
        const int inv_id = es.add_task(
            TaskKind::kInverseComp, cal.inverse.time(dims[t]), comp[p],
            barrier, "inv[T" + std::to_string(t) + "]");
        if (!result.placement.assignments[t].nct && world > 1) {
          es.add_gang_task(TaskKind::kInverseComm,
                           cal.bcast_fabric.time_dim(dims[t]),
                           {comm[p], fabric}, {inv_id},
                           "bcast[T" + std::to_string(t) + "]");
        }
      }
    }
  }

  result.schedule = es.run();
  result.total = result.schedule.makespan;
  result.breakdown = compute_breakdown(result.schedule);
  result.stream_names = stream_names;
  return result;
}

double iteration_time(const models::ModelSpec& model, std::size_t batch,
                      const perf::ClusterCalibration& cal,
                      const AlgorithmConfig& cfg) {
  return simulate_iteration(model, batch, cal, cfg).total;
}

}  // namespace spdkfac::sim
