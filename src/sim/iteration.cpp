#include "sim/iteration.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spdkfac::sim {

AlgorithmConfig AlgorithmConfig::sgd() {
  AlgorithmConfig cfg;
  cfg.name = "SGD";
  cfg.second_order = false;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::kfac() {
  AlgorithmConfig cfg;
  cfg.name = "KFAC";
  cfg.second_order = true;
  cfg.factor_comm = FactorCommMode::kBulk;
  cfg.inverse = InverseMode::kLocalAll;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::dkfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "D-KFAC";
  return cfg;
}

AlgorithmConfig AlgorithmConfig::mpd_kfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "MPD-KFAC";
  cfg.inverse = InverseMode::kSeqDist;
  return cfg;
}

AlgorithmConfig AlgorithmConfig::spd_kfac() {
  AlgorithmConfig cfg = kfac();
  cfg.name = "SPD-KFAC";
  cfg.factor_comm = FactorCommMode::kOptimalFuse;
  cfg.inverse = InverseMode::kLBP;
  return cfg;
}

namespace {

/// Prices one gang all-reduce of the plan: kRing policy keeps the seed's
/// Eq. (14) pricing; otherwise the calibration's selector prices the
/// algorithm the planner resolved.
class CollectivePricer {
 public:
  CollectivePricer(const perf::ClusterCalibration& cal,
                   const AlgorithmConfig& cfg)
      : cal_(cal), ring_only_(cfg.collective_algo == comm::AllReduceAlgo::kRing) {
    if (!ring_only_) selector_ = cal.effective_selector();
  }

  double price(const sched::Task& task) const {
    // Wire bytes under the task's codec plus the modeled encode/decode
    // compute; kNone has wire_elements == elements and zero codec cost, so
    // lossless plans price exactly as the seed did.
    const double codec = comm::codec_compute_cost(task.codec, task.elements);
    if (ring_only_) return cal_.allreduce.time(task.wire_elements) + codec;
    return selector_.cost(task.algo, task.wire_elements) + codec;
  }

 private:
  const perf::ClusterCalibration& cal_;
  bool ring_only_;
  comm::AlgorithmSelector selector_;
};

TaskKind sim_kind(sched::TaskKind kind) noexcept {
  switch (kind) {
    case sched::TaskKind::kFusedAllReduce:
      return TaskKind::kFactorComm;
    case sched::TaskKind::kGradAllReduce:
      return TaskKind::kGradComm;
    case sched::TaskKind::kBroadcast:
      return TaskKind::kInverseComm;
    default:
      return TaskKind::kOther;
  }
}

}  // namespace

IterationResult simulate_iteration(const models::ModelSpec& model,
                                   std::size_t batch,
                                   const perf::ClusterCalibration& cal,
                                   const AlgorithmConfig& cfg) {
  const int world = cal.world_size;
  const std::size_t L = model.layers.size();
  if (L == 0) throw std::invalid_argument("simulate_iteration: empty model");

  // -------------------------------------------------------------------
  // Build the iteration task-graph with the shared planner — the same
  // schedule the runtime optimizer executes.
  // -------------------------------------------------------------------
  sched::ScheduleOptions opt;
  opt.second_order = cfg.second_order;
  opt.factor_comm = cfg.factor_comm;
  opt.inverse = cfg.inverse;
  opt.balance = cfg.balance;
  opt.grad_fusion_threshold = cfg.grad_fusion_threshold;
  opt.collective_algo = cfg.collective_algo;
  opt.factor_codec = cfg.factor_codec;
  opt.grad_codec = cfg.grad_codec;
  opt.topk_ratio = cfg.topk_ratio;
  IterationResult result;
  sched::ScheduleInputs inputs = sched::inputs_from_model(
      model, batch, cal.compute, world, cfg.second_order);
  if (!cfg.profile.empty()) inputs.timing = cfg.profile;
  result.plan = sched::plan_iteration(inputs, opt, sched::costs_from(cal));
  const sched::IterationPlan& plan = result.plan;

  const int S = cfg.compute_streams;
  if (S < 1) {
    throw std::invalid_argument(
        "simulate_iteration: compute_streams must be >= 1");
  }

  EventSim es;
  // Streams per GPU: `compute_streams` compute streams (stream 0 carries
  // the forward/backward kernels; auxiliary streams model the extra pool
  // workers factor/inverse tasks run on), one communication stream for the
  // factor/inverse traffic (the paper's own fusion controller + broadcast
  // path), and one for gradient aggregation (Horovod's communicator — a
  // separate NCCL channel in the paper's implementation, so gradient
  // all-reduces do not queue behind factor all-reduces).
  std::vector<std::vector<int>> comp(world);
  std::vector<int> comm(world), gcomm(world);
  std::vector<std::string> stream_names;
  for (int p = 0; p < world; ++p) {
    comp[p].push_back(es.add_stream("gpu" + std::to_string(p) + ".comp"));
    for (int s = 1; s < S; ++s) {
      comp[p].push_back(es.add_stream("gpu" + std::to_string(p) + ".comp" +
                                      std::to_string(s)));
    }
    comm[p] = es.add_stream("gpu" + std::to_string(p) + ".comm");
    gcomm[p] = es.add_stream("gpu" + std::to_string(p) + ".gradcomm");
  }
  // Shared-fabric stream: concurrent broadcasts from different roots contend
  // here (all-reduces already gang every per-GPU comm stream).
  const int fabric = es.add_stream("fabric");
  for (int p = 0; p < world; ++p) {
    for (int sid : comp[p]) stream_names.push_back(es.stream_name(sid));
    stream_names.push_back(es.stream_name(comm[p]));
    stream_names.push_back(es.stream_name(gcomm[p]));
  }
  stream_names.push_back(es.stream_name(fabric));
  std::vector<int> factor_comm_streams(comm.begin(), comm.end());
  factor_comm_streams.push_back(fabric);
  std::vector<int> grad_comm_streams(gcomm.begin(), gcomm.end());

  // -------------------------------------------------------------------
  // Compute passes on the representative GPU 0 (all workers are symmetric
  // until the inverse phase): A_0 F_1 ... A_{L-1} F_L, then B_L G_L ...
  // B_1 G_1 (Fig. 1b).  Factor-compute tasks come from the plan.  With a
  // single compute stream they serialize into the pass (the classic
  // pricing); with more they round-robin onto the auxiliary streams,
  // depending only on the pass kernel that produced their input — the next
  // layer's kernel no longer waits for the factor build.  A_l's input is
  // the *previous* layer's output (Fig. 1b places A_l ahead of layer l's
  // own kernel, exactly like timing_from_model's a_ready), so its S > 1
  // dependency is the preceding forward task, not the layer's own.
  // -------------------------------------------------------------------
  std::vector<int> es_of(plan.tasks.size(), -1);
  std::vector<int> b_id(L, -1);
  int last_pass = -1;
  std::size_t factor_rr = 0;
  const auto factor_stream = [&]() {
    if (S == 1) return comp[0][0];
    return comp[0][1 + factor_rr++ % static_cast<std::size_t>(S - 1)];
  };
  for (std::size_t l = 0; l < L; ++l) {
    const auto& layer = model.layers[l];
    if (plan.factor_update) {
      const int id = plan.a_compute[l];
      std::vector<int> deps;
      if (S > 1 && last_pass >= 0) deps.push_back(last_pass);
      es_of[id] = es.add_task(TaskKind::kFactorComp,
                              cal.compute.factor_time(layer.factor_a_flops(batch)),
                              factor_stream(), std::move(deps),
                              plan.task(id).label);
    }
    last_pass = es.add_task(TaskKind::kForward,
                            cal.compute.fwd_time(layer.fwd_flops(batch)),
                            comp[0][0], {}, "F" + std::to_string(l + 1));
  }
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    const auto& layer = model.layers[l];
    b_id[l] = es.add_task(TaskKind::kBackward,
                          cal.compute.bwd_time(layer.bwd_flops(batch)),
                          comp[0][0], {}, "B" + std::to_string(l + 1));
    if (plan.factor_update) {
      const int id = plan.g_compute[i];
      std::vector<int> deps;
      if (S > 1) deps.push_back(b_id[l]);
      es_of[id] = es.add_task(TaskKind::kFactorComp,
                              cal.compute.factor_time(layer.factor_g_flops(batch)),
                              factor_stream(), std::move(deps),
                              plan.task(id).label);
    }
  }

  auto translate_deps = [&es_of](const std::vector<int>& deps) {
    std::vector<int> out;
    out.reserve(deps.size());
    for (int d : deps) {
      if (es_of[d] >= 0) out.push_back(es_of[d]);
    }
    return out;
  };

  // -------------------------------------------------------------------
  // Collectives: gang each all-reduce of the plan, in plan order, priced
  // by the calibration.
  // -------------------------------------------------------------------
  const CollectivePricer pricer(cal, cfg);
  std::vector<int> factor_comm_ids;
  for (int id : plan.comm_order) {
    const sched::Task& task = plan.task(id);
    const double duration = pricer.price(task);
    std::vector<int> deps = translate_deps(task.deps);
    if (task.kind == sched::TaskKind::kGradAllReduce) {
      deps.push_back(b_id[task.first]);  // flush-layer gradient dependency
    }
    const auto& streams = task.kind == sched::TaskKind::kGradAllReduce
                              ? grad_comm_streams
                              : factor_comm_streams;
    es_of[id] =
        es.add_gang_task(sim_kind(task.kind), duration, streams, deps,
                         task.label);
    if (task.kind == sched::TaskKind::kFusedAllReduce) {
      factor_comm_ids.push_back(es_of[id]);
      result.factor_comm_busy += duration;
    }
    result.collectives.push_back({task.label, sim_kind(task.kind),
                                  task.elements, task.algo, duration, task.id,
                                  -1});
  }

  result.algorithm = cfg.name;

  // -------------------------------------------------------------------
  // Inverse phase: the plan's placement, scheduled per GPU.  Worklists are
  // the owned CTs plus every NCT; LBP keeps its largest-first order and
  // merges NCTs in descending dimension so small replicated inverses fill
  // the tail while broadcasts drain.  Submission is round-robin across
  // GPUs so the fabric stream's FIFO order matches actual readiness.
  // -------------------------------------------------------------------
  if (plan.inverse_update) {
    result.placement = plan.placement;
    std::vector<std::size_t> dims(2 * L);
    for (std::size_t l = 0; l < L; ++l) {
      dims[2 * l] = model.layers[l].dim_a();
      dims[2 * l + 1] = model.layers[l].dim_g();
    }

    // All GPUs hold consistent global factors only after every factor
    // aggregation finished (the barrier of Fig. 1b) — encoded in the
    // plan's inverse-task dependencies.
    const std::vector<int> barrier =
        plan.inverse_tasks.empty()
            ? std::vector<int>{}
            : translate_deps(plan.task(plan.inverse_tasks.front()).deps);

    // Broadcast pricing per tensor: wire bytes under the plan's codec plus
    // encode/decode compute.  For kNone this is exactly time_dim(d) — the
    // task's elements are the packed triangle time_dim prices.
    std::vector<double> bcast_price(2 * L, 0.0);
    for (int id : plan.broadcast_tasks) {
      const sched::Task& task = plan.task(id);
      bcast_price[task.tensor] =
          cal.bcast_fabric.time_elements(task.wire_elements) +
          comm::codec_compute_cost(task.codec, task.elements);
    }

    std::vector<std::vector<std::size_t>> worklists(world);
    for (int p = 0; p < world; ++p) {
      worklists[p] = result.placement.per_gpu[p];
      for (const auto& a : result.placement.assignments) {
        if (a.nct) worklists[p].push_back(a.tensor);
      }
      if (cfg.inverse == InverseMode::kLBP) {
        std::stable_sort(worklists[p].begin(), worklists[p].end(),
                         [&](std::size_t x, std::size_t y) {
                           return dims[x] > dims[y];
                         });
      }
    }
    std::size_t max_len = 0;
    for (const auto& wl : worklists) max_len = std::max(max_len, wl.size());
    for (std::size_t r = 0; r < max_len; ++r) {
      for (int p = 0; p < world; ++p) {
        if (r >= worklists[p].size()) continue;
        const std::size_t t = worklists[p][r];
        // Each GPU spreads its inverse worklist over its compute streams
        // (round-robin by worklist row, like the runtime pool's workers).
        const int inv_id = es.add_task(
            TaskKind::kInverseComp, cal.inverse.time(dims[t]),
            comp[p][r % static_cast<std::size_t>(S)], barrier,
            "inv[T" + std::to_string(t) + "]");
        if (!result.placement.assignments[t].nct && world > 1) {
          es.add_gang_task(TaskKind::kInverseComm, bcast_price[t],
                           {comm[p], fabric}, {inv_id},
                           "bcast[T" + std::to_string(t) + "]");
        }
      }
    }

    // Record the broadcasts in the plan's canonical submission order (what
    // the runtime's engine executes), priced identically to the fabric
    // gang tasks above.
    for (int id : plan.broadcast_tasks) {
      const sched::Task& task = plan.task(id);
      result.collectives.push_back({task.label, TaskKind::kInverseComm,
                                    task.elements, task.algo,
                                    bcast_price[task.tensor], task.id,
                                    task.rank});
    }
  }

  result.schedule = es.run();
  result.total = result.schedule.makespan;
  result.breakdown = compute_breakdown(result.schedule);
  result.stream_names = std::move(stream_names);
  return result;
}

double iteration_time(const models::ModelSpec& model, std::size_t batch,
                      const perf::ClusterCalibration& cal,
                      const AlgorithmConfig& cfg) {
  return simulate_iteration(model, batch, cal, cfg).total;
}

std::vector<IterationResult> simulate_trajectory(
    const models::ModelSpec& model, std::size_t batch,
    const perf::ClusterCalibration& cal, const AlgorithmConfig& cfg,
    std::span<const sched::PassTiming> trajectory) {
  std::vector<IterationResult> results;
  results.reserve(trajectory.size());
  AlgorithmConfig epoch_cfg = cfg;
  for (const sched::PassTiming& timing : trajectory) {
    epoch_cfg.profile = timing;
    results.push_back(simulate_iteration(model, batch, cal, epoch_cfg));
  }
  return results;
}

}  // namespace spdkfac::sim
