#include "sim/trace.hpp"

#include <fstream>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace spdkfac::sim {

namespace {

using util::json_escape;

/// Shorthand: the shared locale-independent escaper (a locale with a comma
/// decimal separator or grouping must never corrupt the trace).
std::string escape(const std::string& s) { return json_escape(s); }

/// Category names double as Perfetto color keys.
const char* category_of(TaskKind kind) {
  switch (kind) {
    case TaskKind::kForward:
    case TaskKind::kBackward:
      return "compute";
    case TaskKind::kFactorComp:
      return "factor_comp";
    case TaskKind::kInverseComp:
      return "inverse_comp";
    case TaskKind::kGradComm:
      return "grad_comm";
    case TaskKind::kFactorComm:
      return "factor_comm";
    case TaskKind::kInverseComm:
      return "inverse_comm";
    case TaskKind::kOther:
      return "other";
  }
  return "other";
}

}  // namespace

std::string to_chrome_trace(const Schedule& schedule,
                            const std::vector<std::string>& stream_names,
                            const std::string& process_name) {
  std::ostringstream out;
  // The stream carries only integers (pid/tid) and pre-formatted strings,
  // but imbue the classic locale anyway: a grouping global locale would
  // otherwise render tid 1000 as "1,000".
  out.imbue(std::locale::classic());
  out << "[\n";
  // Process + thread metadata rows.
  out << R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":")"
      << escape(process_name) << "\"}}";
  for (std::size_t s = 0; s < stream_names.size(); ++s) {
    out << ",\n"
        << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << s
        << R"(,"args":{"name":")" << escape(stream_names[s]) << "\"}}";
  }
  // One complete event per (task, stream) occupancy; gang tasks appear on
  // every stream they hold, exactly as they block them.
  for (const ScheduledTask& t : schedule.tasks) {
    if (t.end <= t.start) continue;
    for (int s : t.resources) {
      if (s < 0 || static_cast<std::size_t>(s) >= stream_names.size()) {
        throw std::invalid_argument("to_chrome_trace: unnamed stream id");
      }
      out << ",\n"
          << R"({"name":")"
          << escape(t.label.empty() ? to_string(t.kind) : t.label)
          << R"(","cat":")" << category_of(t.kind)
          << R"(","ph":"X","pid":1,"tid":)" << s << R"(,"ts":)"
          << util::json_number(t.start * 1e6) << R"(,"dur":)"
          << util::json_number((t.end - t.start) * 1e6)
          << R"(,"args":{"kind":")" << to_string(t.kind) << "\"}}";
    }
  }
  out << "\n]\n";
  return out.str();
}

void write_chrome_trace(const std::string& path, const Schedule& schedule,
                        const std::vector<std::string>& stream_names,
                        const std::string& process_name) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  file << to_chrome_trace(schedule, stream_names, process_name);
  if (!file) {
    throw std::runtime_error("write_chrome_trace: write failed for " + path);
  }
}

}  // namespace spdkfac::sim
