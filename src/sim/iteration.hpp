// Prices one training iteration's sched::IterationPlan for each algorithm
// the paper evaluates (Fig. 1 structure, priced by the perf models):
//
//   SGD / S-SGD       — forward, backward, WFBP gradient aggregation;
//   KFAC (1 GPU)      — + factor computation + local inverses;
//   D-KFAC            — + factor all-reduce (bulk, after backward, as in
//                        Pauloski et al. [22]) + local inverses everywhere;
//   MPD-KFAC          — D-KFAC with inverses distributed round-robin and
//                        broadcast (Osawa/Ueno/Pauloski style);
//   SPD-KFAC          — the paper: pipelined factor communication with
//                        dynamic tensor fusion (Eq. 15) + LBP placement
//                        (Algorithm 1) with CT/NCT typing.
//
// The schedule itself — fusion groups, gradient groups, algorithm choices,
// inverse placement, submission order — is built by sched::plan_iteration,
// the same planner the runtime optimizer executes; this module only maps
// the plan onto simulated streams and charges each task its cost-model
// duration.  The pipelining baselines of Fig. 10 (Naive, LW w/o TF, LW w/
// TTF) and the placement baselines of Fig. 12 (Non-Dist, Seq-Dist) are
// expressible through AlgorithmConfig, which is how the ablation of Fig. 13
// is produced.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "comm/codec.hpp"
#include "comm/collectives.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sched/plan.hpp"
#include "sched/planner.hpp"
#include "sim/event_sim.hpp"

namespace spdkfac::sim {

/// Schedule-shape knobs, shared with the planner (and hence the runtime).
using sched::FactorCommMode;
using sched::InverseMode;

struct AlgorithmConfig {
  std::string name;
  bool second_order = true;  ///< false: plain (S-)SGD
  FactorCommMode factor_comm = FactorCommMode::kBulk;
  InverseMode inverse = InverseMode::kLocalAll;
  sched::BalanceMetric balance = sched::BalanceMetric::kEstimatedTime;
  /// Gradient aggregation is always WFBP + threshold fusion (the Horovod
  /// default the paper keeps for gradients in every algorithm).
  std::size_t grad_fusion_threshold = sched::kHorovodThresholdElements;
  /// Concurrent compute workers per GPU — the simulator counterpart of the
  /// runtime's DistKfacOptions::pool_size.  1 reproduces the classic
  /// single-stream pricing (factor builds serialize with the passes);
  /// S > 1 adds S-1 auxiliary compute streams that factor-compute tasks
  /// round-robin onto (overlapping them with the next layer's kernel,
  /// exactly what the work-stealing pool does physically) and spreads each
  /// GPU's inverse worklist over all S streams.  The *plan* is identical
  /// for every value; only the pricing of its compute tasks changes.
  int compute_streams = 1;
  /// All-reduce algorithm used to price every gang collective (gradients
  /// and factors).  kRing reproduces the seed exactly; kAuto selects per
  /// message size/topology via the calibration's AlgorithmSelector
  /// (NCCL-style switching); any concrete algorithm forces that algorithm.
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;
  /// Collective payload codecs (comm/codec.hpp), forwarded to the planner
  /// exactly like the runtime's DistKfacOptions — compression shifts the m
  /// of Eq. (14), so the simulated plan's fusion groups, CT/NCT typing and
  /// algorithm choices are re-derived from the compressed sizes, and the
  /// pricer charges each collective its wire bytes plus the modeled
  /// encode/decode compute.  kNone reproduces the seed's pricing exactly.
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  double topk_ratio = 0.01;  ///< kTopK keep ratio (fraction shipped)

  /// Planning profile override — the simulator counterpart of
  /// DistKfacOptions::profile.  Empty: derive pass timing from the
  /// calibration's compute model (the classic behaviour).  Non-empty: plan
  /// from exactly this timing, which is how the adaptive equivalence suite
  /// hands the simulator the same synced profile the runtime re-planned
  /// from.  Pricing of the pass/compute tasks still uses the calibration.
  sched::PassTiming profile;

  static AlgorithmConfig sgd();       ///< SGD / S-SGD (depends on world size)
  static AlgorithmConfig kfac();      ///< single-GPU KFAC = D-KFAC at P=1
  static AlgorithmConfig dkfac();     ///< bulk comm + local inverses
  static AlgorithmConfig mpd_kfac();  ///< bulk comm + Seq-Dist inverses
  static AlgorithmConfig spd_kfac();  ///< pipelined fusion + LBP
};

/// One priced collective of the iteration, in the plan's canonical
/// submission order: all-reduces first (gradient + factor, by readiness),
/// then the inverse-phase broadcasts.
struct CollectiveChoice {
  std::string label;   ///< schedule/trace label of the gang task
  TaskKind kind = TaskKind::kOther;
  std::size_t elements = 0;
  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing;
  double seconds = 0.0;
  int plan_task = -1;  ///< id into IterationResult::plan.tasks
  int root = -1;       ///< broadcast root (kInverseComm entries only)
};

struct IterationResult {
  std::string algorithm;
  double total = 0.0;  ///< iteration wall-clock (schedule makespan)
  Breakdown breakdown;
  Schedule schedule;
  std::vector<std::string> stream_names;

  /// The task-graph this result priced — what the runtime would execute.
  sched::IterationPlan plan;

  /// Per-collective choices in canonical submission order (world > 1).
  std::vector<CollectiveChoice> collectives;

  /// Factor-communication diagnostics (Fig. 10): total communicated time vs
  /// the non-overlapped residue in `breakdown.factor_comm`.
  double factor_comm_busy = 0.0;
  double factor_comm_hidden_fraction() const noexcept {
    if (factor_comm_busy <= 0.0) return 0.0;
    return 1.0 - breakdown.factor_comm / factor_comm_busy;
  }

  /// The inverse placement used (empty for first-order configs).
  sched::Placement placement;
};

/// Simulates one iteration of `cfg` training `model` with per-GPU batch
/// `batch` on the cluster described by `cal` (cal.world_size workers).
IterationResult simulate_iteration(const models::ModelSpec& model,
                                   std::size_t batch,
                                   const perf::ClusterCalibration& cal,
                                   const AlgorithmConfig& cfg);

/// Convenience: iteration time only.
double iteration_time(const models::ModelSpec& model, std::size_t batch,
                      const perf::ClusterCalibration& cal,
                      const AlgorithmConfig& cfg);

/// Adaptive re-planning, simulated: one iteration per trajectory entry,
/// each planned *and priced* from that epoch's profile — the mirror of the
/// runtime's re-plan loop (which rebuilds its plan every replan_interval
/// steps from the synced online profile).  Feeding both the same
/// trajectory must yield byte-identical plans epoch for epoch; the
/// adaptive equivalence suite enforces exactly that.  `trajectory` may be
/// empty (returns no results).
std::vector<IterationResult> simulate_trajectory(
    const models::ModelSpec& model, std::size_t batch,
    const perf::ClusterCalibration& cal, const AlgorithmConfig& cfg,
    std::span<const sched::PassTiming> trajectory);

}  // namespace spdkfac::sim
