// Builds and simulates one training iteration's task DAG for each algorithm
// the paper evaluates (Fig. 1 structure, priced by the perf models):
//
//   SGD / S-SGD       — forward, backward, WFBP gradient aggregation;
//   KFAC (1 GPU)      — + factor computation + local inverses;
//   D-KFAC            — + factor all-reduce (bulk, after backward, as in
//                        Pauloski et al. [22]) + local inverses everywhere;
//   MPD-KFAC          — D-KFAC with inverses distributed round-robin and
//                        broadcast (Osawa/Ueno/Pauloski style);
//   SPD-KFAC          — the paper: pipelined factor communication with
//                        dynamic tensor fusion (Eq. 15) + LBP placement
//                        (Algorithm 1) with CT/NCT typing.
//
// The pipelining baselines of Fig. 10 (Naive, LW w/o TF, LW w/ TTF) and the
// placement baselines of Fig. 12 (Non-Dist, Seq-Dist) are expressible
// through AlgorithmConfig, which is how the ablation of Fig. 13 is produced.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "core/fusion.hpp"
#include "core/placement.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/event_sim.hpp"

namespace spdkfac::sim {

/// How Kronecker factors are aggregated across workers.
enum class FactorCommMode {
  kBulk,           ///< one fused op per factor family after backward (-Pipe)
  kNaive,          ///< A factors bulk-overlapped with backward, G bulk after
  kLayerWise,      ///< per-factor all-reduce as computed (LW w/o TF)
  kThresholdFuse,  ///< layer-wise with Horovod 64 MiB threshold (LW w/ TTF)
  kOptimalFuse,    ///< Eq. (15) dynamic fusion (SP w/ OTF, +Pipe)
};

/// How the 2L damped inverses are computed and shared.
enum class InverseMode {
  kLocalAll,  ///< every GPU inverts everything (Non-Dist, D-KFAC)
  kSeqDist,   ///< round-robin ownership, all CT (Seq-Dist, MPD-KFAC)
  kLBP,       ///< Algorithm 1 with CT/NCT typing (SPD-KFAC)
};

struct AlgorithmConfig {
  std::string name;
  bool second_order = true;  ///< false: plain (S-)SGD
  FactorCommMode factor_comm = FactorCommMode::kBulk;
  InverseMode inverse = InverseMode::kLocalAll;
  core::BalanceMetric balance = core::BalanceMetric::kEstimatedTime;
  /// Gradient aggregation is always WFBP + threshold fusion (the Horovod
  /// default the paper keeps for gradients in every algorithm).
  std::size_t grad_fusion_threshold = core::kHorovodThresholdElements;
  /// All-reduce algorithm used to price every gang collective (gradients
  /// and factors).  kRing reproduces the seed exactly; kAuto selects per
  /// message size/topology via the calibration's AlgorithmSelector
  /// (NCCL-style switching); any concrete algorithm forces that algorithm.
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;

  static AlgorithmConfig sgd();       ///< SGD / S-SGD (depends on world size)
  static AlgorithmConfig kfac();      ///< single-GPU KFAC = D-KFAC at P=1
  static AlgorithmConfig dkfac();     ///< bulk comm + local inverses
  static AlgorithmConfig mpd_kfac();  ///< bulk comm + Seq-Dist inverses
  static AlgorithmConfig spd_kfac();  ///< pipelined fusion + LBP
};

/// One priced gang all-reduce of the iteration: which algorithm the
/// config/selector assigned and the closed-form cost it was charged
/// (duration of the matching schedule task).
struct CollectiveChoice {
  std::string label;   ///< schedule/trace label of the gang task
  TaskKind kind = TaskKind::kOther;
  std::size_t elements = 0;
  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing;
  double seconds = 0.0;
};

struct IterationResult {
  std::string algorithm;
  double total = 0.0;  ///< iteration wall-clock (schedule makespan)
  Breakdown breakdown;
  Schedule schedule;
  std::vector<std::string> stream_names;

  /// Per-collective algorithm choices in submission order (world > 1).
  std::vector<CollectiveChoice> collectives;

  /// Factor-communication diagnostics (Fig. 10): total communicated time vs
  /// the non-overlapped residue in `breakdown.factor_comm`.
  double factor_comm_busy = 0.0;
  double factor_comm_hidden_fraction() const noexcept {
    if (factor_comm_busy <= 0.0) return 0.0;
    return 1.0 - breakdown.factor_comm / factor_comm_busy;
  }

  /// The inverse placement used (empty for first-order configs).
  core::Placement placement;
};

/// Simulates one iteration of `cfg` training `model` with per-GPU batch
/// `batch` on the cluster described by `cal` (cal.world_size workers).
IterationResult simulate_iteration(const models::ModelSpec& model,
                                   std::size_t batch,
                                   const perf::ClusterCalibration& cal,
                                   const AlgorithmConfig& cfg);

/// Convenience: iteration time only.
double iteration_time(const models::ModelSpec& model, std::size_t batch,
                      const perf::ClusterCalibration& cal,
                      const AlgorithmConfig& cfg);

}  // namespace spdkfac::sim
