// Chrome trace-event export of simulated schedules.
//
// Serializes a Schedule as the Trace Event JSON format consumed by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): each simulated
// stream becomes a named thread row, each task a complete ("X") event with
// microsecond timestamps, colored by its breakdown category.  Useful for
// visually inspecting where SPD-KFAC hides communication — the interactive
// equivalent of Fig. 1.
#pragma once

#include <string>
#include <vector>

#include "sim/event_sim.hpp"

namespace spdkfac::sim {

/// Renders the schedule as a Trace Event JSON array document.
/// `stream_names` must index every stream id used by the schedule's tasks.
std::string to_chrome_trace(const Schedule& schedule,
                            const std::vector<std::string>& stream_names,
                            const std::string& process_name = "spdkfac-sim");

/// Writes to_chrome_trace() output to `path`; throws std::runtime_error on
/// I/O failure.
void write_chrome_trace(const std::string& path, const Schedule& schedule,
                        const std::vector<std::string>& stream_names,
                        const std::string& process_name = "spdkfac-sim");

}  // namespace spdkfac::sim
