// Discrete-event simulator of computation/communication task DAGs.
//
// This is the substitute for the paper's 64-GPU testbed: every GPU
// contributes a *compute stream* and a *communication stream* (mirroring a
// CUDA stream plus the Horovod background thread), tasks carry durations
// priced by the perf models, and edges encode the precedence constraints of
// Fig. 1.  Streams execute their tasks in submission order (FIFO, exactly
// like CUDA streams and the async engine's op queue); a task starts when its
// dependencies have finished AND all its streams have retired every task
// submitted to them earlier.
//
// Gang tasks spanning several streams model collectives: an all-reduce
// occupies the communication stream of every participant for its duration.
// A broadcast, following the paper's cost model (Eq. 21 and Fig. 5), is
// charged to the root's communication stream only — receivers get the data
// via RDMA without occupying their own send queue.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spdkfac::sim {

/// Task categories matching the paper's breakdown legend (Figs. 2 and 9).
enum class TaskKind {
  kForward,
  kBackward,
  kFactorComp,
  kInverseComp,
  kGradComm,
  kFactorComm,
  kInverseComm,
  kOther,
};

const char* to_string(TaskKind kind) noexcept;

struct ScheduledTask {
  int id = -1;
  TaskKind kind = TaskKind::kOther;
  double start = 0.0;
  double end = 0.0;
  std::string label;
  std::vector<int> resources;
};

struct Schedule {
  std::vector<ScheduledTask> tasks;  // indexed by task id
  double makespan = 0.0;
};

/// Per-category time attribution (Figs. 2, 9, 10, 12).
///
/// Computed by sweeping the cluster-wide schedule: each instant of the
/// iteration is attributed to the highest-priority *active* category, with
/// computation ahead of communication.  Communication running concurrently
/// with computation is therefore invisible ("hidden"), matching the paper's
/// non-overlapped accounting, and the six categories always sum to the
/// iteration makespan.
struct Breakdown {
  double ff_bp = 0.0;
  double factor_comp = 0.0;
  double inverse_comp = 0.0;
  double grad_comm = 0.0;
  double factor_comm = 0.0;
  double inverse_comm = 0.0;

  double total() const noexcept {
    return ff_bp + factor_comp + inverse_comp + grad_comm + factor_comm +
           inverse_comm;
  }
};

class EventSim {
 public:
  /// Registers a stream (compute or communication); returns its id.
  int add_stream(std::string name);

  /// Adds a task bound to one stream.  `deps` are task ids that must finish
  /// before this task may start.  Returns the task id.
  int add_task(TaskKind kind, double duration, int stream,
               std::vector<int> deps = {}, std::string label = {});

  /// Adds a gang task occupying several streams simultaneously (e.g. an
  /// all-reduce across every participant's communication stream).
  int add_gang_task(TaskKind kind, double duration, std::vector<int> streams,
                    std::vector<int> deps = {}, std::string label = {});

  std::size_t num_tasks() const noexcept { return tasks_.size(); }
  const std::string& stream_name(int id) const { return stream_names_[id]; }

  /// Computes start/end times for every task.  Deterministic; throws
  /// std::logic_error if the dependency graph is cyclic or references
  /// unknown tasks.
  Schedule run() const;

 private:
  struct TaskDef {
    TaskKind kind;
    double duration;
    std::vector<int> streams;
    std::vector<int> deps;
    std::string label;
  };

  std::vector<std::string> stream_names_;
  std::vector<std::vector<int>> stream_queues_;  // task ids per stream
  std::vector<TaskDef> tasks_;
};

/// Attribution sweep described on Breakdown.
Breakdown compute_breakdown(const Schedule& schedule);

/// Renders an ASCII timeline of the schedule (one row per stream) — used by
/// bench_timeline to reproduce the structure of Fig. 1.
std::string render_timeline(const Schedule& schedule,
                            const std::vector<std::string>& stream_names,
                            std::size_t width = 100);

}  // namespace spdkfac::sim
