#include "sim/event_sim.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>

namespace spdkfac::sim {

const char* to_string(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kForward:
      return "Forward";
    case TaskKind::kBackward:
      return "Backward";
    case TaskKind::kFactorComp:
      return "FactorComp";
    case TaskKind::kInverseComp:
      return "InverseComp";
    case TaskKind::kGradComm:
      return "GradComm";
    case TaskKind::kFactorComm:
      return "FactorComm";
    case TaskKind::kInverseComm:
      return "InverseComm";
    case TaskKind::kOther:
      return "Other";
  }
  return "?";
}

int EventSim::add_stream(std::string name) {
  stream_names_.push_back(std::move(name));
  stream_queues_.emplace_back();
  return static_cast<int>(stream_names_.size()) - 1;
}

int EventSim::add_task(TaskKind kind, double duration, int stream,
                       std::vector<int> deps, std::string label) {
  return add_gang_task(kind, duration, {stream}, std::move(deps),
                       std::move(label));
}

int EventSim::add_gang_task(TaskKind kind, double duration,
                            std::vector<int> streams, std::vector<int> deps,
                            std::string label) {
  const int id = static_cast<int>(tasks_.size());
  if (duration < 0.0) {
    throw std::logic_error("EventSim: negative duration");
  }
  for (int s : streams) {
    if (s < 0 || s >= static_cast<int>(stream_queues_.size())) {
      throw std::logic_error("EventSim: unknown stream");
    }
    stream_queues_[s].push_back(id);
  }
  for (int d : deps) {
    if (d < 0 || d >= id) {
      // Insertion order is the topological order; forward references would
      // break the single-pass schedule below.
      throw std::logic_error("EventSim: dependency on a later task");
    }
  }
  tasks_.push_back(
      TaskDef{kind, duration, std::move(streams), std::move(deps),
              std::move(label)});
  return id;
}

Schedule EventSim::run() const {
  Schedule schedule;
  schedule.tasks.resize(tasks_.size());

  // Streams retire tasks in submission order, so a single pass in id order
  // sees every queue predecessor and every dependency already scheduled.
  std::vector<double> stream_free(stream_queues_.size(), 0.0);
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    const TaskDef& def = tasks_[id];
    double start = 0.0;
    for (int d : def.deps) start = std::max(start, schedule.tasks[d].end);
    for (int s : def.streams) start = std::max(start, stream_free[s]);
    const double end = start + def.duration;
    for (int s : def.streams) stream_free[s] = end;
    schedule.tasks[id] = {static_cast<int>(id), def.kind,    start, end,
                          def.label,            def.streams};
    schedule.makespan = std::max(schedule.makespan, end);
  }
  return schedule;
}

namespace {

int priority_of(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kForward:
    case TaskKind::kBackward:
      return 0;
    case TaskKind::kFactorComp:
      return 1;
    case TaskKind::kInverseComp:
      return 2;
    // Factor communication outranks gradient communication in attribution:
    // Figs. 9/10 isolate the factor channel's exposure, and gradient
    // handling is identical across all compared algorithms.
    case TaskKind::kFactorComm:
      return 3;
    case TaskKind::kGradComm:
      return 4;
    case TaskKind::kInverseComm:
      return 5;
    case TaskKind::kOther:
      return 6;
  }
  return 6;
}

void add_to(Breakdown& b, TaskKind kind, double seconds) noexcept {
  switch (kind) {
    case TaskKind::kForward:
    case TaskKind::kBackward:
      b.ff_bp += seconds;
      return;
    case TaskKind::kFactorComp:
      b.factor_comp += seconds;
      return;
    case TaskKind::kInverseComp:
      b.inverse_comp += seconds;
      return;
    case TaskKind::kGradComm:
      b.grad_comm += seconds;
      return;
    case TaskKind::kFactorComm:
      b.factor_comm += seconds;
      return;
    case TaskKind::kInverseComm:
      b.inverse_comm += seconds;
      return;
    case TaskKind::kOther:
      return;
  }
}

}  // namespace

Breakdown compute_breakdown(const Schedule& schedule) {
  Breakdown breakdown;
  // Event sweep: +1 active at start, -1 at end, per kind; each elementary
  // interval goes to the highest-priority active kind.
  std::map<double, std::array<int, 8>> deltas;
  auto kind_index = [](TaskKind k) { return static_cast<int>(k); };
  for (const ScheduledTask& t : schedule.tasks) {
    if (t.end <= t.start) continue;
    deltas[t.start][kind_index(t.kind)] += 1;
    deltas[t.end][kind_index(t.kind)] -= 1;
  }
  std::array<int, 8> active{};
  double prev = 0.0;
  TaskKind pending_gap = TaskKind::kOther;  // kind charged for idle gaps
  for (const auto& [time, delta] : deltas) {
    if (time > prev) {
      // Determine the winning active category of [prev, time).
      int best_priority = 1 << 30;
      TaskKind best = pending_gap;
      for (int k = 0; k < 8; ++k) {
        if (active[k] <= 0) continue;
        const TaskKind kind = static_cast<TaskKind>(k);
        const int p = priority_of(kind);
        if (p < best_priority) {
          best_priority = p;
          best = kind;
        }
      }
      add_to(breakdown, best, time - prev);
    }
    for (int k = 0; k < 8; ++k) active[k] += delta[k];
    // If the cluster goes momentarily idle, charge the gap to whatever
    // category starts next (the gap is time spent waiting for it).
    for (int k = 0; k < 8; ++k) {
      if (delta[k] > 0) {
        pending_gap = static_cast<TaskKind>(k);
        break;
      }
    }
    prev = time;
  }
  return breakdown;
}

std::string render_timeline(const Schedule& schedule,
                            const std::vector<std::string>& stream_names,
                            std::size_t width) {
  if (schedule.makespan <= 0.0 || stream_names.empty()) return {};
  auto glyph = [](TaskKind kind) -> char {
    switch (kind) {
      case TaskKind::kForward:
        return 'F';
      case TaskKind::kBackward:
        return 'B';
      case TaskKind::kFactorComp:
        return 'a';
      case TaskKind::kInverseComp:
        return 'I';
      case TaskKind::kGradComm:
        return 'g';
      case TaskKind::kFactorComm:
        return 'c';
      case TaskKind::kInverseComm:
        return 'b';
      case TaskKind::kOther:
        return 'o';
    }
    return '?';
  };

  std::size_t label_width = 0;
  for (const auto& n : stream_names) label_width = std::max(label_width, n.size());

  std::vector<std::string> rows(stream_names.size(),
                                std::string(width, '.'));
  for (const ScheduledTask& t : schedule.tasks) {
    if (t.end <= t.start) continue;
    auto col = [&](double x) {
      const double f = x / schedule.makespan;
      return std::min(width - 1,
                      static_cast<std::size_t>(f * static_cast<double>(width)));
    };
    const std::size_t c0 = col(t.start);
    const std::size_t c1 = std::max(c0, col(t.end));
    for (int s : t.resources) {
      for (std::size_t c = c0; c <= c1; ++c) rows[s][c] = glyph(t.kind);
    }
  }

  std::string out;
  out += "legend: F=fwd B=bwd a=factor-comp I=inverse-comp g=grad-comm "
         "c=factor-comm b=inverse-bcast .=idle\n";
  for (std::size_t s = 0; s < stream_names.size(); ++s) {
    std::string label = stream_names[s];
    label.resize(label_width, ' ');
    out += label + " |" + rows[s] + "|\n";
  }
  return out;
}

}  // namespace spdkfac::sim
