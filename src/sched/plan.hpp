// The iteration task-graph: one authoritative schedule representation
// consumed by both the runtime (`core::DistKfacOptimizer` executes it with
// real numerics on the async engine) and the simulator
// (`sim::simulate_iteration` prices it with the perf cost models).
//
// Everything the paper's scheduling contributions decide lives here as
// explicit, typed tasks with dependency edges:
//   * which Kronecker factors fuse into which all-reduce (Eq. 15),
//   * which WFBP gradient groups form and when they flush,
//   * which all-reduce algorithm each collective uses (selector-resolved),
//   * where each damped inverse runs and what gets broadcast
//     (Algorithm 1, CT/NCT).
// Because both layers traverse the same plan, the simulator cannot silently
// drift from the runtime: the tests/sched equivalence suite checks that the
// runtime's recorded collective submissions are exactly the plan's
// collective task sequence, which in turn is exactly what the simulator
// prices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/codec.hpp"
#include "sched/fusion.hpp"
#include "sched/placement.hpp"

namespace spdkfac::sched {

/// Task types of one training iteration's schedule (beyond the model's own
/// forward/backward passes, which frame the plan but are not scheduled by
/// it).
enum class TaskKind {
  kFactorCompute,   ///< build one Kronecker factor (A_l or G_l) locally
  kFusedAllReduce,  ///< aggregate one fused factor group across workers
  kGradAllReduce,   ///< aggregate one WFBP gradient group across workers
  kInverse,         ///< damped inverse of one tensor (owner or replicated)
  kBroadcast,       ///< ship one CT inverse from its owner to every worker
  kUpdate,          ///< apply the preconditioned update (Eq. 13)
};

const char* to_string(TaskKind kind) noexcept;

/// Which per-layer quantity a factor/gradient task belongs to.
enum class Family { kNone, kA, kG, kGrad };

const char* to_string(Family family) noexcept;

/// One node of the iteration task-graph.  Field applicability by kind:
///
///   kFactorCompute   family, layer, pass_index, dim, elements, ready
///   kFusedAllReduce  family, first/last (pass positions), member_layers,
///                    elements, algo, ready, deferred, deps
///   kGradAllReduce   member_layers (pack order, deepest first), first =
///                    flush layer, last = deepest member, elements, algo,
///                    ready, deps (backward-pass dependency is implicit in
///                    `first`)
///   kInverse         tensor, dim, elements (packed), rank (owner; -1 =
///                    replicated NCT), deps (the factor barrier)
///   kBroadcast       tensor, dim, elements, rank (root), deps
///   kUpdate          elements (total parameters), deps
struct Task {
  int id = -1;
  TaskKind kind = TaskKind::kUpdate;
  Family family = Family::kNone;

  std::size_t layer = 0;       ///< model layer (kFactorCompute)
  std::size_t pass_index = 0;  ///< position within its pass (kFactorCompute)
  std::size_t first = 0;       ///< see table above
  std::size_t last = 0;
  std::vector<std::size_t> member_layers;  ///< model layers, pack order

  std::size_t tensor = 0;  ///< T_{2l} = A_l, T_{2l+1} = G_l
  std::size_t dim = 0;

  std::size_t elements = 0;  ///< payload size in doubles
  int rank = -1;             ///< owner/root; -1 = every rank

  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing;

  /// Payload codec of a collective task — planner-resolved, never kAuto —
  /// and the wire doubles actually shipped under it.  `elements` stays the
  /// logical payload size; wire_elements == elements when codec == kNone
  /// (and 0 on non-collective tasks, which ship nothing).
  comm::Codec codec = comm::Codec::kNone;
  std::size_t wire_elements = 0;

  /// Planner's readiness estimate; collective tasks are ordered by it, and
  /// the runtime submits them in exactly that order (the async engine's
  /// cross-rank ordering contract).
  double ready = 0.0;
  /// Collective is submitted after the passes drain (bulk modes) instead of
  /// the moment its last member is packed.
  bool deferred = false;

  std::vector<int> deps;  ///< plan-task ids that must finish first
  std::string label;      ///< canonical name, shared by runtime op records
                          ///< and simulator trace labels

  bool is_collective() const noexcept {
    return kind == TaskKind::kFusedAllReduce ||
           kind == TaskKind::kGradAllReduce || kind == TaskKind::kBroadcast;
  }
};

/// The full plan for one iteration.  `tasks` is in submission/topological
/// order; the index vectors are views into it by role so consumers do not
/// re-derive structure.
struct IterationPlan {
  int world_size = 1;
  bool second_order = true;
  bool factor_update = true;
  bool inverse_update = true;

  std::vector<Task> tasks;  ///< task id == index

  // Fusion/grouping views (what the legacy accessors exposed).
  std::vector<FusionGroup> a_groups, g_groups;
  /// WFBP gradient groups in backward order; members deepest-layer first
  /// (the pack order).
  std::vector<std::vector<std::size_t>> grad_groups;
  Placement placement;  ///< empty assignments when no inverse phase planned

  // Task-id indices.
  std::vector<int> a_compute;   ///< per layer (forward pass order)
  std::vector<int> g_compute;   ///< per pass position (deepest layer first)
  std::vector<int> a_comm;      ///< per A fusion group
  std::vector<int> g_comm;      ///< per G fusion group
  std::vector<int> grad_comm;   ///< per gradient group
  std::vector<int> comm_order;  ///< all all-reduce tasks, submission order
  std::vector<int> inverse_tasks;    ///< execution order (CTs then NCTs)
  std::vector<int> broadcast_tasks;  ///< submission order
  int update_task = -1;

  const Task& task(int id) const { return tasks[static_cast<std::size_t>(id)]; }

  /// Every collective in canonical submission order: `comm_order` followed
  /// by `broadcast_tasks` (the inverse phase starts only after the factor
  /// barrier, so broadcasts always trail the all-reduces).
  std::vector<int> collective_order() const;

  std::size_t num_collectives() const noexcept {
    return comm_order.size() + broadcast_tasks.size();
  }
};

}  // namespace spdkfac::sched
