#include "sched/planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "tensor/symmetric.hpp"

namespace spdkfac::sched {

const char* to_string(FactorCommMode mode) noexcept {
  switch (mode) {
    case FactorCommMode::kBulk:
      return "bulk";
    case FactorCommMode::kNaive:
      return "naive";
    case FactorCommMode::kLayerWise:
      return "layer-wise";
    case FactorCommMode::kThresholdFuse:
      return "threshold-fuse";
    case FactorCommMode::kOptimalFuse:
      return "optimal-fuse";
  }
  return "?";
}

const char* to_string(InverseMode mode) noexcept {
  switch (mode) {
    case InverseMode::kLocalAll:
      return "Non-Dist";
    case InverseMode::kSeqDist:
      return "Seq-Dist";
    case InverseMode::kLBP:
      return "LBP";
  }
  return "?";
}

ScheduleCosts costs_from(const perf::ClusterCalibration& cal) {
  return ScheduleCosts{cal.allreduce, cal.bcast_fabric, cal.inverse,
                       cal.effective_selector()};
}

namespace {

using tensor::packed_size;

FusionPolicy to_policy(FactorCommMode mode) noexcept {
  switch (mode) {
    case FactorCommMode::kLayerWise:
      return FusionPolicy::kNoFusion;
    case FactorCommMode::kThresholdFuse:
      return FusionPolicy::kThreshold;
    case FactorCommMode::kOptimalFuse:
      return FusionPolicy::kOptimal;
    case FactorCommMode::kBulk:
    case FactorCommMode::kNaive:
      break;  // planned manually, never via plan_fusion
  }
  return FusionPolicy::kSingleBulk;
}

/// Folds a codec into a comm cost model: the per-element (beta) term scales
/// by the wire ratio and absorbs the modeled encode+decode compute, so the
/// fusion DP, the bulk estimates and CT/NCT typing all re-derive their
/// decisions from the *compressed* alpha + beta'*m of Eq. (14).  Fed raw
/// element counts, the adjusted model prices alpha + beta*wire + codec
/// compute exactly (the wire ratio is the codecs' asymptotic ratio).
perf::AllReduceModel with_codec(perf::AllReduceModel base, comm::Codec codec,
                                double topk_ratio) noexcept {
  base.model.beta = base.model.beta * comm::wire_ratio(codec, topk_ratio) +
                    comm::codec_cost_per_element(codec);
  return base;
}

perf::BroadcastModel with_codec(perf::BroadcastModel base, comm::Codec codec,
                                double topk_ratio) noexcept {
  base.model.beta = base.model.beta * comm::wire_ratio(codec, topk_ratio) +
                    comm::codec_cost_per_element(codec);
  return base;
}

/// Per-plan helper carrying the pieces every task construction needs.
class Builder {
 public:
  Builder(IterationPlan& plan, const ScheduleOptions& options,
          const ScheduleCosts& costs)
      : plan_(plan), options_(options), costs_(costs) {}

  int add(Task task) {
    task.id = static_cast<int>(plan_.tasks.size());
    plan_.tasks.push_back(std::move(task));
    return plan_.tasks.back().id;
  }

  comm::AllReduceAlgo resolve(std::size_t elements) const {
    if (options_.collective_algo == comm::AllReduceAlgo::kRing) {
      return comm::AllReduceAlgo::kRing;
    }
    if (options_.collective_algo == comm::AllReduceAlgo::kAuto) {
      return costs_.selector.choose(elements);
    }
    return options_.collective_algo;
  }

  /// Labels carry the algorithm only when the config departs from the
  /// seed's implicit ring (keeps seed-era golden labels stable).
  std::string decorate(std::string label, comm::AllReduceAlgo algo) const {
    if (options_.collective_algo == comm::AllReduceAlgo::kRing) return label;
    return label + "@" + comm::to_string(algo);
  }

 private:
  IterationPlan& plan_;
  const ScheduleOptions& options_;
  const ScheduleCosts& costs_;
};

}  // namespace

IterationPlan plan_iteration(const ScheduleInputs& inputs,
                             const ScheduleOptions& options,
                             const ScheduleCosts& costs) {
  const std::size_t L = inputs.layers.size();
  if (L == 0) {
    throw std::invalid_argument("plan_iteration: empty layer list");
  }
  if (inputs.world_size < 1) {
    throw std::invalid_argument("plan_iteration: world_size must be >= 1");
  }
  const bool factor_phase = options.second_order && options.factor_update;
  const PassTiming& timing = inputs.timing;
  if (factor_phase &&
      (timing.a_ready.size() != L || timing.g_ready.size() != L)) {
    throw std::invalid_argument(
        "plan_iteration: factor timing must cover every layer");
  }
  if (inputs.world_size > 1 && timing.grad_ready.size() != L) {
    throw std::invalid_argument(
        "plan_iteration: gradient timing must cover every layer");
  }
  if (options.factor_codec == comm::Codec::kTopK) {
    throw std::invalid_argument(
        "plan_iteration: factor_codec cannot be topk (factors are dense; "
        "sparsifying them breaks the Kronecker approximation)");
  }
  if (options.grad_codec == comm::Codec::kTopK &&
      !(options.topk_ratio > 0.0 && options.topk_ratio <= 1.0)) {
    throw std::invalid_argument("plan_iteration: topk_ratio must be in (0, 1]");
  }

  IterationPlan plan;
  plan.world_size = inputs.world_size;
  plan.second_order = options.second_order;
  plan.factor_update = factor_phase;
  plan.inverse_update = options.second_order && options.inverse_update;
  Builder b(plan, options, costs);

  // Packed factor sizes in pass order (G pass runs deepest layer first).
  std::vector<std::size_t> a_sizes(L), g_sizes(L);
  for (std::size_t l = 0; l < L; ++l) {
    a_sizes[l] = inputs.layers[l].a_elements;
    g_sizes[l] = inputs.layers[L - 1 - l].g_elements;
  }
  const std::size_t a_total_all =
      std::accumulate(a_sizes.begin(), a_sizes.end(), std::size_t{0});
  const std::size_t g_total_all =
      std::accumulate(g_sizes.begin(), g_sizes.end(), std::size_t{0});
  std::size_t total_params = 0;
  for (const LayerShape& layer : inputs.layers) {
    total_params += layer.grad_elements;
  }

  // Resolve the option codecs per family against this step's total payload
  // (kAuto stays lossless below the crossover, where the alpha term
  // dominates and shrinking m buys nothing), then fold them into the comm
  // cost models the fusion DP / bulk estimates / CT-NCT typing decide with.
  // Inverse broadcasts ship the same packed-triangle family the factor
  // all-reduces do, so factor_codec governs them too.
  const double topk_ratio = options.topk_ratio;
  const comm::Codec grad_codec = comm::resolve_codec(
      options.grad_codec, total_params, /*gradient=*/true);
  const comm::Codec a_codec = comm::resolve_codec(
      options.factor_codec, a_total_all, /*gradient=*/false);
  const comm::Codec g_codec = comm::resolve_codec(
      options.factor_codec, g_total_all, /*gradient=*/false);
  const comm::Codec bcast_codec = comm::resolve_codec(
      options.factor_codec, a_total_all + g_total_all, /*gradient=*/false);
  const perf::AllReduceModel a_allreduce =
      with_codec(costs.allreduce, a_codec, topk_ratio);
  const perf::AllReduceModel g_allreduce =
      with_codec(costs.allreduce, g_codec, topk_ratio);

  // -------------------------------------------------------------------
  // Factor-computation tasks, in pass order (Fig. 1b: A_0..A_{L-1} during
  // forward, G_L..G_1 during backward).
  // -------------------------------------------------------------------
  if (factor_phase) {
    for (std::size_t l = 0; l < L; ++l) {
      Task t;
      t.kind = TaskKind::kFactorCompute;
      t.family = Family::kA;
      t.layer = l;
      t.pass_index = l;
      t.dim = inputs.layers[l].dim_a;
      t.elements = a_sizes[l];
      t.ready = timing.a_ready[l];
      t.label = "A" + std::to_string(l);
      plan.a_compute.push_back(b.add(std::move(t)));
    }
    for (std::size_t i = 0; i < L; ++i) {
      const std::size_t l = L - 1 - i;
      Task t;
      t.kind = TaskKind::kFactorCompute;
      t.family = Family::kG;
      t.layer = l;
      t.pass_index = i;
      t.dim = inputs.layers[l].dim_g;
      t.elements = g_sizes[i];
      t.ready = timing.g_ready[i];
      t.label = "G" + std::to_string(l + 1);
      plan.g_compute.push_back(b.add(std::move(t)));
    }
  }

  // -------------------------------------------------------------------
  // Collectives (world > 1): WFBP gradient groups plus the factor
  // aggregation of the configured mode, in canonical submission order.
  // -------------------------------------------------------------------
  if (inputs.world_size > 1) {
    // Gradients: accumulate consecutive layers in backward order until the
    // Horovod threshold, flush at the boundary (and always at layer 0).
    // The threshold is a message-size policy, so it applies to the *wire*
    // size — compression packs more layers per flush.
    std::vector<std::size_t> members;  // pack order: deepest member first
    std::size_t acc = 0;
    std::size_t tail = L;  // deepest member of the open group
    for (std::size_t i = 0; i < L; ++i) {
      const std::size_t l = L - 1 - i;
      if (members.empty()) tail = l;
      members.push_back(l);
      acc += inputs.layers[l].grad_elements;
      if (comm::wire_elements(grad_codec, acc, topk_ratio) >=
              options.grad_fusion_threshold ||
          l == 0) {
        Task t;
        t.kind = TaskKind::kGradAllReduce;
        t.family = Family::kGrad;
        t.first = l;
        t.last = tail;
        t.member_layers = members;
        t.elements = acc;
        t.codec = grad_codec;
        t.wire_elements = comm::wire_elements(grad_codec, acc, topk_ratio);
        t.algo = b.resolve(t.wire_elements);
        t.ready = timing.grad_ready[l];
        t.label = b.decorate("grad[" + std::to_string(l) + ".." +
                                 std::to_string(tail) + "]",
                             t.algo);
        plan.grad_comm.push_back(b.add(std::move(t)));
        plan.grad_groups.push_back(std::move(members));
        members.clear();
        acc = 0;
      }
    }

    if (factor_phase) {
      if (options.factor_comm == FactorCommMode::kBulk ||
          options.factor_comm == FactorCommMode::kNaive) {
        const bool naive = options.factor_comm == FactorCommMode::kNaive;
        const std::size_t a_total = a_total_all;
        const std::size_t g_total = g_total_all;

        FusionGroup a_group{0, L - 1, a_total, 0, 0, 0};
        a_group.ready_time = naive ? timing.a_ready[L - 1]
                                   : timing.backward_end;
        a_group.comm_start = a_group.ready_time;
        a_group.comm_end = a_group.comm_start + a_allreduce.time(a_total);
        FusionGroup g_group{0, L - 1, g_total, 0, 0, 0};
        g_group.ready_time = timing.backward_end;
        g_group.comm_start = std::max(g_group.ready_time, a_group.comm_end);
        g_group.comm_end = g_group.comm_start + g_allreduce.time(g_total);
        plan.a_groups = {a_group};
        plan.g_groups = {g_group};

        Task a_task;
        a_task.kind = TaskKind::kFusedAllReduce;
        a_task.family = Family::kA;
        a_task.first = 0;
        a_task.last = L - 1;
        a_task.member_layers.resize(L);
        std::iota(a_task.member_layers.begin(), a_task.member_layers.end(),
                  std::size_t{0});
        a_task.elements = a_total;
        a_task.codec = a_codec;
        a_task.wire_elements = comm::wire_elements(a_codec, a_total);
        a_task.algo = b.resolve(a_task.wire_elements);
        a_task.ready = a_group.ready_time;
        // Naive pipelining ships the A family the moment the forward pass
        // packed its last factor; plain bulk defers both ops to the drain.
        a_task.deferred = !naive;
        a_task.deps = {naive ? plan.a_compute.back() : plan.g_compute.back()};
        a_task.label = b.decorate("A-bulk", a_task.algo);
        plan.a_comm.push_back(b.add(std::move(a_task)));

        Task g_task;
        g_task.kind = TaskKind::kFusedAllReduce;
        g_task.family = Family::kG;
        g_task.first = 0;
        g_task.last = L - 1;
        for (std::size_t i = 0; i < L; ++i) {
          g_task.member_layers.push_back(L - 1 - i);
        }
        g_task.elements = g_total;
        g_task.codec = g_codec;
        g_task.wire_elements = comm::wire_elements(g_codec, g_total);
        g_task.algo = b.resolve(g_task.wire_elements);
        g_task.ready = g_group.ready_time;
        g_task.deferred = true;
        g_task.deps = {plan.g_compute.back()};
        g_task.label = b.decorate("G-bulk", g_task.algo);
        plan.g_comm.push_back(b.add(std::move(g_task)));
      } else {
        // Layer-wise pipelined aggregation: fused groups for the A pass and
        // the G pass, the G stream starting where the A groups drained.
        const FusionPolicy policy = to_policy(options.factor_comm);
        FusionPlanInput a_input{timing.a_ready, a_sizes, 0.0};
        plan.a_groups = plan_fusion(a_input, a_allreduce, policy);
        const double stream_free =
            plan.a_groups.empty() ? 0.0 : plan.a_groups.back().comm_end;
        FusionPlanInput g_input{timing.g_ready, g_sizes, stream_free};
        plan.g_groups = plan_fusion(g_input, g_allreduce, policy);

        for (const FusionGroup& g : plan.a_groups) {
          Task t;
          t.kind = TaskKind::kFusedAllReduce;
          t.family = Family::kA;
          t.first = g.first;
          t.last = g.last;
          for (std::size_t l = g.first; l <= g.last; ++l) {
            t.member_layers.push_back(l);
          }
          t.elements = g.elements;
          t.codec = a_codec;
          t.wire_elements = comm::wire_elements(a_codec, g.elements);
          t.algo = b.resolve(t.wire_elements);
          t.ready = g.ready_time;
          t.deps = {plan.a_compute[g.last]};
          t.label = b.decorate("A[" + std::to_string(g.first) + ".." +
                                   std::to_string(g.last) + "]",
                               t.algo);
          plan.a_comm.push_back(b.add(std::move(t)));
        }
        for (const FusionGroup& g : plan.g_groups) {
          Task t;
          t.kind = TaskKind::kFusedAllReduce;
          t.family = Family::kG;
          t.first = g.first;
          t.last = g.last;
          // Pass position i maps to model layer L-1-i.
          for (std::size_t i = g.first; i <= g.last; ++i) {
            t.member_layers.push_back(L - 1 - i);
          }
          t.elements = g.elements;
          t.codec = g_codec;
          t.wire_elements = comm::wire_elements(g_codec, g.elements);
          t.algo = b.resolve(t.wire_elements);
          t.ready = g.ready_time;
          t.deps = {plan.g_compute[g.last]};
          t.label = b.decorate("G[" + std::to_string(g.first) + ".." +
                                   std::to_string(g.last) + "]",
                               t.algo);
          plan.g_comm.push_back(b.add(std::move(t)));
        }
      }
    }

    // Canonical submission order: readiness along the pass walk; stable, so
    // exact ties keep gradients (inserted first) ahead of factor ops —
    // matching the per-layer event order both consumers execute.
    plan.comm_order = plan.grad_comm;
    plan.comm_order.insert(plan.comm_order.end(), plan.a_comm.begin(),
                           plan.a_comm.end());
    plan.comm_order.insert(plan.comm_order.end(), plan.g_comm.begin(),
                           plan.g_comm.end());
    std::stable_sort(plan.comm_order.begin(), plan.comm_order.end(),
                     [&plan](int x, int y) {
                       return plan.task(x).ready < plan.task(y).ready;
                     });
  }

  // -------------------------------------------------------------------
  // Inverse phase: placement per the configured policy; CT inverses each
  // followed by their broadcast, in deterministic submission order, then
  // the replicated NCT inverses (computed while the broadcasts drain).
  // -------------------------------------------------------------------
  if (plan.inverse_update) {
    std::vector<std::size_t> dims(2 * L);
    for (std::size_t l = 0; l < L; ++l) {
      dims[2 * l] = inputs.layers[l].dim_a;
      dims[2 * l + 1] = inputs.layers[l].dim_g;
    }
    switch (options.inverse) {
      case InverseMode::kLocalAll:
        plan.placement = nondist_place(dims, inputs.world_size);
        break;
      case InverseMode::kSeqDist:
        plan.placement = seq_place(dims, inputs.world_size);
        break;
      case InverseMode::kLBP:
        // CT/NCT typing under compression: a compressed broadcast is
        // cheaper, so the crossover dimension drops and more tensors
        // become communicated (Algorithm 1 re-derived on beta').
        plan.placement =
            lbp_place(dims, inputs.world_size, costs.inverse,
                      with_codec(costs.broadcast, bcast_codec, topk_ratio),
                      options.balance);
        break;
    }

    // Inverses start once every rank holds the aggregated factors: after
    // the last factor collective, or the last factor compute when nothing
    // was communicated (single worker).  Off-steps reuse stale factors and
    // depend on nothing scheduled this iteration.
    std::vector<int> barrier = plan.a_comm;
    barrier.insert(barrier.end(), plan.g_comm.begin(), plan.g_comm.end());
    if (barrier.empty() && factor_phase) {
      barrier.push_back(plan.g_compute.back());
    }

    // CT submission order: LBP emits largest-dimension first (the order
    // Algorithm 1 assigned); Seq-Dist uses tensor index order.
    std::vector<std::size_t> ct_order;
    for (std::size_t t = 0; t < dims.size(); ++t) {
      if (!plan.placement.assignments[t].nct) ct_order.push_back(t);
    }
    if (options.inverse == InverseMode::kLBP) {
      std::stable_sort(
          ct_order.begin(), ct_order.end(),
          [&dims](std::size_t x, std::size_t y) { return dims[x] > dims[y]; });
    }

    for (std::size_t t : ct_order) {
      Task inv;
      inv.kind = TaskKind::kInverse;
      inv.tensor = t;
      inv.dim = dims[t];
      inv.elements = packed_size(dims[t]);
      inv.rank = plan.placement.assignments[t].owner;
      inv.deps = barrier;
      inv.label = "inv[T" + std::to_string(t) + "]";
      const int inv_id = b.add(std::move(inv));
      plan.inverse_tasks.push_back(inv_id);
      if (inputs.world_size > 1) {
        Task bc;
        bc.kind = TaskKind::kBroadcast;
        bc.tensor = t;
        bc.dim = dims[t];
        bc.elements = packed_size(dims[t]);
        bc.codec = bcast_codec;
        bc.wire_elements = comm::wire_elements(bcast_codec, bc.elements);
        bc.rank = plan.placement.assignments[t].owner;
        bc.deps = {inv_id};
        bc.label = "bcast[T" + std::to_string(t) + "]";
        plan.broadcast_tasks.push_back(b.add(std::move(bc)));
      }
    }
    for (std::size_t t = 0; t < dims.size(); ++t) {
      if (!plan.placement.assignments[t].nct) continue;
      Task inv;
      inv.kind = TaskKind::kInverse;
      inv.tensor = t;
      inv.dim = dims[t];
      inv.elements = packed_size(dims[t]);
      inv.rank = -1;
      inv.deps = barrier;
      inv.label = "inv[T" + std::to_string(t) + "]";
      plan.inverse_tasks.push_back(b.add(std::move(inv)));
    }
  }

  // -------------------------------------------------------------------
  // Update task: Eq. (13) applied once everything above retired.
  // -------------------------------------------------------------------
  if (options.second_order) {
    Task up;
    up.kind = TaskKind::kUpdate;
    up.elements = total_params;
    up.deps = plan.inverse_tasks;
    up.deps.insert(up.deps.end(), plan.broadcast_tasks.begin(),
                   plan.broadcast_tasks.end());
    up.deps.insert(up.deps.end(), plan.grad_comm.begin(),
                   plan.grad_comm.end());
    up.label = "update";
    plan.update_task = b.add(std::move(up));
  }

  return plan;
}

std::vector<LayerShape> shapes_from_model(const models::ModelSpec& model) {
  std::vector<LayerShape> shapes;
  shapes.reserve(model.layers.size());
  for (const models::LayerSpec& layer : model.layers) {
    LayerShape s;
    s.dim_a = layer.dim_a();
    s.dim_g = layer.dim_g();
    s.a_elements = layer.a_elements();
    s.g_elements = layer.g_elements();
    s.grad_elements = layer.params();
    shapes.push_back(s);
  }
  return shapes;
}

PassTiming timing_from_model(const models::ModelSpec& model, std::size_t batch,
                             const perf::ComputeModel& compute,
                             bool second_order) {
  const std::size_t L = model.layers.size();
  PassTiming timing;
  timing.a_ready.assign(L, 0.0);
  timing.g_ready.assign(L, 0.0);
  timing.grad_ready.assign(L, 0.0);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    const models::LayerSpec& layer = model.layers[l];
    if (second_order) {
      clock += compute.factor_time(layer.factor_a_flops(batch));
      timing.a_ready[l] = clock;
    }
    clock += compute.fwd_time(layer.fwd_flops(batch));
  }
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    const models::LayerSpec& layer = model.layers[l];
    clock += compute.bwd_time(layer.bwd_flops(batch));
    timing.grad_ready[l] = clock;
    if (second_order) {
      clock += compute.factor_time(layer.factor_g_flops(batch));
      timing.g_ready[i] = clock;
    }
  }
  timing.backward_end = clock;
  return timing;
}

PassTiming timing_from_profile(const perf::ProfileSnapshot& profile) {
  const std::size_t L = profile.layers();
  if (profile.factor_g.size() != L || profile.forward.size() != L ||
      profile.backward.size() != L) {
    throw std::invalid_argument(
        "timing_from_profile: snapshot vectors must all cover every layer");
  }
  // Unsampled factor slots advance the clock by a tiny epsilon so that the
  // per-layer event order (A_l before A_{l+1}, grad_l before G_l) stays a
  // strict total order even on an empty profile; unsampled kernels simply
  // contribute no time.
  constexpr double kEps = 1e-9;
  PassTiming timing;
  timing.a_ready.resize(L);
  timing.g_ready.resize(L);
  timing.grad_ready.resize(L);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    clock += std::max(profile.factor_a[l], kEps);
    timing.a_ready[l] = clock;
    clock += std::max(profile.forward[l], 0.0);
  }
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    clock += std::max(profile.backward[l], kEps);
    timing.grad_ready[l] = clock;
    clock += std::max(profile.factor_g[l], kEps);
    timing.g_ready[i] = clock;
  }
  timing.backward_end = clock;
  return timing;
}

ScheduleInputs inputs_from_model(const models::ModelSpec& model,
                                 std::size_t batch,
                                 const perf::ComputeModel& compute,
                                 int world_size, bool second_order) {
  ScheduleInputs inputs;
  inputs.layers = shapes_from_model(model);
  inputs.world_size = world_size;
  inputs.timing = timing_from_model(model, batch, compute, second_order);
  return inputs;
}

}  // namespace spdkfac::sched
