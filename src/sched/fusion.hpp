// Dynamic tensor fusion for Kronecker-factor communication (paper §IV-A).
//
// During the forward pass the factors A_0..A_{L-1} become ready one after
// another; during the backward pass the factors G_L..G_1 do.  Each factor
// could be all-reduced individually ("LW w/o TF"), but small messages are
// dominated by the all-reduce startup latency alpha_ar, so consecutive
// factors should sometimes be merged into one fused buffer.  Eq. (15) gives
// the pairwise merge rule (adapted from MG-WFBP): merge factor l+1 into the
// group of factor l when the next factor becomes ready before the group's
// communication could effectively start, i.e.
//
//     ready(l+1)  <  comm_begin(group) + alpha_ar.
//
// plan_fusion()'s kOptimal policy implements the objective that rule
// approximates — minimal drain time of the pass's communication stream —
// exactly, as an O(L^2) dynamic program over group boundaries.  (Applied
// literally and greedily, Eq. (15) merges without bound whenever every
// inter-factor gap is smaller than alpha_ar, collapsing the pass into one
// bulk op and forfeiting pipelining; the DP keeps the early-drain benefit.
// See the comment in fusion.cpp.)  The same planner also produces the
// baseline policies compared in Fig. 10 (no fusion, threshold fusion,
// single bulk op).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "perf/models.hpp"

namespace spdkfac::sched {

/// One fused all-reduce: factors [first, last] communicated together.
struct FusionGroup {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t elements = 0;  ///< total packed elements in the group
  double ready_time = 0.0;   ///< when the last member finished computing
  double comm_start = 0.0;   ///< planner's estimate (max(ready, stream free))
  double comm_end = 0.0;

  std::size_t count() const noexcept { return last - first + 1; }
};

/// Fusion policies evaluated in Fig. 10.
enum class FusionPolicy {
  kNoFusion,    ///< "LW w/o TF": one all-reduce per factor
  kThreshold,   ///< "LW w/ TTF": merge until a byte threshold (Horovod-style)
  kOptimal,     ///< "SP w/ OTF": Eq. (15) decision rule
  kSingleBulk,  ///< everything in one op (the Naive / D-KFAC endpoint)
};

struct FusionPlanInput {
  /// Time each factor finishes computing, in pass order (monotone
  /// non-decreasing).
  std::vector<double> ready_times;
  /// Packed element count of each factor.
  std::vector<std::size_t> sizes;
  /// First instant the communication stream is free (e.g. 0 for the forward
  /// pass; for the backward pass, when the stream drained the A groups).
  double stream_free_at = 0.0;
};

/// Horovod's default fusion threshold: 64 MiB of fp32 elements.
inline constexpr std::size_t kHorovodThresholdElements =
    64ull * 1024 * 1024 / 4;

/// Computes the fused communication schedule for one pass.
///
/// The returned groups are disjoint, consecutive, cover every factor, and
/// carry the planner's predicted communication window under `model`
/// (groups execute back-to-back on a single communication stream, each
/// starting no earlier than its ready time).
std::vector<FusionGroup> plan_fusion(const FusionPlanInput& input,
                                     const perf::AllReduceModel& model,
                                     FusionPolicy policy,
                                     std::size_t threshold_elements =
                                         kHorovodThresholdElements);

/// Total time the pass's communication extends beyond the last compute task
/// (i.e. the non-hidden factor-communication tail) under a plan.
double non_overlapped_tail(std::span<const FusionGroup> groups,
                           double last_compute_end);

}  // namespace spdkfac::sched
