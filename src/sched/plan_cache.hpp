// Plan caching for the adaptive re-planning loop.
//
// The runtime re-plans from measured timings, but timings jitter: replanning
// from raw wall-clock every step would rebuild the Eq. (15) DP constantly
// and — worse — flap the schedule (and with it the bit-exact collective
// reassociation) between runs.  The cache's key is therefore a *quantized*
// profile signature: pass timings snapped to a relative grid plus a coarse
// absolute-scale bucket.  Profiles that quantize identically reuse the plan
// built for the first representative — steady-state iterations pay zero
// planning cost and execute a bitwise-stable schedule — while a real drift
// (layers slowing down, cache effects settling, different pool sizes
// changing compute overlap) moves the signature and triggers a re-plan.
//
// The signature is a pure function of the PassTiming, so ranks that plan
// from the same synced profile (the profile-sync all-reduce guarantees
// this) hit or miss their caches identically — the engine's cross-rank
// collective-order contract survives caching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sched/plan.hpp"
#include "sched/planner.hpp"

namespace spdkfac::sched {

/// Quantized fingerprint of a planning profile.  Equal signatures mean
/// "close enough that the same plan applies"; building it is O(L).
struct ProfileSignature {
  std::vector<std::int64_t> buckets;

  bool operator==(const ProfileSignature&) const = default;

  /// Quantizes `timing` with 2^resolution_bits relative buckets across the
  /// pass walk plus a log-scale bucket of the absolute walk length (scale
  /// changes flip Eq. (15) decisions even when the shape is unchanged,
  /// because the all-reduce alpha/beta costs are absolute).  `world_size`
  /// folds the cluster population into the key: after an elastic restart
  /// at a different P, every fusion-group size, LBP placement and
  /// all-reduce cost changes, so a plan built for the old P must never be
  /// replayed (0 keeps the legacy P-agnostic signature).
  static ProfileSignature of(const PassTiming& timing, int world_size = 0,
                             int resolution_bits = 12);
};

struct ProfileSignatureHash {
  std::size_t operator()(const ProfileSignature& sig) const noexcept;
};

/// FIFO-evicting cache of iteration plans, keyed by the step kind (factor /
/// inverse phases due, resolved factor-comm mode) and the profile
/// signature.  One cache serves one fixed planning context (layer shapes,
/// options, cost models) — the key deliberately excludes them; callers
/// with several contexts hold several caches.  World size rides inside the
/// signature (ProfileSignature::of) so an elastic restart re-keys cleanly.
class PlanCache {
 public:
  struct Key {
    bool factor_update = true;
    bool inverse_update = true;
    /// The *resolved* mode (the warm-up fallback downgrades kOptimalFuse to
    /// kLayerWise before measurements exist, and those plans must not be
    /// reused once real timings arrive).
    FactorCommMode factor_comm = FactorCommMode::kOptimalFuse;
    ProfileSignature signature;

    bool operator==(const Key&) const = default;
  };

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The cached plan, or nullptr.  Counts a hit or a miss.  Entries are
  /// shared immutably, so a hit is a pointer copy (no O(tasks) plan copy
  /// on the steady-state path) and the returned plan outlives any later
  /// insert/eviction.
  std::shared_ptr<const IterationPlan> find(const Key& key);

  /// Stores `plan` (evicting the oldest entry at capacity) and returns the
  /// stored handle.  A capacity-0 cache stores nothing but still hands the
  /// plan back.
  std::shared_ptr<const IterationPlan> insert(const Key& key,
                                              IterationPlan plan);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }
  void clear();

  static constexpr std::size_t kDefaultCapacity = 64;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  std::size_t capacity_;
  std::unordered_map<Key, std::shared_ptr<const IterationPlan>, KeyHash>
      entries_;
  std::deque<Key> order_;  ///< insertion order, for FIFO eviction
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace spdkfac::sched
