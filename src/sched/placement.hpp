// Load-balancing placement of matrix-inverse workloads (paper §IV-B,
// Algorithm 1).
//
// After factor aggregation every GPU holds identical global factors; the 2L
// damped inverses (A_l + gamma I)^-1, (G_l + gamma I)^-1 must then be
// obtained by every GPU.  Each tensor is either
//   * a CT (communicated tensor): inverted on exactly one GPU and broadcast
//     to the rest, or
//   * an NCT (non-communicated tensor): inverted redundantly by every GPU
//     with no communication (profitable when t_comp < t_comm, Fig. 11).
//
// Algorithm 1 traverses tensors in descending dimension order, classifies
// each via the fitted performance models, and assigns CTs to the currently
// least-loaded GPU.  The baselines of Fig. 12 — Non-Dist (everything NCT,
// i.e. D-KFAC) and Seq-Dist (round-robin CTs, i.e. MPD-KFAC [13,20,22]) —
// are provided alongside.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "perf/models.hpp"

namespace spdkfac::sched {

/// Where one tensor's inverse is computed.
struct TensorAssignment {
  std::size_t tensor = 0;  ///< index into the input dims
  std::size_t dim = 0;
  bool nct = false;  ///< true: replicated on every GPU, no broadcast
  int owner = -1;    ///< owning GPU for CTs; -1 for NCTs
};

/// Full placement: per-tensor assignments plus per-GPU CT worklists.
struct Placement {
  std::string policy;
  int world_size = 1;
  std::vector<TensorAssignment> assignments;      // index-aligned with dims
  std::vector<std::vector<std::size_t>> per_gpu;  // CT tensor ids per GPU

  std::size_t num_ncts() const noexcept;
  std::size_t num_cts() const noexcept;

  /// Sanity: every tensor appears either as an NCT or on exactly one GPU.
  bool valid(std::size_t num_tensors) const noexcept;
};

/// What Algorithm 1 balances when choosing the least-loaded GPU.  The
/// paper's pseudocode accumulates the raw dimension d_i (line 13) while the
/// surrounding text balances by d_i^2 (Eq. 25); we additionally support the
/// estimated wall-clock cost implied by the objective of Eq. (21).  The
/// ablation bench compares all three; kEstimatedTime is the default.
enum class BalanceMetric { kDim, kDimSquared, kEstimatedTime };

/// Algorithm 1: LBP with dynamic CT/NCT typing.
Placement lbp_place(std::span<const std::size_t> dims, int world_size,
                    const perf::InverseModel& inverse,
                    const perf::BroadcastModel& broadcast,
                    BalanceMetric metric = BalanceMetric::kEstimatedTime);

/// MPD-KFAC baseline: tensor i on GPU i % P, everything CT.
Placement seq_place(std::span<const std::size_t> dims, int world_size);

/// D-KFAC baseline: every tensor inverted locally by every GPU.
Placement nondist_place(std::span<const std::size_t> dims, int world_size);

/// Predicted cost of executing a placement, per the paper's objective
/// Eq. (21): every GPU pays the compute time of its CTs plus all NCTs plus
/// the broadcast time of its CTs; the phase ends with the slowest GPU.
struct PlacementCost {
  std::vector<double> per_gpu_seconds;
  double max_seconds = 0.0;        ///< Eq. (21) objective value
  double bottleneck_comp = 0.0;    ///< compute share of the slowest GPU
  double bottleneck_comm = 0.0;    ///< broadcast share of the slowest GPU
};

PlacementCost predict_cost(const Placement& placement,
                           std::span<const std::size_t> dims,
                           const perf::InverseModel& inverse,
                           const perf::BroadcastModel& broadcast);

}  // namespace spdkfac::sched
