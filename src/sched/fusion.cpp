#include "sched/fusion.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace spdkfac::sched {

namespace {

void validate(const FusionPlanInput& input) {
  if (input.ready_times.size() != input.sizes.size()) {
    throw std::invalid_argument("plan_fusion: ready_times/sizes mismatch");
  }
  for (std::size_t i = 1; i < input.ready_times.size(); ++i) {
    if (input.ready_times[i] < input.ready_times[i - 1]) {
      throw std::invalid_argument(
          "plan_fusion: ready times must be non-decreasing");
    }
  }
}

/// Finalizes group boundaries into FusionGroups with predicted comm windows.
std::vector<FusionGroup> materialize(
    const FusionPlanInput& input,
    const std::vector<std::pair<std::size_t, std::size_t>>& bounds,
    const perf::AllReduceModel& model) {
  std::vector<FusionGroup> groups;
  groups.reserve(bounds.size());
  double stream_free = input.stream_free_at;
  for (auto [first, last] : bounds) {
    FusionGroup g;
    g.first = first;
    g.last = last;
    for (std::size_t i = first; i <= last; ++i) g.elements += input.sizes[i];
    g.ready_time = input.ready_times[last];
    g.comm_start = std::max(g.ready_time, stream_free);
    g.comm_end = g.comm_start + model.time(g.elements);
    stream_free = g.comm_end;
    groups.push_back(g);
  }
  return groups;
}

}  // namespace

std::vector<FusionGroup> plan_fusion(const FusionPlanInput& input,
                                     const perf::AllReduceModel& model,
                                     FusionPolicy policy,
                                     std::size_t threshold_elements) {
  validate(input);
  const std::size_t n = input.sizes.size();
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  if (n == 0) return {};

  switch (policy) {
    case FusionPolicy::kNoFusion:
      for (std::size_t i = 0; i < n; ++i) bounds.emplace_back(i, i);
      break;

    case FusionPolicy::kSingleBulk:
      bounds.emplace_back(0, n - 1);
      break;

    case FusionPolicy::kThreshold: {
      // Horovod-style: accumulate consecutive factors until the buffer
      // crosses the threshold, then flush.  The final partial buffer is
      // flushed at the end of the pass.
      std::size_t first = 0;
      std::size_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += input.sizes[i];
        if (acc >= threshold_elements) {
          bounds.emplace_back(first, i);
          first = i + 1;
          acc = 0;
        }
      }
      if (first < n) bounds.emplace_back(first, n - 1);
      break;
    }

    case FusionPolicy::kOptimal: {
      // Optimal fused-group schedule by dynamic programming.  A grouping's
      // drain time obeys the recurrence
      //
      //   E[j] = min over k < j of  max(r_j, E[k]) + alpha + beta * m(k+1..j)
      //
      // (a group can only start once its last member is ready and the
      // stream drained the previous group), with E[0] = stream_free_at.
      // Eq. (15)'s pairwise merge rule is the first-order approximation of
      // this objective; applied greedily it degenerates to a single bulk
      // operation whenever every inter-factor gap is below alpha_ar, which
      // forfeits the early-drain benefit of pipelining.  The DP keeps both
      // effects: it merges away startup latencies *and* flushes groups
      // early enough that most traffic hides under the remaining compute.
      // O(n^2) over at most a few hundred factors, planned once.
      std::vector<double> prefix(n + 1, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + static_cast<double>(input.sizes[i]);
      }
      constexpr double kInf = std::numeric_limits<double>::infinity();
      std::vector<double> drain(n + 1, kInf);
      std::vector<std::size_t> split(n + 1, 0);
      drain[0] = input.stream_free_at;
      for (std::size_t j = 1; j <= n; ++j) {
        const double rj = input.ready_times[j - 1];
        // Iterate k downward so ties prefer the smallest last group (flush
        // early), which minimizes the exposed tail at equal drain time.
        for (std::size_t k = j; k-- > 0;) {
          const double elements = prefix[j] - prefix[k];
          const double end =
              std::max(rj, drain[k]) + model.time(0) +
              (model.model.beta * elements);
          if (end < drain[j]) {
            drain[j] = end;
            split[j] = k;
          }
        }
      }
      std::vector<std::pair<std::size_t, std::size_t>> rev;
      for (std::size_t j = n; j > 0; j = split[j]) {
        rev.emplace_back(split[j], j - 1);
      }
      bounds.assign(rev.rbegin(), rev.rend());
      break;
    }
  }

  return materialize(input, bounds, model);
}

double non_overlapped_tail(std::span<const FusionGroup> groups,
                           double last_compute_end) {
  if (groups.empty()) return 0.0;
  return std::max(0.0, groups.back().comm_end - last_compute_end);
}

}  // namespace spdkfac::sched
