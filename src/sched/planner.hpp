// SchedulePlanner — builds the iteration task-graph (plan.hpp) from a model
// description, the distribution options, and the fitted cost models.
//
// This is the single place the paper's scheduling policies are decided:
//   * WFBP gradient grouping (Horovod threshold fusion, backward order);
//   * Kronecker-factor aggregation per FactorCommMode — one bulk op per
//     family (D-KFAC / MPD-KFAC), naive forward-overlap, layer-wise,
//     threshold-fused, or the Eq. (15) optimal-fusion DP (SPD-KFAC);
//   * all-reduce algorithm resolution (kAuto via the AlgorithmSelector,
//     identically on every rank);
//   * inverse placement per InverseMode — Non-Dist, Seq-Dist, or LBP
//     (Algorithm 1) with CT/NCT typing — and the broadcast order.
//
// The runtime feeds measured (or profiled) pass timing and executes the
// resulting plan; the simulator feeds model-derived timing and prices it.
// Feeding both from the same timing yields byte-identical plans, which the
// tests/sched equivalence suite exploits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comm/codec.hpp"
#include "comm/collectives.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "perf/online_profiler.hpp"
#include "sched/plan.hpp"

namespace spdkfac::sched {

/// How Kronecker factors are aggregated across workers (Fig. 10 variants).
enum class FactorCommMode {
  kBulk,           ///< one fused op per factor family after backward (-Pipe)
  kNaive,          ///< A factors bulk-overlapped with backward, G bulk after
  kLayerWise,      ///< per-factor all-reduce as computed (LW w/o TF)
  kThresholdFuse,  ///< layer-wise with Horovod 64 MiB threshold (LW w/ TTF)
  kOptimalFuse,    ///< Eq. (15) dynamic fusion (SP w/ OTF, +Pipe)
};

/// How the 2L damped inverses are computed and shared (Fig. 12 variants).
enum class InverseMode {
  kLocalAll,  ///< every GPU inverts everything (Non-Dist, D-KFAC)
  kSeqDist,   ///< round-robin ownership, all CT (Seq-Dist, MPD-KFAC)
  kLBP,       ///< Algorithm 1 with CT/NCT typing (SPD-KFAC)
};

const char* to_string(FactorCommMode mode) noexcept;
const char* to_string(InverseMode mode) noexcept;

/// Shape of one preconditioned layer — everything scheduling depends on.
struct LayerShape {
  std::size_t dim_a = 0;
  std::size_t dim_g = 0;
  std::size_t a_elements = 0;     ///< packed upper triangle of A
  std::size_t g_elements = 0;     ///< packed upper triangle of G
  std::size_t grad_elements = 0;  ///< parameter count
};

/// When each factor/gradient becomes computable during the passes, on one
/// global clock.  Drives the fusion DP and the canonical collective
/// submission order; absolute values only matter for fusion quality, the
/// *ordering* along the pass walk is what both consumers must agree on.
struct PassTiming {
  std::vector<double> a_ready;     ///< layer order: A_l ready at a_ready[l]
  std::vector<double> g_ready;     ///< pass order: G of layer L-1-i at [i]
  std::vector<double> grad_ready;  ///< layer order: grad of layer l
  double backward_end = 0.0;

  bool empty() const noexcept {
    return a_ready.empty() && g_ready.empty() && grad_ready.empty();
  }
};

struct ScheduleInputs {
  std::vector<LayerShape> layers;  ///< front (input side) to back
  int world_size = 1;
  PassTiming timing;
};

struct ScheduleOptions {
  bool second_order = true;
  bool factor_update = true;   ///< factors recomputed+aggregated this step
  bool inverse_update = true;  ///< inverses recomputed this step
  FactorCommMode factor_comm = FactorCommMode::kOptimalFuse;
  InverseMode inverse = InverseMode::kLBP;
  BalanceMetric balance = BalanceMetric::kEstimatedTime;
  std::size_t grad_fusion_threshold = kHorovodThresholdElements;
  /// kRing reproduces the seed's collectives with undecorated labels; kAuto
  /// resolves per message size through the selector; any concrete algorithm
  /// forces it (labels then carry an "@algo" suffix).
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;
  /// Collective payload codecs (comm/codec.hpp).  factor_codec governs the
  /// fused factor all-reduces *and* the inverse broadcasts (kTopK is
  /// rejected there — factors need every element); grad_codec governs the
  /// WFBP gradient all-reduces (kTopK engages error feedback in the
  /// runtime).  kAuto resolves per family-total payload against the
  /// crossover; kNone reproduces the seed's plans byte-identically.
  /// Compression shifts the m of Eq. (14), so fusion groups, CT/NCT typing
  /// and algorithm choices are all re-derived from the compressed sizes.
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  /// kTopK keep ratio: fraction of gradient elements shipped per message.
  double topk_ratio = 0.01;
};

/// Cost models the planner decides with (not what execution is priced at —
/// the simulator prices the finished plan with its own calibration).
struct ScheduleCosts {
  perf::AllReduceModel allreduce;  ///< Eq. (14); drives the fusion DP
  perf::BroadcastModel broadcast;  ///< Eq. (27); drives CT/NCT typing
  perf::InverseModel inverse;      ///< Eq. (26); drives CT/NCT + balance
  comm::AlgorithmSelector selector;  ///< kAuto resolution, rank-identical
};

/// The planning-relevant slice of a ClusterCalibration.
ScheduleCosts costs_from(const perf::ClusterCalibration& cal);

/// Builds the iteration task-graph.  Deterministic: equal inputs give
/// byte-identical plans on every rank/consumer.  Throws
/// std::invalid_argument on inconsistent inputs (timing vectors not
/// matching the layer count when their pass is planned, world_size < 1,
/// empty layer list).
IterationPlan plan_iteration(const ScheduleInputs& inputs,
                             const ScheduleOptions& options,
                             const ScheduleCosts& costs);

/// Layer shapes of a ModelSpec (packed factor triangles, parameter counts).
std::vector<LayerShape> shapes_from_model(const models::ModelSpec& model);

/// Pass timing predicted by a compute model — the simulator's planning
/// input, and the deterministic "profile" the equivalence suite hands the
/// runtime.  Mirrors the Fig. 1b pass structure: A_l before F_{l+1} on the
/// forward pass, B_{l+1} then G_l on the backward pass.
PassTiming timing_from_model(const models::ModelSpec& model, std::size_t batch,
                             const perf::ComputeModel& compute,
                             bool second_order);

/// Pass timing from *measured* per-layer times (the online-profiling
/// workflow): the same Fig. 1b walk as timing_from_model, laid out from an
/// OnlineProfiler snapshot.  Unsampled kernel entries contribute nothing;
/// unsampled factor entries get a tiny epsilon so the readiness order stays
/// strictly the per-layer event order.  Throws std::invalid_argument when
/// the snapshot's vectors disagree in length.
PassTiming timing_from_profile(const perf::ProfileSnapshot& profile);

/// Convenience: shapes + timing + world size in one ScheduleInputs.
ScheduleInputs inputs_from_model(const models::ModelSpec& model,
                                 std::size_t batch,
                                 const perf::ComputeModel& compute,
                                 int world_size, bool second_order = true);

}  // namespace spdkfac::sched
