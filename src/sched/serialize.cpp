#include "sched/serialize.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "comm/collectives.hpp"

namespace spdkfac::sched {

namespace {

template <typename T>
void append_list(std::string& out, const char* name,
                 const std::vector<T>& values) {
  out += name;
  out += "=[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

std::string plan_to_text(const IterationPlan& plan) {
  std::string out;
  out += "plan world=" + std::to_string(plan.world_size) +
         " second_order=" + std::to_string(plan.second_order) +
         " factor_update=" + std::to_string(plan.factor_update) +
         " inverse_update=" + std::to_string(plan.inverse_update) +
         " tasks=" + std::to_string(plan.tasks.size()) + "\n";

  for (const Task& t : plan.tasks) {
    out += "task " + std::to_string(t.id);
    out += " kind=";
    out += to_string(t.kind);
    if (t.family != Family::kNone) {
      out += " family=";
      out += to_string(t.family);
    }
    switch (t.kind) {
      case TaskKind::kFactorCompute:
        out += " layer=" + std::to_string(t.layer) +
               " pass=" + std::to_string(t.pass_index) +
               " dim=" + std::to_string(t.dim);
        break;
      case TaskKind::kFusedAllReduce:
      case TaskKind::kGradAllReduce:
        out += " first=" + std::to_string(t.first) +
               " last=" + std::to_string(t.last) + " ";
        append_list(out, "members", t.member_layers);
        out += " algo=";
        out += comm::to_string(t.algo);
        out += " deferred=" + std::to_string(t.deferred);
        break;
      case TaskKind::kInverse:
      case TaskKind::kBroadcast:
        out += " tensor=" + std::to_string(t.tensor) +
               " dim=" + std::to_string(t.dim) +
               " rank=" + std::to_string(t.rank);
        break;
      case TaskKind::kUpdate:
        break;
    }
    out += " elems=" + std::to_string(t.elements);
    // Codec annotation only on compressed collectives: lossless plans stay
    // byte-identical to the seed-era golden schedules.
    if (t.codec != comm::Codec::kNone) {
      out += " codec=";
      out += comm::to_string(t.codec);
      out += " wire=" + std::to_string(t.wire_elements);
    }
    out += " ";
    append_list(out, "deps", t.deps);
    out += " label=" + t.label + "\n";
  }

  const auto groups = [&out](const char* name,
                             const std::vector<FusionGroup>& gs) {
    out += name;
    for (const FusionGroup& g : gs) {
      out += " [" + std::to_string(g.first) + ".." + std::to_string(g.last) +
             ":" + std::to_string(g.elements) + "]";
    }
    out += "\n";
  };
  groups("a_groups", plan.a_groups);
  groups("g_groups", plan.g_groups);
  out += "grad_groups";
  for (const auto& members : plan.grad_groups) {
    out += " [";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(members[i]);
    }
    out += ']';
  }
  out += "\n";

  append_list(out, "a_comm", plan.a_comm);
  out += ' ';
  append_list(out, "g_comm", plan.g_comm);
  out += ' ';
  append_list(out, "grad_comm", plan.grad_comm);
  out += "\n";
  append_list(out, "comm_order", plan.comm_order);
  out += ' ';
  append_list(out, "inverse_tasks", plan.inverse_tasks);
  out += ' ';
  append_list(out, "broadcast_tasks", plan.broadcast_tasks);
  out += " update=" + std::to_string(plan.update_task) + "\n";

  out += "placement";
  for (std::size_t t = 0; t < plan.placement.assignments.size(); ++t) {
    const auto& a = plan.placement.assignments[t];
    out += " T" + std::to_string(t) + ":owner=" + std::to_string(a.owner) +
           ",nct=" + std::to_string(a.nct) + ",dim=" + std::to_string(a.dim);
  }
  out += "\n";
  return out;
}

}  // namespace spdkfac::sched
