// Stable text form of an IterationPlan — the golden-snapshot format.
//
// Captures every scheduling *decision*: task kinds, fusion/group
// membership, payload sizes, resolved algorithms, owners/roots, dependency
// edges, the canonical collective order, the placement, and the index
// views.  Deliberately excludes the planner's floating-point readiness
// estimates: their total order is already encoded in comm_order, and
// printing raw doubles would couple the goldens to FP formatting instead
// of to the schedule.
//
// Two plans serialize identically iff every decision matches, so the text
// doubles as a cheap deep-equality witness (the fuzz suite compares ranks
// through it; the determinism suite compares re-planned ranks through it).
#pragma once

#include <string>

#include "sched/plan.hpp"

namespace spdkfac::sched {

/// One line per task plus the plan header, group tables, placement and
/// index views; newline-terminated, ASCII, no locale dependence.
std::string plan_to_text(const IterationPlan& plan);

}  // namespace spdkfac::sched
