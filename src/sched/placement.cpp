#include "sched/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace spdkfac::sched {

std::size_t Placement::num_ncts() const noexcept {
  std::size_t n = 0;
  for (const auto& a : assignments) n += a.nct ? 1 : 0;
  return n;
}

std::size_t Placement::num_cts() const noexcept {
  return assignments.size() - num_ncts();
}

bool Placement::valid(std::size_t num_tensors) const noexcept {
  if (assignments.size() != num_tensors) return false;
  std::vector<int> seen(num_tensors, 0);
  for (const auto& a : assignments) {
    if (a.tensor >= num_tensors) return false;
    ++seen[a.tensor];
    if (a.nct && a.owner != -1) return false;
    if (!a.nct && (a.owner < 0 || a.owner >= world_size)) return false;
  }
  for (int s : seen) {
    if (s != 1) return false;
  }
  // Each CT must appear in exactly its owner's worklist.
  std::vector<int> listed(num_tensors, 0);
  for (int p = 0; p < world_size; ++p) {
    for (std::size_t t : per_gpu[p]) {
      if (t >= num_tensors) return false;
      if (assignments[t].owner != p) return false;
      ++listed[t];
    }
  }
  for (std::size_t t = 0; t < num_tensors; ++t) {
    if (assignments[t].nct ? listed[t] != 0 : listed[t] != 1) return false;
  }
  return true;
}

Placement lbp_place(std::span<const std::size_t> dims, int world_size,
                    const perf::InverseModel& inverse,
                    const perf::BroadcastModel& broadcast,
                    BalanceMetric metric) {
  if (world_size < 1) {
    throw std::invalid_argument("lbp_place: world_size must be >= 1");
  }
  Placement placement;
  placement.policy = "LBP";
  placement.world_size = world_size;
  placement.assignments.resize(dims.size());
  placement.per_gpu.assign(world_size, {});

  // Line 3: traverse tensors in descending dimension order (largest first),
  // so the heaviest workloads are spread before the buckets fill up.
  std::vector<std::size_t> order(dims.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return dims[a] > dims[b];
  });

  std::vector<double> bucket(world_size, 0.0);
  for (std::size_t t : order) {
    const std::size_t d = dims[t];
    const double t_comp = inverse.time(d);
    const double t_comm = broadcast.time_dim(d);
    TensorAssignment& a = placement.assignments[t];
    a.tensor = t;
    a.dim = d;

    const double weight = [&] {
      switch (metric) {
        case BalanceMetric::kDim:
          return static_cast<double>(d);
        case BalanceMetric::kDimSquared:
          return static_cast<double>(d) * static_cast<double>(d);
        case BalanceMetric::kEstimatedTime:
          return t_comp + t_comm;
      }
      return 0.0;
    }();

    if (t_comp < t_comm || world_size == 1) {
      // Lines 8-10: cheaper to invert everywhere than to ship the result.
      a.nct = true;
      a.owner = -1;
      const double comp_weight =
          metric == BalanceMetric::kEstimatedTime ? t_comp : weight;
      for (double& b : bucket) b += comp_weight;
    } else {
      // Lines 11-13: give the tensor to the least-loaded GPU.
      const int p = static_cast<int>(
          std::min_element(bucket.begin(), bucket.end()) - bucket.begin());
      a.nct = false;
      a.owner = p;
      placement.per_gpu[p].push_back(t);
      bucket[p] += weight;
    }
  }
  return placement;
}

Placement seq_place(std::span<const std::size_t> dims, int world_size) {
  if (world_size < 1) {
    throw std::invalid_argument("seq_place: world_size must be >= 1");
  }
  Placement placement;
  placement.policy = "Seq-Dist";
  placement.world_size = world_size;
  placement.assignments.resize(dims.size());
  placement.per_gpu.assign(world_size, {});
  for (std::size_t t = 0; t < dims.size(); ++t) {
    const int p = static_cast<int>(t % world_size);
    placement.assignments[t] = {t, dims[t], /*nct=*/false, p};
    placement.per_gpu[p].push_back(t);
  }
  return placement;
}

Placement nondist_place(std::span<const std::size_t> dims, int world_size) {
  Placement placement;
  placement.policy = "Non-Dist";
  placement.world_size = world_size;
  placement.assignments.resize(dims.size());
  placement.per_gpu.assign(world_size, {});
  for (std::size_t t = 0; t < dims.size(); ++t) {
    placement.assignments[t] = {t, dims[t], /*nct=*/true, -1};
  }
  return placement;
}

PlacementCost predict_cost(const Placement& placement,
                           std::span<const std::size_t> dims,
                           const perf::InverseModel& inverse,
                           const perf::BroadcastModel& broadcast) {
  PlacementCost cost;
  const int world = placement.world_size;
  cost.per_gpu_seconds.assign(world, 0.0);
  std::vector<double> comp(world, 0.0), comm(world, 0.0);

  double nct_comp = 0.0;
  for (const auto& a : placement.assignments) {
    if (a.nct) nct_comp += inverse.time(a.dim);
  }
  for (int p = 0; p < world; ++p) {
    comp[p] = nct_comp;
    for (std::size_t t : placement.per_gpu[p]) {
      comp[p] += inverse.time(dims[t]);
      comm[p] += broadcast.time_dim(dims[t]);
    }
    cost.per_gpu_seconds[p] = comp[p] + comm[p];
  }
  const auto it = std::max_element(cost.per_gpu_seconds.begin(),
                                   cost.per_gpu_seconds.end());
  cost.max_seconds = it == cost.per_gpu_seconds.end() ? 0.0 : *it;
  if (it != cost.per_gpu_seconds.end()) {
    const auto p = it - cost.per_gpu_seconds.begin();
    cost.bottleneck_comp = comp[p];
    cost.bottleneck_comm = comm[p];
  }
  return cost;
}

}  // namespace spdkfac::sched
