#include "sched/plan_cache.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace spdkfac::sched {

namespace {

/// 64-bit FNV-1a over a stream of integers.
struct Fnv {
  std::uint64_t state = 1469598103934665603ull;
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xff;
      state *= 1099511628211ull;
    }
  }
};

void quantize_into(const std::vector<double>& values, double quantum,
                   std::vector<std::int64_t>& out) {
  for (double v : values) {
    out.push_back(static_cast<std::int64_t>(std::llround(v / quantum)));
  }
}

}  // namespace

ProfileSignature ProfileSignature::of(const PassTiming& timing,
                                      int world_size, int resolution_bits) {
  // The walk's span sets the relative grid.  backward_end is the natural
  // span; guard against degenerate profiles (all zeros) with a floor that
  // keeps the division meaningful.
  double span = timing.backward_end;
  for (const auto* v :
       {&timing.a_ready, &timing.g_ready, &timing.grad_ready}) {
    for (double t : *v) span = std::max(span, t);
  }
  span = std::max(span, 1e-12);
  const double quantum =
      span / static_cast<double>(std::int64_t{1} << resolution_bits);

  ProfileSignature sig;
  sig.buckets.reserve(timing.a_ready.size() + timing.g_ready.size() +
                      timing.grad_ready.size() + 6);
  // Cluster population first: plans are P-specific (fusion-group shapes,
  // LBP placement, all-reduce cost) — an elastic restart at a different P
  // must miss every entry built for the old one.
  sig.buckets.push_back(static_cast<std::int64_t>(world_size));
  // Absolute scale on a 1/16-octave log grid: two profiles with the same
  // shape but different magnitudes must not collide (fusion decisions
  // compare pass gaps against the absolute all-reduce startup cost).
  sig.buckets.push_back(
      static_cast<std::int64_t>(std::llround(std::log2(span) * 16.0)));
  // Section lengths disambiguate the concatenation.
  sig.buckets.push_back(static_cast<std::int64_t>(timing.a_ready.size()));
  sig.buckets.push_back(static_cast<std::int64_t>(timing.g_ready.size()));
  sig.buckets.push_back(static_cast<std::int64_t>(timing.grad_ready.size()));
  quantize_into(timing.a_ready, quantum, sig.buckets);
  quantize_into(timing.g_ready, quantum, sig.buckets);
  quantize_into(timing.grad_ready, quantum, sig.buckets);
  sig.buckets.push_back(
      static_cast<std::int64_t>(std::llround(timing.backward_end / quantum)));
  return sig;
}

std::size_t ProfileSignatureHash::operator()(
    const ProfileSignature& sig) const noexcept {
  Fnv h;
  for (std::int64_t b : sig.buckets) h.mix(static_cast<std::uint64_t>(b));
  return static_cast<std::size_t>(h.state);
}

std::size_t PlanCache::KeyHash::operator()(const Key& key) const noexcept {
  Fnv h;
  h.mix(static_cast<std::uint64_t>(key.factor_update));
  h.mix(static_cast<std::uint64_t>(key.inverse_update) << 1);
  h.mix(static_cast<std::uint64_t>(key.factor_comm) << 2);
  h.mix(ProfileSignatureHash{}(key.signature));
  return static_cast<std::size_t>(h.state);
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const IterationPlan> PlanCache::find(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const IterationPlan> PlanCache::insert(const Key& key,
                                                       IterationPlan plan) {
  auto stored = std::make_shared<const IterationPlan>(std::move(plan));
  if (capacity_ == 0) return stored;
  while (entries_.size() >= capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  auto [it, inserted] = entries_.insert_or_assign(key, std::move(stored));
  if (inserted) order_.push_back(key);
  return it->second;
}

void PlanCache::clear() {
  entries_.clear();
  order_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace spdkfac::sched
