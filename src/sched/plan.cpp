#include "sched/plan.hpp"

namespace spdkfac::sched {

const char* to_string(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kFactorCompute:
      return "FactorCompute";
    case TaskKind::kFusedAllReduce:
      return "FusedAllReduce";
    case TaskKind::kGradAllReduce:
      return "GradAllReduce";
    case TaskKind::kInverse:
      return "Inverse";
    case TaskKind::kBroadcast:
      return "Broadcast";
    case TaskKind::kUpdate:
      return "Update";
  }
  return "?";
}

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::kNone:
      return "-";
    case Family::kA:
      return "A";
    case Family::kG:
      return "G";
    case Family::kGrad:
      return "grad";
  }
  return "?";
}

std::vector<int> IterationPlan::collective_order() const {
  std::vector<int> order = comm_order;
  order.insert(order.end(), broadcast_tasks.begin(), broadcast_tasks.end());
  return order;
}

}  // namespace spdkfac::sched
