// Online profiling of a running distributed K-FAC iteration — the runtime
// counterpart of the paper's offline warm-up profiling (Section IV-A /
// V-A).  SPD-KFAC's "smart" decisions (Eq. 15 tensor fusion, the canonical
// collective order) are functions of *measured* per-layer timings; this
// class is where those measurements live while the run is in flight.
//
// It accumulates EMA-smoothed samples of
//   * per-layer Kronecker-factor build times (A and G), fed by the
//     exec::DataflowExecutor task observer,
//   * per-layer forward/backward kernel times, fed by the pass hooks
//     (hooked mode only — post-hoc steps never see the real passes),
//   * per-tensor damped-inverse times (executor observer again), and
//   * per-operation collective durations, fed by the AsyncCommEngine's
//     completion records,
// and exposes the snapshot the scheduler plans from plus a flat packed()
// vector for the rank profile sync (a small all-reduce: every rank must
// plan from the *same* profile or the collective schedules diverge).
//
// Thread-safety contract: writers hit disjoint slots (each plan task runs
// once per step and owns its layer/tensor index; collective records arrive
// from the single engine pump), so recording needs no lock.  Readers
// (snapshot/packed/accessors) must run while execution is quiescent —
// between steps, after the executor drained — which is exactly when the
// re-planning loop runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

namespace spdkfac::perf {

/// EMA-smoothed per-layer timing estimates, in seconds, by model layer
/// index (not pass position).  Unsampled entries are 0 — consumers
/// substitute their own floor (the planner walk uses a tiny epsilon).
struct ProfileSnapshot {
  std::vector<double> factor_a;  ///< A_l build time
  std::vector<double> factor_g;  ///< G_l build time
  std::vector<double> forward;   ///< layer l forward kernel
  std::vector<double> backward;  ///< layer l backward kernel

  std::size_t layers() const noexcept { return factor_a.size(); }
};

class OnlineProfiler {
 public:
  /// `ema` is the weight of a new sample, in (0, 1]: the smoothed value is
  /// (1-ema)*old + ema*sample, seeded with the first sample directly.  1
  /// keeps only the latest measurement.  Throws std::invalid_argument on
  /// layers == 0 or ema outside (0, 1].
  OnlineProfiler(std::size_t layers, double ema);

  std::size_t layers() const noexcept { return layers_; }
  double ema() const noexcept { return ema_; }

  // Sample feeds (see the thread-safety contract above).
  void record_factor_a(std::size_t layer, double seconds);
  void record_factor_g(std::size_t layer, double seconds);
  void record_forward(std::size_t layer, double seconds);
  void record_backward(std::size_t layer, double seconds);
  void record_inverse(std::size_t tensor, double seconds);
  void record_collective(std::size_t elements, double seconds);

  /// True once any factor slot has a sample (or a sync loaded non-trivial
  /// values) — the warm-up gate: Eq. (15) fusion needs real timings.
  bool has_factor_samples() const noexcept {
    return factor_samples_.load(std::memory_order_acquire) > 0;
  }

  /// The planning profile: smoothed per-layer timings by model layer.
  ProfileSnapshot snapshot() const;

  /// Smoothed inverse time of tensor T_t (T_{2l} = A_l, T_{2l+1} = G_l).
  double inverse_seconds(std::size_t tensor) const {
    return inverse_[tensor];
  }

  // Collective aggregates (diagnostics: measured transport cost vs the
  // planning cost models; bench_adaptive reports them side by side).
  std::size_t collective_ops() const noexcept { return collective_ops_; }
  double collective_seconds() const noexcept { return collective_seconds_; }
  std::size_t collective_elements() const noexcept {
    return collective_elements_;
  }
  /// Smoothed per-element collective cost (seconds/element); 0 before any
  /// non-empty operation completed.
  double collective_seconds_per_element() const noexcept {
    return collective_per_element_;
  }

  /// Flat sync vector [factor_a | factor_g | forward | backward] (4L
  /// doubles) — what the re-planning loop all-reduces (kAverage) so every
  /// rank plans from the same profile.
  std::vector<double> packed() const;

  /// Installs a synced vector produced by packed() (+ all-reduce).  Throws
  /// std::invalid_argument on a size mismatch.
  void load_packed(std::span<const double> values);

  /// Full profiler state as a flat vector of 6L+5 doubles, for
  /// checkpointing.  Unlike packed() this covers *everything* the profiler
  /// holds — inverse times, collective aggregates, the warm-up sample
  /// count — so a restore() resumes the EMA streams exactly where they
  /// left off and the re-planning loop replays bitwise-identically.
  /// Layout: [factor_a | factor_g | forward | backward | inverse(2L) |
  /// factor_samples | collective_ops | collective_elements |
  /// collective_seconds | collective_per_element].
  std::vector<double> serialize() const;

  /// Inverse of serialize().  Throws std::invalid_argument on a size
  /// mismatch or negative counters.
  void restore(std::span<const double> values);

 private:
  void fold(double& slot, double sample) const {
    slot = slot == 0.0 ? sample : (1.0 - ema_) * slot + ema_ * sample;
  }

  std::size_t layers_;
  double ema_;
  std::vector<double> factor_a_, factor_g_, forward_, backward_;
  std::vector<double> inverse_;  ///< per tensor, 2L entries
  /// Atomic: factor recordings for distinct layers run concurrently on the
  /// pool; everything else in this class hits disjoint or serial slots.
  std::atomic<std::size_t> factor_samples_{0};

  std::size_t collective_ops_ = 0;
  std::size_t collective_elements_ = 0;
  double collective_seconds_ = 0.0;
  double collective_per_element_ = 0.0;
};

}  // namespace spdkfac::perf
