// Local measurement utilities mirroring the paper's one-time benchmarking
// (Section V-B): time a series of SPD inverses / collectives, then fit the
// Eq. (14)/(26)/(27) models to the measurements.  Used by the Fig. 7 / Fig. 8
// benchmark harnesses to produce "Measured vs. Predicted" series on this
// machine, next to the paper's published constants.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "perf/models.hpp"

namespace spdkfac::perf {

struct Sample {
  double x = 0.0;  ///< dimension or element count
  double seconds = 0.0;
};

/// Times `fn` `runs` times after `warmup` discarded runs; returns the mean
/// wall-clock seconds.
double time_mean(const std::function<void()>& fn, int runs = 5,
                 int warmup = 1);

/// Measures damped SPD inverses for each dimension in `dims` on this CPU and
/// returns (d, seconds) samples.  This is the CPU analogue of the paper's
/// cuSolver benchmark of Fig. 8.
std::vector<Sample> measure_inverse_times(std::span<const std::size_t> dims,
                                          int runs = 3, int warmup = 1);

/// Measures in-process all-reduce across `world` worker threads for each
/// message size in `sizes` (element counts), using the given algorithm
/// (flat topology; ring by default, matching the seed's behaviour).
std::vector<Sample> measure_allreduce_times(
    std::span<const std::size_t> sizes, int world, int runs = 3,
    int warmup = 1, comm::AllReduceAlgo algo = comm::AllReduceAlgo::kRing);

/// Measures one algorithm on an in-process cluster shaped as `topo`.
std::vector<Sample> measure_allreduce_times(
    std::span<const std::size_t> sizes, const comm::Topology& topo,
    comm::AllReduceAlgo algo, int runs = 3, int warmup = 1);

/// Measures in-process binomial broadcast (root 0) across `world` workers.
std::vector<Sample> measure_broadcast_times(std::span<const std::size_t> sizes,
                                            int world, int runs = 3,
                                            int warmup = 1);

/// Fits Eq. (26) to inverse samples.
InverseModel fit_inverse_model(std::span<const Sample> samples);

/// Fits Eq. (14) (or Eq. (27) when x is an element count) to comm samples.
LinearModel fit_comm_model(std::span<const Sample> samples);

/// The paper's one-time benchmarking workflow applied to the algorithm
/// library: measures every concrete algorithm on an in-process cluster
/// shaped as `topo` over `sizes`, fits a linear model per algorithm, and
/// returns a selector whose terms are the fitted models — i.e. a selector
/// calibrated to *this machine's* transport instead of the closed-form
/// link constants.
comm::AlgorithmSelector fit_selector(const comm::Topology& topo,
                                     std::span<const std::size_t> sizes,
                                     int runs = 3, int warmup = 1);

}  // namespace spdkfac::perf
