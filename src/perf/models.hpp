// Performance models of Section III-V of the paper.
//
//   * All-reduce (Eq. 14):  t_ar(m)    = alpha_ar + beta_ar * m
//   * Broadcast (Eq. 27):   t_bcast(d) = alpha_b  + beta_b  * d*(d+1)/2
//   * SPD inverse (Eq. 26): t_inv(d)   = alpha_inv * exp(beta_inv * d)
//
// plus FLOP-derived compute models for layer forward/backward passes and
// Kronecker-factor construction.  The ClusterCalibration presets carry the
// constants the paper fitted on its 64x RTX2080Ti / 100Gb InfiniBand testbed
// (Figs. 7 and 8), which drive the discrete-event simulator; the fitting
// routines are also used to calibrate models against *measured* CPU timings
// in bench_comm_models / bench_inverse_model, mirroring the paper's one-time
// benchmarking workflow (Section V-B).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "comm/collectives.hpp"
#include "comm/topology.hpp"

namespace spdkfac::perf {

/// t(x) = alpha + beta * x.
struct LinearModel {
  double alpha = 0.0;
  double beta = 0.0;

  double operator()(double x) const noexcept { return alpha + beta * x; }
};

/// t(x) = alpha * exp(beta * x).
struct ExpModel {
  double alpha = 0.0;
  double beta = 0.0;

  double operator()(double x) const noexcept;
};

/// Ordinary least-squares fit of y = alpha + beta * x.
/// Requires xs.size() == ys.size() >= 2.
LinearModel fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Log-space least-squares fit of y = alpha * exp(beta * x); all ys must be
/// positive.  This matches how the paper fits Eq. (26) to measured inverse
/// timings.
ExpModel fit_exponential(std::span<const double> xs,
                         std::span<const double> ys);

/// Coefficient of determination (R^2) of predictions against observations.
double r_squared(std::span<const double> predicted,
                 std::span<const double> observed);

// ---------------------------------------------------------------------------
// Semantic wrappers
// ---------------------------------------------------------------------------

/// Eq. (14): ring all-reduce cost over the cluster fabric.
struct AllReduceModel {
  LinearModel model;

  /// Time to all-reduce a tensor of `elements` 32-bit values.
  double time(std::size_t elements) const noexcept {
    return model(static_cast<double>(elements));
  }
  double startup() const noexcept { return model.alpha; }
};

/// Eq. (27): broadcast of a packed symmetric d x d matrix.
struct BroadcastModel {
  LinearModel model;  // x = number of transmitted elements

  /// Time to broadcast `elements` values.
  double time_elements(std::size_t elements) const noexcept {
    return model(static_cast<double>(elements));
  }
  /// Time to broadcast the packed upper triangle of a d x d matrix.
  double time_dim(std::size_t d) const noexcept {
    return model(static_cast<double>(d) * (d + 1) / 2.0);
  }
};

/// Damped SPD inverse of a d x d matrix on one accelerator.
///
/// Two functional forms are supported:
///   * kExponential — Eq. (26) as printed, t = alpha * exp(beta * d).  This
///     is what the paper fits in Fig. 8 and what the Fig. 8/11 benches
///     reproduce.  Note its floor: t(0+) = alpha = 3.64 ms, which makes it a
///     poor *absolute* cost for small tensors (the paper's own Fig. 2 total
///     of 292 ms for 108 ResNet-50 inverses is below 108 * alpha, so the
///     measured small-tensor inverses must be far cheaper than the fit).
///   * kCubic — t = overhead + coef * d^3, the Cholesky cost law plus a
///     kernel-launch floor.  The simulator prices inverse tasks with this
///     form (calibrated to Fig. 8's large-d endpoint) so that per-layer
///     sums reproduce the breakdown figures; see docs/ARCHITECTURE.md
///     ("Modeling notes").
struct InverseModel {
  enum class Form { kExponential, kCubic };
  Form form = Form::kExponential;
  double alpha = 0.0;  ///< exp: prefactor; cubic: per-call overhead seconds
  double beta = 0.0;   ///< exp: exponent rate; cubic: seconds per d^3

  static InverseModel exponential(double alpha, double beta) noexcept {
    return InverseModel{Form::kExponential, alpha, beta};
  }
  static InverseModel cubic(double overhead, double coef) noexcept {
    return InverseModel{Form::kCubic, overhead, coef};
  }

  double time(std::size_t d) const noexcept;
};

/// FLOP-throughput compute model for layer work.  Every task cost is
/// flops / effective_flops + kernel_overhead; the effective throughputs are
/// calibration constants (GPU kernels rarely hit peak, and factor GEMMs have
/// different efficiency from cuDNN convolutions).
struct ComputeModel {
  // Defaults calibrated so ResNet-50 (batch 32) reproduces Fig. 2's
  // single-GPU breakdown: FF&BP ~0.20 s, FactorComp ~0.26 s.
  double fwd_flops_per_s = 4.0e12;     ///< effective cuDNN forward throughput
  double bwd_flops_per_s = 4.0e12;     ///< effective backward throughput
  double factor_flops_per_s = 3.1e12;  ///< effective a^T a GEMM throughput
  double kernel_overhead_s = 20e-6;    ///< per-kernel launch overhead

  double fwd_time(double flops) const noexcept {
    return flops / fwd_flops_per_s + kernel_overhead_s;
  }
  double bwd_time(double flops) const noexcept {
    return flops / bwd_flops_per_s + kernel_overhead_s;
  }
  double factor_time(double flops) const noexcept {
    return flops / factor_flops_per_s + kernel_overhead_s;
  }
};

/// Everything the simulator and the placement/fusion planners need to price
/// computation and communication on a target cluster.
struct ClusterCalibration {
  std::string name;
  int world_size = 1;
  AllReduceModel allreduce;
  /// Fig. 7b fit (large-message broadcast): used for the Fig. 7/11 curves.
  BroadcastModel broadcast;
  /// Per-broadcast occupancy of the shared fabric, calibrated for the
  /// small/medium packed-triangle messages the inverse phase actually sends
  /// (Fig. 7b's intercept of 15.9 ms is a large-message artifact that would
  /// overestimate a small broadcast ~50x).  Concurrent broadcasts from
  /// different roots contend on this fabric — the effect that makes
  /// Seq-Dist's 2L broadcasts expensive in Figs. 2, 9 and 12.  The beta
  /// term carries a 0.5 tree-overlap factor (disjoint binomial trees share
  /// links only partially).
  BroadcastModel bcast_fabric;
  InverseModel inverse;
  ComputeModel compute;

  /// Cluster shape plus per-algorithm all-reduce cost terms (the NCCL-style
  /// algorithm switching the paper's fixed flat testbed never needed).
  /// Populated by for_topology(); calibrations built any other way stay
  /// ring-only and price every all-reduce with `allreduce` above.
  comm::Topology topology;
  comm::AlgorithmSelector collectives;
  bool topology_aware = false;

  /// The paper's testbed: 64x Nvidia RTX2080Ti over 100Gb/s InfiniBand,
  /// constants as fitted in Figs. 7 and 8:
  ///   alpha_ar = 1.22e-2, beta_ar = 1.45e-9,
  ///   alpha_bcast = 1.59e-2, beta_bcast = 7.85e-10,
  ///   alpha_inv = 3.64e-3, beta_inv = 4.77e-4 (see fig8_inverse_model()).
  /// The preset's task-pricing inverse model is the cubic form calibrated
  /// to the same Fig. 8 endpoint (t(8192) ~ 0.176 s).
  static ClusterCalibration paper_rtx2080ti_64gpu();

  /// The exponential Eq. (26) fit exactly as printed in Fig. 8.
  static InverseModel fig8_inverse_model() noexcept {
    return InverseModel::exponential(3.64e-3, 4.77e-4);
  }

  /// Same fabric constants scaled for an arbitrary world size.  The paper's
  /// alpha/beta were measured at P = 64; ring all-reduce startup grows with
  /// P and per-element cost approaches 2(P-1)/P / bandwidth, so we rescale
  /// both terms accordingly when simulating other cluster sizes.
  static ClusterCalibration paper_fabric(int world_size);

  /// Topology-aware calibration: paper_fabric compute/inverse/broadcast
  /// constants for topo.world_size() workers, plus an AlgorithmSelector
  /// built from topo's link models.  The ring `allreduce` model is replaced
  /// by the selector's ring term so that "always ring" baselines and the
  /// selector price the same algorithm identically (the Eq. (14) role is
  /// unchanged: t = alpha + beta*m, just derived from the links).
  static ClusterCalibration for_topology(const comm::Topology& topo);

  /// The selector to price/choose all-reduce algorithms with.  For
  /// topology-aware calibrations this is `collectives`; otherwise a flat
  /// selector is derived from the ring `allreduce` fit so non-ring pricing
  /// stays consistent with this calibration's Eq. (14) constants.
  comm::AlgorithmSelector effective_selector() const;
};

/// Crossover dimension of Fig. 11: the largest d (searched over [1, d_max])
/// with t_inv(d) < t_bcast(d).  Tensors at or below this dimension should be
/// non-communicated tensors (NCTs) under the paper's CT/NCT policy.
std::size_t ct_nct_crossover_dim(const InverseModel& inv,
                                 const BroadcastModel& bcast,
                                 std::size_t d_max = 16384);

}  // namespace spdkfac::perf
