#include "perf/online_profiler.hpp"

#include <stdexcept>

namespace spdkfac::perf {

OnlineProfiler::OnlineProfiler(std::size_t layers, double ema)
    : layers_(layers), ema_(ema) {
  if (layers == 0) {
    throw std::invalid_argument("OnlineProfiler: layers must be >= 1");
  }
  if (!(ema > 0.0) || !(ema <= 1.0)) {
    throw std::invalid_argument("OnlineProfiler: ema must be in (0, 1]");
  }
  factor_a_.assign(layers, 0.0);
  factor_g_.assign(layers, 0.0);
  forward_.assign(layers, 0.0);
  backward_.assign(layers, 0.0);
  inverse_.assign(2 * layers, 0.0);
}

void OnlineProfiler::record_factor_a(std::size_t layer, double seconds) {
  fold(factor_a_[layer], seconds);
  factor_samples_.fetch_add(1, std::memory_order_acq_rel);
}

void OnlineProfiler::record_factor_g(std::size_t layer, double seconds) {
  fold(factor_g_[layer], seconds);
  factor_samples_.fetch_add(1, std::memory_order_acq_rel);
}

void OnlineProfiler::record_forward(std::size_t layer, double seconds) {
  fold(forward_[layer], seconds);
}

void OnlineProfiler::record_backward(std::size_t layer, double seconds) {
  fold(backward_[layer], seconds);
}

void OnlineProfiler::record_inverse(std::size_t tensor, double seconds) {
  fold(inverse_[tensor], seconds);
}

void OnlineProfiler::record_collective(std::size_t elements, double seconds) {
  ++collective_ops_;
  collective_elements_ += elements;
  collective_seconds_ += seconds;
  if (elements > 0) {
    fold(collective_per_element_, seconds / static_cast<double>(elements));
  }
}

ProfileSnapshot OnlineProfiler::snapshot() const {
  return ProfileSnapshot{factor_a_, factor_g_, forward_, backward_};
}

std::vector<double> OnlineProfiler::packed() const {
  std::vector<double> out;
  out.reserve(4 * layers_);
  for (const auto* v : {&factor_a_, &factor_g_, &forward_, &backward_}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  return out;
}

void OnlineProfiler::load_packed(std::span<const double> values) {
  if (values.size() != 4 * layers_) {
    throw std::invalid_argument("OnlineProfiler::load_packed: size mismatch");
  }
  std::size_t offset = 0;
  for (auto* v : {&factor_a_, &factor_g_, &forward_, &backward_}) {
    for (std::size_t l = 0; l < layers_; ++l) (*v)[l] = values[offset++];
  }
  // A sync that delivered real factor timings opens the warm-up gate even
  // on a profiler with no local samples (e.g. a rank that joined late):
  // the loaded profile is exactly as informative as a measured one.
  for (std::size_t l = 0; l < layers_; ++l) {
    if (factor_a_[l] > 0.0 || factor_g_[l] > 0.0) {
      factor_samples_.fetch_add(1, std::memory_order_acq_rel);
      break;
    }
  }
}

std::vector<double> OnlineProfiler::serialize() const {
  std::vector<double> out;
  out.reserve(6 * layers_ + 5);
  for (const auto* v : {&factor_a_, &factor_g_, &forward_, &backward_,
                        &inverse_}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  // Counters ride as doubles: realistic values stay far below 2^53, so the
  // round-trip is exact.
  out.push_back(static_cast<double>(
      factor_samples_.load(std::memory_order_acquire)));
  out.push_back(static_cast<double>(collective_ops_));
  out.push_back(static_cast<double>(collective_elements_));
  out.push_back(collective_seconds_);
  out.push_back(collective_per_element_);
  return out;
}

void OnlineProfiler::restore(std::span<const double> values) {
  if (values.size() != 6 * layers_ + 5) {
    throw std::invalid_argument("OnlineProfiler::restore: size mismatch");
  }
  for (double v : values) {
    // Timings are EMAs of wall-clock samples and counters are counts:
    // nothing in this vector can legitimately be negative.
    if (v < 0.0) {
      throw std::invalid_argument("OnlineProfiler::restore: negative value");
    }
  }
  std::size_t offset = 0;
  for (auto* v : {&factor_a_, &factor_g_, &forward_, &backward_, &inverse_}) {
    for (double& slot : *v) slot = values[offset++];
  }
  factor_samples_.store(static_cast<std::size_t>(values[offset++]),
                        std::memory_order_release);
  collective_ops_ = static_cast<std::size_t>(values[offset++]);
  collective_elements_ = static_cast<std::size_t>(values[offset++]);
  collective_seconds_ = values[offset++];
  collective_per_element_ = values[offset++];
}

}  // namespace spdkfac::perf
