#include "perf/models.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace spdkfac::perf {

double ExpModel::operator()(double x) const noexcept {
  return alpha * std::exp(beta * x);
}

LinearModel fit_linear(std::span<const double> xs,
                       std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 matching samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("fit_linear: degenerate x samples");
  }
  LinearModel m;
  m.beta = (n * sxy - sx * sy) / denom;
  m.alpha = (sy - m.beta * sx) / n;
  return m;
}

ExpModel fit_exponential(std::span<const double> xs,
                         std::span<const double> ys) {
  std::vector<double> logy(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (ys[i] <= 0.0) {
      throw std::invalid_argument("fit_exponential: ys must be positive");
    }
    logy[i] = std::log(ys[i]);
  }
  const LinearModel lin = fit_linear(xs, logy);
  return ExpModel{std::exp(lin.alpha), lin.beta};
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> observed) {
  if (predicted.size() != observed.size() || observed.empty()) {
    throw std::invalid_argument("r_squared: size mismatch");
  }
  double mean = 0.0;
  for (double y : observed) mean += y;
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double InverseModel::time(std::size_t d) const noexcept {
  const double x = static_cast<double>(d);
  switch (form) {
    case Form::kExponential:
      return alpha * std::exp(beta * x);
    case Form::kCubic:
      return alpha + beta * x * x * x;
  }
  return 0.0;
}

ClusterCalibration ClusterCalibration::paper_rtx2080ti_64gpu() {
  ClusterCalibration cal;
  cal.name = "paper-rtx2080ti-64gpu-100GbIB";
  cal.world_size = 64;
  cal.allreduce.model = LinearModel{1.22e-2, 1.45e-9};
  cal.broadcast.model = LinearModel{1.59e-2, 7.85e-10};
  // Small-message broadcast startup ~0.45 ms (NCCL-scale) and half the
  // per-element large-message cost (tree overlap); see the field comment.
  cal.bcast_fabric.model = LinearModel{4.5e-4, 3.9e-10};
  // Cubic Cholesky law with a 0.15 ms launch floor, matching Fig. 8's
  // endpoint: 1.5e-4 + 3.2e-13 * 8192^3 = 0.176 s.
  cal.inverse = InverseModel::cubic(1.5e-4, 3.2e-13);
  // Effective throughputs chosen so the simulated single-GPU breakdown of
  // ResNet-50 (batch 32) reproduces Fig. 2: FF&BP ~0.20 s, FactorComp
  // ~0.26 s, InverseComp ~0.29 s (the last follows from the inverse model
  // alone).  See bench_breakdown and EXPERIMENTS.md.
  cal.compute = ComputeModel{};
  return cal;
}

ClusterCalibration ClusterCalibration::paper_fabric(int world_size) {
  if (world_size < 1) {
    throw std::invalid_argument("paper_fabric: world_size must be >= 1");
  }
  ClusterCalibration cal = paper_rtx2080ti_64gpu();
  cal.world_size = world_size;
  if (world_size == 1) {
    // No communication on a single device.
    cal.allreduce.model = LinearModel{0.0, 0.0};
    cal.broadcast.model = LinearModel{0.0, 0.0};
    cal.bcast_fabric.model = LinearModel{0.0, 0.0};
    cal.name = "paper-rtx2080ti-1gpu";
    return cal;
  }
  // Ring all-reduce moves 2(P-1)/P elements per slot and pays a startup
  // latency roughly linear in P; rescale the P = 64 fit accordingly.
  const double p = static_cast<double>(world_size);
  const double ring_ratio = (2.0 * (p - 1.0) / p) / (2.0 * 63.0 / 64.0);
  const double startup_ratio = p / 64.0;
  cal.allreduce.model.alpha *= startup_ratio;
  cal.allreduce.model.beta *= ring_ratio;
  // Binomial broadcast depth is log2(P).
  const double depth_ratio = std::log2(p) / std::log2(64.0);
  cal.broadcast.model.alpha *= depth_ratio;
  cal.bcast_fabric.model.alpha *= depth_ratio;
  cal.bcast_fabric.model.beta *= depth_ratio;
  cal.name = "paper-fabric-" + std::to_string(world_size) + "gpu";
  return cal;
}

ClusterCalibration ClusterCalibration::for_topology(const comm::Topology& topo) {
  const int world = topo.world_size();
  if (world < 1) {
    throw std::invalid_argument("for_topology: world_size must be >= 1");
  }
  ClusterCalibration cal = paper_fabric(world);
  cal.topology = topo;
  cal.collectives = comm::AlgorithmSelector(topo);
  cal.topology_aware = true;
  const comm::LinkModel ring = cal.collectives.term(comm::AllReduceAlgo::kRing);
  cal.allreduce.model = LinearModel{ring.alpha, ring.beta};
  cal.name = "topo-" + std::to_string(topo.nodes) + "x" +
             std::to_string(topo.gpus_per_node);
  return cal;
}

comm::AlgorithmSelector ClusterCalibration::effective_selector() const {
  if (topology_aware) return collectives;
  comm::Topology t = comm::Topology::flat(std::max(world_size, 1));
  if (world_size > 1) {
    // Invert the ring closed form so the derived selector's ring term
    // reproduces this calibration's fitted Eq. (14) constants.
    const double p = static_cast<double>(world_size);
    t.inter.alpha = allreduce.model.alpha / (2.0 * (p - 1.0));
    t.inter.beta = allreduce.model.beta * p / (2.0 * (p - 1.0));
  }
  return comm::AlgorithmSelector(t);
}

std::size_t ct_nct_crossover_dim(const InverseModel& inv,
                                 const BroadcastModel& bcast,
                                 std::size_t d_max) {
  // t_inv grows exponentially while t_bcast grows quadratically, so below
  // the crossover the inverse is cheaper than shipping the result.  Scan is
  // O(d_max) and runs once at startup, matching Algorithm 1's spirit.
  std::size_t crossover = 0;
  for (std::size_t d = 1; d <= d_max; ++d) {
    if (inv.time(d) < bcast.time_dim(d)) {
      crossover = d;
    }
  }
  return crossover;
}

}  // namespace spdkfac::perf
