#include "perf/measure.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "comm/cluster.hpp"
#include "tensor/linalg.hpp"
#include "tensor/random.hpp"

namespace spdkfac::perf {

double time_mean(const std::function<void()>& fn, int runs, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / runs;
}

std::vector<Sample> measure_inverse_times(std::span<const std::size_t> dims,
                                          int runs, int warmup) {
  std::vector<Sample> samples;
  samples.reserve(dims.size());
  tensor::Rng rng(0x5eed);
  for (std::size_t d : dims) {
    const tensor::Matrix spd = tensor::random_spd(d, rng, /*jitter=*/0.05);
    const double secs = time_mean(
        [&spd] { (void)tensor::damped_inverse(spd, 1e-3); }, runs, warmup);
    samples.push_back({static_cast<double>(d), secs});
  }
  return samples;
}

namespace {

std::vector<Sample> measure_collective(std::span<const std::size_t> sizes,
                                       const comm::Topology& topo, int runs,
                                       int warmup, bool broadcast,
                                       comm::AllReduceAlgo algo) {
  std::vector<Sample> samples;
  samples.reserve(sizes.size());
  for (std::size_t n : sizes) {
    double elapsed = 0.0;
    comm::Cluster::launch(topo, [&](comm::Communicator& comm) {
      std::vector<double> buf(n, comm.rank() + 1.0);
      // Warm the channels, then time from a barrier so all ranks start
      // together; rank 0's wall clock is the reported sample.
      for (int i = 0; i < warmup; ++i) {
        if (broadcast) {
          comm.broadcast(buf, 0);
        } else {
          comm.all_reduce(buf, comm::ReduceOp::kSum, algo);
        }
      }
      comm.barrier();
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < runs; ++i) {
        if (broadcast) {
          comm.broadcast(buf, 0);
        } else {
          comm.all_reduce(buf, comm::ReduceOp::kSum, algo);
        }
      }
      comm.barrier();
      if (comm.rank() == 0) {
        const auto end = std::chrono::steady_clock::now();
        elapsed =
            std::chrono::duration<double>(end - start).count() / runs;
      }
    });
    samples.push_back({static_cast<double>(n), elapsed});
  }
  return samples;
}

}  // namespace

std::vector<Sample> measure_allreduce_times(std::span<const std::size_t> sizes,
                                            int world, int runs, int warmup,
                                            comm::AllReduceAlgo algo) {
  return measure_collective(sizes, comm::Topology::flat(world), runs, warmup,
                            /*broadcast=*/false, algo);
}

std::vector<Sample> measure_allreduce_times(std::span<const std::size_t> sizes,
                                            const comm::Topology& topo,
                                            comm::AllReduceAlgo algo, int runs,
                                            int warmup) {
  return measure_collective(sizes, topo, runs, warmup, /*broadcast=*/false,
                            algo);
}

std::vector<Sample> measure_broadcast_times(std::span<const std::size_t> sizes,
                                            int world, int runs, int warmup) {
  return measure_collective(sizes, comm::Topology::flat(world), runs, warmup,
                            /*broadcast=*/true, comm::AllReduceAlgo::kRing);
}

comm::AlgorithmSelector fit_selector(const comm::Topology& topo,
                                     std::span<const std::size_t> sizes,
                                     int runs, int warmup) {
  comm::AlgorithmSelector selector(topo);
  for (comm::AllReduceAlgo algo : comm::kAllReduceAlgos) {
    if (!selector.available(algo)) continue;
    const auto samples =
        measure_allreduce_times(sizes, topo, algo, runs, warmup);
    const LinearModel fit = fit_comm_model(samples);
    // Noise-dominated small-message samples can drive the OLS intercept
    // (or slope) negative; a negative term would make this algorithm's
    // cost negative and win every selection, so clamp to physical values.
    selector.set_term(algo, comm::LinkModel{std::max(fit.alpha, 0.0),
                                            std::max(fit.beta, 0.0)});
  }
  return selector;
}

InverseModel fit_inverse_model(std::span<const Sample> samples) {
  std::vector<double> xs, ys;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const Sample& s : samples) {
    xs.push_back(s.x);
    ys.push_back(s.seconds);
  }
  const ExpModel fit = fit_exponential(xs, ys);
  return InverseModel::exponential(fit.alpha, fit.beta);
}

LinearModel fit_comm_model(std::span<const Sample> samples) {
  std::vector<double> xs, ys;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const Sample& s : samples) {
    xs.push_back(s.x);
    ys.push_back(s.seconds);
  }
  return fit_linear(xs, ys);
}

}  // namespace spdkfac::perf
