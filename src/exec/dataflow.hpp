// Dependency-driven task-graph executor with an ordered submission lane.
//
// This is how a sched::IterationPlan becomes a real compute/communication
// dataflow: core::DistKfacOptimizer translates the plan one task to one
// node (same ids) and hands the graph here.  Compute nodes (factor builds,
// damped inverses, the update) dispatch to the shared ThreadPool the moment
// their predecessors retire; *submission* nodes model the plan's collectives
// — their action enqueues an operation on the asynchronous comm engine, and
// the node retires only when the caller reports the operation (plus any
// post-processing) finished via complete().
//
// The submission lane is the correctness keystone: collective operations
// must hit every rank's engine in the plan's canonical order (the engine's
// cross-rank ordering contract, enforced byte-for-byte by the sched
// equivalence suite), yet under concurrency predecessors retire in
// nondeterministic order.  Lane nodes therefore fire strictly in the order
// given to begin(): a dep-ready collective waits until every earlier lane
// node has fired.  Execution order on the engine is then identical on every
// rank and identical to the serial walk this executor replaced.
//
// The exec layer knows nothing of plans or engines (it sits below tensor);
// nodes carry opaque actions, which is what lets the same executor drive
// hooked steps (externally-gated nodes released from pass hooks) and
// post-hoc steps (the same gates released in a replayed pass walk).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "exec/thread_pool.hpp"

namespace spdkfac::exec {

class DataflowExecutor {
 public:
  enum class NodeKind {
    kCompute,     ///< `work` runs on the pool (inline without one), retires itself
    kSubmission,  ///< `work` enqueues an async op; retired by complete()
    kNoop,        ///< placeholder (e.g. a peer rank's inverse); retires instantly
  };

  struct Node {
    NodeKind kind = NodeKind::kNoop;
    /// Action; must not throw.  Submission actions must be non-blocking and
    /// must not call back into the executor (they run under its lock to
    /// keep the lane ordered).
    std::function<void()> work;
    std::vector<int> deps;  ///< node indices that must retire first
    /// Gates released by satisfy() — pass events the graph cannot see
    /// (layer captured its K-FAC rows, step() reached the drain, ...).
    int external_deps = 0;
  };

  /// Observes compute-node executions: called once per kCompute node, right
  /// after its `work` returned, with the node id and the wall-clock seconds
  /// the work took.  This is the execution layer's profiling tap — the
  /// online profiler hangs off it to learn real per-task timings without
  /// the node bodies timing themselves.  Runs on whatever thread ran the
  /// work (a pool worker, or the releasing thread in inline mode), so it
  /// must be thread-safe for concurrent *distinct* nodes and must not
  /// block or call back into the executor.
  using TaskObserver = std::function<void(int id, double seconds)>;

  DataflowExecutor() = default;

  /// Installs (or clears, with nullptr) the compute-task observer.  Applies
  /// to graphs begun afterwards; must not be called while a graph is in
  /// flight.
  void set_observer(TaskObserver observer);

  /// Installs a new graph and starts every dependency-free node.  `lane`
  /// lists the kSubmission node indices in mandatory submission order (it
  /// must contain exactly the submission nodes).  Requires the previous
  /// graph to have fully retired (throws std::logic_error otherwise); pool
  /// may be nullptr for inline (serial) execution.
  void begin(std::vector<Node> nodes, std::vector<int> lane, ThreadPool* pool);

  /// Releases one external gate of `id`.
  void satisfy(int id);

  /// Retires submission node `id`; call when its async operation and any
  /// post-processing finished.
  void complete(int id);

  /// Poisons the in-flight graph: no further node is released, fired or
  /// retired; already-dispatched pool work finishes, then wait() unblocks
  /// and rethrows `error` (once).  How a dead rank tears down a schedule
  /// mid-iteration without deadlocking on nodes whose collectives will
  /// never complete.  satisfy()/complete() on a poisoned graph are no-ops,
  /// so late engine-completion callbacks are harmless.  The executor is
  /// reusable after wait() returns; begin() clears the poison.
  void abort(std::exception_ptr error);

  /// Blocks until every node of the current graph retired, or — after
  /// abort() — until dispatched work drained; then rethrows the abort
  /// error (first wait() only).
  void wait();

  /// True when no graph is in flight (before the first begin() or after
  /// every node retired).
  bool idle() const;

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  struct NodeState {
    std::size_t remaining = 0;  ///< unretired deps + unsatisfied gates
    bool lane_ready = false;    ///< submission node cleared its deps
    bool retired = false;
  };

  /// Decrements `id`'s remaining count; on zero, dispatches per kind.
  /// Inline compute work collected into `inline_runs` (executed by the
  /// caller outside the lock).
  void release_locked(int id, std::vector<int>& inline_runs);
  void retire_locked(int id, std::vector<int>& inline_runs);
  void advance_lane_locked();
  void run_inline(std::vector<int>& inline_runs);
  /// Runs a compute node's work, timing it for the observer.
  void run_compute(int id);

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  TaskObserver observer_;  ///< read outside the lock; set only when idle
  ThreadPool* pool_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<NodeState> states_;
  std::vector<std::vector<int>> successors_;
  std::vector<int> lane_;
  std::size_t lane_head_ = 0;
  std::size_t retired_ = 0;
  bool poisoned_ = false;        ///< abort() called for this graph
  std::exception_ptr error_;     ///< rethrown by the first wait() after abort
  std::size_t inflight_ = 0;     ///< pool compute tasks dispatched, unretired
};

}  // namespace spdkfac::exec
