// Work-stealing thread pool — the execution substrate of the exec layer.
//
// SPD-KFAC's pipelining only pays off when factor computation, inversion and
// communication progress *concurrently*; this pool is where every layer's
// concurrent work runs: the DataflowExecutor dispatches the IterationPlan's
// compute tasks to it, the AsyncCommEngine pumps its operation queue on it,
// and the tensor kernels split their inner loops across it via parallel_for.
//
// Scheduling is work-stealing: each worker owns a deque and pops its own
// work LIFO (locality), stealing FIFO from a sibling when empty.  The deques
// share one mutex/condition pair — tasks here are chunky (GEMM blocks,
// factor builds, collective ops), so coarse synchronization costs nothing
// while staying trivially ThreadSanitizer-clean.
//
// Blocking discipline (what makes the whole system deadlock-free): tasks
// submitted to the pool must never block on other pool work except through
// parallel_for, whose caller claims chunks itself and therefore always makes
// progress.  Blocking on *external* events (a peer rank's channel, a
// condition variable signalled off-pool) is allowed — the AsyncCommEngine's
// collectives rely on it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spdkfac::exec {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is allowed: submit() then runs tasks
  /// inline, parallel_for runs serially — the "serial executor").
  explicit ThreadPool(std::size_t workers);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const noexcept { return threads_.size(); }

  /// Enqueues `fn`.  Runs inline when the pool has no workers.  Tasks must
  /// not throw (the pool terminates on escaped exceptions, like a thread).
  void submit(std::function<void()> fn);

  /// Splits [0, n) into chunks of at most `grain` indices and runs
  /// `body(begin, end)` for each, the caller claiming chunks alongside the
  /// workers; returns when every chunk finished.  Chunk boundaries depend
  /// only on n and grain — never on the worker count — so any body writing
  /// disjoint outputs per index produces bitwise-identical results for
  /// every pool size.  Safe to call from inside a pool task (the nested
  /// caller drives its own chunks to completion).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// The pool the calling thread is a worker of, or nullptr.
  static ThreadPool* this_thread_pool() noexcept;

 private:
  void worker_main(std::size_t index);
  bool try_pop(std::size_t self, std::function<void()>& out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::size_t next_queue_ = 0;  ///< round-robin target for external submits
  bool stopping_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace spdkfac::exec
