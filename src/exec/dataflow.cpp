#include "exec/dataflow.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace spdkfac::exec {

void DataflowExecutor::set_observer(TaskObserver observer) {
  std::lock_guard lock(mutex_);
  if (retired_ != nodes_.size()) {
    throw std::logic_error(
        "DataflowExecutor::set_observer: graph in flight");
  }
  observer_ = std::move(observer);
}

void DataflowExecutor::run_compute(int id) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  if (!observer_) {
    node.work();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  node.work();
  observer_(id, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
}

void DataflowExecutor::begin(std::vector<Node> nodes, std::vector<int> lane,
                             ThreadPool* pool) {
  // Validate the graph before touching any member, so a rejected begin()
  // leaves the executor reusable.
  std::size_t submissions = 0;
  for (const Node& n : nodes) {
    if (n.kind == NodeKind::kSubmission) ++submissions;
    if (n.external_deps < 0) {
      throw std::invalid_argument("DataflowExecutor: negative external_deps");
    }
    for (int d : n.deps) {
      if (d < 0 || static_cast<std::size_t>(d) >= nodes.size()) {
        throw std::invalid_argument("DataflowExecutor: dep out of range");
      }
    }
  }
  if (lane.size() != submissions) {
    throw std::invalid_argument(
        "DataflowExecutor: lane must list every submission node");
  }
  for (int id : lane) {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes.size() ||
        nodes[static_cast<std::size_t>(id)].kind != NodeKind::kSubmission) {
      throw std::invalid_argument(
          "DataflowExecutor: lane entry is not a submission node");
    }
  }

  std::vector<int> inline_runs;
  {
    std::lock_guard lock(mutex_);
    if (retired_ != nodes_.size()) {
      throw std::logic_error(
          "DataflowExecutor::begin: previous graph still in flight");
    }
    nodes_ = std::move(nodes);
    lane_ = std::move(lane);
    // A workerless pool runs submit() inline, which would re-enter our lock
    // from release_locked — treat it as the inline mode it effectively is.
    pool_ = (pool != nullptr && pool->workers() > 0) ? pool : nullptr;
    lane_head_ = 0;
    retired_ = 0;
    poisoned_ = false;
    error_ = nullptr;
    inflight_ = 0;
    states_.assign(nodes_.size(), NodeState{});
    successors_.assign(nodes_.size(), {});
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      states_[i].remaining =
          n.deps.size() + static_cast<std::size_t>(n.external_deps);
      for (int d : n.deps) {
        successors_[static_cast<std::size_t>(d)].push_back(
            static_cast<int>(i));
      }
    }

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (states_[i].remaining == 0) {
        release_locked(static_cast<int>(i), inline_runs);
      }
    }
  }
  run_inline(inline_runs);
}

void DataflowExecutor::release_locked(int id, std::vector<int>& inline_runs) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  switch (node.kind) {
    case NodeKind::kNoop:
      retire_locked(id, inline_runs);
      break;
    case NodeKind::kCompute:
      if (pool_ != nullptr) {
        ++inflight_;
        pool_->submit([this, id] {
          run_compute(id);
          std::vector<int> runs;
          {
            std::lock_guard lock(mutex_);
            --inflight_;
            retire_locked(id, runs);
          }
          run_inline(runs);
        });
      } else {
        inline_runs.push_back(id);
      }
      break;
    case NodeKind::kSubmission:
      states_[static_cast<std::size_t>(id)].lane_ready = true;
      advance_lane_locked();
      break;
  }
}

void DataflowExecutor::retire_locked(int id, std::vector<int>& inline_runs) {
  NodeState& state = states_[static_cast<std::size_t>(id)];
  if (state.retired) {
    // Tolerated on a poisoned graph: an engine completion can race the
    // abort that already gave up on the node.
    if (poisoned_) return;
    throw std::logic_error("DataflowExecutor: node retired twice");
  }
  state.retired = true;
  if (++retired_ == nodes_.size()) done_cv_.notify_all();
  if (poisoned_) {
    // No successor releases: the graph is being torn down, and firing more
    // collectives against a dead rank would just hang the pump longer.
    done_cv_.notify_all();
    return;
  }
  for (int s : successors_[static_cast<std::size_t>(id)]) {
    if (--states_[static_cast<std::size_t>(s)].remaining == 0) {
      release_locked(s, inline_runs);
    }
  }
}

void DataflowExecutor::advance_lane_locked() {
  // Fire every dep-ready submission at the head of the lane, in lane order.
  // Actions run under the lock: a concurrent retire elsewhere cannot slip a
  // later collective onto the engine first.
  while (!poisoned_ && lane_head_ < lane_.size() &&
         states_[static_cast<std::size_t>(lane_[lane_head_])].lane_ready) {
    const int id = lane_[lane_head_++];
    nodes_[static_cast<std::size_t>(id)].work();
  }
}

void DataflowExecutor::run_inline(std::vector<int>& inline_runs) {
  // Inline (pool-less) compute: execute outside the lock; each retirement
  // may append more ready nodes, processed iteratively.
  for (std::size_t i = 0; i < inline_runs.size(); ++i) {
    const int id = inline_runs[i];
    run_compute(id);
    std::lock_guard lock(mutex_);
    retire_locked(id, inline_runs);
  }
  inline_runs.clear();
}

void DataflowExecutor::satisfy(int id) {
  std::vector<int> inline_runs;
  {
    std::lock_guard lock(mutex_);
    if (poisoned_) return;
    if (--states_[static_cast<std::size_t>(id)].remaining == 0) {
      release_locked(id, inline_runs);
    }
  }
  run_inline(inline_runs);
}

void DataflowExecutor::complete(int id) {
  std::vector<int> inline_runs;
  {
    std::lock_guard lock(mutex_);
    if (poisoned_) return;
    retire_locked(id, inline_runs);
  }
  run_inline(inline_runs);
}

void DataflowExecutor::abort(std::exception_ptr error) {
  std::lock_guard lock(mutex_);
  if (poisoned_) return;  // first failure wins
  poisoned_ = true;
  error_ = std::move(error);
  done_cv_.notify_all();
}

void DataflowExecutor::wait() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] {
    return retired_ == nodes_.size() || (poisoned_ && inflight_ == 0);
  });
  if (!poisoned_) return;
  // Poisoned teardown: declare the graph over (unreleased nodes are
  // abandoned, the executor becomes reusable) and surface the error once.
  retired_ = nodes_.size();
  std::exception_ptr err = std::exchange(error_, nullptr);
  if (err) {
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool DataflowExecutor::idle() const {
  std::lock_guard lock(mutex_);
  return retired_ == nodes_.size();
}

}  // namespace spdkfac::exec
