#include "exec/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace spdkfac::exec {

namespace {

/// Worker identity of the calling thread (pool + queue index).
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

ThreadPool* ThreadPool::this_thread_pool() noexcept { return tl_pool; }

ThreadPool::ThreadPool(std::size_t workers) : queues_(workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  if (threads_.empty()) {  // workerless pool: degenerate inline executor
    fn();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    // Workers push to their own deque (popped LIFO for locality); external
    // threads spread round-robin.  Idle siblings steal either way.
    const std::size_t q = tl_pool == this
                              ? tl_index
                              : (next_queue_++ % queues_.size());
    queues_[q].push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  if (!queues_[self].empty()) {  // own work: newest first
    out = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {  // steal: oldest first
    const std::size_t victim = (self + k) % queues_.size();
    if (!queues_[victim].empty()) {
      out = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  std::unique_lock lock(mutex_);
  for (;;) {
    std::function<void()> fn;
    if (try_pop(index, fn)) {
      lock.unlock();
      fn();
      fn = nullptr;  // release captures before re-locking
      lock.lock();
      continue;
    }
    if (stopping_) return;  // every deque drained
    cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  if (threads_.empty()) {
    // Same chunk boundaries as the concurrent path: bodies that reduce into
    // per-chunk slots (combined in chunk order) stay bitwise identical.
    for (std::size_t b = 0; b < n; b += grain) {
      body(b, std::min(n, b + grain));
    }
    return;
  }

  // Chunks are claimed from a shared counter by the caller and up to
  // chunks-1 helper tasks; the caller always participates, so the loop
  // completes even if every helper is stuck behind other queued work
  // (including the nested-parallel_for-from-a-pool-task case).
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t chunks = 0, n = 0, grain = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->chunks = chunks;
  state->n = n;
  state->grain = grain;
  state->body = &body;

  auto run_chunks = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) return;
      const std::size_t begin = c * s->grain;
      (*s->body)(begin, std::min(s->n, begin + s->grain));
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
        std::lock_guard lock(s->mutex);
        s->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(threads_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);

  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
  // Late helpers find next >= chunks and return without touching `body`,
  // which dies with this frame; `state` they share keeps them safe.
}

}  // namespace spdkfac::exec
