#include "exec/context.hpp"

#include <algorithm>

namespace spdkfac::exec {

namespace {

thread_local ThreadPool* tl_override_pool = nullptr;
thread_local bool tl_overridden = false;

}  // namespace

Context::Context(ThreadPool* pool) noexcept
    : prev_pool_(tl_override_pool), prev_overridden_(tl_overridden) {
  tl_override_pool = pool;
  tl_overridden = true;
}

Context::~Context() {
  tl_override_pool = prev_pool_;
  tl_overridden = prev_overridden_;
}

ThreadPool* Context::current_pool() noexcept {
  if (tl_overridden) return tl_override_pool;
  return ThreadPool::this_thread_pool();
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool* pool = Context::current_pool();
  if (pool == nullptr) {
    // Serial, but with the pooled path's chunk boundaries (see
    // ThreadPool::parallel_for): per-chunk reductions stay bitwise stable.
    if (grain == 0) grain = 1;
    for (std::size_t b = 0; b < n; b += grain) {
      body(b, std::min(n, b + grain));
    }
    return;
  }
  pool->parallel_for(n, grain, body);
}

}  // namespace spdkfac::exec
