// Ambient execution context for the numeric kernels.
//
// The tensor kernels (GEMM, Cholesky, SPD inverse, eigen reconstruction)
// parallelize their inner loops with exec::parallel_for, which resolves the
// pool to split across *ambiently*: an explicit exec::Context installed on
// the calling thread wins, otherwise the pool the thread is a worker of
// (so plan tasks dispatched by the DataflowExecutor parallelize on the same
// shared pool automatically), otherwise serial.  Chunk boundaries never
// depend on the worker count, so every resolution produces bitwise-identical
// results — tests force determinism-critical sections serial with
// `exec::Context serial(nullptr);`.
#pragma once

#include <cstddef>
#include <functional>

#include "exec/thread_pool.hpp"

namespace spdkfac::exec {

/// Scoped override of the calling thread's ambient pool.  Context(nullptr)
/// forces serial execution for the scope; Context(&pool) opts a non-worker
/// thread (main, benchmarks) into the pool.
class Context {
 public:
  explicit Context(ThreadPool* pool) noexcept;
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// The pool kernels currently split across (nullptr: serial).
  static ThreadPool* current_pool() noexcept;

 private:
  ThreadPool* prev_pool_;
  bool prev_overridden_;
};

/// Blocked parallel loop over [0, n) on the ambient pool (serial when there
/// is none).  See ThreadPool::parallel_for for the chunking/determinism
/// contract.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace spdkfac::exec
