// Shared chunk-sizing policy for parallel_for callers.
//
// Every numeric kernel splits its outer loop into chunks whose size depends
// only on the problem shape (never the pool size), so each output element is
// produced by exactly one chunk regardless of how many workers exist — the
// foundation of the bitwise-determinism-across-pool-sizes contract.  This
// header centralizes the one tunable: the per-chunk work target.
#pragma once

#include <algorithm>
#include <cstddef>

namespace spdkfac::exec {

/// Inner operations a chunk should amortize scheduling overhead over.
/// Changing this perturbs chunk-ordered partial sums (symmetric_eigen's
/// off-diagonal norm) and therefore golden numeric snapshots — bump only
/// with the snapshot suite regenerated.
inline constexpr std::size_t kChunkTargetOps = std::size_t{1} << 16;

/// Outer-loop items per chunk when each item costs ~ops_per_item inner ops.
inline std::size_t grain_for_ops(std::size_t ops_per_item) noexcept {
  return std::max<std::size_t>(
      1, kChunkTargetOps / std::max<std::size_t>(ops_per_item, 1));
}

}  // namespace spdkfac::exec
