#include "nn/data.hpp"

namespace spdkfac::nn {

SyntheticClassification::SyntheticClassification(std::size_t classes,
                                                 std::size_t channels,
                                                 std::size_t image_hw,
                                                 std::uint64_t seed,
                                                 double noise)
    : classes_(classes), channels_(channels), hw_(image_hw), noise_(noise) {
  tensor::Rng rng(seed);
  templates_.resize(classes);
  const std::size_t pixels = channels * image_hw * image_hw;
  for (auto& t : templates_) {
    t.resize(pixels);
    tensor::fill_normal(t, rng);
  }
}

Batch SyntheticClassification::sample(std::size_t batch,
                                      tensor::Rng& rng) const {
  Batch b;
  b.inputs = Tensor4D(batch, channels_, hw_, hw_);
  b.labels.resize(batch);
  std::uniform_int_distribution<int> label_dist(
      0, static_cast<int>(classes_) - 1);
  std::normal_distribution<double> noise_dist(0.0, noise_);
  for (std::size_t i = 0; i < batch; ++i) {
    const int label = label_dist(rng);
    b.labels[i] = label;
    auto dst = b.inputs.sample(i);
    const auto& tmpl = templates_[label];
    for (std::size_t j = 0; j < dst.size(); ++j) {
      dst[j] = tmpl[j] + noise_dist(rng);
    }
  }
  return b;
}

}  // namespace spdkfac::nn
