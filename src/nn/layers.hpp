// CPU neural-network layers with K-FAC capture hooks.
//
// The distributed optimizer needs real numerics: layer inputs `a` and
// pre-activation output gradients `g` captured during forward/backward
// (PyTorch's register_forward_pre_hook / register_backward_hook in the
// paper's implementation, Section V-A).  PreconditionedLayer exposes exactly
// that surface: a row matrix of K-FAC inputs (rows x dim_a, bias column
// appended when the layer has one) and a row matrix of output gradients
// (rows x dim_g), from which the optimizer builds the Kronecker factors
// A = a^T a / rows and G = g^T g / rows.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor4d.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace spdkfac::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor4D forward(const Tensor4D& input) = 0;
  /// Consumes dL/d(output), returns dL/d(input).  Must be called after
  /// forward() on the same input.
  virtual Tensor4D backward(const Tensor4D& grad_output) = 0;

  virtual const std::string& name() const noexcept = 0;
};

/// A layer whose parameters K-FAC preconditions (conv / linear).
///
/// Weights are stored as a single matrix W of shape (dim_g, dim_a); when the
/// layer has a bias, the last column of W is the bias (the input is
/// implicitly augmented with a constant 1), matching the homogeneous-
/// coordinates formulation of Martens & Grosse.
class PreconditionedLayer : public Layer {
 public:
  virtual std::size_t dim_a() const noexcept = 0;
  virtual std::size_t dim_g() const noexcept = 0;

  virtual tensor::Matrix& weight() noexcept = 0;
  virtual const tensor::Matrix& weight() const noexcept = 0;
  virtual const tensor::Matrix& weight_grad() const noexcept = 0;

  /// K-FAC input rows captured by the last forward() (rows x dim_a).
  virtual const tensor::Matrix& kfac_input() const noexcept = 0;
  /// Output-gradient rows captured by the last backward() (rows x dim_g).
  virtual const tensor::Matrix& kfac_output_grad() const noexcept = 0;

  /// w <- w - lr * delta, where delta has the weight's shape.
  void apply_update(const tensor::Matrix& delta, double lr);

  std::size_t param_count() const noexcept {
    return dim_a() * dim_g();
  }
};

// ---------------------------------------------------------------------------

/// Fully-connected layer: y = W [x; 1].
class Linear final : public PreconditionedLayer {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         bool bias, tensor::Rng& rng);

  Tensor4D forward(const Tensor4D& input) override;
  Tensor4D backward(const Tensor4D& grad_output) override;

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim_a() const noexcept override {
    return in_features_ + (bias_ ? 1 : 0);
  }
  std::size_t dim_g() const noexcept override { return out_features_; }
  tensor::Matrix& weight() noexcept override { return weight_; }
  const tensor::Matrix& weight() const noexcept override { return weight_; }
  const tensor::Matrix& weight_grad() const noexcept override {
    return weight_grad_;
  }
  const tensor::Matrix& kfac_input() const noexcept override {
    return input_rows_;
  }
  const tensor::Matrix& kfac_output_grad() const noexcept override {
    return output_grad_rows_;
  }

 private:
  std::string name_;
  std::size_t in_features_, out_features_;
  bool bias_;
  tensor::Matrix weight_;       // (out, in [+1])
  tensor::Matrix weight_grad_;  // same shape
  tensor::Matrix input_rows_;   // (batch, in [+1])
  tensor::Matrix output_grad_rows_;  // (batch, out)
};

/// 2D convolution implemented via im2col; weights (cout, cin*kh*kw [+1]).
class Conv2d final : public PreconditionedLayer {
 public:
  Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         bool bias, tensor::Rng& rng);

  Tensor4D forward(const Tensor4D& input) override;
  Tensor4D backward(const Tensor4D& grad_output) override;

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim_a() const noexcept override {
    return in_channels_ * kernel_ * kernel_ + (bias_ ? 1 : 0);
  }
  std::size_t dim_g() const noexcept override { return out_channels_; }
  tensor::Matrix& weight() noexcept override { return weight_; }
  const tensor::Matrix& weight() const noexcept override { return weight_; }
  const tensor::Matrix& weight_grad() const noexcept override {
    return weight_grad_;
  }
  const tensor::Matrix& kfac_input() const noexcept override {
    return patches_;
  }
  const tensor::Matrix& kfac_output_grad() const noexcept override {
    return output_grad_rows_;
  }

  std::size_t out_h(std::size_t in_h) const noexcept {
    return (in_h + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::string name_;
  std::size_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool bias_;
  tensor::Matrix weight_;
  tensor::Matrix weight_grad_;
  tensor::Matrix patches_;           // (n*oh*ow, dim_a)
  tensor::Matrix output_grad_rows_;  // (n*oh*ow, cout)
  // Shapes of the last forward, needed to fold gradients back (col2im).
  std::size_t last_n_ = 0, last_h_ = 0, last_w_ = 0;
};

/// Element-wise max(0, x).
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor4D forward(const Tensor4D& input) override;
  Tensor4D backward(const Tensor4D& grad_output) override;
  const std::string& name() const noexcept override { return name_; }

 private:
  std::string name_;
  std::vector<bool> mask_;
  std::size_t in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Non-overlapping 2x2 max pooling (stride 2).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::string name = "maxpool") : name_(std::move(name)) {}
  Tensor4D forward(const Tensor4D& input) override;
  Tensor4D backward(const Tensor4D& grad_output) override;
  const std::string& name() const noexcept override { return name_; }

 private:
  std::string name_;
  std::vector<std::size_t> argmax_;
  std::size_t in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Collapses (n, c, h, w) -> (n, c*h*w, 1, 1).
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  Tensor4D forward(const Tensor4D& input) override;
  Tensor4D backward(const Tensor4D& grad_output) override;
  const std::string& name() const noexcept override { return name_; }

 private:
  std::string name_;
  std::size_t in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

// ---------------------------------------------------------------------------

/// Softmax + mean cross-entropy over a batch of logits (n, classes, 1, 1).
class SoftmaxCrossEntropy {
 public:
  /// Returns mean loss; stores softmax probabilities for backward().
  double forward(const Tensor4D& logits, std::span<const int> labels);
  /// dL/dlogits of the mean loss (already scaled by 1/n).
  Tensor4D backward() const;

  /// Fraction of samples whose argmax matches the label (of last forward).
  double accuracy() const noexcept { return accuracy_; }

 private:
  Tensor4D probs_;
  std::vector<int> labels_;
  double accuracy_ = 0.0;
};

/// Callbacks fired around preconditioned layers during a pass — the
/// equivalent of PyTorch's register_forward_pre_hook /
/// register_backward_hook that the paper's SPDKFACOptimizer installs
/// (Section V-A, Fig. 6).  The index is the layer's position within
/// preconditioned_layers().
///
/// after_forward fires once the layer's K-FAC input rows are captured (the
/// factor A_l is computable); after_backward fires once its output-gradient
/// rows and weight gradient are captured (G_l and the gradient are
/// computable).  Either callback may be empty.
struct PassHooks {
  std::function<void(std::size_t, PreconditionedLayer&)> after_forward;
  std::function<void(std::size_t, PreconditionedLayer&)> after_backward;
};

/// Ordered layer container with shared-seed deterministic initialization.
class Sequential {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer);

  Tensor4D forward(const Tensor4D& input);
  Tensor4D backward(const Tensor4D& grad_output);

  /// Pass variants that fire `hooks` at each preconditioned layer, enabling
  /// communication/computation overlap inside the passes themselves.
  Tensor4D forward(const Tensor4D& input, const PassHooks& hooks);
  Tensor4D backward(const Tensor4D& grad_output, const PassHooks& hooks);

  /// All preconditioned (conv/linear) layers in network order — what the
  /// K-FAC optimizer operates on.
  std::vector<PreconditionedLayer*> preconditioned_layers() const;

  std::size_t size() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Small reference architectures used by tests/examples.
Sequential make_mlp(std::span<const std::size_t> widths, tensor::Rng& rng);

/// conv(3x3,cin->c1) relu pool conv(3x3,c1->c2) relu pool flatten linear.
Sequential make_small_cnn(std::size_t in_channels, std::size_t image_hw,
                          std::size_t c1, std::size_t c2, std::size_t classes,
                          tensor::Rng& rng);

}  // namespace spdkfac::nn
