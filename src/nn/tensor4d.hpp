// Minimal NCHW activation tensor for the CPU training substrate.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace spdkfac::nn {

/// Dense NCHW tensor of doubles.  Linear-layer activations use shape
/// (n, features, 1, 1).
struct Tensor4D {
  std::size_t n = 0, c = 0, h = 0, w = 0;
  std::vector<double> data;

  Tensor4D() = default;
  Tensor4D(std::size_t n_, std::size_t c_, std::size_t h_, std::size_t w_)
      : n(n_), c(c_), h(h_), w(w_), data(n_ * c_ * h_ * w_, 0.0) {}

  std::size_t count() const noexcept { return data.size(); }
  std::size_t per_sample() const noexcept { return c * h * w; }

  double& at(std::size_t ni, std::size_t ci, std::size_t hi,
             std::size_t wi) noexcept {
    return data[((ni * c + ci) * h + hi) * w + wi];
  }
  double at(std::size_t ni, std::size_t ci, std::size_t hi,
            std::size_t wi) const noexcept {
    return data[((ni * c + ci) * h + hi) * w + wi];
  }

  /// Start of sample ni's contiguous block.
  std::span<double> sample(std::size_t ni) noexcept {
    return std::span<double>(data).subspan(ni * per_sample(), per_sample());
  }
  std::span<const double> sample(std::size_t ni) const noexcept {
    return std::span<const double>(data).subspan(ni * per_sample(),
                                                 per_sample());
  }

  bool same_shape(const Tensor4D& o) const noexcept {
    return n == o.n && c == o.c && h == o.h && w == o.w;
  }

  void require_shape(std::size_t n_, std::size_t c_, std::size_t h_,
                     std::size_t w_) const {
    if (n != n_ || c != c_ || h != h_ || w != w_) {
      throw std::invalid_argument("Tensor4D: unexpected shape");
    }
  }
};

}  // namespace spdkfac::nn
