// Synthetic classification data — the ImageNet stand-in for the numerically
// real training path.  Each class is a fixed random template (drawn from the
// dataset seed, identical on every worker); samples are templates plus
// Gaussian noise drawn from a caller-provided RNG, so each data-parallel
// worker shards the stream simply by seeding its RNG with its rank.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor4d.hpp"
#include "tensor/random.hpp"

namespace spdkfac::nn {

struct Batch {
  Tensor4D inputs;
  std::vector<int> labels;
};

class SyntheticClassification {
 public:
  SyntheticClassification(std::size_t classes, std::size_t channels,
                          std::size_t image_hw, std::uint64_t seed,
                          double noise = 0.3);

  std::size_t classes() const noexcept { return classes_; }

  /// Draws a batch: labels cycle deterministically from the provided RNG,
  /// pixels are template + N(0, noise^2).
  Batch sample(std::size_t batch, tensor::Rng& rng) const;

 private:
  std::size_t classes_, channels_, hw_;
  double noise_;
  std::vector<std::vector<double>> templates_;  // one flat image per class
};

}  // namespace spdkfac::nn
