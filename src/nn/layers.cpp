#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spdkfac::nn {

using tensor::Matrix;

void PreconditionedLayer::apply_update(const Matrix& delta, double lr) {
  Matrix& w = weight();
  if (delta.rows() != w.rows() || delta.cols() != w.cols()) {
    throw std::invalid_argument("apply_update: delta shape mismatch");
  }
  auto wd = w.data();
  auto dd = delta.data();
  for (std::size_t i = 0; i < wd.size(); ++i) wd[i] -= lr * dd[i];
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, bool bias, tensor::Rng& rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      bias_(bias) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_features));
  weight_ = tensor::random_normal(out_features, dim_a(), rng, 0.0, stddev);
  if (bias_) {
    // Zero-initialize the bias column.
    for (std::size_t r = 0; r < out_features_; ++r) {
      weight_(r, dim_a() - 1) = 0.0;
    }
  }
  weight_grad_ = Matrix(out_features_, dim_a());
}

Tensor4D Linear::forward(const Tensor4D& input) {
  input.require_shape(input.n, in_features_, 1, 1);
  const std::size_t n = input.n;
  input_rows_ = Matrix(n, dim_a());
  for (std::size_t i = 0; i < n; ++i) {
    auto sample = input.sample(i);
    for (std::size_t j = 0; j < in_features_; ++j) {
      input_rows_(i, j) = sample[j];
    }
    if (bias_) input_rows_(i, dim_a() - 1) = 1.0;
  }
  const Matrix out_rows = tensor::matmul_nt(input_rows_, weight_);
  Tensor4D out(n, out_features_, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto sample = out.sample(i);
    for (std::size_t j = 0; j < out_features_; ++j) {
      sample[j] = out_rows(i, j);
    }
  }
  return out;
}

Tensor4D Linear::backward(const Tensor4D& grad_output) {
  grad_output.require_shape(grad_output.n, out_features_, 1, 1);
  const std::size_t n = grad_output.n;
  if (input_rows_.rows() != n) {
    throw std::logic_error("Linear::backward before forward");
  }
  output_grad_rows_ = Matrix(n, out_features_);
  for (std::size_t i = 0; i < n; ++i) {
    auto sample = grad_output.sample(i);
    for (std::size_t j = 0; j < out_features_; ++j) {
      output_grad_rows_(i, j) = sample[j];
    }
  }
  weight_grad_ = tensor::matmul_tn(output_grad_rows_, input_rows_);

  const Matrix grad_in_rows = tensor::matmul(output_grad_rows_, weight_);
  Tensor4D grad_in(n, in_features_, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto sample = grad_in.sample(i);
    for (std::size_t j = 0; j < in_features_; ++j) {
      sample[j] = grad_in_rows(i, j);  // bias column dropped
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, bool bias,
               tensor::Rng& rng)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      bias_(bias) {
  const double fan_in =
      static_cast<double>(in_channels * kernel * kernel);
  weight_ =
      tensor::random_normal(out_channels, dim_a(), rng, 0.0,
                            1.0 / std::sqrt(fan_in));
  if (bias_) {
    for (std::size_t r = 0; r < out_channels_; ++r) {
      weight_(r, dim_a() - 1) = 0.0;
    }
  }
  weight_grad_ = Matrix(out_channels_, dim_a());
}

Tensor4D Conv2d::forward(const Tensor4D& input) {
  if (input.c != in_channels_) {
    throw std::invalid_argument("Conv2d: wrong input channels");
  }
  const std::size_t n = input.n, h = input.h, w = input.w;
  const std::size_t oh = out_h(h), ow = out_h(w);
  last_n_ = n;
  last_h_ = h;
  last_w_ = w;

  // im2col: one row per output position, one column per (cin, kh, kw).
  patches_ = Matrix(n * oh * ow, dim_a());
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row = (ni * oh + oy) * ow + ox;
        double* dst = patches_.row_ptr(row);
        std::size_t col = 0;
        for (std::size_t ci = 0; ci < in_channels_; ++ci) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(padding_);
            for (std::size_t kx = 0; kx < kernel_; ++kx, ++col) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                dst[col] = 0.0;
              } else {
                dst[col] = input.at(ni, ci, static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix));
              }
            }
          }
        }
        if (bias_) dst[dim_a() - 1] = 1.0;
      }
    }
  }

  const Matrix out_rows = tensor::matmul_nt(patches_, weight_);
  Tensor4D out(n, out_channels_, oh, ow);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row = (ni * oh + oy) * ow + ox;
        for (std::size_t co = 0; co < out_channels_; ++co) {
          out.at(ni, co, oy, ox) = out_rows(row, co);
        }
      }
    }
  }
  return out;
}

Tensor4D Conv2d::backward(const Tensor4D& grad_output) {
  const std::size_t n = last_n_, h = last_h_, w = last_w_;
  const std::size_t oh = out_h(h), ow = out_h(w);
  grad_output.require_shape(n, out_channels_, oh, ow);
  if (patches_.rows() != n * oh * ow) {
    throw std::logic_error("Conv2d::backward before forward");
  }

  output_grad_rows_ = Matrix(n * oh * ow, out_channels_);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row = (ni * oh + oy) * ow + ox;
        for (std::size_t co = 0; co < out_channels_; ++co) {
          output_grad_rows_(row, co) = grad_output.at(ni, co, oy, ox);
        }
      }
    }
  }

  weight_grad_ = tensor::matmul_tn(output_grad_rows_, patches_);

  // col2im: scatter dPatches = dY * W back onto the input grid.
  const Matrix grad_patches = tensor::matmul(output_grad_rows_, weight_);
  Tensor4D grad_in(n, in_channels_, h, w);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row = (ni * oh + oy) * ow + ox;
        const double* src = grad_patches.row_ptr(row);
        std::size_t col = 0;
        for (std::size_t ci = 0; ci < in_channels_; ++ci) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(padding_);
            for (std::size_t kx = 0; kx < kernel_; ++kx, ++col) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;
              }
              grad_in.at(ni, ci, static_cast<std::size_t>(iy),
                         static_cast<std::size_t>(ix)) += src[col];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// ReLU / MaxPool2d / Flatten
// ---------------------------------------------------------------------------

Tensor4D ReLU::forward(const Tensor4D& input) {
  in_n_ = input.n;
  in_c_ = input.c;
  in_h_ = input.h;
  in_w_ = input.w;
  Tensor4D out = input;
  mask_.assign(input.count(), false);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    if (out.data[i] > 0.0) {
      mask_[i] = true;
    } else {
      out.data[i] = 0.0;
    }
  }
  return out;
}

Tensor4D ReLU::backward(const Tensor4D& grad_output) {
  grad_output.require_shape(in_n_, in_c_, in_h_, in_w_);
  Tensor4D grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.data.size(); ++i) {
    if (!mask_[i]) grad_in.data[i] = 0.0;
  }
  return grad_in;
}

Tensor4D MaxPool2d::forward(const Tensor4D& input) {
  in_n_ = input.n;
  in_c_ = input.c;
  in_h_ = input.h;
  in_w_ = input.w;
  const std::size_t oh = input.h / 2, ow = input.w / 2;
  Tensor4D out(input.n, input.c, oh, ow);
  argmax_.assign(out.count(), 0);
  std::size_t idx = 0;
  for (std::size_t ni = 0; ni < input.n; ++ni) {
    for (std::size_t ci = 0; ci < input.c; ++ci) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++idx) {
          double best = input.at(ni, ci, 2 * oy, 2 * ox);
          std::size_t best_y = 2 * oy, best_x = 2 * ox;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const double v = input.at(ni, ci, 2 * oy + dy, 2 * ox + dx);
              if (v > best) {
                best = v;
                best_y = 2 * oy + dy;
                best_x = 2 * ox + dx;
              }
            }
          }
          out.at(ni, ci, oy, ox) = best;
          argmax_[idx] = (best_y * input.w) + best_x;
        }
      }
    }
  }
  return out;
}

Tensor4D MaxPool2d::backward(const Tensor4D& grad_output) {
  const std::size_t oh = in_h_ / 2, ow = in_w_ / 2;
  grad_output.require_shape(in_n_, in_c_, oh, ow);
  Tensor4D grad_in(in_n_, in_c_, in_h_, in_w_);
  std::size_t idx = 0;
  for (std::size_t ni = 0; ni < in_n_; ++ni) {
    for (std::size_t ci = 0; ci < in_c_; ++ci) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++idx) {
          const std::size_t y = argmax_[idx] / in_w_;
          const std::size_t x = argmax_[idx] % in_w_;
          grad_in.at(ni, ci, y, x) += grad_output.at(ni, ci, oy, ox);
        }
      }
    }
  }
  return grad_in;
}

Tensor4D Flatten::forward(const Tensor4D& input) {
  in_c_ = input.c;
  in_h_ = input.h;
  in_w_ = input.w;
  Tensor4D out(input.n, input.per_sample(), 1, 1);
  out.data = input.data;  // NCHW layout flattens contiguously per sample
  return out;
}

Tensor4D Flatten::backward(const Tensor4D& grad_output) {
  Tensor4D grad_in(grad_output.n, in_c_, in_h_, in_w_);
  grad_in.data = grad_output.data;
  return grad_in;
}

// ---------------------------------------------------------------------------
// SoftmaxCrossEntropy
// ---------------------------------------------------------------------------

double SoftmaxCrossEntropy::forward(const Tensor4D& logits,
                                    std::span<const int> labels) {
  if (labels.size() != logits.n) {
    throw std::invalid_argument("SoftmaxCrossEntropy: labels size mismatch");
  }
  probs_ = logits;
  labels_.assign(labels.begin(), labels.end());
  const std::size_t classes = logits.per_sample();
  double loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.n; ++i) {
    auto row = probs_.sample(i);
    const double maxv = *std::max_element(row.begin(), row.end());
    const std::size_t argmax = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
    double sum = 0.0;
    for (double& v : row) {
      v = std::exp(v - maxv);
      sum += v;
    }
    for (double& v : row) v /= sum;
    const int label = labels_[i];
    if (label < 0 || static_cast<std::size_t>(label) >= classes) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss -= std::log(std::max(row[label], 1e-300));
    if (argmax == static_cast<std::size_t>(label)) ++correct;
  }
  accuracy_ = static_cast<double>(correct) / static_cast<double>(logits.n);
  return loss / static_cast<double>(logits.n);
}

Tensor4D SoftmaxCrossEntropy::backward() const {
  Tensor4D grad = probs_;
  const double inv_n = 1.0 / static_cast<double>(grad.n);
  for (std::size_t i = 0; i < grad.n; ++i) {
    auto row = grad.sample(i);
    row[labels_[i]] -= 1.0;
    for (double& v : row) v *= inv_n;
  }
  return grad;
}

// ---------------------------------------------------------------------------
// Sequential + factories
// ---------------------------------------------------------------------------

void Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

Tensor4D Sequential::forward(const Tensor4D& input) {
  return forward(input, PassHooks{});
}

Tensor4D Sequential::backward(const Tensor4D& grad_output) {
  return backward(grad_output, PassHooks{});
}

Tensor4D Sequential::forward(const Tensor4D& input, const PassHooks& hooks) {
  Tensor4D x = input;
  std::size_t precond_index = 0;
  for (auto& layer : layers_) {
    x = layer->forward(x);
    if (auto* p = dynamic_cast<PreconditionedLayer*>(layer.get())) {
      if (hooks.after_forward) hooks.after_forward(precond_index, *p);
      ++precond_index;
    }
  }
  return x;
}

Tensor4D Sequential::backward(const Tensor4D& grad_output,
                              const PassHooks& hooks) {
  // Count preconditioned layers so indices descend L-1 .. 0 as the backward
  // pass visits them (deepest first).
  std::size_t precond_index = 0;
  for (const auto& layer : layers_) {
    if (dynamic_cast<PreconditionedLayer*>(layer.get()) != nullptr) {
      ++precond_index;
    }
  }
  Tensor4D g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
    if (auto* p = dynamic_cast<PreconditionedLayer*>(it->get())) {
      --precond_index;
      if (hooks.after_backward) hooks.after_backward(precond_index, *p);
    }
  }
  return g;
}

std::vector<PreconditionedLayer*> Sequential::preconditioned_layers() const {
  std::vector<PreconditionedLayer*> out;
  for (const auto& layer : layers_) {
    if (auto* p = dynamic_cast<PreconditionedLayer*>(layer.get())) {
      out.push_back(p);
    }
  }
  return out;
}

Sequential make_mlp(std::span<const std::size_t> widths, tensor::Rng& rng) {
  if (widths.size() < 2) {
    throw std::invalid_argument("make_mlp: need at least input and output");
  }
  Sequential model;
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    model.add(std::make_unique<Linear>("fc" + std::to_string(i + 1),
                                       widths[i], widths[i + 1],
                                       /*bias=*/true, rng));
    if (i + 2 < widths.size()) {
      model.add(std::make_unique<ReLU>("relu" + std::to_string(i + 1)));
    }
  }
  return model;
}

Sequential make_small_cnn(std::size_t in_channels, std::size_t image_hw,
                          std::size_t c1, std::size_t c2, std::size_t classes,
                          tensor::Rng& rng) {
  Sequential model;
  model.add(std::make_unique<Conv2d>("conv1", in_channels, c1, 3, 1, 1,
                                     /*bias=*/true, rng));
  model.add(std::make_unique<ReLU>("relu1"));
  model.add(std::make_unique<MaxPool2d>("pool1"));
  model.add(std::make_unique<Conv2d>("conv2", c1, c2, 3, 1, 1,
                                     /*bias=*/true, rng));
  model.add(std::make_unique<ReLU>("relu2"));
  model.add(std::make_unique<MaxPool2d>("pool2"));
  model.add(std::make_unique<Flatten>("flatten"));
  const std::size_t hw = image_hw / 4;
  model.add(std::make_unique<Linear>("fc", c2 * hw * hw, classes,
                                     /*bias=*/true, rng));
  return model;
}

}  // namespace spdkfac::nn
