#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace spdkfac::util {

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0.0 ? "inf" : "-inf";
  // Shortest round-trip digits, preferring fixed notation while it stays
  // short (trace timestamps like 500000 must not become 5e+05); extreme
  // magnitudes fall back to the shortest general form.
  char fixed_buf[32];
  const auto fixed = std::to_chars(fixed_buf, fixed_buf + sizeof(fixed_buf),
                                   value, std::chars_format::fixed);
  if (fixed.ec == std::errc{}) return std::string(fixed_buf, fixed.ptr);
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    // Unreachable for a finite double and a 64-byte buffer; fail loudly
    // rather than emit garbage.
    return "0";
  }
  return std::string(buf, ptr);
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  return format_double(value);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(std::string_view s) {
  const std::string escaped = json_escape(s);
  std::string out;
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

}  // namespace spdkfac::util
