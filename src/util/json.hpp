// Locale-independent JSON fragment helpers shared by every emitter in the
// tree (BENCH_*.json, the simulator's Chrome traces, the control plane's
// ctl/metrics responses).
//
// Two classes of bug motivated centralizing this:
//   - printf("%g") and ostream<< both honor the active locale, so a comma
//     decimal separator (de_DE, fr_FR, ...) silently produces invalid JSON;
//     ostreams additionally default to 6 significant digits, which collapses
//     microsecond timestamps past ~1 s of trace into the same tick.
//   - IEEE-754 specials print as "nan"/"inf", which are not JSON tokens.
//
// format_double() uses std::to_chars — locale-free by specification and
// shortest-round-trip, so every double survives a parse bit-exactly.
// json_number() maps non-finite values to "null" (the only standard JSON
// representation that keeps the document parseable).  json_escape()
// implements the full RFC 8259 string escape, control characters included.
#pragma once

#include <string>
#include <string_view>

namespace spdkfac::util {

/// Shortest decimal form of `value` that round-trips to the same bits,
/// independent of the C and C++ locales.  Non-finite values format as
/// "nan"/"inf"/"-inf" — callers emitting JSON want json_number() instead.
std::string format_double(double value);

/// `value` as a JSON number token; non-finite values become "null" (JSON
/// has no NaN/Infinity literals — emitting them corrupts the document).
std::string json_number(double value);

/// RFC 8259 string-body escape: quote, backslash, the named control
/// escapes (\b \f \n \r \t) and \u00XX for every other character < 0x20.
/// Returns the escaped body only — the caller supplies the quotes.
std::string json_escape(std::string_view s);

/// Convenience: `s` escaped and wrapped in double quotes.
std::string json_string(std::string_view s);

}  // namespace spdkfac::util
