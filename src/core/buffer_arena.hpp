// Per-rank zero-copy communication arena.
//
// Every step, the optimizer's packing layout (derived from the
// sched::IterationPlan) needs one buffer per fused factor group, gradient
// group, and inverse broadcast.  The seed allocated and zero-filled each of
// them from the heap every iteration (`buffers[gi].assign(elements, 0.0)`)
// — O(total packed bytes) of allocator traffic and memset per step, plus a
// fresh address each time, defeating any cache residency across steps.
//
// The arena replaces that with one grow-only 64-byte-aligned slab per rank:
//
//   * reset(total) is called once per step with the plan's total element
//     count; the slab only ever grows (amortized: after the first step of a
//     steady-state plan it never reallocates), and nothing is zeroed — the
//     optimizer's layout guarantees every carved element is written before
//     it is read (factor packs, gradient stages, broadcast roots/receives
//     each cover their span completely).
//   * carve(n) hands out the next n doubles; every span starts on a
//     64-byte boundary, so vector kernels and the transport see aligned
//     payloads.  Carve order is deterministic (plan order), so a span's
//     address is stable across steps of an unchanged plan — the async
//     engine submits the same pointer every iteration, verifiably
//     zero-copy (OpRecord::data ∈ arena, see tests/core/test_buffer_arena).
//   * Ownership: the arena owns the slab; spans are valid until the next
//     reset() that grows the slab.  In-flight collectives therefore must
//     drain before begin_step() re-carves — the executor's step barrier
//     already guarantees this.
//
// Not thread-safe: reset/carve run on the step-setup path only (single
// thread); the carved spans are then written concurrently at disjoint
// plan-determined offsets, which is safe without the arena's involvement.
#pragma once

#include <cstddef>
#include <span>

namespace spdkfac::core {

class BufferArena {
 public:
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kAlignDoubles = kAlignBytes / sizeof(double);

  BufferArena() = default;
  ~BufferArena();

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Rounds a span length up to the slab's alignment quantum, so the *next*
  /// carve also starts 64-byte aligned.
  static constexpr std::size_t aligned(std::size_t n) noexcept {
    return (n + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
  }

  /// Starts a step layout: guarantees capacity for `total_doubles` (already
  /// aligned-summed by the caller) and rewinds the carve cursor.  Grows the
  /// slab only when needed; never shrinks, never zeroes.  Any span from a
  /// previous carve round is invalidated if the slab grew.
  void reset(std::size_t total_doubles);

  /// Next `n` doubles, 64-byte aligned start.  Contents are whatever the
  /// slab last held — callers must fully write before reading.  Terminates
  /// (assert-style) if carving past the reset() capacity, which would mean
  /// the layout under-counted.
  std::span<double> carve(std::size_t n);

  /// Whether p points into the slab — the zero-copy submit check.
  bool contains(const double* p) const noexcept {
    return p != nullptr && p >= slab_ && p < slab_ + capacity_;
  }

  std::size_t capacity_doubles() const noexcept { return capacity_; }
  std::size_t carved_doubles() const noexcept { return cursor_; }
  /// Slab (re)allocations so far — 1 after warm-up on a stable plan.
  std::size_t rebuilds() const noexcept { return rebuilds_; }

 private:
  double* slab_ = nullptr;
  std::size_t capacity_ = 0;  ///< doubles
  std::size_t cursor_ = 0;    ///< doubles carved since last reset
  std::size_t rebuilds_ = 0;
};

}  // namespace spdkfac::core
