// Journal implementation + DistKfacOptimizer checkpoint/restore.  Format
// documented in checkpoint.hpp.

#include "core/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/dist_kfac.hpp"

namespace spdkfac::core::journal {

namespace {

constexpr std::size_t kFrameHeaderBytes = 12;  // u16 type, u16 index, u64 len

/// Frames above this payload size are rejected by the Reader before
/// allocation: a corrupted length field must not turn into a multi-gigabyte
/// vector resize.  Far above any real record (the largest is a weight
/// matrix) yet small enough to fail fast on garbage.
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 32;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_le(std::vector<unsigned char>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

void write_bytes(std::ostream& out, std::span<const unsigned char> bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) fail("write failed");
}

void read_bytes(std::istream& in, unsigned char* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) fail("truncated journal");
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Payload::put_u64(std::uint64_t v) { put_le(bytes_, v, 8); }

void Payload::put_f64(double v) {
  put_le(bytes_, std::bit_cast<std::uint64_t>(v), 8);
}

void Payload::put_f64s(std::span<const double> values) {
  for (double v : values) put_f64(v);
}

void Payload::put_matrix(const tensor::Matrix& m) {
  put_u64(m.rows());
  put_u64(m.cols());
  put_f64s(m.data());
}

std::uint64_t PayloadView::get_u64() {
  if (bytes_.size() - offset_ < 8) fail("truncated record payload");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

double PayloadView::get_f64() { return std::bit_cast<double>(get_u64()); }

std::vector<double> PayloadView::get_f64s(std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(get_f64());
  return out;
}

tensor::Matrix PayloadView::get_matrix() {
  const std::uint64_t rows = get_u64();
  const std::uint64_t cols = get_u64();
  // Guard the product before sizing: two plausible-looking u64s must not
  // overflow into a huge (or tiny) allocation on a CRC-passing frame from
  // a buggy producer.
  if (rows != 0 && cols > (bytes_.size() - offset_) / 8 / rows) {
    fail("matrix larger than its record");
  }
  tensor::Matrix m(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
  for (double& slot : m.data()) slot = get_f64();
  return m;
}

Writer::Writer(std::ostream& out) : out_(out) {
  std::vector<unsigned char> header(kMagic, kMagic + sizeof(kMagic));
  put_le(header, kVersion, 4);
  write_bytes(out_, header);
}

void Writer::record(RecordType type, std::uint16_t index,
                    std::span<const unsigned char> payload) {
  if (finished_) fail("record() after finish()");
  std::vector<unsigned char> frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + 4);
  put_le(frame, static_cast<std::uint16_t>(type), 2);
  put_le(frame, index, 2);
  put_le(frame, payload.size(), 8);
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_le(frame, crc32(frame), 4);
  write_bytes(out_, frame);
  ++records_;
}

void Writer::finish() {
  if (finished_) fail("finish() called twice");
  record(RecordType::kEnd, records_, std::span<const unsigned char>{});
  finished_ = true;
  out_.flush();
  if (!out_) fail("write failed");
}

Reader::Reader(std::istream& in) : in_(in) {
  unsigned char header[sizeof(kMagic) + 4];
  read_bytes(in_, header, sizeof(header));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not a checkpoint journal)");
  }
  std::uint32_t version = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(header[sizeof(kMagic) + i])
               << (8 * i);
  }
  if (version != kVersion) {
    fail("unsupported journal version " + std::to_string(version));
  }
}

std::optional<Reader::Record> Reader::next() {
  if (done_) return std::nullopt;
  std::vector<unsigned char> frame(kFrameHeaderBytes);
  read_bytes(in_, frame.data(), kFrameHeaderBytes);
  std::uint64_t len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(frame[4 + i]) << (8 * i);
  }
  if (len > kMaxPayloadBytes) fail("record payload length implausible");
  frame.resize(kFrameHeaderBytes + static_cast<std::size_t>(len));
  read_bytes(in_, frame.data() + kFrameHeaderBytes,
             static_cast<std::size_t>(len));
  unsigned char crc_bytes[4];
  read_bytes(in_, crc_bytes, 4);
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(crc_bytes[i]) << (8 * i);
  }
  if (crc32(frame) != stored) fail("CRC mismatch (corrupt record)");

  Record rec;
  rec.type = static_cast<RecordType>(static_cast<std::uint16_t>(frame[0]) |
                                     (static_cast<std::uint16_t>(frame[1])
                                      << 8));
  rec.index = static_cast<std::uint16_t>(static_cast<std::uint16_t>(frame[2]) |
                                         (static_cast<std::uint16_t>(frame[3])
                                          << 8));
  rec.payload.assign(frame.begin() + kFrameHeaderBytes, frame.end());

  if (rec.type == RecordType::kEnd) {
    if (rec.index != records_) {
      fail("record count mismatch (journal truncated or spliced)");
    }
    done_ = true;
    return std::nullopt;
  }
  ++records_;
  return rec;
}

}  // namespace spdkfac::core::journal

namespace spdkfac::core {

namespace {

void put_timing(journal::Payload& p, const sched::PassTiming& t) {
  p.put_u64(t.a_ready.size());
  p.put_f64s(t.a_ready);
  p.put_u64(t.g_ready.size());
  p.put_f64s(t.g_ready);
  p.put_u64(t.grad_ready.size());
  p.put_f64s(t.grad_ready);
  p.put_f64(t.backward_end);
}

sched::PassTiming get_timing(journal::PayloadView& v) {
  sched::PassTiming t;
  t.a_ready = v.get_f64s(static_cast<std::size_t>(v.get_u64()));
  t.g_ready = v.get_f64s(static_cast<std::size_t>(v.get_u64()));
  t.grad_ready = v.get_f64s(static_cast<std::size_t>(v.get_u64()));
  t.backward_end = v.get_f64();
  return t;
}

}  // namespace

void DistKfacOptimizer::save_checkpoint(std::ostream& out) const {
  using journal::Payload;
  using journal::RecordType;
  if (hooked_active_) {
    throw std::logic_error(
        "save_checkpoint: a hooked step is in flight; checkpoint between "
        "steps");
  }
  const std::size_t L = layers_.size();
  journal::Writer writer(out);

  Payload meta;
  meta.put_u64(static_cast<std::uint64_t>(comm_.size()));
  meta.put_u64(L);
  meta.put_u64(static_cast<std::uint64_t>(options_.strategy));
  meta.put_u64(step_count_);
  meta.put_u64(replan_count_);
  meta.put_u64(replan_epoch_);
  meta.put_u64(next_replan_step_);
  meta.put_u64(profiled_timing_ ? 1 : 0);
  writer.record(RecordType::kMeta, 0, meta);

  for (std::size_t l = 0; l < L; ++l) {
    const auto idx = static_cast<std::uint16_t>(l);
    Payload w, a, g, ai, gi;
    w.put_matrix(layers_[l]->weight());
    writer.record(RecordType::kWeights, idx, w);
    a.put_matrix(state_[l].a);
    writer.record(RecordType::kFactorA, idx, a);
    g.put_matrix(state_[l].g);
    writer.record(RecordType::kFactorG, idx, g);
    ai.put_matrix(state_[l].a_inv);
    writer.record(RecordType::kInverseA, idx, ai);
    gi.put_matrix(state_[l].g_inv);
    writer.record(RecordType::kInverseG, idx, gi);
  }

  // Error-feedback residuals exist only once a top-k gradient step ran;
  // checkpoints without them restore to zeroed residuals (same state a
  // fresh optimizer starts from), so the journal version stays at 1.
  for (std::size_t l = 0; l < grad_residuals_.size(); ++l) {
    Payload r;
    r.put_u64(grad_residuals_[l].size());
    r.put_f64s(grad_residuals_[l]);
    writer.record(RecordType::kGradResidual, static_cast<std::uint16_t>(l), r);
  }

  const std::vector<double> prof = profiler_.serialize();
  Payload p;
  p.put_u64(prof.size());
  p.put_f64s(prof);
  writer.record(RecordType::kProfiler, 0, p);

  Payload t;
  put_timing(t, current_timing_);
  writer.record(RecordType::kTiming, 0, t);

  writer.finish();
}

void DistKfacOptimizer::restore_checkpoint(std::istream& in) {
  using journal::RecordType;
  if (hooked_active_) {
    throw std::logic_error(
        "restore_checkpoint: a hooked step is in flight; restore between "
        "steps");
  }
  const std::size_t L = layers_.size();
  journal::Reader reader(in);

  // Stage everything, validate, then commit — a journal that fails halfway
  // through (CRC, shape mismatch) must leave the optimizer untouched.
  bool have_meta = false, have_profiler = false, have_timing = false;
  std::vector<bool> have_weights(L, false), have_factors(L, false);
  std::vector<tensor::Matrix> weights(L), fa(L), fg(L), ia(L), ig(L);
  std::vector<std::vector<double>> residuals(L);
  bool have_residuals = false;
  std::vector<double> prof;
  sched::PassTiming timing;
  std::uint64_t meta_steps = 0, meta_replans = 0, meta_epoch = 0,
                meta_next_replan = 0;
  bool meta_profiled = false;

  while (auto rec = reader.next()) {
    auto view = rec->view();
    switch (rec->type) {
      case RecordType::kMeta: {
        view.get_u64();  // saved world size — informational only; restoring
                         // at a different P is the elastic-restart path.
        const std::uint64_t layers = view.get_u64();
        if (layers != L) {
          throw std::runtime_error(
              "restore_checkpoint: layer count mismatch (checkpoint has " +
              std::to_string(layers) + ", model has " + std::to_string(L) +
              ")");
        }
        const auto strategy = static_cast<DistStrategy>(view.get_u64());
        if (strategy != options_.strategy) {
          throw std::runtime_error(
              "restore_checkpoint: strategy mismatch (checkpoint: " +
              std::string(to_string(strategy)) +
              ", optimizer: " + std::string(to_string(options_.strategy)) +
              ")");
        }
        meta_steps = view.get_u64();
        meta_replans = view.get_u64();
        meta_epoch = view.get_u64();
        meta_next_replan = view.get_u64();
        meta_profiled = view.get_u64() != 0;
        have_meta = true;
        break;
      }
      case RecordType::kWeights:
      case RecordType::kFactorA:
      case RecordType::kFactorG:
      case RecordType::kInverseA:
      case RecordType::kInverseG: {
        if (rec->index >= L) {
          throw std::runtime_error("restore_checkpoint: record for layer " +
                                   std::to_string(rec->index) + " of an " +
                                   std::to_string(L) + "-layer model");
        }
        tensor::Matrix m = view.get_matrix();
        if (rec->type == RecordType::kWeights) {
          const tensor::Matrix& w = layers_[rec->index]->weight();
          if (m.rows() != w.rows() || m.cols() != w.cols()) {
            throw std::runtime_error(
                "restore_checkpoint: weight shape mismatch at layer " +
                std::to_string(rec->index));
          }
          weights[rec->index] = std::move(m);
          have_weights[rec->index] = true;
        } else if (rec->type == RecordType::kFactorA) {
          fa[rec->index] = std::move(m);
          have_factors[rec->index] = true;
        } else if (rec->type == RecordType::kFactorG) {
          fg[rec->index] = std::move(m);
        } else if (rec->type == RecordType::kInverseA) {
          ia[rec->index] = std::move(m);
        } else {
          ig[rec->index] = std::move(m);
        }
        break;
      }
      case RecordType::kGradResidual: {
        if (rec->index >= L) {
          throw std::runtime_error(
              "restore_checkpoint: residual record for layer " +
              std::to_string(rec->index) + " of an " + std::to_string(L) +
              "-layer model");
        }
        const std::size_t n = static_cast<std::size_t>(view.get_u64());
        if (n != layers_[rec->index]->weight_grad().size()) {
          throw std::runtime_error(
              "restore_checkpoint: residual size mismatch at layer " +
              std::to_string(rec->index));
        }
        residuals[rec->index] = view.get_f64s(n);
        have_residuals = true;
        break;
      }
      case RecordType::kProfiler:
        prof = view.get_f64s(static_cast<std::size_t>(view.get_u64()));
        have_profiler = true;
        break;
      case RecordType::kTiming:
        timing = get_timing(view);
        have_timing = true;
        break;
      case RecordType::kEnd:
        break;  // consumed by the reader; unreachable
    }
  }

  if (!have_meta || !have_profiler || !have_timing) {
    throw std::runtime_error("restore_checkpoint: journal missing records");
  }
  for (std::size_t l = 0; l < L; ++l) {
    if (!have_weights[l] || !have_factors[l]) {
      throw std::runtime_error("restore_checkpoint: journal missing layer " +
                               std::to_string(l));
    }
  }

  // Commit.  The profiler restore validates its own vector size first, so
  // it stays in the all-or-nothing window.
  profiler_.restore(prof);
  for (std::size_t l = 0; l < L; ++l) {
    layers_[l]->weight() = std::move(weights[l]);
    state_[l].a = std::move(fa[l]);
    state_[l].g = std::move(fg[l]);
    state_[l].a_inv = std::move(ia[l]);
    state_[l].g_inv = std::move(ig[l]);
  }
  if (have_residuals) {
    ensure_grad_residuals();
    for (std::size_t l = 0; l < L; ++l) {
      if (residuals[l].size() == grad_residuals_[l].size()) {
        std::copy(residuals[l].begin(), residuals[l].end(),
                  grad_residuals_[l].begin());
      } else {  // layer absent from the journal: nothing accumulated yet
        std::fill(grad_residuals_[l].begin(), grad_residuals_[l].end(), 0.0);
      }
    }
  } else {
    // A pre-compression (or lossless-run) checkpoint carries no residuals;
    // whatever this incarnation accumulated belongs to a different history.
    for (std::span<double> r : grad_residuals_) {
      std::fill(r.begin(), r.end(), 0.0);
    }
  }
  step_count_ = static_cast<std::size_t>(meta_steps);
  replan_count_ = static_cast<std::size_t>(meta_replans);
  replan_epoch_ = static_cast<std::size_t>(meta_epoch);
  next_replan_step_ = static_cast<std::size_t>(meta_next_replan);
  profiled_timing_ = meta_profiled;
  current_timing_ = std::move(timing);
  // The plan cache keys on (profile, world size) and plans are pure
  // functions of both, but after an elastic restore its entries describe a
  // cluster that no longer exists; dropping it costs one planner run and
  // removes the staleness class entirely.
  plan_cache_.clear();
  // A restored optimizer is a fresh start: the failure that motivated the
  // restore belonged to the previous incarnation's cluster.
  failed_ = false;
  backward_events_ = 0;
}

}  // namespace spdkfac::core
