#include "core/kfac_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels/kernels.hpp"

namespace spdkfac::core {

using tensor::Matrix;

Matrix compute_factor_a(const nn::PreconditionedLayer& layer) {
  const Matrix& rows = layer.kfac_input();
  if (rows.rows() == 0) {
    throw std::logic_error("compute_factor_a: no captured forward pass");
  }
  Matrix a = tensor::matmul_tn(rows, rows);
  a *= 1.0 / static_cast<double>(rows.rows());
  return a;
}

Matrix compute_factor_g(const nn::PreconditionedLayer& layer) {
  const Matrix& rows = layer.kfac_output_grad();
  if (rows.rows() == 0) {
    throw std::logic_error("compute_factor_g: no captured backward pass");
  }
  Matrix g = tensor::matmul_tn(rows, rows);
  g *= 1.0 / static_cast<double>(rows.rows());
  return g;
}

void update_running_average(Matrix& state, const Matrix& fresh,
                            double decay) {
  if (state.empty()) {
    state = fresh;
    return;
  }
  tensor::kernels::active_table().ema(state.data().data(),
                                      fresh.data().data(),
                                      state.data().size(), decay);
}

Matrix damped_inverse_by(const Matrix& m, double damping,
                         InverseMethod method) {
  switch (method) {
    case InverseMethod::kCholesky:
      return tensor::damped_inverse(m, damping);
    case InverseMethod::kEigen:
      return tensor::symmetric_eigen(m).damped_inverse(damping);
  }
  throw std::logic_error("damped_inverse_by: unknown method");
}

namespace {

double trace_of(const Matrix& m) {
  double t = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) t += m(i, i);
  return t;
}

}  // namespace

std::pair<double, double> factored_damping(const Matrix& a, const Matrix& g,
                                           double damping) {
  const double mean_a = trace_of(a) / static_cast<double>(a.rows());
  const double mean_g = trace_of(g) / static_cast<double>(g.rows());
  if (mean_a <= 0.0 || mean_g <= 0.0) return {damping, damping};
  const double pi = std::sqrt(mean_a / mean_g);
  const double root = std::sqrt(damping);
  return {pi * root, root / pi};
}

double kl_clip_factor(std::span<const Matrix> deltas,
                      std::span<const Matrix> grads, double lr,
                      double kl_clip) {
  if (kl_clip <= 0.0) return 1.0;
  if (deltas.size() != grads.size()) {
    throw std::invalid_argument("kl_clip_factor: size mismatch");
  }
  double vg_sum = 0.0;
  for (std::size_t l = 0; l < deltas.size(); ++l) {
    auto dd = deltas[l].data();
    auto gd = grads[l].data();
    double dot = 0.0;
    for (std::size_t i = 0; i < dd.size(); ++i) dot += dd[i] * gd[i];
    vg_sum += lr * lr * dot;
  }
  if (vg_sum <= 0.0) return 1.0;
  return std::min(1.0, std::sqrt(kl_clip / vg_sum));
}

void SgdOptimizer::step() {
  for (nn::PreconditionedLayer* layer : layers_) {
    layer->apply_update(layer->weight_grad(), lr_);
  }
}

KfacOptimizer::KfacOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                             KfacOptions options)
    : layers_(std::move(layers)), options_(options) {
  if (layers_.empty()) {
    throw std::invalid_argument("KfacOptimizer: no preconditioned layers");
  }
  state_.resize(layers_.size());
}

void KfacOptimizer::step() {
  const bool update_factors =
      step_count_ % options_.factor_update_freq == 0;
  const bool update_inverses =
      step_count_ % options_.inverse_update_freq == 0;

  std::vector<Matrix> deltas(layers_.size());
  std::vector<Matrix> grads(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    nn::PreconditionedLayer& layer = *layers_[l];
    LayerState& st = state_[l];
    if (update_factors) {
      update_running_average(st.a, compute_factor_a(layer),
                             options_.stat_decay);
      update_running_average(st.g, compute_factor_g(layer),
                             options_.stat_decay);
    }
    if (update_inverses) {
      auto [gamma_a, gamma_g] =
          options_.pi_damping
              ? factored_damping(st.a, st.g, options_.damping)
              : std::pair<double, double>{options_.damping, options_.damping};
      st.a_inv = damped_inverse_by(st.a, gamma_a, options_.inverse_method);
      st.g_inv = damped_inverse_by(st.g, gamma_g, options_.inverse_method);
    }
    // Precondition: delta = G^-1 * grad * A^-1.
    grads[l] = layer.weight_grad();
    deltas[l] =
        tensor::matmul(st.g_inv, tensor::matmul(grads[l], st.a_inv));
  }
  const double nu =
      kl_clip_factor(deltas, grads, options_.lr, options_.kl_clip);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->apply_update(deltas[l], options_.lr * nu);
  }
  ++step_count_;
}

}  // namespace spdkfac::core
