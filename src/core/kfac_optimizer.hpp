// Single-process K-FAC optimizer (the numerics of Eq. (12)).
//
// For every preconditioned layer l the optimizer maintains Kronecker factors
//   A_l = a_l^T a_l / rows    (layer-input second moment, bias-augmented)
//   G_l = g_l^T g_l / rows    (pre-activation-gradient second moment)
// as exponential running averages, computes the damped inverses
// (A_l + gamma I)^-1 and (G_l + gamma I)^-1 via Cholesky, and applies
//   W_l <- W_l - lr * G_l^-1 (dL/dW_l) A_l^-1,
// which is the matrix form of Eq. (12) under the Kronecker identity
// (A ⊗ G)^-1 vec(V) = vec(G^-1 V A^-1).
//
// The distributed variants in dist_kfac.hpp produce the same update with the
// local factors/gradients replaced by their cross-worker averages (Eq. 13);
// tests/core assert that equivalence.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"
#include "tensor/linalg.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac::core {

/// How damped factor inverses are computed.
enum class InverseMethod {
  kCholesky,  ///< direct Cholesky inverse (the paper's cuSolver path)
  kEigen,     ///< Jacobi eigendecomposition; Q diag(1/(l+g)) Q^T (KAISA-style)
};

struct KfacOptions {
  double lr = 0.05;
  double damping = 3e-2;       ///< gamma of Eq. (12)
  double stat_decay = 0.95;    ///< factor running-average decay
  std::size_t factor_update_freq = 1;   ///< recompute A/G every k steps
  std::size_t inverse_update_freq = 1;  ///< re-invert every k steps
  /// KL clipping (Osawa et al., kfac-pytorch): rescale the whole update by
  /// nu = min(1, sqrt(kl_clip / sum_l lr^2 <delta_l, grad_l>)) so the
  /// preconditioned step's approximate KL stays bounded.  0 disables.
  double kl_clip = 0.0;
  InverseMethod inverse_method = InverseMethod::kCholesky;
  /// Factored Tikhonov damping (Martens & Grosse §6.3): split gamma between
  /// the factors as gamma_A = pi*sqrt(gamma), gamma_G = sqrt(gamma)/pi with
  /// pi = sqrt((tr A / d_A) / (tr G / d_G)), equalizing the two factors'
  /// relative regularization.
  bool pi_damping = false;
};

/// Damped inverse via the chosen method; both satisfy
/// (m + damping*I) * result ~= I.
tensor::Matrix damped_inverse_by(const tensor::Matrix& m, double damping,
                                 InverseMethod method);

/// The factored-damping split {gamma_a, gamma_g} of §6.3 (see
/// KfacOptions::pi_damping).  Falls back to {gamma, gamma} when a trace is
/// non-positive.
std::pair<double, double> factored_damping(const tensor::Matrix& a,
                                           const tensor::Matrix& g,
                                           double damping);

/// Computes the KL-clipping factor nu for a set of (delta, grad) pairs.
/// Returns 1.0 when clipping is disabled or the trust measure is <= 0.
double kl_clip_factor(std::span<const tensor::Matrix> deltas,
                      std::span<const tensor::Matrix> grads, double lr,
                      double kl_clip);

/// Computes a layer's local Kronecker factors from its captured rows.
tensor::Matrix compute_factor_a(const nn::PreconditionedLayer& layer);
tensor::Matrix compute_factor_g(const nn::PreconditionedLayer& layer);

/// Folds `fresh` into running average `state` with the given decay
/// (initializes state on first use).
void update_running_average(tensor::Matrix& state,
                            const tensor::Matrix& fresh, double decay);

/// Plain SGD on the same layer set — the paper's first-order baseline.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                        double lr = 0.1)
      : layers_(std::move(layers)), lr_(lr) {}

  /// Applies w -= lr * grad using the gradients of the last backward pass.
  void step();

 private:
  std::vector<nn::PreconditionedLayer*> layers_;
  double lr_;
};

class KfacOptimizer {
 public:
  KfacOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                KfacOptions options = {});

  /// One optimization step; call after forward + backward populated the
  /// layers' captured rows and gradients.
  void step();

  std::size_t steps() const noexcept { return step_count_; }

  // Introspection (tests, distributed-equivalence checks).
  const tensor::Matrix& factor_a(std::size_t l) const {
    return state_[l].a;
  }
  const tensor::Matrix& factor_g(std::size_t l) const {
    return state_[l].g;
  }
  const tensor::Matrix& inverse_a(std::size_t l) const {
    return state_[l].a_inv;
  }
  const tensor::Matrix& inverse_g(std::size_t l) const {
    return state_[l].g_inv;
  }
  std::size_t num_layers() const noexcept { return layers_.size(); }

 private:
  struct LayerState {
    tensor::Matrix a, g;          // running-average factors
    tensor::Matrix a_inv, g_inv;  // damped inverses
  };

  std::vector<nn::PreconditionedLayer*> layers_;
  KfacOptions options_;
  std::vector<LayerState> state_;
  std::size_t step_count_ = 0;
};

}  // namespace spdkfac::core
