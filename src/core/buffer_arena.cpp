#include "core/buffer_arena.hpp"

#include <cstdlib>
#include <new>
#include <stdexcept>

namespace spdkfac::core {

BufferArena::~BufferArena() { std::free(slab_); }

void BufferArena::reset(std::size_t total_doubles) {
  if (total_doubles > capacity_) {
    std::free(slab_);
    const std::size_t doubles = aligned(total_doubles);
    // aligned_alloc requires the size to be a multiple of the alignment;
    // `doubles` is a multiple of 8 doubles = 64 bytes already.
    slab_ = static_cast<double*>(
        std::aligned_alloc(kAlignBytes, doubles * sizeof(double)));
    if (slab_ == nullptr) {
      capacity_ = 0;
      throw std::bad_alloc();
    }
    capacity_ = doubles;
    ++rebuilds_;
  }
  cursor_ = 0;
}

std::span<double> BufferArena::carve(std::size_t n) {
  if (cursor_ + n > capacity_) {
    throw std::logic_error(
        "BufferArena::carve: layout exceeds reset() capacity");
  }
  std::span<double> out(slab_ + cursor_, n);
  cursor_ += aligned(n);
  // The aligned cursor may overshoot capacity_ by the final span's padding;
  // that is fine — it only matters for the *next* carve, which the check
  // above rejects.
  return out;
}

}  // namespace spdkfac::core
