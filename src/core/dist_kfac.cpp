#include "core/dist_kfac.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "tensor/symmetric.hpp"

namespace spdkfac::core {

using tensor::Matrix;

const char* to_string(DistStrategy strategy) noexcept {
  switch (strategy) {
    case DistStrategy::kDKfac:
      return "D-KFAC";
    case DistStrategy::kMpdKfac:
      return "MPD-KFAC";
    case DistStrategy::kSpdKfac:
      return "SPD-KFAC";
  }
  return "?";
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DistKfacOptimizer::DistKfacOptimizer(
    std::vector<nn::PreconditionedLayer*> layers, comm::Communicator& comm,
    DistKfacOptions options)
    : layers_(std::move(layers)),
      comm_(comm),
      engine_(comm),
      options_(options),
      selector_(comm.topology()) {
  if (layers_.empty()) {
    throw std::invalid_argument("DistKfacOptimizer: no preconditioned layers");
  }
  const std::size_t L = layers_.size();
  state_.resize(L);
  fresh_a_.resize(L);
  fresh_g_.resize(L);
  agg_grads_.resize(L);
  a_comp_seconds_.assign(L, 0.0);
  g_comp_seconds_.assign(L, 0.0);
  a_sizes_.resize(L);
  g_sizes_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    a_sizes_[l] = tensor::packed_size(layers_[l]->dim_a());
    // G pass runs deepest layer first; g_sizes_ is indexed in pass order.
    g_sizes_[l] = tensor::packed_size(layers_[L - 1 - l]->dim_g());
  }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

void DistKfacOptimizer::sync_measured_times() {
  if (comm_.size() == 1) return;
  const std::size_t L = layers_.size();
  std::vector<double> buffer(2 * L);
  std::copy(a_comp_seconds_.begin(), a_comp_seconds_.end(), buffer.begin());
  std::copy(g_comp_seconds_.begin(), g_comp_seconds_.end(),
            buffer.begin() + L);
  engine_
      .all_reduce_async(buffer, comm::ReduceOp::kAverage, "factor-times",
                        collective_algo(buffer.size()))
      .wait();
  std::copy(buffer.begin(), buffer.begin() + L, a_comp_seconds_.begin());
  std::copy(buffer.begin() + L, buffer.end(), g_comp_seconds_.begin());
}

void DistKfacOptimizer::plan_factor_groups() {
  const std::size_t L = layers_.size();
  // Step 0 has no measurements yet: communicate layer-wise.  Later steps
  // plan with the optimal-fusion DP over the *rank-averaged* measured
  // factor computation times (the paper profiles the layer-wise factor
  // times over a few iterations, Section IV-A); averaging keeps every
  // rank's plan identical, which the collective ordering contract needs.
  const FusionPolicy policy =
      step_count_ == 0 ? FusionPolicy::kNoFusion : FusionPolicy::kOptimal;
  sync_measured_times();

  FusionPlanInput a_input;
  a_input.sizes = a_sizes_;
  a_input.ready_times.resize(L);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    clock += a_comp_seconds_[l];
    a_input.ready_times[l] = clock;
  }
  a_groups_ = plan_fusion(a_input, options_.allreduce_model, policy);

  FusionPlanInput g_input;
  g_input.sizes = g_sizes_;
  g_input.ready_times.resize(L);
  g_input.stream_free_at = a_groups_.empty() ? 0.0 : a_groups_.back().comm_end;
  clock = 0.0;
  for (std::size_t i = 0; i < L; ++i) {
    clock += g_comp_seconds_[L - 1 - i];
    g_input.ready_times[i] = clock;
  }
  g_groups_ = plan_fusion(g_input, options_.allreduce_model, policy);
}

void DistKfacOptimizer::plan_grad_groups() {
  // WFBP gradient fusion: accumulate consecutive layers (backward order,
  // deepest first) until the element threshold, then flush — Horovod's
  // scheme, used identically by every strategy in the paper.
  const std::size_t L = layers_.size();
  grad_group_layers_.clear();
  std::vector<std::size_t> group;
  std::size_t acc = 0;
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    group.push_back(l);
    acc += layers_[l]->weight_grad().size();
    if (acc >= core::kHorovodThresholdElements || l == 0) {
      grad_group_layers_.push_back(group);
      group.clear();
      acc = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Post-hoc aggregation paths (no hooks)
// ---------------------------------------------------------------------------

void DistKfacOptimizer::aggregate_factors_bulk(bool compute_factors) {
  const std::size_t L = layers_.size();
  // Compute all local factors first (no overlap — this is the D-KFAC /
  // MPD-KFAC behaviour the paper improves on), then one fused all-reduce.
  if (compute_factors) {
    for (std::size_t l = 0; l < L; ++l) {
      const auto t0 = std::chrono::steady_clock::now();
      fresh_a_[l] = compute_factor_a(*layers_[l]);
      a_comp_seconds_[l] = seconds_since(t0);
      const auto t1 = std::chrono::steady_clock::now();
      fresh_g_[l] = compute_factor_g(*layers_[l]);
      g_comp_seconds_[l] = seconds_since(t1);
    }
  }

  std::size_t total = 0;
  for (std::size_t l = 0; l < L; ++l) {
    total += tensor::packed_size(fresh_a_[l].rows()) +
             tensor::packed_size(fresh_g_[l].rows());
  }
  std::vector<double> buffer(total);
  std::size_t offset = 0;
  for (std::size_t l = 0; l < L; ++l) {
    const std::size_t na = tensor::packed_size(fresh_a_[l].rows());
    tensor::pack_upper(fresh_a_[l],
                       std::span<double>(buffer).subspan(offset, na));
    offset += na;
    const std::size_t ng = tensor::packed_size(fresh_g_[l].rows());
    tensor::pack_upper(fresh_g_[l],
                       std::span<double>(buffer).subspan(offset, ng));
    offset += ng;
  }

  engine_
      .all_reduce_async(buffer, comm::ReduceOp::kAverage, "factors-bulk",
                        collective_algo(buffer.size()))
      .wait();

  offset = 0;
  for (std::size_t l = 0; l < L; ++l) {
    const std::size_t na = tensor::packed_size(fresh_a_[l].rows());
    tensor::unpack_upper(std::span<const double>(buffer).subspan(offset, na),
                         fresh_a_[l]);
    offset += na;
    const std::size_t ng = tensor::packed_size(fresh_g_[l].rows());
    tensor::unpack_upper(std::span<const double>(buffer).subspan(offset, ng),
                         fresh_g_[l]);
    offset += ng;
  }

  a_groups_.assign(1, FusionGroup{0, L - 1, 0, 0, 0, 0});
  g_groups_.assign(1, FusionGroup{0, L - 1, 0, 0, 0, 0});
}

void DistKfacOptimizer::aggregate_factors_pipelined() {
  const std::size_t L = layers_.size();
  plan_factor_groups();
  hooked_a_.reset(a_groups_.size());
  hooked_g_.reset(g_groups_.size());

  // A pass: compute the factor, pack it into the group buffer, and fire the
  // group's async all-reduce as soon as its last member is packed; the
  // engine overlaps it with the next factor computation.
  for (std::size_t l = 0; l < L; ++l) {
    const auto t0 = std::chrono::steady_clock::now();
    fresh_a_[l] = compute_factor_a(*layers_[l]);
    a_comp_seconds_[l] = seconds_since(t0);
    on_after_forward(l);  // pack + submit (hook-mode shares this path)
  }
  // G pass (reverse layer order), overlapping with the tail of the A
  // communications still in flight.
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    const auto t0 = std::chrono::steady_clock::now();
    fresh_g_[l] = compute_factor_g(*layers_[l]);
    g_comp_seconds_[l] = seconds_since(t0);
    on_after_backward(l);
  }
  finish_hooked_comm();
}

void DistKfacOptimizer::aggregate_gradients() {
  // Uses the exact WFBP grouping of the hooked path (same buffers, same
  // boundaries) so post-hoc and hooked steps are bitwise identical.
  plan_grad_groups();
  for (const auto& group : grad_group_layers_) {
    std::size_t total = 0;
    for (std::size_t l : group) total += layers_[l]->weight_grad().size();
    std::vector<double> buffer(total);
    std::size_t offset = 0;
    for (std::size_t l : group) {
      auto grad = layers_[l]->weight_grad().data();
      std::copy(grad.begin(), grad.end(), buffer.begin() + offset);
      offset += grad.size();
    }
    engine_
        .all_reduce_async(buffer, comm::ReduceOp::kAverage, "gradients",
                          collective_algo(buffer.size()))
        .wait();
    offset = 0;
    for (std::size_t l : group) {
      const Matrix& grad = layers_[l]->weight_grad();
      agg_grads_[l] = Matrix(grad.rows(), grad.cols());
      auto dst = agg_grads_[l].data();
      std::copy(buffer.begin() + offset,
                buffer.begin() + offset + dst.size(), dst.begin());
      offset += dst.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Hook mode (Fig. 6): factor/gradient communication inline with the passes
// ---------------------------------------------------------------------------

nn::PassHooks DistKfacOptimizer::pass_hooks() {
  nn::PassHooks hooks;
  hooks.after_forward = [this](std::size_t l, nn::PreconditionedLayer&) {
    if (l == 0) {
      // Step begins: plan this step's communication schedule.
      hooked_active_ = true;
      plan_grad_groups();
      grad_buffers_.assign(grad_group_layers_.size(), {});
      grad_handles_.assign(grad_group_layers_.size(), {});
      grad_group_index_ = 0;
      grad_offset_ = 0;
      if (factors_due()) {
        if (pipelined()) {
          plan_factor_groups();
        } else {
          // Bulk strategies: single conceptual group per family; factors
          // are computed here but communicated after the pass (step()).
          a_groups_.assign(1, FusionGroup{0, layers_.size() - 1, 0, 0, 0, 0});
          g_groups_.assign(1, FusionGroup{0, layers_.size() - 1, 0, 0, 0, 0});
        }
        hooked_a_.reset(pipelined() ? a_groups_.size() : 0);
        hooked_g_.reset(pipelined() ? g_groups_.size() : 0);
      }
    }
    if (factors_due()) {
      const auto t0 = std::chrono::steady_clock::now();
      fresh_a_[l] = compute_factor_a(*layers_[l]);
      a_comp_seconds_[l] = seconds_since(t0);
      if (pipelined()) on_after_forward(l);
    }
  };
  hooks.after_backward = [this](std::size_t l, nn::PreconditionedLayer&) {
    if (factors_due()) {
      const auto t0 = std::chrono::steady_clock::now();
      fresh_g_[l] = compute_factor_g(*layers_[l]);
      g_comp_seconds_[l] = seconds_since(t0);
      if (pipelined()) on_after_backward(l);
    }
    // WFBP: stage this layer's gradient; flush the group when complete.
    if (comm_.size() > 1) {
      auto& group_layers = grad_group_layers_[grad_group_index_];
      auto& buffer = grad_buffers_[grad_group_index_];
      if (buffer.empty()) {
        std::size_t total = 0;
        for (std::size_t gl : group_layers) {
          total += layers_[gl]->weight_grad().size();
        }
        buffer.resize(total);
        grad_offset_ = 0;
      }
      auto grad = layers_[l]->weight_grad().data();
      std::copy(grad.begin(), grad.end(), buffer.begin() + grad_offset_);
      grad_offset_ += grad.size();
      if (l == group_layers.back()) {
        grad_handles_[grad_group_index_] = engine_.all_reduce_async(
            buffer, comm::ReduceOp::kAverage,
            "wfbp-grad" + std::to_string(grad_group_index_),
            collective_algo(buffer.size()));
        ++grad_group_index_;
      }
    }
  };
  return hooks;
}

void DistKfacOptimizer::on_after_forward(std::size_t l) {
  if (comm_.size() == 1) return;
  // Find the group containing layer l (groups are consecutive, so this is
  // the current one).
  const FusionGroup& group = a_groups_[hooked_a_.current];
  auto& buffer = hooked_a_.buffers[hooked_a_.current];
  if (buffer.empty()) {
    buffer.resize(group.elements);
    hooked_a_.offset = 0;
  }
  const std::size_t n = a_sizes_[l];
  tensor::pack_upper(fresh_a_[l],
                     std::span<double>(buffer).subspan(hooked_a_.offset, n));
  hooked_a_.offset += n;
  if (l == group.last) {
    hooked_a_.handles[hooked_a_.current] = engine_.all_reduce_async(
        buffer, comm::ReduceOp::kAverage,
        "A-group" + std::to_string(hooked_a_.current),
        collective_algo(buffer.size()));
    ++hooked_a_.current;
  }
}

void DistKfacOptimizer::on_after_backward(std::size_t l) {
  if (comm_.size() == 1) return;
  const std::size_t i = layers_.size() - 1 - l;  // index in pass order
  const FusionGroup& group = g_groups_[hooked_g_.current];
  auto& buffer = hooked_g_.buffers[hooked_g_.current];
  if (buffer.empty()) {
    buffer.resize(group.elements);
    hooked_g_.offset = 0;
  }
  const std::size_t n = g_sizes_[i];
  tensor::pack_upper(fresh_g_[l],
                     std::span<double>(buffer).subspan(hooked_g_.offset, n));
  hooked_g_.offset += n;
  if (i == group.last) {
    hooked_g_.handles[hooked_g_.current] = engine_.all_reduce_async(
        buffer, comm::ReduceOp::kAverage,
        "G-group" + std::to_string(hooked_g_.current),
        collective_algo(buffer.size()));
    ++hooked_g_.current;
  }
}

void DistKfacOptimizer::finish_hooked_comm() {
  if (comm_.size() == 1) return;
  const std::size_t L = layers_.size();
  for (std::size_t gi = 0; gi < a_groups_.size(); ++gi) {
    hooked_a_.handles[gi].wait();
    std::size_t offset = 0;
    for (std::size_t l = a_groups_[gi].first; l <= a_groups_[gi].last; ++l) {
      const std::size_t n = a_sizes_[l];
      tensor::unpack_upper(
          std::span<const double>(hooked_a_.buffers[gi]).subspan(offset, n),
          fresh_a_[l]);
      offset += n;
    }
  }
  for (std::size_t gi = 0; gi < g_groups_.size(); ++gi) {
    hooked_g_.handles[gi].wait();
    std::size_t offset = 0;
    for (std::size_t i = g_groups_[gi].first; i <= g_groups_[gi].last; ++i) {
      const std::size_t l = L - 1 - i;
      const std::size_t n = g_sizes_[i];
      tensor::unpack_upper(
          std::span<const double>(hooked_g_.buffers[gi]).subspan(offset, n),
          fresh_g_[l]);
      offset += n;
    }
  }
}

// ---------------------------------------------------------------------------
// Inverses and updates
// ---------------------------------------------------------------------------

void DistKfacOptimizer::compute_inverses() {
  const std::size_t L = layers_.size();
  // Tensor order T_{2l} = A_l, T_{2l+1} = G_l, matching the paper.
  std::vector<std::size_t> dims(2 * L);
  for (std::size_t l = 0; l < L; ++l) {
    dims[2 * l] = layers_[l]->dim_a();
    dims[2 * l + 1] = layers_[l]->dim_g();
  }
  if (!placement_ready_) {
    switch (options_.strategy) {
      case DistStrategy::kDKfac:
        placement_ = nondist_place(dims, comm_.size());
        break;
      case DistStrategy::kMpdKfac:
        placement_ = seq_place(dims, comm_.size());
        break;
      case DistStrategy::kSpdKfac:
        placement_ = lbp_place(dims, comm_.size(), options_.inverse_model,
                               options_.broadcast_model, options_.balance);
        break;
    }
    placement_ready_ = true;
  }

  auto factor_of = [&](std::size_t t) -> const Matrix& {
    return t % 2 == 0 ? state_[t / 2].a : state_[t / 2].g;
  };
  auto inverse_slot = [&](std::size_t t) -> Matrix& {
    return t % 2 == 0 ? state_[t / 2].a_inv : state_[t / 2].g_inv;
  };

  // Per-tensor damping (identical on every rank: derived from the
  // aggregated factors).
  std::vector<double> gamma(dims.size(), options_.damping);
  if (options_.pi_damping) {
    for (std::size_t l = 0; l < L; ++l) {
      const auto [ga, gg] =
          factored_damping(state_[l].a, state_[l].g, options_.damping);
      gamma[2 * l] = ga;
      gamma[2 * l + 1] = gg;
    }
  }

  // CT tensors: the owner inverts and broadcasts the packed result; every
  // rank submits the broadcasts in the same deterministic order.  For LBP
  // that order is descending dimension (the order Algorithm 1 assigned);
  // Seq-Dist uses tensor index order.
  std::vector<std::size_t> ct_order;
  for (std::size_t t = 0; t < dims.size(); ++t) {
    if (!placement_.assignments[t].nct) ct_order.push_back(t);
  }
  if (options_.strategy == DistStrategy::kSpdKfac) {
    std::stable_sort(ct_order.begin(), ct_order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return dims[x] > dims[y];
                     });
  }

  std::vector<std::vector<double>> bcast_buffers(dims.size());
  std::vector<comm::CommHandle> handles(dims.size());
  for (std::size_t t : ct_order) {
    const int owner = placement_.assignments[t].owner;
    bcast_buffers[t].resize(tensor::packed_size(dims[t]));
    if (owner == comm_.rank()) {
      Matrix inv =
          damped_inverse_by(factor_of(t), gamma[t], options_.inverse_method);
      tensor::pack_upper(inv, bcast_buffers[t]);
    }
    handles[t] = engine_.broadcast_async(bcast_buffers[t], owner,
                                         "inv-T" + std::to_string(t));
  }

  // NCT tensors: every rank inverts locally while the broadcasts drain on
  // the background engine (real compute/communication overlap).
  for (std::size_t t = 0; t < dims.size(); ++t) {
    if (placement_.assignments[t].nct) {
      inverse_slot(t) =
          damped_inverse_by(factor_of(t), gamma[t], options_.inverse_method);
    }
  }

  for (std::size_t t : ct_order) {
    handles[t].wait();
    Matrix inv(dims[t], dims[t]);
    tensor::unpack_upper(bcast_buffers[t], inv);
    inverse_slot(t) = std::move(inv);
  }
}

void DistKfacOptimizer::apply_updates() {
  std::vector<Matrix> deltas(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = state_[l];
    deltas[l] =
        tensor::matmul(st.g_inv, tensor::matmul(agg_grads_[l], st.a_inv));
  }
  const double nu =
      kl_clip_factor(deltas, agg_grads_, options_.lr, options_.kl_clip);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->apply_update(deltas[l], options_.lr * nu);
  }
}

void DistKfacOptimizer::step() {
  const bool update_factors = factors_due();
  const bool update_inverses =
      step_count_ % options_.inverse_update_freq == 0;

  if (hooked_active_) {
    // Hooked step: local factors were computed (and, under SPD-KFAC,
    // submitted) during the passes; drain the in-flight communication.
    if (comm_.size() > 1 &&
        grad_group_index_ != grad_group_layers_.size()) {
      throw std::logic_error(
          "DistKfacOptimizer: hooked step incomplete — pass_hooks() must be "
          "given to both forward() and backward() of the same step");
    }
    if (update_factors) {
      if (pipelined()) {
        finish_hooked_comm();
      } else {
        aggregate_factors_bulk(/*compute_factors=*/false);
      }
    }
    if (comm_.size() > 1) {
      const std::size_t L = layers_.size();
      std::size_t group = 0, offset = 0;
      for (std::size_t i = 0; i < L; ++i) {
        const std::size_t l = L - 1 - i;
        if (offset == 0) grad_handles_[group].wait();
        const Matrix& grad = layers_[l]->weight_grad();
        agg_grads_[l] = Matrix(grad.rows(), grad.cols());
        auto dst = agg_grads_[l].data();
        std::copy(grad_buffers_[group].begin() + offset,
                  grad_buffers_[group].begin() + offset + dst.size(),
                  dst.begin());
        offset += dst.size();
        if (l == grad_group_layers_[group].back()) {
          ++group;
          offset = 0;
        }
      }
    } else {
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        agg_grads_[l] = layers_[l]->weight_grad();
      }
    }
    hooked_active_ = false;
  } else {
    if (update_factors) {
      if (pipelined()) {
        aggregate_factors_pipelined();
      } else {
        aggregate_factors_bulk(/*compute_factors=*/true);
      }
    }
    aggregate_gradients();
  }

  if (update_factors) {
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      update_running_average(state_[l].a, fresh_a_[l], options_.stat_decay);
      update_running_average(state_[l].g, fresh_g_[l], options_.stat_decay);
    }
  }

  if (update_inverses) {
    compute_inverses();
  }

  apply_updates();
  ++step_count_;
}

}  // namespace spdkfac::core
