#include "core/dist_kfac.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/kernels/kernels.hpp"
#include "tensor/symmetric.hpp"

namespace spdkfac::core {

using tensor::Matrix;

const char* to_string(DistStrategy strategy) noexcept {
  switch (strategy) {
    case DistStrategy::kDKfac:
      return "D-KFAC";
    case DistStrategy::kMpdKfac:
      return "MPD-KFAC";
    case DistStrategy::kSpdKfac:
      return "SPD-KFAC";
  }
  return "?";
}

void DistKfacOptions::validate() const {
  if (factor_update_freq == 0) {
    throw std::invalid_argument(
        "DistKfacOptions: factor_update_freq must be >= 1");
  }
  if (inverse_update_freq == 0) {
    throw std::invalid_argument(
        "DistKfacOptions: inverse_update_freq must be >= 1");
  }
  if (!(lr > 0.0)) {
    throw std::invalid_argument("DistKfacOptions: lr must be positive");
  }
  if (!(damping > 0.0)) {
    throw std::invalid_argument("DistKfacOptions: damping must be positive");
  }
  if (!(stat_decay >= 0.0) || !(stat_decay < 1.0)) {
    throw std::invalid_argument(
        "DistKfacOptions: stat_decay must be in [0, 1)");
  }
  if (!(kl_clip >= 0.0) || !std::isfinite(kl_clip)) {
    throw std::invalid_argument(
        "DistKfacOptions: kl_clip must be finite and >= 0");
  }
  // size_t fields cannot be negative, but a negative literal wraps silently
  // to a huge value — for the threshold that would fuse every gradient into
  // one giant group, for the pool it would try to spawn ~2^64 threads.
  if (grad_fusion_threshold > std::numeric_limits<std::size_t>::max() / 2) {
    throw std::invalid_argument(
        "DistKfacOptions: grad_fusion_threshold is a negative value cast to "
        "unsigned");
  }
  if (pool_size > 4096) {
    throw std::invalid_argument(
        "DistKfacOptions: pool_size is absurdly large (negative value cast "
        "to unsigned?)");
  }
  if (replan_interval == 0) {
    throw std::invalid_argument(
        "DistKfacOptions: replan_interval must be >= 1");
  }
  if (replan_interval > std::numeric_limits<std::size_t>::max() / 2) {
    throw std::invalid_argument(
        "DistKfacOptions: replan_interval is a negative value cast to "
        "unsigned");
  }
  if (plan_cache_capacity > std::numeric_limits<std::size_t>::max() / 2) {
    throw std::invalid_argument(
        "DistKfacOptions: plan_cache_capacity is a negative value cast to "
        "unsigned");
  }
  if (!(profile_ema > 0.0) || !(profile_ema <= 1.0) ||
      !std::isfinite(profile_ema)) {
    throw std::invalid_argument(
        "DistKfacOptions: profile_ema must be in (0, 1]");
  }
  if (comm_timeout_s < 0.0 || !std::isfinite(comm_timeout_s)) {
    throw std::invalid_argument(
        "DistKfacOptions: comm_timeout_s must be finite and >= 0");
  }
  const auto check_pass_timing = [](const sched::PassTiming& timing,
                                    const char* what) {
    const auto check_timing = [what](const std::vector<double>& v,
                                     const char* name) {
      for (double t : v) {
        if (!(t >= 0.0) || !std::isfinite(t)) {
          throw std::invalid_argument(std::string("DistKfacOptions: ") +
                                      what + "." + name +
                                      " entries must be finite and "
                                      "non-negative");
        }
      }
    };
    check_timing(timing.a_ready, "a_ready");
    check_timing(timing.g_ready, "g_ready");
    check_timing(timing.grad_ready, "grad_ready");
    if (!(timing.backward_end >= 0.0) ||
        !std::isfinite(timing.backward_end)) {
      throw std::invalid_argument(std::string("DistKfacOptions: ") + what +
                                  ".backward_end must be finite and "
                                  "non-negative");
    }
  };
  check_pass_timing(profile, "profile");
  for (const sched::PassTiming& timing : profile_trajectory) {
    check_pass_timing(timing, "profile_trajectory");
  }
  if (!profile.empty() && !profile_trajectory.empty()) {
    throw std::invalid_argument(
        "DistKfacOptions: profile and profile_trajectory are mutually "
        "exclusive");
  }
  if (shm_ring_bytes < 1024 ||
      (shm_ring_bytes & (shm_ring_bytes - 1)) != 0 ||
      shm_ring_bytes > (std::size_t{1} << 31)) {
    throw std::invalid_argument(
        "DistKfacOptions: shm_ring_bytes must be a power of two in "
        "[1024, 2^31]");
  }
  if (factor_codec == comm::Codec::kTopK) {
    throw std::invalid_argument(
        "DistKfacOptions: factor_codec cannot be topk (factors are dense; "
        "sparsifying them breaks the Kronecker approximation)");
  }
  if (!(topk_ratio > 0.0) || !(topk_ratio <= 1.0) ||
      !std::isfinite(topk_ratio)) {
    throw std::invalid_argument(
        "DistKfacOptions: topk_ratio must be in (0, 1]");
  }
}

DistKfacOptions with_tunable(const DistKfacOptions& options,
                             const std::string& name, double value) {
  DistKfacOptions next = options;
  // The frequency/interval tunables arrive as doubles off the ctl wire;
  // insist on an exact positive integer so "set replan_interval=2.5"
  // fails loudly instead of truncating.
  const auto as_count = [&](const char* what) {
    if (!std::isfinite(value) || value < 1.0 ||
        value != std::floor(value)) {
      throw std::invalid_argument(std::string("DistKfacOptions: ") + what +
                                  " must be a positive integer");
    }
    return static_cast<std::size_t>(value);
  };
  if (name == "lr") {
    next.lr = value;
  } else if (name == "damping") {
    next.damping = value;
  } else if (name == "stat_decay") {
    next.stat_decay = value;
  } else if (name == "kl_clip") {
    next.kl_clip = value;
  } else if (name == "factor_update_freq") {
    next.factor_update_freq = as_count("factor_update_freq");
  } else if (name == "inverse_update_freq") {
    next.inverse_update_freq = as_count("inverse_update_freq");
  } else if (name == "replan_interval") {
    next.replan_interval = as_count("replan_interval");
  } else {
    throw std::invalid_argument(
        "DistKfacOptions: unknown tunable '" + name +
        "' (expected lr, damping, stat_decay, kl_clip, factor_update_freq, "
        "inverse_update_freq or replan_interval)");
  }
  next.validate();
  return next;
}

namespace {

/// Validates before the constructor spawns any pool thread.
DistKfacOptions validated(DistKfacOptions options) {
  options.validate();
  return options;
}

void add_dep(std::vector<int>& deps, int id) {
  if (std::find(deps.begin(), deps.end(), id) == deps.end()) {
    deps.push_back(id);
  }
}

}  // namespace

DistKfacOptimizer::DistKfacOptimizer(
    std::vector<nn::PreconditionedLayer*> layers, comm::Communicator& comm,
    DistKfacOptions options)
    : layers_(std::move(layers)),
      comm_(comm),
      options_(validated(std::move(options))),
      selector_(comm.topology()),
      costs_{options_.allreduce_model, options_.broadcast_model,
             options_.inverse_model, selector_},
      profiler_(std::max<std::size_t>(layers_.size(), 1),
                options_.profile_ema),
      plan_cache_(options_.plan_cache_capacity),
      pool_(options_.pool_size > 0
                ? std::make_unique<exec::ThreadPool>(options_.pool_size)
                : nullptr),
      engine_(comm, pool_.get()) {
  if (layers_.empty()) {
    throw std::invalid_argument("DistKfacOptimizer: no preconditioned layers");
  }
  if (options_.comm_timeout_s > 0.0) {
    // Arm the transport's failure detection; 0 leaves whatever the
    // launcher configured (possibly already armed) untouched.
    comm_.transport().set_timeout(options_.comm_timeout_s);
  }
  if (!options_.profile.empty()) {
    // Static planning profile: the timing never changes, so install it once
    // (re-plan points become no-ops and the cache holds one entry per step
    // kind).
    current_timing_ = options_.profile;
    profiled_timing_ = true;
  }
  const std::size_t L = layers_.size();
  state_.resize(L);
  fresh_a_.resize(L);
  fresh_g_.resize(L);
  agg_grads_.resize(L);
  a_sizes_.resize(L);
  g_sizes_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    a_sizes_[l] = tensor::packed_size(layers_[l]->dim_a());
    // G pass runs deepest layer first; g_sizes_ is indexed in pass order.
    g_sizes_[l] = tensor::packed_size(layers_[L - 1 - l]->dim_g());
  }

  // Execution-layer profiling tap: every compute node reports its measured
  // duration; factor builds and inverses land in the profiler's per-layer /
  // per-tensor EMA slots (disjoint per task, so no locking — see
  // OnlineProfiler's thread-safety contract).
  executor_.set_observer([this](int id, double seconds) {
    const sched::Task& task = plan_->task(id);
    if (task_listener_) {
      // Reported on the engine clock so the control plane can stitch these
      // compute intervals with the OpRecord comm intervals into one trace.
      const double end_s = engine_.now_s();
      task_listener_(task, end_s - seconds, end_s);
    }
    switch (task.kind) {
      case sched::TaskKind::kFactorCompute:
        if (task.family == sched::Family::kA) {
          profiler_.record_factor_a(task.layer, seconds);
        } else {
          profiler_.record_factor_g(task.layer, seconds);
        }
        break;
      case sched::TaskKind::kInverse:
        profiler_.record_inverse(task.tensor, seconds);
        break;
      default:
        break;  // the update task is not a profiled quantity
    }
  });

  // Collective completions flow back into the dataflow: unpack/average on
  // the pool, then retire the plan node so successors (inverses, the
  // update) release.  The execution record also feeds the profiler's
  // per-op collective aggregates.  Out-of-plan traffic (profile sync) is
  // waited inline by its submitter and carries no node.
  engine_.set_completion_listener([this](const comm::OpRecord& rec) {
    if (rec.plan_task < 0) return;
    if (rec.failed) {
      // A dead peer broke this collective (or poisoned the engine before
      // it ran).  Poison the dataflow so step()'s wait() unblocks and
      // rethrows instead of waiting for successors that can never fire.
      executor_.abort(engine_.error());
      return;
    }
    profiler_.record_collective(rec.elements, rec.duration_s());
    const int id = rec.plan_task;
    if (pool_ != nullptr) {
      pool_->submit([this, id] {
        postprocess_collective(id);
        executor_.complete(id);
      });
    } else {
      postprocess_collective(id);
      executor_.complete(id);
    }
  });
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

void DistKfacOptimizer::sync_profile() {
  if (comm_.size() == 1) return;
  std::vector<double> buffer = profiler_.packed();
  engine_
      .all_reduce_async(buffer, comm::ReduceOp::kAverage, "profile-sync",
                        collective_algo(buffer.size()))
      .wait();
  profiler_.load_packed(buffer);
}

void DistKfacOptimizer::refresh_planning_profile(bool measured_fusion) {
  ++replan_count_;
  if (!options_.profile.empty()) return;  // static: installed at construction
  if (!options_.profile_trajectory.empty()) {
    const auto& traj = options_.profile_trajectory;
    current_timing_ = traj[std::min(replan_epoch_, traj.size() - 1)];
    ++replan_epoch_;
    profiled_timing_ = true;
    return;
  }
  // Live mode: rank-average the profile when it steers fusion decisions (a
  // rank-divergent fusion plan would make the collectives mismatch; plans
  // whose structure ignores the timing magnitudes — bulk/naive factor comm
  // — stay rank-identical from local values, because the pass walk's event
  // *order* is shape-determined).
  if (measured_fusion) sync_profile();
  current_timing_ = sched::timing_from_profile(profiler_.snapshot());
  ++replan_epoch_;
  if (profiler_.has_factor_samples()) profiled_timing_ = true;
}

void DistKfacOptimizer::begin_step() {
  if (failed_) {
    throw std::logic_error(
        "DistKfacOptimizer: a prior step observed a rank failure; restore "
        "a checkpoint into a freshly launched cluster to continue");
  }
  if (!executor_.idle()) {
    // A previous step was abandoned mid-flight — e.g. a hooked step whose
    // backward hooks never ran threw from step().  Gated nodes of that
    // graph can never retire (the pass events are gone), and peers may
    // hold mismatched collective state; the optimizer cannot be reused.
    throw std::logic_error(
        "DistKfacOptimizer: a previous step was abandoned mid-flight "
        "(incomplete hooked step?); construct a fresh optimizer");
  }
  sched::ScheduleOptions opt;
  opt.second_order = true;
  opt.factor_update = factors_due();
  opt.inverse_update = step_count_ % options_.inverse_update_freq == 0;
  opt.balance = options_.balance;
  opt.grad_fusion_threshold = options_.grad_fusion_threshold;
  opt.collective_algo = options_.collective_algo;
  opt.factor_codec = options_.factor_codec;
  opt.grad_codec = options_.grad_codec;
  opt.topk_ratio = options_.topk_ratio;
  switch (options_.strategy) {
    case DistStrategy::kDKfac:
      opt.factor_comm = sched::FactorCommMode::kBulk;
      opt.inverse = sched::InverseMode::kLocalAll;
      break;
    case DistStrategy::kMpdKfac:
      opt.factor_comm = sched::FactorCommMode::kBulk;
      opt.inverse = sched::InverseMode::kSeqDist;
      break;
    case DistStrategy::kSpdKfac:
      opt.factor_comm = options_.factor_comm;
      opt.inverse = sched::InverseMode::kLBP;
      break;
  }

  const bool live = options_.profile.empty() &&
                    options_.profile_trajectory.empty();
  const bool measured_fusion =
      live && opt.factor_comm != sched::FactorCommMode::kBulk &&
      opt.factor_comm != sched::FactorCommMode::kNaive;

  // Re-plan point: the first factor step on or after the armed boundary
  // refreshes the planning profile (sync + EMA snapshot in live mode, the
  // next trajectory entry otherwise).  step_count_ advances in lockstep on
  // every rank, so all ranks re-plan at the same steps.
  if (opt.factor_update && step_count_ >= next_replan_step_) {
    refresh_planning_profile(measured_fusion);
    next_replan_step_ = step_count_ + options_.replan_interval;
  }

  // The Eq. (15) objective needs layer timing; until a re-plan installed a
  // real profile (first factor step in live mode) fall back to layer-wise
  // communication, exactly like the paper's warm-up profiling iterations.
  if (opt.factor_update && measured_fusion && !profiled_timing_ &&
      opt.factor_comm == sched::FactorCommMode::kOptimalFuse) {
    opt.factor_comm = sched::FactorCommMode::kLayerWise;
  }

  sched::ScheduleInputs inputs;
  inputs.world_size = comm_.size();
  inputs.layers.reserve(layers_.size());
  for (const nn::PreconditionedLayer* layer : layers_) {
    sched::LayerShape shape;
    shape.dim_a = layer->dim_a();
    shape.dim_g = layer->dim_g();
    shape.a_elements = tensor::packed_size(layer->dim_a());
    shape.g_elements = tensor::packed_size(layer->dim_g());
    shape.grad_elements = layer->weight_grad().size();
    inputs.layers.push_back(shape);
  }
  inputs.timing = current_timing_;

  // Plan through the cache: the quantized signature of the profile in
  // effect (plus the step kind) keys the schedule, so steady-state steps
  // reuse the stored plan — a pointer install, not a planner run — byte
  // for byte.
  if (options_.plan_cache_capacity > 0) {
    sched::PlanCache::Key key{opt.factor_update, opt.inverse_update,
                              opt.factor_comm,
                              sched::ProfileSignature::of(current_timing_,
                                                          comm_.size())};
    if (auto hit = plan_cache_.find(key)) {
      plan_ = std::move(hit);
    } else {
      plan_ = plan_cache_.insert(key,
                                 sched::plan_iteration(inputs, opt, costs_));
    }
  } else {
    plan_ = std::make_shared<const sched::IterationPlan>(
        sched::plan_iteration(inputs, opt, costs_));
  }
  if (!plan_->placement.assignments.empty()) placement_ = plan_->placement;

  // -------------------------------------------------------------------
  // Packing layout: carve every fused/gradient/broadcast buffer from the
  // rank's arena slab (deterministic plan order, 64-byte aligned spans, no
  // per-step allocation or zeroing — each span is fully written before it
  // is read: fused members by their packs, gradient groups by the staged
  // grads, broadcasts by the root's pack or the transport's receive) and
  // record each producer's (group, offset) slot, so concurrent compute
  // tasks write disjoint ranges with no coordination.
  // -------------------------------------------------------------------
  const std::size_t L = layers_.size();
  a_buffers_.assign(plan_->a_comm.size(), {});
  g_buffers_.assign(plan_->g_comm.size(), {});
  a_slots_.assign(L, {});
  g_slots_.assign(L, {});
  grad_buffers_.assign(plan_->grad_comm.size(), {});
  grad_slots_.assign(L, {});
  bcast_buffers_.assign(2 * L, {});
  task_buffer_.assign(plan_->tasks.size(), std::span<double>{});
  task_group_.assign(plan_->tasks.size(), -1);

  std::size_t total = 0;        // slab doubles, aligned per span
  std::size_t comm_bytes = 0;   // payload bytes (the seed's zero-fill)
  std::size_t codec_scratch = 0;  // largest codec gather/decode need
  const auto count_tasks = [&](const std::vector<int>& ids) {
    for (int id : ids) {
      const sched::Task& task = plan_->task(id);
      const std::size_t n = task.elements;
      total += BufferArena::aligned(n);
      comm_bytes += n * sizeof(double);
      if (task.codec != comm::Codec::kNone) {
        const std::size_t need =
            task.kind == sched::TaskKind::kBroadcast
                ? comm::broadcast_scratch_elements(task.codec, n)
                : comm::all_reduce_scratch_elements(
                      task.codec, n, comm_.size(), options_.topk_ratio);
        codec_scratch = std::max(codec_scratch, need);
      }
    }
  };
  count_tasks(plan_->a_comm);
  count_tasks(plan_->g_comm);
  count_tasks(plan_->grad_comm);
  count_tasks(plan_->broadcast_tasks);
  total += BufferArena::aligned(codec_scratch);
  arena_.reset(total);

  // Copies-eliminated accounting vs the seed layout: the per-step
  // zero-fill of every comm buffer, the fused path's dense unpack
  // intermediates (one d x d matrix per fused factor, now folded straight
  // from the packed payload), and the per-step reallocation of aggregated
  // gradients / broadcast inverse matrices.
  arena_saved_bytes_ = comm_bytes;

  const auto layout_family = [this](const std::vector<int>& comm_tasks,
                                    std::vector<std::span<double>>& buffers,
                                    std::vector<PackSlot>& slots,
                                    const std::vector<std::size_t>& sizes) {
    for (std::size_t gi = 0; gi < comm_tasks.size(); ++gi) {
      const sched::Task& task = plan_->task(comm_tasks[gi]);
      buffers[gi] = arena_.carve(task.elements);
      task_buffer_[static_cast<std::size_t>(task.id)] = buffers[gi];
      task_group_[static_cast<std::size_t>(task.id)] = static_cast<int>(gi);
      std::size_t offset = 0;
      for (std::size_t p = task.first; p <= task.last; ++p) {
        slots[p] = {static_cast<int>(gi), offset};
        offset += sizes[p];
        const std::size_t d =
            task.family == sched::Family::kA
                ? layers_[p]->dim_a()
                : layers_[layers_.size() - 1 - p]->dim_g();
        arena_saved_bytes_ += d * d * sizeof(double);  // dense intermediate
      }
    }
  };
  layout_family(plan_->a_comm, a_buffers_, a_slots_, a_sizes_);
  layout_family(plan_->g_comm, g_buffers_, g_slots_, g_sizes_);

  for (std::size_t gi = 0; gi < plan_->grad_comm.size(); ++gi) {
    const sched::Task& task = plan_->task(plan_->grad_comm[gi]);
    grad_buffers_[gi] = arena_.carve(task.elements);
    task_buffer_[static_cast<std::size_t>(task.id)] = grad_buffers_[gi];
    task_group_[static_cast<std::size_t>(task.id)] = static_cast<int>(gi);
    std::size_t offset = 0;
    for (std::size_t l : plan_->grad_groups[gi]) {
      grad_slots_[l] = {static_cast<int>(gi), offset};
      const std::size_t n = layers_[l]->weight_grad().size();
      offset += n;
      arena_saved_bytes_ += n * sizeof(double);  // agg matrix realloc
    }
  }
  for (int id : plan_->broadcast_tasks) {
    const sched::Task& task = plan_->task(id);
    bcast_buffers_[task.tensor] = arena_.carve(task.elements);
    task_buffer_[static_cast<std::size_t>(id)] = bcast_buffers_[task.tensor];
    arena_saved_bytes_ +=
        task.dim * task.dim * sizeof(double);  // inverse matrix realloc
  }
  codec_scratch_ =
      codec_scratch > 0 ? arena_.carve(codec_scratch) : std::span<double>{};
  if (options_.grad_codec == comm::Codec::kTopK) ensure_grad_residuals();

  backward_events_ = 0;
  executor_.begin(build_nodes(), plan_->collective_order(), pool_.get());
}

// ---------------------------------------------------------------------------
// Plan -> dataflow translation (node id == plan task id)
// ---------------------------------------------------------------------------

std::vector<exec::DataflowExecutor::Node> DistKfacOptimizer::build_nodes() {
  using Node = exec::DataflowExecutor::Node;
  using NodeKind = exec::DataflowExecutor::NodeKind;
  // Single-worker factor steps have no collectives; the plan's inverse
  // barrier is then just the last G compute (sufficient sequentially), but
  // concurrent inverses must wait for *every* compute's running-average
  // fold.
  const bool local_factors =
      plan_->factor_update && plan_->a_comm.empty() && plan_->g_comm.empty();

  std::vector<Node> nodes(plan_->tasks.size());
  for (std::size_t i = 0; i < plan_->tasks.size(); ++i) {
    const sched::Task& task = plan_->tasks[i];
    const int id = static_cast<int>(i);
    Node& node = nodes[i];
    node.deps = task.deps;
    switch (task.kind) {
      case sched::TaskKind::kFactorCompute:
        node.kind = NodeKind::kCompute;
        node.external_deps = 1;  // released by the layer's pass event
        node.work = [this, id] { run_factor_compute(id); };
        break;
      case sched::TaskKind::kFusedAllReduce: {
        node.kind = NodeKind::kSubmission;
        // The plan records only the last member (enough in pass order);
        // under concurrency every member must have packed before submit.
        const std::vector<int>& computes =
            task.family == sched::Family::kA ? plan_->a_compute
                                             : plan_->g_compute;
        for (std::size_t p = task.first; p <= task.last; ++p) {
          add_dep(node.deps, computes[p]);
        }
        node.work = [this, id] { submit_collective(id); };
        break;
      }
      case sched::TaskKind::kGradAllReduce:
        node.kind = NodeKind::kSubmission;
        // Released at the flush layer's backward event, by which point
        // every member gradient is packed (backward runs deep to shallow).
        node.external_deps = 1;
        node.work = [this, id] { submit_collective(id); };
        break;
      case sched::TaskKind::kInverse: {
        const bool mine = task.rank < 0 || task.rank == comm_.rank();
        node.kind = mine ? NodeKind::kCompute : NodeKind::kNoop;
        if (mine) node.work = [this, id] { run_inverse(id); };
        if (local_factors) {
          for (int c : plan_->a_compute) add_dep(node.deps, c);
          for (int c : plan_->g_compute) add_dep(node.deps, c);
        }
        break;
      }
      case sched::TaskKind::kBroadcast:
        node.kind = NodeKind::kSubmission;
        node.work = [this, id] { submit_collective(id); };
        break;
      case sched::TaskKind::kUpdate:
        node.kind = NodeKind::kCompute;
        node.external_deps = 1;  // released by step(): passes done, grads staged
        node.work = [this] { run_update(); };
        break;
    }
  }
  return nodes;
}

// ---------------------------------------------------------------------------
// Pass events (hooked and post-hoc paths share these, so both release the
// same gates in the same per-layer order)
// ---------------------------------------------------------------------------

void DistKfacOptimizer::handle_forward(std::size_t layer) {
  if (!plan_->factor_update) return;
  executor_.satisfy(plan_->a_compute[layer]);
}

void DistKfacOptimizer::handle_backward_grad(std::size_t layer) {
  const PackSlot& slot = grad_slots_[layer];
  if (slot.group < 0) return;  // nothing communicated (P == 1)
  const auto grad = layers_[layer]->weight_grad().data();
  const std::span<double> buffer =
      grad_buffers_[static_cast<std::size_t>(slot.group)];
  std::copy(grad.begin(), grad.end(),
            buffer.begin() + static_cast<std::ptrdiff_t>(slot.offset));
  const int task_id = plan_->grad_comm[static_cast<std::size_t>(slot.group)];
  if (layer == plan_->task(task_id).first) {  // the group's flush layer
    executor_.satisfy(task_id);
  }
}

void DistKfacOptimizer::handle_backward_factor(std::size_t layer) {
  if (!plan_->factor_update) return;
  executor_.satisfy(plan_->g_compute[layers_.size() - 1 - layer]);
}

// ---------------------------------------------------------------------------
// Dataflow node bodies
// ---------------------------------------------------------------------------

void DistKfacOptimizer::run_factor_compute(int task_id) {
  const sched::Task& task = plan_->task(task_id);
  const std::size_t l = task.layer;
  const bool is_a = task.family == sched::Family::kA;
  // Timing is the executor observer's job: it wraps this body and feeds
  // the measured duration into the profiler's per-layer EMA slot.
  Matrix& fresh = is_a ? fresh_a_[l] : fresh_g_[l];
  fresh = is_a ? compute_factor_a(*layers_[l]) : compute_factor_g(*layers_[l]);

  const PackSlot& slot = (is_a ? a_slots_ : g_slots_)[task.pass_index];
  if (slot.group >= 0) {
    const std::span<double> buffer =
        (is_a ? a_buffers_ : g_buffers_)[static_cast<std::size_t>(slot.group)];
    tensor::pack_upper(fresh, buffer.subspan(slot.offset, task.elements));
  } else {
    // Single worker: the fresh factor is already the aggregate; fold the
    // running average here so inverse tasks (which depend on every factor
    // compute) read finished state.
    LayerState& st = state_[l];
    update_running_average(is_a ? st.a : st.g, fresh, options_.stat_decay);
  }
}

void DistKfacOptimizer::run_inverse(int task_id) {
  const sched::Task& task = plan_->task(task_id);
  const std::size_t t = task.tensor;
  // Per-tensor damping (identical on every rank: derived from the
  // aggregated factors, which the factor barrier guarantees are final).
  double gamma = options_.damping;
  if (options_.pi_damping) {
    const LayerState& st = state_[t / 2];
    const auto [ga, gg] = factored_damping(st.a, st.g, options_.damping);
    gamma = t % 2 == 0 ? ga : gg;
  }
  Matrix inv = damped_inverse_by(factor_of(t), gamma, options_.inverse_method);
  if (task.rank >= 0 && comm_.size() > 1) {
    // CT: owner packs; the broadcast (dependent on this node) ships it and
    // its completion unpacks into the slot on every rank identically.
    tensor::pack_upper(inv, bcast_buffers_[t]);
  } else {
    inverse_slot(t) = std::move(inv);
  }
}

void DistKfacOptimizer::run_update() {
  std::vector<Matrix> deltas(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = state_[l];
    deltas[l] =
        tensor::matmul(st.g_inv, tensor::matmul(agg_grads_[l], st.a_inv));
  }
  const double nu =
      kl_clip_factor(deltas, agg_grads_, options_.lr, options_.kl_clip);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->apply_update(deltas[l], options_.lr * nu);
  }
}

void DistKfacOptimizer::submit_collective(int task_id) {
  const sched::Task& task = plan_->task(task_id);
  // The span is an arena slab view — the engine operates on it in place
  // (no staging copy); OpRecord::data lets tests verify exactly that.
  const std::span<double> buffer =
      task_buffer_[static_cast<std::size_t>(task_id)];
  if (task.codec != comm::Codec::kNone) {
    submit_compressed(task, buffer);
  } else if (task.kind == sched::TaskKind::kBroadcast) {
    engine_.broadcast_async(buffer, task.rank, task.label, task.id);
  } else {
    engine_.all_reduce_async(buffer, comm::ReduceOp::kAverage, task.label,
                             task.algo, task.id);
  }
}

void DistKfacOptimizer::ensure_grad_residuals() {
  if (!grad_residuals_.empty()) return;
  const std::size_t L = layers_.size();
  std::size_t total = 0;
  for (const nn::PreconditionedLayer* layer : layers_) {
    total += BufferArena::aligned(layer->weight_grad().size());
  }
  residual_arena_.reset(total);
  grad_residuals_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    grad_residuals_[l] = residual_arena_.carve(layers_[l]->weight_grad().size());
    std::fill(grad_residuals_[l].begin(), grad_residuals_[l].end(), 0.0);
  }
}

void DistKfacOptimizer::submit_compressed(const sched::Task& task,
                                          std::span<double> buffer) {
  const comm::Codec codec = task.codec;
  const double ratio = options_.topk_ratio;
  const int id = task.id;
  if (task.kind == sched::TaskKind::kBroadcast) {
    const std::span<double> scratch = codec_scratch_.subspan(
        0, comm::broadcast_scratch_elements(codec, buffer.size()));
    engine_.submit(
        [buffer, codec, root = task.rank, scratch, id](comm::Communicator& c) {
          comm::compressed_broadcast(c, buffer, codec, root, scratch, id);
        },
        task.label, task.elements, id, buffer.data());
    return;
  }
  const std::span<double> scratch = codec_scratch_.subspan(
      0, comm::all_reduce_scratch_elements(codec, buffer.size(), comm_.size(),
                                           ratio));
  if (codec != comm::Codec::kTopK) {
    engine_.submit(
        [buffer, codec, ratio, scratch, id](comm::Communicator& c) {
          comm::compressed_all_reduce(c, buffer, codec,
                                      comm::ReduceOp::kAverage, ratio, scratch,
                                      id);
        },
        task.label, task.elements, id, buffer.data());
    return;
  }
  // Top-k with error feedback, entirely inside the (serial) pump so the
  // selection and the residual update are deterministic: re-inject the
  // residuals into the group payload, encode the local wire block, bank
  // residual' = u with the shipped positions zeroed (per layer — groups
  // reshape across re-plans, layers do not), then run the encoded
  // all-reduce over the exact block just produced.
  const auto gi = static_cast<std::size_t>(task_group_[task.id]);
  engine_.submit(
      [this, buffer, ratio, scratch, gi, id](comm::Communicator& c) {
        std::size_t offset = 0;
        for (const std::size_t l : plan_->grad_groups[gi]) {
          const std::span<const double> res = grad_residuals_[l];
          double* u = buffer.data() + offset;
          for (std::size_t i = 0; i < res.size(); ++i) u[i] += res[i];
          offset += res.size();
        }
        const std::size_t w =
            comm::wire_elements(comm::Codec::kTopK, buffer.size(), ratio);
        const std::span<double> own = scratch.subspan(
            static_cast<std::size_t>(c.rank()) * w, w);
        comm::encode(comm::Codec::kTopK, buffer, own, ratio);
        comm::topk_residual(buffer, own, buffer);  // in place: buffer := r'
        offset = 0;
        for (const std::size_t l : plan_->grad_groups[gi]) {
          const std::span<double> res = grad_residuals_[l];
          std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(offset + res.size()),
                    res.begin());
          offset += res.size();
        }
        comm::all_reduce_encoded(c, buffer, comm::Codec::kTopK,
                                 comm::ReduceOp::kAverage, ratio, scratch, id);
      },
      task.label, task.elements, id, buffer.data());
}

void DistKfacOptimizer::postprocess_collective(int task_id) {
  const sched::Task& task = plan_->task(task_id);
  const std::size_t L = layers_.size();
  switch (task.kind) {
    case sched::TaskKind::kFusedAllReduce: {
      const bool is_a = task.family == sched::Family::kA;
      const std::span<const double> buffer =
          (is_a ? a_buffers_
                : g_buffers_)[static_cast<std::size_t>(task_group_[task_id])];
      // Fold each packed member straight from the slab into the dense EMA
      // state — no dense unpack intermediate.  Bitwise identical to
      // unpack + update_running_average: the pre-fold state is exactly
      // symmetric (constructed by unpack, preserved by the elementwise
      // EMA), so mirroring the lower triangle from the freshly folded
      // upper one reproduces the direct per-element fold.
      const auto& kt = tensor::kernels::active_table();
      std::size_t offset = 0;
      for (std::size_t p = task.first; p <= task.last; ++p) {
        const std::size_t l = is_a ? p : L - 1 - p;
        const std::size_t n = (is_a ? a_sizes_ : g_sizes_)[p];
        const std::size_t d =
            is_a ? layers_[l]->dim_a() : layers_[l]->dim_g();
        LayerState& st = state_[l];
        Matrix& state = is_a ? st.a : st.g;
        const bool init = state.empty();
        if (init) state = Matrix(d, d);
        kt.ema_unpack(buffer.data() + offset, d, state.data().data(), d,
                      options_.stat_decay, init);
        offset += n;
      }
      break;
    }
    case sched::TaskKind::kGradAllReduce: {
      const std::size_t gi =
          static_cast<std::size_t>(task_group_[task_id]);
      const std::span<const double> buffer = grad_buffers_[gi];
      std::size_t offset = 0;
      for (std::size_t l : plan_->grad_groups[gi]) {
        const Matrix& grad = layers_[l]->weight_grad();
        Matrix& agg = agg_grads_[l];
        if (agg.rows() != grad.rows() || agg.cols() != grad.cols()) {
          agg = Matrix(grad.rows(), grad.cols());  // first step / reshape
        }
        auto dst = agg.data();
        std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
                  buffer.begin() +
                      static_cast<std::ptrdiff_t>(offset + dst.size()),
                  dst.begin());
        offset += dst.size();
      }
      break;
    }
    case sched::TaskKind::kBroadcast: {
      Matrix& inv = inverse_slot(task.tensor);
      if (inv.rows() != task.dim || inv.cols() != task.dim) {
        inv = Matrix(task.dim, task.dim);  // first step / reshape
      }
      tensor::unpack_upper(bcast_buffers_[task.tensor], inv);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Hook mode (Fig. 6): the dataflow released inline with the passes
// ---------------------------------------------------------------------------

nn::PassHooks DistKfacOptimizer::pass_hooks() {
  nn::PassHooks hooks;
  hooks.after_forward = [this](std::size_t l, nn::PreconditionedLayer&) {
    // Successive hook timestamps profile the pass kernels: the gap between
    // after_forward(l-1) and after_forward(l) is layer l's forward kernel
    // (the factor builds run asynchronously on the pool, so they do not
    // sit inside the gap).  Layer 0 has no predecessor event — its slot
    // stays unsampled.
    if (l == 0) {
      hooked_active_ = true;
      begin_step();
    } else {
      profiler_.record_forward(
          l, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           last_pass_event_)
                 .count());
    }
    last_pass_event_ = std::chrono::steady_clock::now();
    handle_forward(l);
  };
  hooks.after_backward = [this](std::size_t l, nn::PreconditionedLayer&) {
    // Same gap profiling for the backward kernels; the first backward
    // event's gap spans the loss computation, so it is skipped.
    const auto now = std::chrono::steady_clock::now();
    if (backward_events_ > 0) {
      profiler_.record_backward(
          l, std::chrono::duration<double>(now - last_pass_event_).count());
    }
    last_pass_event_ = now;
    // The plan orders each layer's gradient flush before its G-factor
    // release (the gradient is ready the moment the backward kernel ends,
    // the factor only after its own computation).
    handle_backward_grad(l);
    handle_backward_factor(l);
    ++backward_events_;
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Step: release the remaining gates and drain the dataflow
// ---------------------------------------------------------------------------

void DistKfacOptimizer::step() {
  try {
    step_body();
  } catch (const comm::RankFailure&) {
    // A peer died mid-step.  Quiesce the engine (queued ops fail fast
    // against its poisoned state — never throws) so no pump work runs
    // after the caller observes the failure, then refuse further steps:
    // the surviving ranks' collective state has diverged.
    failed_ = true;
    engine_.wait_all();
    throw;
  }
}

void DistKfacOptimizer::step_body() {
  const std::size_t L = layers_.size();
  if (hooked_active_) {
    // Hooked step: the passes already released the in-pass gates; verify
    // completeness before opening the update gate.
    if (backward_events_ != L) {
      throw std::logic_error(
          "DistKfacOptimizer: hooked step incomplete — pass_hooks() must be "
          "given to both forward() and backward() of the same step");
    }
    hooked_active_ = false;
  } else {
    // Post-hoc step: replay the identical per-layer event sequence.
    begin_step();
    for (std::size_t l = 0; l < L; ++l) handle_forward(l);
    for (std::size_t i = 0; i < L; ++i) {
      const std::size_t l = L - 1 - i;
      handle_backward_grad(l);
      handle_backward_factor(l);
    }
  }

  // Single-worker steps communicate nothing: the local gradients are the
  // aggregates.  Staged before the update gate opens.
  if (plan_->grad_comm.empty()) {
    for (std::size_t l = 0; l < L; ++l) {
      agg_grads_[l] = layers_[l]->weight_grad();
    }
  }
  if (plan_->update_task >= 0) executor_.satisfy(plan_->update_task);
  executor_.wait();

  ++step_count_;
}

}  // namespace spdkfac::core
