#include "core/dist_kfac.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "tensor/symmetric.hpp"

namespace spdkfac::core {

using tensor::Matrix;

const char* to_string(DistStrategy strategy) noexcept {
  switch (strategy) {
    case DistStrategy::kDKfac:
      return "D-KFAC";
    case DistStrategy::kMpdKfac:
      return "MPD-KFAC";
    case DistStrategy::kSpdKfac:
      return "SPD-KFAC";
  }
  return "?";
}

void DistKfacOptions::validate() const {
  if (factor_update_freq == 0) {
    throw std::invalid_argument(
        "DistKfacOptions: factor_update_freq must be >= 1");
  }
  if (inverse_update_freq == 0) {
    throw std::invalid_argument(
        "DistKfacOptions: inverse_update_freq must be >= 1");
  }
  if (!(lr > 0.0)) {
    throw std::invalid_argument("DistKfacOptions: lr must be positive");
  }
  if (!(damping > 0.0)) {
    throw std::invalid_argument("DistKfacOptions: damping must be positive");
  }
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DistKfacOptimizer::DistKfacOptimizer(
    std::vector<nn::PreconditionedLayer*> layers, comm::Communicator& comm,
    DistKfacOptions options)
    : layers_(std::move(layers)),
      comm_(comm),
      engine_(comm),
      options_(std::move(options)),
      selector_(comm.topology()),
      costs_{options_.allreduce_model, options_.broadcast_model,
             options_.inverse_model, selector_} {
  if (layers_.empty()) {
    throw std::invalid_argument("DistKfacOptimizer: no preconditioned layers");
  }
  options_.validate();
  const std::size_t L = layers_.size();
  state_.resize(L);
  fresh_a_.resize(L);
  fresh_g_.resize(L);
  agg_grads_.resize(L);
  a_comp_seconds_.assign(L, 0.0);
  g_comp_seconds_.assign(L, 0.0);
  a_sizes_.resize(L);
  g_sizes_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    a_sizes_[l] = tensor::packed_size(layers_[l]->dim_a());
    // G pass runs deepest layer first; g_sizes_ is indexed in pass order.
    g_sizes_[l] = tensor::packed_size(layers_[L - 1 - l]->dim_g());
  }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

void DistKfacOptimizer::sync_measured_times() {
  if (comm_.size() == 1) return;
  const std::size_t L = layers_.size();
  std::vector<double> buffer(2 * L);
  std::copy(a_comp_seconds_.begin(), a_comp_seconds_.end(), buffer.begin());
  std::copy(g_comp_seconds_.begin(), g_comp_seconds_.end(),
            buffer.begin() + L);
  engine_
      .all_reduce_async(buffer, comm::ReduceOp::kAverage, "factor-times",
                        collective_algo(buffer.size()))
      .wait();
  std::copy(buffer.begin(), buffer.begin() + L, a_comp_seconds_.begin());
  std::copy(buffer.begin() + L, buffer.end(), g_comp_seconds_.begin());
}

sched::PassTiming DistKfacOptimizer::planning_timing() const {
  if (!options_.profile.empty()) return options_.profile;
  // Lay the measured factor times along the pass walk on one global clock.
  // The forward/backward kernels themselves are not timed; a tiny epsilon
  // stands in for each backward step so the readiness order stays strictly
  // the per-layer event order (gradient before G factor at every layer).
  constexpr double kEps = 1e-9;
  const std::size_t L = layers_.size();
  sched::PassTiming timing;
  timing.a_ready.resize(L);
  timing.g_ready.resize(L);
  timing.grad_ready.resize(L);
  double clock = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    clock += std::max(a_comp_seconds_[l], kEps);
    timing.a_ready[l] = clock;
  }
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t l = L - 1 - i;
    clock += kEps;
    timing.grad_ready[l] = clock;
    clock += std::max(g_comp_seconds_[l], kEps);
    timing.g_ready[i] = clock;
  }
  timing.backward_end = clock;
  return timing;
}

void DistKfacOptimizer::begin_step() {
  sched::ScheduleOptions opt;
  opt.second_order = true;
  opt.factor_update = factors_due();
  opt.inverse_update = step_count_ % options_.inverse_update_freq == 0;
  opt.balance = options_.balance;
  opt.grad_fusion_threshold = options_.grad_fusion_threshold;
  opt.collective_algo = options_.collective_algo;
  switch (options_.strategy) {
    case DistStrategy::kDKfac:
      opt.factor_comm = sched::FactorCommMode::kBulk;
      opt.inverse = sched::InverseMode::kLocalAll;
      break;
    case DistStrategy::kMpdKfac:
      opt.factor_comm = sched::FactorCommMode::kBulk;
      opt.inverse = sched::InverseMode::kSeqDist;
      break;
    case DistStrategy::kSpdKfac:
      opt.factor_comm = options_.factor_comm;
      opt.inverse = sched::InverseMode::kLBP;
      break;
  }

  const bool measured_fusion =
      options_.profile.empty() &&
      opt.factor_comm != sched::FactorCommMode::kBulk &&
      opt.factor_comm != sched::FactorCommMode::kNaive;
  if (opt.factor_update && measured_fusion) {
    // The Eq. (15) objective needs layer timing; without measurements yet
    // (first factor step) fall back to layer-wise communication, exactly
    // like the paper's warm-up profiling iterations.
    if (!have_measurements_ &&
        opt.factor_comm == sched::FactorCommMode::kOptimalFuse) {
      opt.factor_comm = sched::FactorCommMode::kLayerWise;
    }
    // Rank-average the measurements so every rank plans the same groups.
    sync_measured_times();
  }

  sched::ScheduleInputs inputs;
  inputs.world_size = comm_.size();
  inputs.layers.reserve(layers_.size());
  for (const nn::PreconditionedLayer* layer : layers_) {
    sched::LayerShape shape;
    shape.dim_a = layer->dim_a();
    shape.dim_g = layer->dim_g();
    shape.a_elements = tensor::packed_size(layer->dim_a());
    shape.g_elements = tensor::packed_size(layer->dim_g());
    shape.grad_elements = layer->weight_grad().size();
    inputs.layers.push_back(shape);
  }
  inputs.timing = planning_timing();

  plan_ = sched::plan_iteration(inputs, opt, costs_);
  if (!plan_.placement.assignments.empty()) placement_ = plan_.placement;

  a_state_.reset(plan_.a_comm.size());
  g_state_.reset(plan_.g_comm.size());
  grad_buffers_.assign(plan_.grad_comm.size(), {});
  grad_handles_.assign(plan_.grad_comm.size(), {});
  grad_group_index_ = 0;
  grad_offset_ = 0;
}

// ---------------------------------------------------------------------------
// Plan execution: per-layer pass events (hooked and post-hoc paths share
// these handlers, so both submit the plan's collectives in plan order)
// ---------------------------------------------------------------------------

void DistKfacOptimizer::pack_factor(sched::Family family,
                                    std::size_t pass_index) {
  FamilyState& st = family == sched::Family::kA ? a_state_ : g_state_;
  const std::vector<int>& tasks =
      family == sched::Family::kA ? plan_.a_comm : plan_.g_comm;
  if (st.current >= tasks.size()) return;  // nothing communicated (P == 1)
  const sched::Task& task = plan_.task(tasks[st.current]);
  std::vector<double>& buffer = st.buffers[st.current];
  if (buffer.empty()) {
    buffer.resize(task.elements);
    st.offset = 0;
  }
  const std::size_t n = family == sched::Family::kA ? a_sizes_[pass_index]
                                                    : g_sizes_[pass_index];
  const std::size_t layer = family == sched::Family::kA
                                ? pass_index
                                : layers_.size() - 1 - pass_index;
  const Matrix& fresh =
      family == sched::Family::kA ? fresh_a_[layer] : fresh_g_[layer];
  tensor::pack_upper(fresh,
                     std::span<double>(buffer).subspan(st.offset, n));
  st.offset += n;
  if (pass_index == task.last) {
    if (!task.deferred) {
      st.handles[st.current] = engine_.all_reduce_async(
          buffer, comm::ReduceOp::kAverage, task.label, task.algo, task.id);
    }
    ++st.current;
  }
}

void DistKfacOptimizer::handle_forward(std::size_t layer) {
  if (!plan_.factor_update) return;
  const auto t0 = std::chrono::steady_clock::now();
  fresh_a_[layer] = compute_factor_a(*layers_[layer]);
  a_comp_seconds_[layer] = seconds_since(t0);
  pack_factor(sched::Family::kA, layer);
}

void DistKfacOptimizer::handle_backward_grad(std::size_t layer) {
  if (grad_group_index_ >= plan_.grad_comm.size()) return;  // P == 1
  const sched::Task& task = plan_.task(plan_.grad_comm[grad_group_index_]);
  std::vector<double>& buffer = grad_buffers_[grad_group_index_];
  if (buffer.empty()) {
    buffer.resize(task.elements);
    grad_offset_ = 0;
  }
  const auto grad = layers_[layer]->weight_grad().data();
  std::copy(grad.begin(), grad.end(), buffer.begin() + grad_offset_);
  grad_offset_ += grad.size();
  if (layer == task.first) {  // the group's flush layer
    grad_handles_[grad_group_index_] = engine_.all_reduce_async(
        buffer, comm::ReduceOp::kAverage, task.label, task.algo, task.id);
    ++grad_group_index_;
  }
}

void DistKfacOptimizer::handle_backward_factor(std::size_t layer) {
  if (!plan_.factor_update) return;
  const auto t0 = std::chrono::steady_clock::now();
  fresh_g_[layer] = compute_factor_g(*layers_[layer]);
  g_comp_seconds_[layer] = seconds_since(t0);
  pack_factor(sched::Family::kG, layers_.size() - 1 - layer);
}

void DistKfacOptimizer::drain_comm() {
  const std::size_t L = layers_.size();

  // Deferred bulk collectives are submitted now, in the plan's canonical
  // order (after every in-pass submission).
  for (int id : plan_.comm_order) {
    const sched::Task& task = plan_.task(id);
    if (task.kind != sched::TaskKind::kFusedAllReduce || !task.deferred) {
      continue;
    }
    FamilyState& st =
        task.family == sched::Family::kA ? a_state_ : g_state_;
    const std::vector<int>& tasks =
        task.family == sched::Family::kA ? plan_.a_comm : plan_.g_comm;
    const std::size_t gi = static_cast<std::size_t>(
        std::find(tasks.begin(), tasks.end(), id) - tasks.begin());
    st.handles[gi] = engine_.all_reduce_async(
        st.buffers[gi], comm::ReduceOp::kAverage, task.label, task.algo,
        task.id);
  }

  // Aggregated gradients: wait each group and scatter back per layer.
  if (!plan_.grad_comm.empty()) {
    for (std::size_t gi = 0; gi < plan_.grad_comm.size(); ++gi) {
      grad_handles_[gi].wait();
      std::size_t offset = 0;
      for (std::size_t l : plan_.grad_groups[gi]) {
        const Matrix& grad = layers_[l]->weight_grad();
        agg_grads_[l] = Matrix(grad.rows(), grad.cols());
        auto dst = agg_grads_[l].data();
        std::copy(grad_buffers_[gi].begin() + offset,
                  grad_buffers_[gi].begin() + offset + dst.size(),
                  dst.begin());
        offset += dst.size();
      }
    }
  } else {
    for (std::size_t l = 0; l < L; ++l) {
      agg_grads_[l] = layers_[l]->weight_grad();
    }
  }

  // Aggregated factors: wait each fused group and unpack its members.
  for (std::size_t gi = 0; gi < plan_.a_comm.size(); ++gi) {
    a_state_.handles[gi].wait();
    const sched::Task& task = plan_.task(plan_.a_comm[gi]);
    std::size_t offset = 0;
    for (std::size_t l = task.first; l <= task.last; ++l) {
      tensor::unpack_upper(std::span<const double>(a_state_.buffers[gi])
                               .subspan(offset, a_sizes_[l]),
                           fresh_a_[l]);
      offset += a_sizes_[l];
    }
  }
  for (std::size_t gi = 0; gi < plan_.g_comm.size(); ++gi) {
    g_state_.handles[gi].wait();
    const sched::Task& task = plan_.task(plan_.g_comm[gi]);
    std::size_t offset = 0;
    for (std::size_t i = task.first; i <= task.last; ++i) {
      tensor::unpack_upper(std::span<const double>(g_state_.buffers[gi])
                               .subspan(offset, g_sizes_[i]),
                           fresh_g_[L - 1 - i]);
      offset += g_sizes_[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Hook mode (Fig. 6): the plan executed inline with the passes
// ---------------------------------------------------------------------------

nn::PassHooks DistKfacOptimizer::pass_hooks() {
  nn::PassHooks hooks;
  hooks.after_forward = [this](std::size_t l, nn::PreconditionedLayer&) {
    if (l == 0) {
      hooked_active_ = true;
      begin_step();
    }
    handle_forward(l);
  };
  hooks.after_backward = [this](std::size_t l, nn::PreconditionedLayer&) {
    // The plan orders each layer's gradient flush before its G-factor
    // flush (the gradient is ready the moment the backward kernel ends,
    // the factor only after its own computation).
    handle_backward_grad(l);
    handle_backward_factor(l);
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Inverses and updates
// ---------------------------------------------------------------------------

void DistKfacOptimizer::compute_inverses() {
  const std::size_t L = layers_.size();
  auto factor_of = [&](std::size_t t) -> const Matrix& {
    return t % 2 == 0 ? state_[t / 2].a : state_[t / 2].g;
  };
  auto inverse_slot = [&](std::size_t t) -> Matrix& {
    return t % 2 == 0 ? state_[t / 2].a_inv : state_[t / 2].g_inv;
  };

  // Per-tensor damping (identical on every rank: derived from the
  // aggregated factors).
  std::vector<double> gamma(2 * L, options_.damping);
  if (options_.pi_damping) {
    for (std::size_t l = 0; l < L; ++l) {
      const auto [ga, gg] =
          factored_damping(state_[l].a, state_[l].g, options_.damping);
      gamma[2 * l] = ga;
      gamma[2 * l + 1] = gg;
    }
  }

  // CT tensors, in plan order: the owner inverts and the packed result is
  // broadcast; every rank submits the broadcasts in the same order.
  std::vector<std::vector<double>> bcast_buffers(2 * L);
  std::vector<comm::CommHandle> handles(2 * L);
  std::size_t bcast_pos = 0;
  for (int id : plan_.inverse_tasks) {
    const sched::Task& task = plan_.task(id);
    if (task.rank < 0) continue;  // NCT: replicated below
    const std::size_t t = task.tensor;
    if (comm_.size() > 1) {
      bcast_buffers[t].resize(task.elements);
      if (task.rank == comm_.rank()) {
        Matrix inv = damped_inverse_by(factor_of(t), gamma[t],
                                       options_.inverse_method);
        tensor::pack_upper(inv, bcast_buffers[t]);
      }
      const sched::Task& bc =
          plan_.task(plan_.broadcast_tasks[bcast_pos++]);
      handles[t] =
          engine_.broadcast_async(bcast_buffers[t], bc.rank, bc.label, bc.id);
    } else {
      inverse_slot(t) = damped_inverse_by(factor_of(t), gamma[t],
                                          options_.inverse_method);
    }
  }

  // NCT tensors: every rank inverts locally while the broadcasts drain on
  // the background engine (real compute/communication overlap).
  for (int id : plan_.inverse_tasks) {
    const sched::Task& task = plan_.task(id);
    if (task.rank >= 0) continue;
    inverse_slot(task.tensor) = damped_inverse_by(
        factor_of(task.tensor), gamma[task.tensor], options_.inverse_method);
  }

  for (int id : plan_.broadcast_tasks) {
    const sched::Task& bc = plan_.task(id);
    handles[bc.tensor].wait();
    Matrix inv(bc.dim, bc.dim);
    tensor::unpack_upper(bcast_buffers[bc.tensor], inv);
    inverse_slot(bc.tensor) = std::move(inv);
  }
}

void DistKfacOptimizer::apply_updates() {
  std::vector<Matrix> deltas(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = state_[l];
    deltas[l] =
        tensor::matmul(st.g_inv, tensor::matmul(agg_grads_[l], st.a_inv));
  }
  const double nu =
      kl_clip_factor(deltas, agg_grads_, options_.lr, options_.kl_clip);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->apply_update(deltas[l], options_.lr * nu);
  }
}

void DistKfacOptimizer::step() {
  const std::size_t L = layers_.size();
  if (hooked_active_) {
    // Hooked step: the passes already executed the in-pass plan events;
    // verify completeness and drain what is in flight.
    if (grad_group_index_ != plan_.grad_comm.size()) {
      throw std::logic_error(
          "DistKfacOptimizer: hooked step incomplete — pass_hooks() must be "
          "given to both forward() and backward() of the same step");
    }
    hooked_active_ = false;
  } else {
    // Post-hoc step: replay the identical per-layer event sequence.
    begin_step();
    for (std::size_t l = 0; l < L; ++l) handle_forward(l);
    for (std::size_t i = 0; i < L; ++i) {
      const std::size_t l = L - 1 - i;
      handle_backward_grad(l);
      handle_backward_factor(l);
    }
  }

  drain_comm();

  if (plan_.factor_update) {
    for (std::size_t l = 0; l < L; ++l) {
      update_running_average(state_[l].a, fresh_a_[l], options_.stat_decay);
      update_running_average(state_[l].g, fresh_g_[l], options_.stat_decay);
    }
    have_measurements_ = true;
  }

  if (plan_.inverse_update) {
    compute_inverses();
  }

  apply_updates();
  ++step_count_;
}

}  // namespace spdkfac::core
