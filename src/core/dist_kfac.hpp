// Distributed K-FAC optimizer over the in-process cluster — the runtime
// counterpart of the simulator's algorithm configurations, with real data
// movement and real numerics.
//
// Strategies (Eq. (13) in all cases — identical updates up to floating-point
// reassociation of the all-reduce):
//
//   kDKfac    — local factors are computed for all layers, aggregated in
//               per-family bulk fused all-reduces after the pass, and every
//               worker inverts every factor locally (Non-Dist).
//   kMpdKfac  — as kDKfac, but the 2L damped inverses are distributed
//               round-robin across workers (tensor i on rank i % P) and each
//               result is broadcast to the rest (Seq-Dist, all CT)
//               [Osawa'19 / Ueno'20 / Pauloski'20].
//   kSpdKfac  — the paper: factor aggregation is pipelined with factor
//               computation using Eq. (15) dynamic tensor fusion on the
//               asynchronous engine, and inverses are placed by Algorithm 1
//               (LBP) with CT/NCT typing.
//
// Every step the optimizer asks the sched::SchedulePlanner for the
// iteration's task-graph and *executes* it as a real dataflow: the plan's
// tasks become nodes of an exec::DataflowExecutor on the rank's shared
// work-stealing pool.  Factor computes and damped inverses dispatch to the
// pool the moment their predecessors retire (so A_{l+1} builds while A_l's
// all-reduce flies and while layer l+2's forward kernel runs), collectives
// are handed to the AsyncCommEngine through the executor's ordered lane —
// strictly in the plan's canonical submission order, preserving the
// engine's cross-rank contract byte for byte — and each collective's
// completion unpacks its payload and releases its successors.  The
// simulator prices the same plan, so the two cannot drift (see
// tests/sched/test_equivalence.cpp).  Hooked mode releases the pass-event
// gates from the forward/backward hooks; post-hoc mode replays the same
// gate sequence inside step(); both therefore execute the identical graph.
//
// Every rank constructs one optimizer around its own model replica and
// Communicator; the plan is derived deterministically from the (identical)
// model structure and rank-averaged timing, satisfying the engine's
// ordering contract.
//
// Planning timings come from an online profiling → sync → re-plan → cache
// loop (the runtime realization of the paper's profiling-driven
// TensorFusionController, Section V-A): a perf::OnlineProfiler accumulates
// EMA-smoothed per-task timings from the executor's task observer, the
// pass hooks and the engine's completion records; every `replan_interval`
// iterations (at a factor step) the profile is rank-synced with a small
// all-reduce and the planning timing rebuilt from it; each step's plan is
// then fetched through a sched::PlanCache keyed by the quantized profile
// signature, so steady-state steps pay zero planning cost and execute a
// bitwise-stable schedule.  A fixed `profile` pins the timing forever
// (reproducible schedules, no sync op); a `profile_trajectory` replays a
// deterministic sequence of profiles across re-plan epochs — the form the
// adaptive equivalence and determinism suites lock down, mirrored by
// sim::simulate_trajectory.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <vector>

#include <chrono>

#include <span>

#include "comm/async_engine.hpp"
#include "comm/cluster.hpp"
#include "comm/collectives.hpp"
#include "core/buffer_arena.hpp"
#include "core/kfac_optimizer.hpp"
#include "exec/dataflow.hpp"
#include "exec/thread_pool.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "perf/online_profiler.hpp"
#include "sched/plan.hpp"
#include "sched/plan_cache.hpp"
#include "sched/planner.hpp"

namespace spdkfac::core {

enum class DistStrategy { kDKfac, kMpdKfac, kSpdKfac };

const char* to_string(DistStrategy strategy) noexcept;

struct DistKfacOptions {
  double lr = 0.05;
  double damping = 3e-2;
  double stat_decay = 0.95;
  std::size_t factor_update_freq = 1;
  std::size_t inverse_update_freq = 1;
  /// KL clipping (see KfacOptions::kl_clip); computed from the aggregated
  /// deltas/gradients, so it is identical on every rank.  0 disables.
  double kl_clip = 0.0;
  InverseMethod inverse_method = InverseMethod::kCholesky;
  bool pi_damping = false;  ///< see KfacOptions::pi_damping
  DistStrategy strategy = DistStrategy::kSpdKfac;
  sched::BalanceMetric balance = sched::BalanceMetric::kEstimatedTime;

  /// Factor aggregation mode under kSpdKfac — the Fig. 10 pipelining
  /// variants (kOptimalFuse is the paper's Eq. (15) schedule).  The bulk
  /// strategies always aggregate one op per factor family.
  sched::FactorCommMode factor_comm = sched::FactorCommMode::kOptimalFuse;

  /// WFBP gradient fusion threshold (elements), Horovod's 64 MiB default.
  std::size_t grad_fusion_threshold = sched::kHorovodThresholdElements;

  /// Worker threads of the per-rank execution pool that the plan's compute
  /// tasks, the tensor kernels' inner loops, and the comm engine's pump
  /// share.  0 selects the serial executor: plan tasks run inline at their
  /// trigger points (the pre-dataflow behavior) and the engine pumps on a
  /// private single-worker pool.  Results are bitwise identical for every
  /// value (see tests/core/test_determinism.cpp).
  std::size_t pool_size = 2;

  /// All-reduce algorithm for every factor/gradient aggregation.  kRing
  /// reproduces the seed's collectives; kAuto picks per message size and
  /// the cluster's Topology through an AlgorithmSelector built at
  /// construction (identical on every rank, so the engine's collective
  /// ordering contract holds); any concrete algorithm forces it.
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;

  /// Collective payload codecs (comm/codec.hpp), forwarded to the planner
  /// so fusion groups, CT/NCT typing and algorithm choices re-derive from
  /// the compressed sizes.  factor_codec compresses the fused factor
  /// all-reduces and the inverse broadcasts (fp16 / int8 / auto; topk is
  /// rejected — factors are dense).  grad_codec compresses the WFBP
  /// gradient all-reduces; kTopK engages per-layer error-feedback
  /// residuals, carried across steps and through checkpoints, so the
  /// unsent mass is re-injected instead of lost.  kNone (default)
  /// reproduces the seed's lossless collectives byte for byte.  Identical
  /// on every rank, like every plan-shaping option.
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  /// kTopK keep ratio: fraction of each gradient message shipped.
  double topk_ratio = 0.01;

  /// Cost models used for planning only (fusion rule, Algorithm 1, CT/NCT).
  /// Defaults are rough in-process-cluster figures; examples re-fit them
  /// with perf::measure_* like the paper's one-time benchmarking.
  perf::AllReduceModel allreduce_model{{2.0e-5, 1.0e-9}};
  perf::BroadcastModel broadcast_model{{1.0e-5, 5.0e-10}};
  perf::InverseModel inverse_model =
      perf::InverseModel::cubic(2.0e-6, 5.0e-10);

  /// Fixed pass timing used for planning instead of live measurements (the
  /// paper's offline-profiling workflow; also what the equivalence suite
  /// feeds both the runtime and the simulator).  Empty: measure factor
  /// times online, rank-average them, and plan layer-wise on the first
  /// factor step.
  sched::PassTiming profile;

  /// Deterministic planning-profile trajectory: re-plan epoch k plans from
  /// entry min(k, size-1).  Overrides live measurement (no profile-sync
  /// op) while keeping the adaptive loop — re-planned schedules become a
  /// pure function of the trajectory, so runs are reproducible and
  /// rank-identical by construction.  Mutually exclusive with `profile`.
  std::vector<sched::PassTiming> profile_trajectory;

  /// Iterations between planning-profile refreshes (>= 1).  A re-plan
  /// fires at the first factor-update step on or after each boundary: the
  /// profile is synced across ranks (live mode), the planning timing
  /// rebuilt, and the next boundary armed.  Steps in between plan from the
  /// unchanged timing — through the plan cache, at zero planning cost.
  std::size_t replan_interval = 1;

  /// EMA weight of new samples in the online profiler, in (0, 1]; 1 keeps
  /// only the latest measurement.
  double profile_ema = 0.5;

  /// Plan-cache entries (keyed by quantized profile signature + step
  /// kind).  0 disables caching: every step re-runs the planner — the
  /// reference path the cache must be bitwise-equivalent to under a fixed
  /// profile or trajectory (see tests/sched/test_adaptive.cpp).
  std::size_t plan_cache_capacity = sched::PlanCache::kDefaultCapacity;

  /// Transport backend the launcher builds the cluster on (the optimizer
  /// itself is transport-agnostic — it talks to whatever Communicator it
  /// is handed).  kInProcess runs ranks as threads; kSharedMemory and
  /// kSocket run one process per rank (see comm/transport.hpp).  Training
  /// is bitwise identical across all three (tests/core/test_determinism).
  comm::TransportKind transport = comm::TransportKind::kInProcess;

  /// Per-pair ring capacity of the shared-memory transport, in bytes; a
  /// power of two in [1024, 2^31].  Ignored by the other backends.
  std::size_t shm_ring_bytes = comm::kDefaultShmRingBytes;

  /// Deadline for every blocking communication primitive, in seconds; > 0
  /// arms the transport's failure detection (comm/fault.hpp), so a dead
  /// peer surfaces as comm::RankFailure — naming the rank, the collective
  /// and the plan task — instead of hanging the step forever.  Must exceed
  /// the longest compute gap between this rank's collectives (a rank busy
  /// inverting a large factor does not heartbeat; see the engine's
  /// between-ops heartbeat).  0 (default) keeps wait-forever semantics.
  /// When the launcher already armed a timeout (LaunchOptions), 0 leaves
  /// it in place.
  double comm_timeout_s = 0.0;

  /// Throws std::invalid_argument on nonsensical settings: zero update
  /// frequencies, non-positive lr/damping, a stat_decay outside [0, 1), a
  /// negative/non-finite kl_clip, a grad_fusion_threshold /
  /// pool_size / replan_interval / plan_cache_capacity that is a negative
  /// value wrapped to unsigned, a profile_ema outside (0, 1], a profile or
  /// trajectory entry containing negative/non-finite entries, both
  /// `profile` and `profile_trajectory` set, a shm_ring_bytes that is
  /// not a power of two in [1024, 2^31], a negative/non-finite
  /// comm_timeout_s, a topk factor_codec, or a topk_ratio outside (0, 1].
  void validate() const;
};

/// Copy of `options` with the tunable named `name` set to `value`, already
/// validate()d — the control plane's "set" path.  Tunables are the fields
/// safe to change between steps without reconstructing the optimizer: lr,
/// damping, stat_decay, kl_clip, factor_update_freq, inverse_update_freq,
/// replan_interval (the frequency/interval tunables require `value` to be
/// a positive integer).  Throws std::invalid_argument on an unknown name
/// or a value validate() rejects, leaving the caller's options untouched.
DistKfacOptions with_tunable(const DistKfacOptions& options,
                             const std::string& name, double value);

class DistKfacOptimizer {
 public:
  /// `layers` is this rank's model replica (weights must already be
  /// identical across ranks — use a shared initialization seed).  Throws
  /// std::invalid_argument on an empty layer list or invalid options.
  DistKfacOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                    comm::Communicator& comm, DistKfacOptions options = {});

  /// One synchronous step; every rank must call it the same number of
  /// times, each after its local forward + backward pass.  With a
  /// comm_timeout_s armed, a dead peer makes step() throw
  /// comm::RankFailure (naming the rank, collective and plan task) instead
  /// of hanging; the optimizer is then permanently failed() and further
  /// steps throw std::logic_error.
  void step();

  /// Hooks implementing the SPDKFACOptimizer architecture of Fig. 6: pass
  /// them to Sequential::forward/backward so Kronecker factors and WFBP
  /// gradient groups are computed *and submitted to the async engine*
  /// inline with the passes — real communication/computation overlap
  /// instead of post-hoc aggregation in step().
  ///
  ///   model.forward(x, optimizer.pass_hooks());
  ///   loss/backward ...
  ///   model.backward(grad, optimizer.pass_hooks());
  ///   optimizer.step();   // drains the dataflow, inverts, updates
  ///
  /// Hooked and post-hoc steps execute the identical plan (same buffers,
  /// same collective order), so they are numerically interchangeable; every
  /// rank must use hooks for the same steps.
  ///
  /// An incomplete hooked step (forward hooks fired, backward hooks
  /// forgotten) makes step() throw; the abandoned dataflow cannot be
  /// resumed — the optimizer then refuses further steps and must be
  /// reconstructed (as must its peers: their collective state diverged).
  nn::PassHooks pass_hooks();

  std::size_t steps() const noexcept { return step_count_; }
  DistStrategy strategy() const noexcept { return options_.strategy; }

  /// The options in effect (as adjusted by set_tunable).  Read between
  /// steps only, like every introspection accessor.
  const DistKfacOptions& options() const noexcept { return options_; }

  int world_size() const noexcept { return comm_.size(); }
  int rank() const noexcept { return comm_.rank(); }

  /// Applies with_tunable(options(), name, value) — live reconfiguration
  /// without a restart.  Strong guarantee: an unknown name or rejected
  /// value throws std::invalid_argument and the options are untouched.
  /// Call between steps, and on *every* rank with the same (name, value)
  /// sequence: plan-shaping options must stay rank-identical or the next
  /// plans diverge and the collectives mismatch.
  void set_tunable(const std::string& name, double value) {
    options_ = with_tunable(options_, name, value);
  }

  /// Arms an immediate planning-profile refresh: the next factor-update
  /// step re-syncs the profile and re-plans regardless of where the
  /// replan_interval boundary stands.  Call between steps, on every rank
  /// (a one-sided re-plan diverges the collective order).
  void force_replan() noexcept { next_replan_step_ = step_count_; }

  /// Observer for every executed compute task of the plan (factor builds,
  /// inverses, the update), reported as [start_s, end_s) on the engine
  /// clock (the comm_records() timeline) — the control plane's live-trace
  /// feed.  Invoked from pool threads; install before the first step (or
  /// between steps) and make the callback thread-safe.
  using TaskListener =
      std::function<void(const sched::Task&, double start_s, double end_s)>;
  void set_task_listener(TaskListener listener) {
    task_listener_ = std::move(listener);
  }

  /// True after a step observed a rank failure (step() threw
  /// comm::RankFailure).  The optimizer refuses further steps — its
  /// collective state diverged from the dead cluster's — and should be
  /// checkpointed out of / reconstructed from a prior checkpoint.
  bool failed() const noexcept { return failed_; }

  /// Serializes the full optimizer state — step counters, re-planning
  /// epoch, layer weights, Kronecker factors and inverses, the online
  /// profiler, and the planning timing — as a versioned, CRC-guarded
  /// journal (core/checkpoint.hpp).  Call between steps, on every rank
  /// (each rank's state is rank-identical by construction, so any one
  /// rank's checkpoint restores the whole cluster).  A run resumed from
  /// the checkpoint is bitwise identical to the uninterrupted run.
  void save_checkpoint(std::ostream& out) const;

  /// Restores state saved by save_checkpoint into this optimizer.  Layer
  /// count, layer shapes and strategy must match (throws
  /// std::runtime_error otherwise); the world size may differ — the
  /// elastic-restart path — in which case the next step re-plans for the
  /// new cluster (the plan cache keys on world size, and plans are pure
  /// functions of profile x options x P).
  void restore_checkpoint(std::istream& in);

  /// Algorithm this optimizer submits for an all-reduce of `elements`
  /// doubles (resolves kAuto through the topology-derived selector).
  comm::AllReduceAlgo collective_algo(std::size_t elements) const {
    return options_.collective_algo == comm::AllReduceAlgo::kAuto
               ? selector_.choose(elements)
               : options_.collective_algo;
  }

  /// The task-graph of the current/last step.
  const sched::IterationPlan& plan() const noexcept { return *plan_; }

  /// The online profiler feeding the adaptive re-planning loop (EMA layer
  /// timings, collective aggregates).  Read between steps only.
  const perf::OnlineProfiler& profiler() const noexcept { return profiler_; }

  /// The plan cache (hit/miss counters expose how often steady state
  /// avoided the planner).
  const sched::PlanCache& plan_cache() const noexcept { return plan_cache_; }

  /// Planning-profile refreshes so far (the adaptive loop's epoch count).
  std::size_t replan_count() const noexcept { return replan_count_; }

  /// The planning timing currently in effect (what the last plan was built
  /// from) — the runtime side of the adaptive equivalence contract.
  const sched::PassTiming& planning_profile() const noexcept {
    return current_timing_;
  }

  /// Inverse placement in effect (from the last step that planned an
  /// inverse phase).
  const sched::Placement& placement() const noexcept { return placement_; }

  /// Execution records of this rank's background communication engine
  /// (submit/start/end timestamps per collective, tagged with plan-task
  /// ids) — the observable overlap.
  std::vector<comm::OpRecord> comm_records() const {
    return engine_.records();
  }

  /// Engine-clock timestamp (the clock comm_records() uses) — lets
  /// harnesses place pass boundaries on the record timeline for overlap
  /// accounting.
  double engine_now_s() const { return engine_.now_s(); }

  /// The zero-copy slab this rank's communication buffers live in.  Tests
  /// check OpRecord::data of plan collectives against arena().contains()
  /// to prove the engine runs in place on the slab.  Read between steps.
  const BufferArena& arena() const noexcept { return arena_; }

  /// Per-iteration bytes the arena path stopped copying/clearing relative
  /// to the seed's layout (per-step buffer zero-fills, the fused path's
  /// dense unpack intermediates, per-step aggregate/broadcast matrix
  /// reallocations), from the last planned step.  Benchmarks report this
  /// as "copies eliminated".
  std::size_t arena_bytes_saved_per_step() const noexcept {
    return arena_saved_bytes_;
  }

  /// Fusion groups used for the A/G factor aggregation of the last factor
  /// step (empty on a single worker, where nothing is communicated).
  const std::vector<sched::FusionGroup>& last_a_groups() const noexcept {
    return plan_->a_groups;
  }
  const std::vector<sched::FusionGroup>& last_g_groups() const noexcept {
    return plan_->g_groups;
  }

  // Introspection for the equivalence tests.
  const tensor::Matrix& factor_a(std::size_t l) const { return state_[l].a; }
  const tensor::Matrix& factor_g(std::size_t l) const { return state_[l].g; }
  const tensor::Matrix& inverse_a(std::size_t l) const {
    return state_[l].a_inv;
  }
  const tensor::Matrix& inverse_g(std::size_t l) const {
    return state_[l].g_inv;
  }
  const tensor::Matrix& aggregated_grad(std::size_t l) const {
    return agg_grads_[l];
  }

 private:
  struct LayerState {
    tensor::Matrix a, g;
    tensor::Matrix a_inv, g_inv;
  };

  /// Where one factor (by pass index) or gradient (by layer) packs: fused
  /// group index (-1: nothing communicated) and offset within its buffer.
  struct PackSlot {
    int group = -1;
    std::size_t offset = 0;
  };

  bool factors_due() const noexcept {
    return step_count_ % options_.factor_update_freq == 0;
  }

  /// All-reduces the profiler's packed vector so every rank plans from the
  /// same profile (a rank-divergent plan would make the collectives
  /// mismatch).
  void sync_profile();
  /// Re-plan point: installs this epoch's planning timing — the fixed
  /// profile, the next trajectory entry, or the (synced) live profile laid
  /// out along the pass walk.
  void refresh_planning_profile(bool measured_fusion);
  /// Builds this step's plan (through the plan cache), stages the packing
  /// layout, and installs the plan as a dataflow graph on the executor.
  void begin_step();
  /// step() minus the rank-failure teardown wrapper.
  void step_body();
  /// Plan-task -> executor-node translation (see begin_step).
  std::vector<exec::DataflowExecutor::Node> build_nodes();

  // Pass events, shared verbatim by the hooked and post-hoc paths (post-hoc
  // replays the same sequence inside step()).  They only release executor
  // gates and stage gradients; the released work runs on the pool.
  void handle_forward(std::size_t layer);
  void handle_backward_grad(std::size_t layer);
  void handle_backward_factor(std::size_t layer);

  // Dataflow node bodies (pool tasks / lane submissions / completions).
  void run_factor_compute(int task_id);
  void run_inverse(int task_id);
  void run_update();
  void submit_collective(int task_id);
  /// Codec-annotated collective: queued on the engine as a custom pump op
  /// running the comm::compressed_* primitives over the task's arena span
  /// (the kTopK path also folds in / banks the error-feedback residuals,
  /// serially inside the pump, so selection is deterministic).
  void submit_compressed(const sched::Task& task, std::span<double> buffer);
  void postprocess_collective(int task_id);
  /// Carves and zeroes the per-layer error-feedback residual spans on
  /// first use (grad_codec == kTopK); restore_checkpoint also routes
  /// through this before staging saved residuals.
  void ensure_grad_residuals();

  const tensor::Matrix& factor_of(std::size_t tensor) const {
    return tensor % 2 == 0 ? state_[tensor / 2].a : state_[tensor / 2].g;
  }
  tensor::Matrix& inverse_slot(std::size_t tensor) {
    return tensor % 2 == 0 ? state_[tensor / 2].a_inv
                           : state_[tensor / 2].g_inv;
  }

  std::vector<nn::PreconditionedLayer*> layers_;
  comm::Communicator& comm_;
  DistKfacOptions options_;
  comm::AlgorithmSelector selector_;  ///< kAuto resolution (rank-identical)
  sched::ScheduleCosts costs_;

  std::vector<LayerState> state_;
  std::vector<tensor::Matrix> fresh_a_, fresh_g_;
  std::vector<tensor::Matrix> agg_grads_;
  std::vector<std::size_t> a_sizes_, g_sizes_;  // packed sizes, pass order
  std::size_t step_count_ = 0;
  bool failed_ = false;  ///< a step observed a rank failure; see failed()

  // Adaptive re-planning state.  `current_timing_` is refreshed only at
  // re-plan points; between them every step plans from it through the
  // cache.  `profiled_timing_` gates the warm-up fallback (Eq. (15) needs
  // real timings): false until a refresh saw factor samples (live mode) or
  // an injected profile/trajectory supplied timing.
  perf::OnlineProfiler profiler_;
  sched::PlanCache plan_cache_;
  TaskListener task_listener_;  ///< see set_task_listener
  sched::PassTiming current_timing_;
  bool profiled_timing_ = false;
  std::size_t next_replan_step_ = 0;
  std::size_t replan_epoch_ = 0;  ///< trajectory index
  std::size_t replan_count_ = 0;
  /// Previous pass-hook event (hooked mode): successive hook timestamps
  /// yield per-layer forward/backward kernel samples for the profiler.
  std::chrono::steady_clock::time_point last_pass_event_{};

  /// The schedule in execution — immutable and shared with the plan cache,
  /// so a cache hit installs it by pointer instead of copying O(tasks)
  /// state on the steady-state path.  Never null.
  std::shared_ptr<const sched::IterationPlan> plan_ =
      std::make_shared<const sched::IterationPlan>();
  sched::Placement placement_;

  // Per-step execution state.  Buffers are spans carved from the arena in
  // begin_step (deterministic plan order, no per-step allocation or
  // zeroing) and written at plan-determined disjoint offsets, so
  // concurrent compute tasks never contend.  The async engine submits
  // these spans in place — zero-copy, verified via OpRecord::data.
  bool hooked_active_ = false;
  std::size_t backward_events_ = 0;  ///< hooked completeness check
  BufferArena arena_;
  std::size_t arena_saved_bytes_ = 0;  ///< see arena_bytes_saved_per_step()
  std::vector<std::span<double>> a_buffers_, g_buffers_;  // per fused group
  std::vector<PackSlot> a_slots_, g_slots_;               // per pass index
  std::vector<std::span<double>> grad_buffers_;           // per grad group
  std::vector<PackSlot> grad_slots_;                      // per layer
  std::vector<std::span<double>> bcast_buffers_;          // per tensor
  std::vector<std::span<double>> task_buffer_;  // per plan task, or empty
  std::vector<int> task_group_;  ///< per plan task: fused/grad group index
  /// Gather/decode scratch for codec-annotated collectives, sized for the
  /// step's largest one.  The engine pump runs ops serially, so one shared
  /// region is race-free.  Empty on lossless steps.
  std::span<double> codec_scratch_;
  /// Error-feedback state (grad_codec == kTopK): one residual span per
  /// layer, persistent across steps (and re-plans — layers are the stable
  /// unit when groups reshape), carved once from its own arena.
  BufferArena residual_arena_;
  std::vector<std::span<double>> grad_residuals_;

  // Execution infrastructure — declared last, in this exact order, so
  // destruction runs the engine first (drains in-flight collectives, whose
  // completions enqueue pool work), then the pool (runs that work, which
  // reports into the executor), then the executor.
  exec::DataflowExecutor executor_;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< null in serial mode
  comm::AsyncCommEngine engine_;
};

}  // namespace spdkfac::core
