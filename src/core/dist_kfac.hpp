// Distributed K-FAC optimizer over the in-process cluster — the runtime
// counterpart of the simulator's algorithm configurations, with real data
// movement and real numerics.
//
// Strategies (Eq. (13) in all cases — identical updates up to floating-point
// reassociation of the all-reduce):
//
//   kDKfac    — local factors are computed for all layers, aggregated in
//               per-family bulk fused all-reduces after the pass, and every
//               worker inverts every factor locally (Non-Dist).
//   kMpdKfac  — as kDKfac, but the 2L damped inverses are distributed
//               round-robin across workers (tensor i on rank i % P) and each
//               result is broadcast to the rest (Seq-Dist, all CT)
//               [Osawa'19 / Ueno'20 / Pauloski'20].
//   kSpdKfac  — the paper: factor aggregation is pipelined with factor
//               computation using Eq. (15) dynamic tensor fusion on the
//               asynchronous engine, and inverses are placed by Algorithm 1
//               (LBP) with CT/NCT typing.
//
// Every step the optimizer asks the sched::SchedulePlanner for the
// iteration's task-graph and *executes* it: factors are computed and packed
// in plan order, every collective is submitted to the AsyncCommEngine with
// the plan task's label/algorithm/id in the plan's canonical order, and the
// inverse phase follows the plan's placement and broadcast order.  The
// simulator prices the same plan, so the two cannot drift (see
// tests/sched/test_equivalence.cpp).
//
// Every rank constructs one optimizer around its own model replica and
// Communicator; the plan is derived deterministically from the (identical)
// model structure and rank-averaged timing, satisfying the engine's
// ordering contract.  Per-step factor computation times are measured and
// feed the next step's plan, mirroring the paper's profiling-driven
// TensorFusionController (Section V-A); a fixed `profile` replaces the
// measurements for reproducible schedules.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/async_engine.hpp"
#include "comm/cluster.hpp"
#include "comm/collectives.hpp"
#include "core/kfac_optimizer.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/plan.hpp"
#include "sched/planner.hpp"

namespace spdkfac::core {

enum class DistStrategy { kDKfac, kMpdKfac, kSpdKfac };

const char* to_string(DistStrategy strategy) noexcept;

struct DistKfacOptions {
  double lr = 0.05;
  double damping = 3e-2;
  double stat_decay = 0.95;
  std::size_t factor_update_freq = 1;
  std::size_t inverse_update_freq = 1;
  /// KL clipping (see KfacOptions::kl_clip); computed from the aggregated
  /// deltas/gradients, so it is identical on every rank.  0 disables.
  double kl_clip = 0.0;
  InverseMethod inverse_method = InverseMethod::kCholesky;
  bool pi_damping = false;  ///< see KfacOptions::pi_damping
  DistStrategy strategy = DistStrategy::kSpdKfac;
  sched::BalanceMetric balance = sched::BalanceMetric::kEstimatedTime;

  /// Factor aggregation mode under kSpdKfac — the Fig. 10 pipelining
  /// variants (kOptimalFuse is the paper's Eq. (15) schedule).  The bulk
  /// strategies always aggregate one op per factor family.
  sched::FactorCommMode factor_comm = sched::FactorCommMode::kOptimalFuse;

  /// WFBP gradient fusion threshold (elements), Horovod's 64 MiB default.
  std::size_t grad_fusion_threshold = sched::kHorovodThresholdElements;

  /// All-reduce algorithm for every factor/gradient aggregation.  kRing
  /// reproduces the seed's collectives; kAuto picks per message size and
  /// the cluster's Topology through an AlgorithmSelector built at
  /// construction (identical on every rank, so the engine's collective
  /// ordering contract holds); any concrete algorithm forces it.
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;

  /// Cost models used for planning only (fusion rule, Algorithm 1, CT/NCT).
  /// Defaults are rough in-process-cluster figures; examples re-fit them
  /// with perf::measure_* like the paper's one-time benchmarking.
  perf::AllReduceModel allreduce_model{{2.0e-5, 1.0e-9}};
  perf::BroadcastModel broadcast_model{{1.0e-5, 5.0e-10}};
  perf::InverseModel inverse_model =
      perf::InverseModel::cubic(2.0e-6, 5.0e-10);

  /// Fixed pass timing used for planning instead of live measurements (the
  /// paper's offline-profiling workflow; also what the equivalence suite
  /// feeds both the runtime and the simulator).  Empty: measure factor
  /// times online, rank-average them, and plan layer-wise on the first
  /// factor step.
  sched::PassTiming profile;

  /// Throws std::invalid_argument on nonsensical settings (zero update
  /// frequencies, non-positive lr/damping).
  void validate() const;
};

class DistKfacOptimizer {
 public:
  /// `layers` is this rank's model replica (weights must already be
  /// identical across ranks — use a shared initialization seed).  Throws
  /// std::invalid_argument on an empty layer list or invalid options.
  DistKfacOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                    comm::Communicator& comm, DistKfacOptions options = {});

  /// One synchronous step; every rank must call it the same number of
  /// times, each after its local forward + backward pass.
  void step();

  /// Hooks implementing the SPDKFACOptimizer architecture of Fig. 6: pass
  /// them to Sequential::forward/backward so Kronecker factors and WFBP
  /// gradient groups are computed *and submitted to the async engine*
  /// inline with the passes — real communication/computation overlap
  /// instead of post-hoc aggregation in step().
  ///
  ///   model.forward(x, optimizer.pass_hooks());
  ///   loss/backward ...
  ///   model.backward(grad, optimizer.pass_hooks());
  ///   optimizer.step();   // drains in-flight comm, inverts, updates
  ///
  /// Hooked and post-hoc steps execute the identical plan (same buffers,
  /// same collective order), so they are numerically interchangeable; every
  /// rank must use hooks for the same steps.
  nn::PassHooks pass_hooks();

  std::size_t steps() const noexcept { return step_count_; }
  DistStrategy strategy() const noexcept { return options_.strategy; }

  /// Algorithm this optimizer submits for an all-reduce of `elements`
  /// doubles (resolves kAuto through the topology-derived selector).
  comm::AllReduceAlgo collective_algo(std::size_t elements) const {
    return options_.collective_algo == comm::AllReduceAlgo::kAuto
               ? selector_.choose(elements)
               : options_.collective_algo;
  }

  /// The task-graph of the current/last step.
  const sched::IterationPlan& plan() const noexcept { return plan_; }

  /// Inverse placement in effect (from the last step that planned an
  /// inverse phase).
  const sched::Placement& placement() const noexcept { return placement_; }

  /// Execution records of this rank's background communication engine
  /// (submit/start/end timestamps per collective, tagged with plan-task
  /// ids) — the observable overlap.
  std::vector<comm::OpRecord> comm_records() const {
    return engine_.records();
  }

  /// Fusion groups used for the A/G factor aggregation of the last factor
  /// step (empty on a single worker, where nothing is communicated).
  const std::vector<sched::FusionGroup>& last_a_groups() const noexcept {
    return plan_.a_groups;
  }
  const std::vector<sched::FusionGroup>& last_g_groups() const noexcept {
    return plan_.g_groups;
  }

  // Introspection for the equivalence tests.
  const tensor::Matrix& factor_a(std::size_t l) const { return state_[l].a; }
  const tensor::Matrix& factor_g(std::size_t l) const { return state_[l].g; }
  const tensor::Matrix& inverse_a(std::size_t l) const {
    return state_[l].a_inv;
  }
  const tensor::Matrix& inverse_g(std::size_t l) const {
    return state_[l].g_inv;
  }
  const tensor::Matrix& aggregated_grad(std::size_t l) const {
    return agg_grads_[l];
  }

 private:
  struct LayerState {
    tensor::Matrix a, g;
    tensor::Matrix a_inv, g_inv;
  };

  /// In-flight fused all-reduce groups of one factor family.
  struct FamilyState {
    std::vector<std::vector<double>> buffers;
    std::vector<comm::CommHandle> handles;
    std::size_t current = 0;  ///< group being filled
    std::size_t offset = 0;   ///< write offset within the current buffer

    void reset(std::size_t group_count) {
      buffers.assign(group_count, {});
      handles.assign(group_count, {});
      current = 0;
      offset = 0;
    }
  };

  bool factors_due() const noexcept {
    return step_count_ % options_.factor_update_freq == 0;
  }

  /// All-reduces the locally measured factor-computation times so every
  /// rank plans identical fusion groups (a rank-divergent plan would make
  /// the collectives mismatch).
  void sync_measured_times();
  /// Timing the planner sees: the fixed profile, or the synced measurements
  /// laid out along the pass walk.
  sched::PassTiming planning_timing() const;
  /// Builds this step's plan and resets the execution state.
  void begin_step();

  // Per-layer plan execution, shared verbatim by the hooked and post-hoc
  // paths (post-hoc replays the same event sequence after the passes).
  void handle_forward(std::size_t layer);
  void handle_backward_grad(std::size_t layer);
  void handle_backward_factor(std::size_t layer);
  /// Packs one factor into its group's buffer; submits the group's
  /// all-reduce when the last member is packed (unless the plan deferred
  /// it to the drain).
  void pack_factor(sched::Family family, std::size_t pass_index);
  /// Submits deferred bulk collectives in plan order, waits for everything
  /// in flight, and unpacks factors and aggregated gradients.
  void drain_comm();

  void compute_inverses();
  void apply_updates();

  std::vector<nn::PreconditionedLayer*> layers_;
  comm::Communicator& comm_;
  comm::AsyncCommEngine engine_;
  DistKfacOptions options_;
  comm::AlgorithmSelector selector_;  ///< kAuto resolution (rank-identical)
  sched::ScheduleCosts costs_;

  std::vector<LayerState> state_;
  std::vector<tensor::Matrix> fresh_a_, fresh_g_;
  std::vector<tensor::Matrix> agg_grads_;
  std::vector<double> a_comp_seconds_, g_comp_seconds_;  // last measured
  std::vector<std::size_t> a_sizes_, g_sizes_;  // packed sizes, pass order
  bool have_measurements_ = false;
  std::size_t step_count_ = 0;

  sched::IterationPlan plan_;
  sched::Placement placement_;

  // Per-step execution state.
  bool hooked_active_ = false;
  FamilyState a_state_, g_state_;
  std::vector<std::vector<double>> grad_buffers_;
  std::vector<comm::CommHandle> grad_handles_;
  std::size_t grad_group_index_ = 0;
  std::size_t grad_offset_ = 0;
};

}  // namespace spdkfac::core
