// Distributed K-FAC optimizer over the in-process cluster — the runtime
// counterpart of the simulator's algorithm configurations, with real data
// movement and real numerics.
//
// Strategies (Eq. (13) in all cases — identical updates up to floating-point
// reassociation of the all-reduce):
//
//   kDKfac    — local factors are computed for all layers, aggregated in one
//               bulk fused all-reduce after the pass, and every worker
//               inverts every factor locally (Non-Dist).
//   kMpdKfac  — as kDKfac, but the 2L damped inverses are distributed
//               round-robin across workers (tensor i on rank i % P) and each
//               result is broadcast to the rest (Seq-Dist, all CT)
//               [Osawa'19 / Ueno'20 / Pauloski'20].
//   kSpdKfac  — the paper: factor aggregation is pipelined with factor
//               computation using Eq. (15) dynamic tensor fusion on the
//               asynchronous engine, and inverses are placed by Algorithm 1
//               (LBP) with CT/NCT typing.
//
// Every rank constructs one optimizer around its own model replica and
// Communicator; collective submission order is derived deterministically
// from the (identical) model structure, satisfying the engine's ordering
// contract.  Per-step factor computation times are measured and feed the
// next step's fusion plan, mirroring the paper's profiling-driven
// TensorFusionController (Section V-A).
#pragma once

#include <cstddef>
#include <vector>

#include "comm/async_engine.hpp"
#include "comm/cluster.hpp"
#include "comm/collectives.hpp"
#include "core/fusion.hpp"
#include "core/kfac_optimizer.hpp"
#include "core/placement.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"

namespace spdkfac::core {

enum class DistStrategy { kDKfac, kMpdKfac, kSpdKfac };

const char* to_string(DistStrategy strategy) noexcept;

struct DistKfacOptions {
  double lr = 0.05;
  double damping = 3e-2;
  double stat_decay = 0.95;
  std::size_t factor_update_freq = 1;
  std::size_t inverse_update_freq = 1;
  /// KL clipping (see KfacOptions::kl_clip); computed from the aggregated
  /// deltas/gradients, so it is identical on every rank.  0 disables.
  double kl_clip = 0.0;
  InverseMethod inverse_method = InverseMethod::kCholesky;
  bool pi_damping = false;  ///< see KfacOptions::pi_damping
  DistStrategy strategy = DistStrategy::kSpdKfac;
  BalanceMetric balance = BalanceMetric::kEstimatedTime;

  /// All-reduce algorithm for every factor/gradient aggregation.  kRing
  /// reproduces the seed's collectives; kAuto picks per message size and
  /// the cluster's Topology through an AlgorithmSelector built at
  /// construction (identical on every rank, so the engine's collective
  /// ordering contract holds); any concrete algorithm forces it.
  comm::AllReduceAlgo collective_algo = comm::AllReduceAlgo::kRing;

  /// Cost models used for planning only (fusion rule, Algorithm 1, CT/NCT).
  /// Defaults are rough in-process-cluster figures; examples re-fit them
  /// with perf::measure_* like the paper's one-time benchmarking.
  perf::AllReduceModel allreduce_model{{2.0e-5, 1.0e-9}};
  perf::BroadcastModel broadcast_model{{1.0e-5, 5.0e-10}};
  perf::InverseModel inverse_model =
      perf::InverseModel::cubic(2.0e-6, 5.0e-10);
};

class DistKfacOptimizer {
 public:
  /// `layers` is this rank's model replica (weights must already be
  /// identical across ranks — use a shared initialization seed).
  DistKfacOptimizer(std::vector<nn::PreconditionedLayer*> layers,
                    comm::Communicator& comm, DistKfacOptions options = {});

  /// One synchronous step; every rank must call it the same number of
  /// times, each after its local forward + backward pass.
  void step();

  /// Hooks implementing the SPDKFACOptimizer architecture of Fig. 6: pass
  /// them to Sequential::forward/backward so Kronecker factors and WFBP
  /// gradient groups are computed *and submitted to the async engine*
  /// inline with the passes — real communication/computation overlap
  /// instead of post-hoc aggregation in step().
  ///
  ///   model.forward(x, optimizer.pass_hooks());
  ///   loss/backward ...
  ///   model.backward(grad, optimizer.pass_hooks());
  ///   optimizer.step();   // drains in-flight comm, inverts, updates
  ///
  /// Factor all-reduces are pipelined only under the SPD-KFAC strategy (the
  /// bulk strategies keep their after-the-pass aggregation semantics);
  /// gradient WFBP groups are pipelined for every strategy, as in the
  /// paper.  Every rank must use hooks for the same steps.
  nn::PassHooks pass_hooks();

  std::size_t steps() const noexcept { return step_count_; }
  DistStrategy strategy() const noexcept { return options_.strategy; }

  /// Algorithm this optimizer submits for an all-reduce of `elements`
  /// doubles (resolves kAuto through the topology-derived selector).
  comm::AllReduceAlgo collective_algo(std::size_t elements) const {
    return options_.collective_algo == comm::AllReduceAlgo::kAuto
               ? selector_.choose(elements)
               : options_.collective_algo;
  }

  /// Inverse placement in effect (fixed after the first step).
  const Placement& placement() const noexcept { return placement_; }

  /// Execution records of this rank's background communication engine
  /// (submit/start/end timestamps per collective) — the observable overlap.
  std::vector<comm::OpRecord> comm_records() const {
    return engine_.records();
  }

  /// Fusion groups used for the A/G factor aggregation of the last step
  /// (SPD strategy; bulk strategies report one group per family).
  const std::vector<FusionGroup>& last_a_groups() const noexcept {
    return a_groups_;
  }
  const std::vector<FusionGroup>& last_g_groups() const noexcept {
    return g_groups_;
  }

  // Introspection for the equivalence tests.
  const tensor::Matrix& factor_a(std::size_t l) const { return state_[l].a; }
  const tensor::Matrix& factor_g(std::size_t l) const { return state_[l].g; }
  const tensor::Matrix& inverse_a(std::size_t l) const {
    return state_[l].a_inv;
  }
  const tensor::Matrix& inverse_g(std::size_t l) const {
    return state_[l].g_inv;
  }
  const tensor::Matrix& aggregated_grad(std::size_t l) const {
    return agg_grads_[l];
  }

 private:
  struct LayerState {
    tensor::Matrix a, g;
    tensor::Matrix a_inv, g_inv;
  };

  /// In-flight fused all-reduce groups of one factor pass.
  struct PendingGroups {
    std::vector<std::vector<double>> buffers;
    std::vector<comm::CommHandle> handles;
    std::size_t current = 0;  ///< group being filled
    std::size_t offset = 0;   ///< write offset within the current buffer

    void reset(std::size_t group_count) {
      buffers.assign(group_count, {});
      handles.assign(group_count, {});
      current = 0;
      offset = 0;
    }
  };

  bool factors_due() const noexcept {
    return step_count_ % options_.factor_update_freq == 0;
  }
  bool pipelined() const noexcept {
    return options_.strategy == DistStrategy::kSpdKfac && comm_.size() > 1;
  }

  /// All-reduces the locally measured factor-computation times so every
  /// rank plans identical fusion groups (a rank-divergent plan would make
  /// the collectives mismatch).
  void sync_measured_times();
  /// Plans a_groups_/g_groups_ from the synced measurements (layer-wise on
  /// the first step, Eq. (15)-objective DP afterwards).
  void plan_factor_groups();
  /// Plans grad_group_layers_ (threshold WFBP groups in backward order).
  void plan_grad_groups();

  void aggregate_factors_bulk(bool compute_factors);
  void aggregate_factors_pipelined();
  void aggregate_gradients();
  void compute_inverses();
  void apply_updates();

  // Hook-mode callbacks (pass_hooks()).
  void on_after_forward(std::size_t layer);
  void on_after_backward(std::size_t layer);
  void finish_hooked_comm();

  std::vector<nn::PreconditionedLayer*> layers_;
  comm::Communicator& comm_;
  comm::AsyncCommEngine engine_;
  DistKfacOptions options_;
  comm::AlgorithmSelector selector_;  ///< kAuto resolution (rank-identical)

  std::vector<LayerState> state_;
  std::vector<tensor::Matrix> fresh_a_, fresh_g_;
  std::vector<tensor::Matrix> agg_grads_;
  std::vector<double> a_comp_seconds_, g_comp_seconds_;  // last measured
  std::vector<FusionGroup> a_groups_, g_groups_;
  std::vector<std::size_t> a_sizes_, g_sizes_;  // packed sizes, pass order
  Placement placement_;
  bool placement_ready_ = false;
  std::size_t step_count_ = 0;

  // Hook-mode state.
  bool hooked_active_ = false;
  PendingGroups hooked_a_, hooked_g_;
  std::vector<std::vector<std::size_t>> grad_group_layers_;
  std::vector<std::vector<double>> grad_buffers_;
  std::vector<comm::CommHandle> grad_handles_;
  std::size_t grad_group_index_ = 0;
  std::size_t grad_offset_ = 0;
};

}  // namespace spdkfac::core
