// Checkpoint journal: the on-disk format behind
// DistKfacOptimizer::save_checkpoint / restore_checkpoint.
//
// A checkpoint is a versioned, CRC-guarded record journal.  The file opens
// with an 8-byte magic + format version, then carries a sequence of
// self-describing records — each a (type, index, length, payload, crc32)
// frame — and closes with a kEnd record whose index is the record count.
// Every frame is independently integrity-checked (CRC-32 over the header
// and payload), so a truncated file, a flipped bit, or a record from a
// different format version is rejected with a std::runtime_error naming the
// failure instead of silently restoring garbage — the property the
// kill-during-checkpoint story needs: a half-written journal is *detectably*
// half-written.
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern (std::bit_cast through uint64), which is what makes a restored
// run bitwise identical to the uninterrupted one — no text round-trip, no
// locale, no precision loss.
//
// The journal layer is deliberately dumb: it knows frames, not optimizers.
// What goes *into* the frames (weights, Kronecker factors, the profiler
// state, the planning timing) is decided by the save/restore members in
// checkpoint.cpp, and the record-type enum below is the contract between
// the two.  Tests drive Writer/Reader directly to lock down corruption
// detection without an optimizer in the loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace spdkfac::core::journal {

/// Format magic ("SPDKFAC" + journal revision marker) and version.  Bump
/// kVersion on any layout change; Reader rejects mismatches.
inline constexpr char kMagic[8] = {'S', 'P', 'D', 'K', 'F', 'A', 'C', 'J'};
inline constexpr std::uint32_t kVersion = 1;

/// Record types of version-1 journals.  Matrix records carry their layer
/// index in the frame's `index` field.
enum class RecordType : std::uint16_t {
  kMeta = 1,      ///< run counters + shape of everything that follows
  kWeights = 2,   ///< layer weight matrix
  kFactorA = 3,   ///< running-average Kronecker factor A_l
  kFactorG = 4,   ///< running-average Kronecker factor G_l
  kInverseA = 5,  ///< damped inverse of A_l (may be 0x0 before first inverse)
  kInverseG = 6,  ///< damped inverse of G_l
  kProfiler = 7,  ///< perf::OnlineProfiler::serialize() vector
  kTiming = 8,    ///< the planning PassTiming in effect
  kEnd = 9,       ///< terminator; index == number of preceding records
  /// Per-layer top-k error-feedback residual (index = layer; payload is
  /// u64 element count + that many f64s).  Written only when the optimizer
  /// runs grad_codec == kTopK; absent records restore as zeroed residuals,
  /// so version-1 journals from before compression stay readable.
  kGradResidual = 10,
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`,
/// continuing from `seed` (pass a previous return value to chain buffers).
std::uint32_t crc32(std::span<const unsigned char> bytes,
                    std::uint32_t seed = 0);

/// Little-endian payload builder.  Accumulates into an in-memory byte
/// vector handed to Writer::record().
class Payload {
 public:
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_f64s(std::span<const double> values);
  /// rows, cols, then row-major data.
  void put_matrix(const tensor::Matrix& m);

  std::span<const unsigned char> bytes() const noexcept { return bytes_; }

 private:
  std::vector<unsigned char> bytes_;
};

/// Cursor over a record's payload.  Every getter throws std::runtime_error
/// ("checkpoint: truncated record payload") on over-read — a frame whose
/// CRC passed can still be *semantically* short if written by a buggy or
/// foreign producer.
class PayloadView {
 public:
  explicit PayloadView(std::span<const unsigned char> bytes) : bytes_(bytes) {}

  std::uint64_t get_u64();
  double get_f64();
  std::vector<double> get_f64s(std::size_t count);
  tensor::Matrix get_matrix();
  bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  std::span<const unsigned char> bytes_;
  std::size_t offset_ = 0;
};

/// Streams a journal out.  The header is written on construction; call
/// record() per frame and finish() exactly once (writes kEnd and flushes).
/// Throws std::runtime_error when the underlying stream fails.
class Writer {
 public:
  explicit Writer(std::ostream& out);
  void record(RecordType type, std::uint16_t index,
              std::span<const unsigned char> payload);
  void record(RecordType type, std::uint16_t index, const Payload& payload) {
    record(type, index, payload.bytes());
  }
  void finish();

 private:
  std::ostream& out_;
  std::uint16_t records_ = 0;
  bool finished_ = false;
};

/// Streams a journal in.  The header is validated on construction; next()
/// yields records until the kEnd terminator (then std::nullopt forever).
/// Throws std::runtime_error on bad magic, unsupported version, CRC
/// mismatch, truncation, or a record-count mismatch at kEnd.
class Reader {
 public:
  struct Record {
    RecordType type{};
    std::uint16_t index = 0;
    std::vector<unsigned char> payload;
    PayloadView view() const { return PayloadView(payload); }
  };

  explicit Reader(std::istream& in);
  std::optional<Record> next();

 private:
  std::istream& in_;
  std::uint16_t records_ = 0;
  bool done_ = false;
};

}  // namespace spdkfac::core::journal
