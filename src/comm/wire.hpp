// Length-prefixed wire protocol shared by the out-of-process transports.
//
// Every message the shared-memory and socket backends move between ranks is
// one *frame*: a fixed 32-byte header followed by the payload doubles.  The
// header carries enough to validate the stream (magic, version), identify
// the sender (rank), and tag the traffic class (data / barrier / handshake)
// plus the sched::IterationPlan task the payload realizes and the
// comm::Codec the payload is encoded with — the same metadata the async
// engine's OpRecords carry in-process:
//
//   offset  size  field
//        0     4  magic          0x53'50'44'4B ("SPDK", little-endian)
//        4     2  version        protocol version (kVersion)
//        6     2  tag            traffic class (kDataTag / kBarrierTag / ...)
//        8     4  src            sender rank (int32)
//       12     4  plan_task      plan task id, -1 for out-of-plan traffic
//       16     8  elements       payload length in doubles (uint64)
//       24     2  codec          comm::Codec id (0 = raw doubles)
//       26     6  reserved       must be zero
//       32  8*elements           payload (raw IEEE-754 bits, host-endian;
//                                codec != 0: the encoded wire vector)
//
// All multi-byte fields are little-endian (encode/decode below serialize
// byte-by-byte, so the layout is identical regardless of host struct
// padding).  decode_header() rejects bad magic, unknown versions and
// absurd payload lengths with a typed status instead of trusting the
// stream — a torn or corrupt connection must fail loudly, never hang or
// over-allocate.  FrameParser reassembles frames from arbitrary byte
// chunks (short socket reads tear frames at any offset) and goes into a
// terminal corrupt state on the first bad header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace spdkfac::comm::wire {

inline constexpr std::uint32_t kMagic = 0x5350'444B;  // "SPDK"
/// v2 widened the header from 24 to 32 bytes to carry the payload codec id
/// (compressed collectives) plus reserved space.
inline constexpr std::uint16_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 32;

/// Traffic classes (header `tag`).
inline constexpr std::uint16_t kDataTag = 0;
inline constexpr std::uint16_t kBarrierTag = 0xB0;
inline constexpr std::uint16_t kHandshakeTag = 0xC0;
/// Liveness ping (empty payload): emitted by blocked ranks every quarter
/// deadline so an alive-but-waiting peer is never declared dead.  Filtered
/// out of every recv stream; its arrival resets the sender's deadline.
inline constexpr std::uint16_t kHeartbeatTag = 0xD0;
/// Failure notice (payload: one double holding the dead rank): broadcast
/// best-effort by whichever rank's deadline fired first, so every survivor
/// surfaces a RankFailure naming the *root* dead rank.
inline constexpr std::uint16_t kFailureTag = 0xE0;
/// Control-plane traffic (ctl/protocol.hpp): a command line from spdkfacctl
/// to the daemon's ctl socket, and the daemon's success / error reply.
/// Payloads are UTF-8 text packed into doubles (ctl::pack_text) riding the
/// same framed protocol as rank-to-rank data, so the daemon's ctl endpoint
/// reuses FrameParser verbatim.
inline constexpr std::uint16_t kCtlRequestTag = 0xF0;
inline constexpr std::uint16_t kCtlOkTag = 0xF1;
inline constexpr std::uint16_t kCtlErrTag = 0xF2;

/// Sanity cap on one frame's payload (doubles): 1 Gi elements = 8 GiB.  A
/// header announcing more is corruption, not a real message — rejecting it
/// keeps a flipped length byte from turning into an 8 GiB allocation.
inline constexpr std::uint64_t kMaxElements = 1ull << 30;

struct FrameHeader {
  std::uint16_t version = kVersion;
  std::uint16_t tag = kDataTag;
  std::int32_t src = 0;
  std::int32_t plan_task = -1;
  std::uint64_t elements = 0;
  /// comm::Codec id of the payload encoding (0: raw doubles).  For codec
  /// frames `elements` counts the *wire* doubles actually shipped.
  std::uint16_t codec = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

enum class DecodeStatus {
  kOk,
  kBadMagic,
  kBadVersion,
  kOversize,
};

const char* to_string(DecodeStatus status) noexcept;

/// Serializes `header` into out[0..kHeaderBytes); out must be large enough.
void encode_header(const FrameHeader& header, std::span<unsigned char> out);

/// Parses a header from in[0..kHeaderBytes) (in must hold at least that
/// many bytes).  On kOk, `out` holds the decoded fields; on any other
/// status `out` is unspecified and the stream must be abandoned.
DecodeStatus decode_header(std::span<const unsigned char> in,
                           FrameHeader& out);

/// Encodes one complete frame (header + payload bytes) into a contiguous
/// buffer — what the senders enqueue per peer.
std::vector<unsigned char> encode_frame(const FrameHeader& header,
                                        std::span<const double> payload);

struct Frame {
  FrameHeader header;
  std::vector<double> payload;
};

/// Incremental frame reassembler for a byte stream that tears frames at
/// arbitrary offsets (short reads).  feed() appends bytes and extracts
/// every complete frame; a bad header makes the parser corrupt —
/// terminally: further feeds are ignored and error() reports why.
class FrameParser {
 public:
  /// Appends bytes to the stream.  Returns false once the stream is
  /// corrupt (the first bad header; see error()).
  bool feed(std::span<const unsigned char> bytes);

  bool has_frame() const noexcept { return !frames_.empty(); }

  /// Pops the oldest complete frame (has_frame() must be true).
  Frame pop_frame();

  bool corrupt() const noexcept { return status_ != DecodeStatus::kOk; }
  DecodeStatus error() const noexcept { return status_; }

  /// Bytes buffered but not yet assembled into a frame.
  std::size_t pending_bytes() const noexcept { return buf_.size() - cursor_; }

 private:
  void extract_frames();

  std::vector<unsigned char> buf_;
  std::size_t cursor_ = 0;  ///< consumed prefix of buf_
  std::deque<Frame> frames_;
  DecodeStatus status_ = DecodeStatus::kOk;
};

}  // namespace spdkfac::comm::wire
