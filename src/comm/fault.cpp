#include "comm/fault.hpp"

#include <chrono>
#include <csignal>
#include <thread>
#include <utility>

#include "comm/transport.hpp"

namespace spdkfac::comm {

const char* to_string(FailureCause cause) noexcept {
  switch (cause) {
    case FailureCause::kTimeout:
      return "timeout";
    case FailureCause::kPeerClosed:
      return "peer closed";
    case FailureCause::kPeerNotice:
      return "peer notice";
    case FailureCause::kInjected:
      return "injected";
  }
  return "?";
}

RankFailure::RankFailure(int failed_rank, std::string op, FailureCause cause,
                         int observer_rank, double deadline_s)
    : std::runtime_error("rank failure"),
      failed_rank_(failed_rank),
      observer_rank_(observer_rank),
      cause_(cause),
      op_(std::move(op)),
      deadline_s_(deadline_s) {
  rebuild_message();
}

void RankFailure::set_context(const std::string& op, int plan_task) {
  op_ = op;
  plan_task_ = plan_task;
  rebuild_message();
}

void RankFailure::rebuild_message() {
  message_ = "rank " + std::to_string(failed_rank_) + " failed (" +
             to_string(cause_) + ") during '" + op_ + "' observed by rank " +
             std::to_string(observer_rank_);
  if (plan_task_ >= 0) {
    message_ += " [plan task " + std::to_string(plan_task_) + "]";
  }
  if (deadline_s_ > 0.0) {
    message_ += " after " + std::to_string(deadline_s_) + "s deadline";
  }
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec) : spec_(spec) {
  trigger_ = spec_.after_ops;
  if (spec_.seed != 0 && spec_.seed_range > 0) {
    trigger_ = static_cast<std::size_t>(splitmix64(spec_.seed) %
                                        spec_.seed_range);
  }
}

FaultAction FaultInjector::decide(FaultOp op) noexcept {
  if (fired_ || spec_.action == FaultAction::kNone) return FaultAction::kNone;
  if (spec_.op != FaultOp::kAny && spec_.op != op) return FaultAction::kNone;
  if (count_++ != trigger_) return FaultAction::kNone;
  fired_ = true;
  return spec_.action;
}

namespace {

/// Decorator transport implementing the injection seam.  Single-owner like
/// every transport: one per rank, driven from that rank's threads.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, const FaultSpec& spec)
      : inner_(std::move(inner)), injector_(spec) {}

  TransportKind kind() const noexcept override { return inner_->kind(); }
  int rank() const noexcept override { return inner_->rank(); }
  int size() const noexcept override { return inner_->size(); }

  void set_timeout(double seconds) noexcept override {
    inner_->set_timeout(seconds);
  }
  double timeout_s() const noexcept override { return inner_->timeout_s(); }
  void heartbeat() override { inner_->heartbeat(); }
  std::size_t heartbeats_sent() const noexcept override {
    return inner_->heartbeats_sent();
  }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int plan_task, std::uint16_t codec) override {
    if (act(FaultOp::kSend)) return;  // dropped
    inner_->send(dst, payload, tag, plan_task, codec);
  }

  std::vector<double> recv(int src) override { return inner_->recv(src); }

  bool recv_into(int src, std::span<double> out) override {
    return inner_->recv_into(src, out);
  }

  void barrier() override {
    if (act(FaultOp::kBarrier)) return;  // skipped: the rank walks past it
    inner_->barrier();
  }

 private:
  /// Consults the injector; returns true when the op must be skipped
  /// (kDrop).  kHang sleeps out the silence window, then dies like kKill:
  /// SIGKILL for process-per-rank backends (exercising the launcher's
  /// signal reporting), FaultInjected for in-process threads.
  bool act(FaultOp op) {
    switch (injector_.decide(op)) {
      case FaultAction::kNone:
        return false;
      case FaultAction::kDrop:
        return true;
      case FaultAction::kHang:
        std::this_thread::sleep_for(std::chrono::duration<double>(
            injector_.spec().hang_s));
        die();
      case FaultAction::kKill:
        die();
    }
    return false;
  }

  [[noreturn]] void die() {
    if (inner_->kind() != TransportKind::kInProcess) {
      ::raise(SIGKILL);
    }
    throw FaultInjected("fault injected: rank " + std::to_string(rank()) +
                        " dies");
  }

  std::unique_ptr<Transport> inner_;
  FaultInjector injector_;
};

}  // namespace

std::unique_ptr<Transport> with_fault_injection(std::unique_ptr<Transport> inner,
                                                const FaultSpec& spec) {
  return std::make_unique<FaultyTransport>(std::move(inner), spec);
}

}  // namespace spdkfac::comm
