#include "comm/cluster.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "comm/collectives.hpp"

namespace spdkfac::comm {

// Every ReduceOp flows through the same two shared helpers (also used by
// the alternative algorithms in collectives.cpp): detail::accumulate for
// the elementwise combine (kSum/kAverage add, kMax maxes) and
// detail::finalize for the single end-of-reduction kAverage division —
// so the scalar and _v collectives cannot drift apart in op handling.
using detail::accumulate;
using detail::even_partition;
using detail::finalize;
using detail::offsets_of;

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(int size) : Cluster(Topology::flat(size)) {}

Cluster::Cluster(const Topology& topo)
    : size_(topo.world_size()), topology_(topo) {
  if (topo.nodes <= 0 || topo.gpus_per_node <= 0) {
    throw std::invalid_argument("Cluster size must be positive");
  }
  group_ = make_in_process_group(size_);
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(size_);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &error_mutex, &first_error] {
      try {
        auto transport = make_in_process_transport(group_, r);
        Communicator comm(*transport, topology_);
        fn(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::launch(int size, const std::function<void(Communicator&)>& fn) {
  Cluster cluster(size);
  cluster.run(fn);
}

void Cluster::launch(const Topology& topo,
                     const std::function<void(Communicator&)>& fn) {
  Cluster cluster(topo);
  cluster.run(fn);
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

void Communicator::barrier() { transport_->barrier(); }

void Communicator::send(int dst, std::span<const double> payload,
                        std::uint16_t tag, int plan_task,
                        std::uint16_t codec) {
  if (dst < 0 || dst >= size_) throw std::invalid_argument("send: bad rank");
  transport_->send(dst, payload, tag, plan_task, codec);
}

void Communicator::recv(int src, std::span<double> out) {
  if (src < 0 || src >= size_) throw std::invalid_argument("recv: bad rank");
  if (!transport_->recv_into(src, out)) {
    throw std::runtime_error("recv: message length mismatch");
  }
}

void Communicator::all_reduce(std::span<double> data, ReduceOp op) {
  const auto counts = even_partition(data.size(), size_);
  reduce_scatter_v(data, counts, op);
  all_gather_v(data, counts);
}

void Communicator::reduce_scatter_v(std::span<double> data,
                                    std::span<const std::size_t> counts,
                                    ReduceOp op) {
  if (static_cast<int>(counts.size()) != size_) {
    throw std::invalid_argument("reduce_scatter_v: counts size != world size");
  }
  const auto offsets = offsets_of(counts);
  if (offsets.back() != data.size()) {
    throw std::invalid_argument("reduce_scatter_v: counts do not sum to size");
  }
  if (size_ == 1) return;  // sum/max/average of one value is itself

  const int right = (rank_ + 1) % size_;
  const int left = (rank_ + size_ - 1) % size_;
  std::vector<double> recv_buf;

  // Ring reduce-scatter.  At step s, rank r forwards segment (r - s - 1) and
  // accumulates segment (r - s - 2); after P-1 steps, rank r owns the fully
  // reduced segment r.  Additions for a given segment happen in ring order
  // regardless of which rank observes them, so every rank's final segments
  // are bitwise identical — the determinism the synchronous-training
  // consistency tests rely on.
  for (int step = 0; step < size_ - 1; ++step) {
    const int send_seg = ((rank_ - step - 1) % size_ + size_) % size_;
    const int recv_seg = ((rank_ - step - 2) % size_ + size_) % size_;
    std::span<double> send_view =
        data.subspan(offsets[send_seg], counts[send_seg]);
    std::span<double> recv_view =
        data.subspan(offsets[recv_seg], counts[recv_seg]);
    transport_->send(right, send_view);
    recv_buf.resize(recv_view.size());
    if (!transport_->recv_into(left, recv_buf)) {
      throw std::runtime_error("reduce_scatter_v: segment size mismatch");
    }
    accumulate(recv_view, recv_buf, op);
  }

  // Op finalization on the reduced (own) segment only — the other segments
  // are unspecified on return.
  finalize(data.subspan(offsets[rank_], counts[rank_]), op, size_);
}

void Communicator::all_gather_v(std::span<double> data,
                                std::span<const std::size_t> counts) {
  if (static_cast<int>(counts.size()) != size_) {
    throw std::invalid_argument("all_gather_v: counts size != world size");
  }
  const auto offsets = offsets_of(counts);
  if (offsets.back() != data.size()) {
    throw std::invalid_argument("all_gather_v: counts do not sum to size");
  }
  if (size_ == 1) return;

  const int right = (rank_ + 1) % size_;
  const int left = (rank_ + size_ - 1) % size_;

  // Ring all-gather: at step s, forward segment (r - s) and receive segment
  // (r - s - 1) from the left neighbour.
  for (int step = 0; step < size_ - 1; ++step) {
    const int send_seg = ((rank_ - step) % size_ + size_) % size_;
    const int recv_seg = ((rank_ - step - 1) % size_ + size_) % size_;
    transport_->send(right, data.subspan(offsets[send_seg], counts[send_seg]));
    std::span<double> recv_view =
        data.subspan(offsets[recv_seg], counts[recv_seg]);
    if (!transport_->recv_into(left, recv_view)) {
      throw std::runtime_error("all_gather_v: segment size mismatch");
    }
  }
}

void Communicator::broadcast(std::span<double> data, int root) {
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("broadcast: bad root");
  }
  if (size_ == 1) return;

  // Binomial tree rooted at `root`, expressed in root-relative ranks.
  const int relative = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if (relative & mask) {
      const int src = (relative - mask + root) % size_;
      recv(src, data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size_) {
      const int dst = (relative + mask + root) % size_;
      send(dst, data);
    }
    mask >>= 1;
  }
}

void Communicator::all_gather_scalar(double value, std::span<double> out) {
  if (static_cast<int>(out.size()) != size_) {
    throw std::invalid_argument("all_gather_scalar: out size != world size");
  }
  out[rank_] = value;
  std::vector<std::size_t> counts(size_, 1);
  all_gather_v(out, counts);
}

}  // namespace spdkfac::comm
