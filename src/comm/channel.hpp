// Point-to-point message channels between in-process workers.
//
// The paper runs on 64 GPUs over NCCL/Horovod.  This reproduction replaces
// the network with an in-process cluster: each worker is a thread and each
// directed (src, dst) pair owns a Channel — an unbounded FIFO mailbox of
// double vectors protected by a mutex/condvar.  All collectives in
// collectives.cpp are built from these sends/recvs, so data really moves
// between workers and aggregation-order determinism can be tested.
//
// Messages carry a wire-style tag so the fault-tolerance control traffic
// (heartbeats, failure notices — comm/fault.hpp) can ride the same
// mailboxes as data; recv_for() is the deadline-aware receive the
// in-process transport's failure detection is built on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace spdkfac::comm {

/// Unbounded SPSC/MPSC mailbox carrying tagged vectors of doubles.
///
/// send() copies the payload; recv() blocks until a message is available and
/// moves it out.  Messages from a single sender are delivered in order.
class Channel {
 public:
  struct Message {
    std::uint16_t tag = 0;
    std::vector<double> payload;
  };

  void send(std::span<const double> payload, std::uint16_t tag = 0) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(
          Message{tag, std::vector<double>(payload.begin(), payload.end())});
    }
    cv_.notify_one();
  }

  Message recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Deadline-aware receive: blocks up to `timeout_s` seconds; nullopt on
  /// expiry with no message.
  std::optional<Message> recv_for(double timeout_s) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      [this] { return !queue_.empty(); })) {
      return std::nullopt;
    }
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// Reusable N-party barrier (sense-reversing via generation counter).
///
/// Per-party arrival stamps make a timed-out wait diagnosable: the caller
/// learns *which* rank never arrived, which is what turns a dead peer into
/// a RankFailure naming it instead of an anonymous hang.
class Barrier {
 public:
  explicit Barrier(std::size_t parties)
      : parties_(parties), stamps_(parties, 0) {}

  void arrive_and_wait() { arrive_and_wait_for(kUnknownParty, 0.0); }

  /// Arrives as `who` and waits up to `timeout_s` (forever when <= 0).
  /// Returns -1 on success; on expiry, the lowest party index that had not
  /// arrived for this generation (every timed-out waiter computes the same
  /// index).  A timed-out barrier is poisoned: the missing arrival can
  /// complete it later, but the waiters that threw are already gone.
  int arrive_and_wait_for(std::size_t who, double timeout_s) {
    std::unique_lock lock(mutex_);
    const std::size_t gen = generation_;
    if (who != kUnknownParty) stamps_[who] = gen + 1;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return -1;
    }
    const auto arrived_this_gen = [this, gen] { return generation_ != gen; };
    if (timeout_s <= 0.0) {
      cv_.wait(lock, arrived_this_gen);
      return -1;
    }
    if (cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                     arrived_this_gen)) {
      return -1;
    }
    for (std::size_t p = 0; p < parties_; ++p) {
      if (stamps_[p] != gen + 1) return static_cast<int>(p);
    }
    return -1;  // everyone arrived while we were scanning — not a failure
  }

 private:
  static constexpr std::size_t kUnknownParty = ~std::size_t{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  std::vector<std::size_t> stamps_;  ///< per party: generation + 1 at arrival
};

}  // namespace spdkfac::comm
