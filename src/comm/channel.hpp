// Point-to-point message channels between in-process workers.
//
// The paper runs on 64 GPUs over NCCL/Horovod.  This reproduction replaces
// the network with an in-process cluster: each worker is a thread and each
// directed (src, dst) pair owns a Channel — an unbounded FIFO mailbox of
// double vectors protected by a mutex/condvar.  All collectives in
// collectives.cpp are built from these sends/recvs, so data really moves
// between workers and aggregation-order determinism can be tested.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

namespace spdkfac::comm {

/// Unbounded SPSC/MPSC mailbox carrying vectors of doubles.
///
/// send() copies the payload; recv() blocks until a message is available and
/// moves it out.  Messages from a single sender are delivered in order.
class Channel {
 public:
  void send(std::span<const double> payload) {
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back(payload.begin(), payload.end());
    }
    cv_.notify_one();
  }

  std::vector<double> recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    std::vector<double> msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Receives directly into `out`; the message length must match out.size().
  /// Returns false (leaving `out` untouched) on length mismatch.
  bool recv_into(std::span<double> out) {
    std::vector<double> msg = recv();
    if (msg.size() != out.size()) return false;
    std::copy(msg.begin(), msg.end(), out.begin());
    return true;
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::vector<double>> queue_;
};

/// Reusable N-party barrier (sense-reversing via generation counter).
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::size_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [this, gen] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace spdkfac::comm
