// Cluster-shape descriptor for topology-aware collectives.
//
// The paper's testbed is flat: 64 GPUs on one 100Gb/s InfiniBand fabric, so
// every link in its Eq. (14)/(21) cost models has the same alpha/beta.  Real
// clusters are hierarchies — N nodes of G GPUs, with NVLink/PCIe inside a
// node an order of magnitude cheaper than the network between nodes — and
// the best collective algorithm depends on both the message size and that
// shape (NCCL switches algorithms on exactly these inputs).  Topology
// captures the shape plus a latency/bandwidth (alpha + beta*m) model per
// link class; the collective algorithms in collectives.hpp use the rank
// mapping, and AlgorithmSelector / perf::ClusterCalibration use the link
// models to price each algorithm.
//
// Rank layout: rank r lives on node r / gpus_per_node with local rank
// r % gpus_per_node; the node leader is the node's local rank 0.
#pragma once

namespace spdkfac::comm {

/// Cost of moving one message over a link class: alpha + beta * m seconds
/// for m elements (same alpha-beta form as the paper's Eq. (14)).
struct LinkModel {
  double alpha = 0.0;  ///< per-message latency (seconds)
  double beta = 0.0;   ///< per-element transfer cost (seconds/element)

  double operator()(double elements) const noexcept {
    return alpha + beta * elements;
  }
};

struct Topology {
  int nodes = 1;
  int gpus_per_node = 1;

  /// Intra-node link (NVLink/PCIe class).  Default: ~10x cheaper than the
  /// network in both terms.
  LinkModel intra{5.0e-6, 5.0e-11};
  /// Inter-node link (network class).  Defaults derived from the paper's
  /// P = 64 ring all-reduce fit (Fig. 7a): alpha_ar = 2(P-1)*L.alpha and
  /// beta_ar = 2(P-1)/P * L.beta give L = {9.7e-5, 7.4e-10}.
  LinkModel inter{9.7e-5, 7.4e-10};

  int world_size() const noexcept { return nodes * gpus_per_node; }
  int node_of(int rank) const noexcept { return rank / gpus_per_node; }
  int local_rank(int rank) const noexcept { return rank % gpus_per_node; }
  /// The node leader owns the node's inter-node traffic (local rank 0).
  int leader_of(int rank) const noexcept {
    return node_of(rank) * gpus_per_node;
  }
  bool is_leader(int rank) const noexcept { return local_rank(rank) == 0; }
  /// True when both levels of the hierarchy are non-trivial.
  bool hierarchical() const noexcept { return nodes > 1 && gpus_per_node > 1; }
  /// Worst link class a flat (all-ranks) collective must cross.
  const LinkModel& flat_link() const noexcept {
    return nodes > 1 ? inter : intra;
  }

  /// One GPU per node: every link is a network link.  This is the shape of
  /// the paper's testbed and the default for Cluster(int).
  static Topology flat(int world) noexcept {
    Topology t;
    t.nodes = world;
    t.gpus_per_node = 1;
    return t;
  }

  /// N nodes x G GPUs with the default link constants.
  static Topology multi_node(int nodes, int gpus_per_node) noexcept {
    Topology t;
    t.nodes = nodes;
    t.gpus_per_node = gpus_per_node;
    return t;
  }
};

}  // namespace spdkfac::comm
