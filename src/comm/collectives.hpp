// Collective algorithm library + size/topology-based selection.
//
// The seed hard-coded one algorithm per collective (ring all-reduce,
// binomial-tree broadcast).  Under the paper's alpha-beta cost model
// (Eq. (14)) that is only optimal for large messages: a ring pays 2(P-1)
// latencies, so small all-reduces — exactly the factor-time syncs and small
// fused groups SPD-KFAC issues — are latency-bound and want a logarithmic-
// depth algorithm, and multi-node hierarchies want to cross the slow
// inter-node links only once per node.  This header provides:
//
//   * all_reduce_ring              — reduce-scatter + all-gather ring,
//                                    bandwidth-optimal: 2(P-1) messages of
//                                    m/P elements;
//   * all_reduce_halving_doubling  — Rabenseifner recursive vector halving
//                                    (reduce-scatter) + recursive doubling
//                                    (all-gather): 2*log2(P) latencies, with
//                                    a fold/unfold round for non-power-of-two
//                                    P that costs one extra full-vector
//                                    exchange;
//   * all_reduce_flat_tree         — reduce everything to rank 0, then
//                                    binomial broadcast; P-1 serialized
//                                    receives at the root, but the reduction
//                                    order is trivially rank-independent;
//   * all_reduce_hierarchical      — two-level: intra-node reduce to the
//                                    node leader, ring all-reduce across
//                                    leaders over the inter-node links,
//                                    intra-node broadcast;
//   * AlgorithmSelector            — closed-form alpha+beta*m cost per
//                                    algorithm from a Topology's link
//                                    models, argmin choice per message size
//                                    (the NCCL-style switching the paper's
//                                    fixed testbed never needed).
//
// Every algorithm upholds the Communicator contract: all ranks call with
// the same size/op/algo, and results are bitwise identical across ranks
// (each reduced element is computed at exactly one rank, or in a fixed
// rank-independent order, before being copied).  Different algorithms may
// round differently from each other — floating-point reassociation — which
// is why the conformance suite compares against a tolerance reference but
// demands exact cross-rank equality.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/topology.hpp"
#include "tensor/kernels/kernels.hpp"

namespace spdkfac::comm {

const char* to_string(AllReduceAlgo algo) noexcept;

/// The concrete algorithms, in selection tie-break order (ring first).
/// Everything that enumerates the library — selection, fitting, benches,
/// conformance — iterates this list, so a new algorithm only needs an
/// entry here (plus its cost term and dispatch case).
inline constexpr std::array<AllReduceAlgo, 4> kAllReduceAlgos{
    AllReduceAlgo::kRing, AllReduceAlgo::kHalvingDoubling,
    AllReduceAlgo::kFlatTree, AllReduceAlgo::kHierarchical};

namespace detail {

/// Splits n elements into `parts` contiguous segments as evenly as possible
/// (first n % parts segments get one extra element).  Returns segment sizes.
inline std::vector<std::size_t> even_partition(std::size_t n,
                                               std::size_t parts) {
  std::vector<std::size_t> counts(parts, n / parts);
  for (std::size_t i = 0; i < n % parts; ++i) ++counts[i];
  return counts;
}

inline std::vector<std::size_t> offsets_of(
    std::span<const std::size_t> counts) {
  std::vector<std::size_t> offsets(counts.size() + 1, 0);
  std::partial_sum(counts.begin(), counts.end(), offsets.begin() + 1);
  return offsets;
}

/// Elementwise combine shared by every algorithm and every ReduceOp: kSum
/// and kAverage accumulate (averaging is a separate finalize step so the
/// division happens exactly once), kMax takes the elementwise maximum.
/// Runs on the active ISA's vector kernels; add/max/scale are purely
/// elementwise, so every level produces identical bits — reduction results
/// never depend on which ISA a rank (or test) selected.
inline void accumulate(std::span<double> dst, std::span<const double> src,
                       ReduceOp op) {
  const auto& kt = tensor::kernels::active_table();
  if (op == ReduceOp::kMax) {
    kt.max(dst.data(), src.data(), dst.size());
  } else {
    kt.add(dst.data(), src.data(), dst.size());
  }
}

/// Op finalization after a sum-based reduction: kAverage divides by the
/// world size (identically on every rank — bitwise determinism), the other
/// ops need nothing.
inline void finalize(std::span<double> data, ReduceOp op, int world) {
  if (op != ReduceOp::kAverage || world <= 1) return;
  tensor::kernels::active_table().scale(data.data(), data.size(),
                                        1.0 / world);
}

}  // namespace detail

void all_reduce_ring(Communicator& comm, std::span<double> data, ReduceOp op);
void all_reduce_halving_doubling(Communicator& comm, std::span<double> data,
                                 ReduceOp op);
void all_reduce_flat_tree(Communicator& comm, std::span<double> data,
                          ReduceOp op);
/// `topo` supplies the node/leader structure; a Topology whose world size
/// does not match comm.size() degenerates to flat (one GPU per node).
void all_reduce_hierarchical(Communicator& comm, std::span<double> data,
                             ReduceOp op, const Topology& topo);

/// Closed-form cost model and argmin selection over the algorithm library.
///
/// Effective per-collective terms t_algo(m) = alpha + beta*m are derived
/// from the Topology's link models (flat link F = inter when nodes > 1,
/// intra link I, inter link E; P = world, pof2 the largest power of two
/// <= P, N nodes, G GPUs per node):
///
///   ring     alpha = 2(P-1) F.a                 beta = 2(P-1)/P F.b
///   h/d      alpha = 2 log2(pof2) F.a [+2 F.a]  beta = 2(pof2-1)/pof2 F.b
///                                                       [+2 F.b]
///            (bracketed fold/unfold terms only when P != pof2)
///   tree     alpha = (P-1+ceil(log2 P)) F.a     beta = same multiplier F.b
///   hier     alpha = 2(G-1) I.a + 2(N-1) E.a    beta = 2(G-1) I.b
///                                                      + 2(N-1)/N E.b
///
/// choose() is the crossover rule: argmin over the available algorithms
/// (ring wins ties; kHierarchical competes only when nodes > 1).  Because
/// ring is always in the candidate set, the chosen cost is <= the ring cost
/// at every message size.  Terms can be overridden with fitted models
/// (perf::fit_selector) to mirror the paper's measure-then-fit workflow.
class AlgorithmSelector {
 public:
  AlgorithmSelector() : AlgorithmSelector(Topology::flat(1)) {}
  explicit AlgorithmSelector(const Topology& topo);

  const Topology& topology() const noexcept { return topo_; }

  /// Whether choose() considers the algorithm on this topology.
  bool available(AllReduceAlgo algo) const noexcept;

  /// Effective cost terms of one collective (valid for any concrete algo,
  /// available or not).
  const LinkModel& term(AllReduceAlgo algo) const;
  /// Overrides an algorithm's terms with a fitted model.
  void set_term(AllReduceAlgo algo, LinkModel term);

  /// Predicted seconds for one all-reduce of `elements` doubles; kAuto
  /// prices the chosen algorithm.
  double cost(AllReduceAlgo algo, std::size_t elements) const;
  /// Cheapest available algorithm for this message size.
  AllReduceAlgo choose(std::size_t elements) const noexcept;
  double best_cost(std::size_t elements) const {
    return cost(choose(elements), elements);
  }

 private:
  static std::size_t index_of(AllReduceAlgo algo);

  Topology topo_;
  std::array<LinkModel, kAllReduceAlgos.size()> terms_{};
  std::array<bool, kAllReduceAlgos.size()> available_{};
};

}  // namespace spdkfac::comm
