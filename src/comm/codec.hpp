// Lossy/lossless payload codecs for collective communication — the seam
// that lets the planner trade accuracy for bytes-on-the-wire (ROADMAP item
// 5(a): compression shifts the m of the paper's alpha + beta*m model, Eq.
// (14), and is therefore re-derived through the planner rather than bolted
// onto the transport).
//
// Three codecs:
//
//   kFp16  — IEEE-754 binary16 quantization, 4 halves per wire double
//            (4x fewer bytes).  Lossless in structure: every element
//            survives, rounded to ~3 decimal digits.
//   kInt8  — per-chunk-scaled linear quantization: each 256-element chunk
//            carries one double scale (absmax/127) plus 8 signed bytes per
//            wire double (~7.8x fewer bytes).
//   kTopK  — top-k sparsification for gradients: the k = max(1,
//            floor(ratio*n)) largest-|value| elements ship as (index,
//            f32 value) slots, one wire double each; the unsent remainder
//            feeds a per-rank error-feedback residual added back into the
//            next step's gradient (see core::DistKfacOptimizer).  Selection
//            is deterministic: |value| descending, index ascending on ties,
//            computed serially so the choice never depends on thread count.
//
// Determinism.  Every codec's encode/decode runs on the kernel table's
// codec primitives, which are bitwise identical across ISA levels (see
// tensor/kernels/kernels.hpp), and the compressed collectives below
// all-gather the P encoded vectors and have *every* rank decode and reduce
// them in fixed rank order 0..P-1 — so results are bitwise identical on
// every rank, on every backend, at every ISA level, independent of the
// plan's algorithm annotation (which shapes cost modeling only).
//
// Error bounds the conformance suite holds the lossy codecs to (inputs
// x_r per rank, result vs the exact sum):
//
//   fp16:  |err_i| <= P * 2^-11 * max_r(|x_r,i|) * (1 + o(1))   (half ulp)
//   int8:  |err_i| <= P * max_r(absmax_chunk(x_r)) / 254        (half step)
//   topk:  exactly sum_r decode_r(encode_r(x_r)) — the reference replays
//          the codec, the loss is accounted by error feedback upstream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "comm/cluster.hpp"

namespace spdkfac::comm {

/// Payload codec of one collective task.  kAuto is an *option* value only:
/// the planner resolves it per step (to kInt8 for factor families, kFp16
/// for gradients, or kNone below the crossover size) and resolved
/// sched::Task codecs are never kAuto.
enum class Codec : std::uint8_t {
  kNone = 0,
  kFp16 = 1,
  kInt8 = 2,
  kTopK = 3,
  kAuto = 4,
};

const char* to_string(Codec codec) noexcept;

/// Parses "none" / "fp16" / "int8" / "topk" / "auto"; throws
/// std::invalid_argument on anything else (CLIs, CI env overrides).
Codec codec_from_string(const std::string& name);

/// int8 quantization chunk: one scale double per 256 elements.
inline constexpr std::size_t kInt8ChunkElements = 256;

/// kAuto crossover: payloads below this many doubles stay lossless (the
/// alpha term dominates there, so shrinking m buys nothing but error).
inline constexpr std::size_t kAutoCodecCrossoverElements = 8192;

/// Resolves an option codec against a payload size: kAuto becomes kInt8
/// (factors) / kFp16 (gradients) at or above the crossover and kNone below
/// it; concrete codecs pass through.  Never returns kAuto.
Codec resolve_codec(Codec option, std::size_t elements, bool gradient) noexcept;

/// Wire payload length in doubles for n logical doubles under `codec`
/// (kTopK needs the ratio; n for kNone).
std::size_t wire_elements(Codec codec, std::size_t n,
                          double topk_ratio = 0.0) noexcept;

/// Asymptotic compressed/raw wire-size ratio — what the planner scales the
/// beta term of Eq. (14) by when re-deriving fusion groups and CT/NCT
/// placement under compression (1.0 for kNone).
double wire_ratio(Codec codec, double topk_ratio = 0.0) noexcept;

/// Modeled encode + decode compute seconds per element (folded into the
/// planner's adjusted beta alongside the wire ratio, and added by the
/// simulator's pricer as codec_compute_cost).
double codec_cost_per_element(Codec codec) noexcept;

/// Modeled total codec compute seconds for one collective over n elements.
inline double codec_compute_cost(Codec codec, std::size_t n) noexcept {
  return codec_cost_per_element(codec) * static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

/// Encodes src into wire (exactly wire_elements(codec, src.size(), ratio)
/// doubles).  kNone copies.  kTopK performs the deterministic selection and
/// emits slots in ascending-index order (canonical form — byte-comparable
/// across ranks and runs).
void encode(Codec codec, std::span<const double> src, std::span<double> wire,
            double topk_ratio = 0.0);

/// Decodes wire into dst (dst.size() == the original element count).  Fully
/// writes dst: kTopK zero-fills then scatters its slots.
void decode(Codec codec, std::span<const double> wire, std::span<double> dst,
            double topk_ratio = 0.0);

/// One top-k wire slot: a u32 element index and the f32 value, packed into
/// one double's bit pattern.
struct TopKSlot {
  std::uint32_t index = 0;
  float value = 0.0f;
};

double pack_topk_slot(TopKSlot slot) noexcept;
TopKSlot unpack_topk_slot(double packed) noexcept;

/// Error-feedback residual after encode(kTopK, u, wire): residual[i] = u[i]
/// for unselected i, 0 for selected ones (the f32 rounding of a shipped
/// value is not fed back — it is orders below the sparsification error).
/// residual may alias u.
void topk_residual(std::span<const double> u, std::span<const double> wire,
                   std::span<double> residual);

// ---------------------------------------------------------------------------
// Compressed collectives
// ---------------------------------------------------------------------------

/// Scratch doubles compressed_all_reduce needs for n-element payloads:
/// world gathered wire vectors plus one decode temporary.
std::size_t all_reduce_scratch_elements(Codec codec, std::size_t n, int world,
                                        double topk_ratio = 0.0) noexcept;

/// Scratch doubles compressed_broadcast needs: one wire vector.
std::size_t broadcast_scratch_elements(Codec codec, std::size_t n,
                                       double topk_ratio = 0.0) noexcept;

/// In-place compressed all-reduce: encode the local vector, ring
/// all-gather the P encoded vectors (point-to-point frames tagged with the
/// codec id and `plan_task`, so out-of-process backends genuinely ship the
/// compressed bytes), then decode + reduce all P of them in rank order
/// 0..P-1 on every rank.  scratch must hold all_reduce_scratch_elements.
void compressed_all_reduce(Communicator& comm, std::span<double> data,
                           Codec codec, ReduceOp op, double topk_ratio,
                           std::span<double> scratch, int plan_task = -1);

/// compressed_all_reduce with the local encoding already placed in
/// scratch[rank*w, (rank+1)*w) — the error-feedback gradient path encodes
/// itself so it can derive the residual from the exact wire content.
void all_reduce_encoded(Communicator& comm, std::span<double> data,
                        Codec codec, ReduceOp op, double topk_ratio,
                        std::span<double> scratch, int plan_task = -1);

/// In-place compressed broadcast: the root encodes, the wire vector ships
/// down a binomial tree, and *every* rank — the root included — overwrites
/// data with the decoded wire, so downstream state (e.g. CT inverses) is
/// bitwise identical across ranks.  scratch must hold
/// broadcast_scratch_elements.
void compressed_broadcast(Communicator& comm, std::span<double> data,
                          Codec codec, int root, std::span<double> scratch,
                          int plan_task = -1);

}  // namespace spdkfac::comm
