// In-process worker cluster and rank-scoped communicator.
//
// Cluster::run(P, fn) spawns P threads, each receiving a Communicator bound
// to its rank.  The Communicator offers MPI/NCCL-style collectives (ring
// all-reduce, binomial-tree broadcast, reduce-scatter, all-gather — plus the
// alternative all-reduce algorithms of collectives.hpp, selectable per call)
// that move real data through the Channel mailboxes, substituting for the
// paper's 64-GPU InfiniBand fabric while preserving collective semantics:
//   * all ranks must call collectives in the same order with matching sizes;
//   * results are bitwise identical on every rank (ring reduction applies
//     additions in a rank-independent order per segment).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/channel.hpp"
#include "comm/topology.hpp"

namespace spdkfac::comm {

enum class ReduceOp {
  kSum,
  kAverage,  // sum / world size, applied once after reduction
  kMax,
};

/// All-reduce algorithm (see collectives.hpp for the implementations and
/// AlgorithmSelector for the size/topology-based choice).
enum class AllReduceAlgo {
  kRing,             ///< reduce-scatter + all-gather ring (bandwidth-optimal)
  kHalvingDoubling,  ///< Rabenseifner recursive halving/doubling (low latency)
  kFlatTree,         ///< reduce to rank 0 + binomial broadcast
  kHierarchical,     ///< intra-node reduce, leader ring, intra-node broadcast
  kAuto,             ///< pick per message size/topology via AlgorithmSelector
};

class Cluster;

/// Rank-local view of the cluster; all collective calls are blocking and
/// must be invoked by every rank (in the same order) to make progress.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// Point-to-point: copies `payload` into the (rank -> dst) mailbox.
  void send(int dst, std::span<const double> payload);

  /// Blocking receive of the next message from `src`; the message length
  /// must equal out.size() (throws std::runtime_error otherwise).
  void recv(int src, std::span<double> out);

  /// Ring all-reduce (reduce-scatter + all-gather, 2*(P-1) steps).  In-place;
  /// every rank ends with the identical reduced vector.
  void all_reduce(std::span<double> data, ReduceOp op = ReduceOp::kSum);

  /// All-reduce with an explicit algorithm (kAuto selects per message size
  /// and cluster topology).  Every algorithm preserves the collective
  /// contract: results are bitwise identical on every rank, though different
  /// algorithms may round differently (floating-point reassociation).
  void all_reduce(std::span<double> data, ReduceOp op, AllReduceAlgo algo);

  /// The cluster shape this communicator runs on (flat unless the Cluster
  /// was built from an explicit Topology).
  const Topology& topology() const noexcept;

  /// Binomial-tree broadcast from `root`; in-place on non-root ranks.
  void broadcast(std::span<double> data, int root);

  /// Reduce-scatter with per-rank segment sizes `counts` (counts.size() ==
  /// world size, sum == data.size()).  On return, the caller's own segment
  /// inside `data` holds the reduced values; other segments are unspecified.
  void reduce_scatter_v(std::span<double> data,
                        std::span<const std::size_t> counts,
                        ReduceOp op = ReduceOp::kSum);

  /// All-gather with per-rank segment sizes.  Rank p contributes the segment
  /// of `data` at offset sum(counts[0..p)) and on return every rank holds
  /// every segment.
  void all_gather_v(std::span<double> data,
                    std::span<const std::size_t> counts);

  /// Gathers a scalar from every rank into `out` (out.size() == world size).
  void all_gather_scalar(double value, std::span<double> out);

 private:
  friend class Cluster;
  Communicator(Cluster* cluster, int rank, int size)
      : cluster_(cluster), rank_(rank), size_(size) {}

  Channel& channel_to(int dst);
  Channel& channel_from(int src);

  Cluster* cluster_;
  int rank_;
  int size_;
};

/// Owns the channels/barrier shared by all ranks and drives worker threads.
class Cluster {
 public:
  explicit Cluster(int size);

  /// Cluster shaped as `topo` (topo.world_size() ranks); the hierarchical
  /// collective and kAuto selection use the shape and link models.
  explicit Cluster(const Topology& topo);

  int size() const noexcept { return size_; }
  const Topology& topology() const noexcept { return topology_; }

  /// Runs `fn(comm)` on one thread per rank and joins them all.  If any
  /// worker throws, the first exception is rethrown on the caller's thread
  /// after all workers finish (workers must not deadlock on a peer that
  /// died: by construction collectives are only entered by all ranks).
  void run(const std::function<void(Communicator&)>& fn);

  /// Convenience: builds a cluster of `size` ranks and runs `fn`.
  static void launch(int size, const std::function<void(Communicator&)>& fn);

  /// Convenience: builds a cluster shaped as `topo` and runs `fn`.
  static void launch(const Topology& topo,
                     const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  int size_;
  Topology topology_;
  Barrier barrier_;
  // channels_[src * size_ + dst]
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace spdkfac::comm
