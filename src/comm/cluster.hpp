// Worker cluster and rank-scoped communicator.
//
// Cluster::run(P, fn) spawns P workers, each receiving a Communicator bound
// to its rank.  The Communicator offers MPI/NCCL-style collectives (ring
// all-reduce, binomial-tree broadcast, reduce-scatter, all-gather — plus the
// alternative all-reduce algorithms of collectives.hpp, selectable per call)
// built on a pluggable point-to-point Transport (comm/transport.hpp):
// in-process threads by default, or real processes talking over shared
// memory / Unix-domain sockets, substituting for the paper's 64-GPU
// InfiniBand fabric while preserving collective semantics:
//   * all ranks must call collectives in the same order with matching sizes;
//   * results are bitwise identical on every rank (ring reduction applies
//     additions in a rank-independent order per segment) — on every backend.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault.hpp"
#include "comm/topology.hpp"
#include "comm/transport.hpp"

namespace spdkfac::comm {

enum class ReduceOp {
  kSum,
  kAverage,  // sum / world size, applied once after reduction
  kMax,
};

/// All-reduce algorithm (see collectives.hpp for the implementations and
/// AlgorithmSelector for the size/topology-based choice).
enum class AllReduceAlgo {
  kRing,             ///< reduce-scatter + all-gather ring (bandwidth-optimal)
  kHalvingDoubling,  ///< Rabenseifner recursive halving/doubling (low latency)
  kFlatTree,         ///< reduce to rank 0 + binomial broadcast
  kHierarchical,     ///< intra-node reduce, leader ring, intra-node broadcast
  kAuto,             ///< pick per message size/topology via AlgorithmSelector
};

/// Rank-local view of the cluster; all collective calls are blocking and
/// must be invoked by every rank (in the same order) to make progress.
/// Binds a Transport (which knows rank/size and moves bytes) to a Topology
/// (which shapes the hierarchical collective and kAuto selection); borrows
/// both, so they must outlive the communicator.
class Communicator {
 public:
  Communicator(Transport& transport, const Topology& topo)
      : transport_(&transport),
        topology_(&topo),
        rank_(transport.rank()),
        size_(transport.size()) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }

  /// The transport carrying this communicator's traffic.
  Transport& transport() noexcept { return *transport_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// Point-to-point: copies `payload` into the (rank -> dst) mailbox.
  /// `tag`/`plan_task`/`codec` ride in the frame header on out-of-process
  /// transports (codec != 0 marks an encoded payload whose length is the
  /// wire-double count; see comm/codec.hpp).
  void send(int dst, std::span<const double> payload, std::uint16_t tag = 0,
            int plan_task = -1, std::uint16_t codec = 0);

  /// Blocking receive of the next message from `src`; the message length
  /// must equal out.size() (throws std::runtime_error otherwise).
  void recv(int src, std::span<double> out);

  /// Ring all-reduce (reduce-scatter + all-gather, 2*(P-1) steps).  In-place;
  /// every rank ends with the identical reduced vector.
  void all_reduce(std::span<double> data, ReduceOp op = ReduceOp::kSum);

  /// All-reduce with an explicit algorithm (kAuto selects per message size
  /// and cluster topology).  Every algorithm preserves the collective
  /// contract: results are bitwise identical on every rank, though different
  /// algorithms may round differently (floating-point reassociation).
  void all_reduce(std::span<double> data, ReduceOp op, AllReduceAlgo algo);

  /// The cluster shape this communicator runs on (flat unless the Cluster
  /// was built from an explicit Topology).
  const Topology& topology() const noexcept { return *topology_; }

  /// Binomial-tree broadcast from `root`; in-place on non-root ranks.
  void broadcast(std::span<double> data, int root);

  /// Reduce-scatter with per-rank segment sizes `counts` (counts.size() ==
  /// world size, sum == data.size()).  On return, the caller's own segment
  /// inside `data` holds the reduced values; other segments are unspecified.
  void reduce_scatter_v(std::span<double> data,
                        std::span<const std::size_t> counts,
                        ReduceOp op = ReduceOp::kSum);

  /// All-gather with per-rank segment sizes.  Rank p contributes the segment
  /// of `data` at offset sum(counts[0..p)) and on return every rank holds
  /// every segment.
  void all_gather_v(std::span<double> data,
                    std::span<const std::size_t> counts);

  /// Gathers a scalar from every rank into `out` (out.size() == world size).
  void all_gather_scalar(double value, std::span<double> out);

 private:
  Transport* transport_;
  const Topology* topology_;
  int rank_;
  int size_;
};

/// Options for Cluster::launch_collect / launch.  `shm_ring_bytes` sizes
/// the per-pair shared-memory rings (ignored by the other backends).
struct LaunchOptions {
  std::size_t shm_ring_bytes = kDefaultShmRingBytes;
  /// Deadline for every blocking transport primitive on every rank
  /// (Transport::set_timeout); <= 0 keeps the wait-forever behavior.  With
  /// a timeout armed a dead peer surfaces as RankFailure instead of a hang.
  double comm_timeout_s = 0.0;
  /// Launcher-side deadline for draining each rank's result pipe; <= 0
  /// waits forever.  On expiry the straggler is SIGKILLed and reported in
  /// the LaunchFailure — the backstop that keeps a wedged mesh from
  /// wedging the launcher too.
  double collect_timeout_s = 0.0;
  /// Deterministic fault injection: the spec's victim rank gets its
  /// transport wrapped by with_fault_injection().  Default: disabled.
  FaultSpec fault;
};

/// Post-mortem of one worker rank after a launch.
struct RankExit {
  int rank = -1;
  bool wrote_result = false;  ///< full result payload arrived on the pipe
  bool signaled = false;      ///< process backends: terminated by a signal
  int term_signal = 0;        ///< WTERMSIG when signaled
  int exit_status = 0;        ///< WEXITSTATUS when it exited
  std::string error;          ///< thread backend: the exception's what()

  bool clean() const noexcept {
    return wrote_result && !signaled && exit_status == 0 && error.empty();
  }

  /// "rank 2: killed by signal 9 (Killed)" / "rank 1: exit status 3" / ...
  std::string describe() const;
};

/// Thrown by launch_collect when any rank fails.  Carries the per-rank
/// post-mortems (which rank died how: signal, exit status, in-thread
/// exception) and the results the surviving ranks still delivered — which
/// is how the fault-injection suite asserts every survivor observed the
/// planted death.
class LaunchFailure : public std::runtime_error {
 public:
  LaunchFailure(const std::string& message, std::vector<RankExit> exits,
                std::vector<std::vector<double>> partial)
      : std::runtime_error(message),
        exits_(std::move(exits)),
        partial_(std::move(partial)) {}

  const std::vector<RankExit>& exits() const noexcept { return exits_; }

  const std::vector<std::vector<double>>& partial_results() const noexcept {
    return partial_;
  }

  std::vector<int> failed_ranks() const {
    std::vector<int> failed;
    for (const RankExit& e : exits_) {
      if (!e.clean()) failed.push_back(e.rank);
    }
    return failed;
  }

 private:
  std::vector<RankExit> exits_;
  std::vector<std::vector<double>> partial_;  ///< index == rank; failed empty
};

/// Builds per-rank transports and drives worker threads or processes.
class Cluster {
 public:
  explicit Cluster(int size);

  /// Cluster shaped as `topo` (topo.world_size() ranks); the hierarchical
  /// collective and kAuto selection use the shape and link models.
  explicit Cluster(const Topology& topo);

  int size() const noexcept { return size_; }
  const Topology& topology() const noexcept { return topology_; }

  /// Runs `fn(comm)` on one in-process thread per rank and joins them all.
  /// If any worker throws, the first exception is rethrown on the caller's
  /// thread after all workers finish (workers must not deadlock on a peer
  /// that died: by construction collectives are only entered by all ranks).
  void run(const std::function<void(Communicator&)>& fn);

  /// Convenience: builds a cluster of `size` ranks and runs `fn` in-process.
  static void launch(int size, const std::function<void(Communicator&)>& fn);

  /// Convenience: builds a cluster shaped as `topo` and runs `fn` in-process.
  static void launch(const Topology& topo,
                     const std::function<void(Communicator&)>& fn);

  /// Runs `fn` once per rank over the chosen transport and returns each
  /// rank's result vector, index == rank.  kInProcess spawns threads;
  /// kSharedMemory / kSocket fork one worker *process* per rank (the shm
  /// arena is mapped before fork; socket ranks rendezvous under a private
  /// temp directory), ship each rank's result back over a pipe, and reap
  /// the children.  Any rank failure (exception, abnormal exit, death by
  /// signal) throws LaunchFailure in the launcher after all workers
  /// finish, carrying per-rank post-mortems and the survivors' results.
  static std::vector<std::vector<double>> launch_collect(
      TransportKind kind, const Topology& topo,
      const std::function<std::vector<double>(Communicator&)>& fn,
      const LaunchOptions& opts = {});

  /// launch_collect for workers with no result to report.
  static void launch(TransportKind kind, const Topology& topo,
                     const std::function<void(Communicator&)>& fn,
                     const LaunchOptions& opts = {});

 private:
  int size_;
  Topology topology_;
  std::shared_ptr<InProcessGroup> group_;
};

}  // namespace spdkfac::comm
